//! A minimal, std-only, in-repo stand-in for the [`proptest`] crate.
//!
//! The build environment cannot reach the crates.io registry, so the
//! workspace vendors the small slice of proptest's API its property tests
//! actually use: the [`proptest!`] / [`prop_compose!`] / [`prop_assert!`]
//! macros, range and tuple [`Strategy`]s, [`collection::vec`], and
//! [`Strategy::prop_map`].
//!
//! Semantics differ from real proptest in two deliberate ways:
//!
//! * **No shrinking.** A failing case reports its case number and the
//!   deterministic per-test seed instead of a minimized input.
//! * **Deterministic generation.** Cases are generated from a fixed seed
//!   derived from the test function's name, so failures reproduce exactly
//!   (`PROPTEST_CASES` can still override the case count).
//!
//! [`proptest`]: https://docs.rs/proptest

/// Deterministic generator used for case generation (SplitMix64 — small,
/// fast, and self-contained so this shim depends on nothing).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from an arbitrary string (e.g. the test name).
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name gives a stable per-test seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw from `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
    }

    /// A uniform integer in `[0, bound)`; 0 when `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Multiply-shift; the tiny modulo bias is irrelevant for testing.
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }
}

/// A value generator: proptest's core abstraction, minus shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy from a plain closure; what [`prop_compose!`] expands to.
pub struct FnStrategy<F>(pub F);

impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A compiled string pattern: a sequence of character classes with
/// repetition counts, parsed from the small regex subset the workspace's
/// tests use (literals, `\`-escapes, `[a-z...]` classes, and the
/// quantifiers `{m}`, `{m,n}`, `?`, `*`, `+`).
#[derive(Debug, Clone)]
pub struct StringStrategy {
    parts: Vec<StringPart>,
}

#[derive(Debug, Clone)]
struct StringPart {
    /// Inclusive character ranges to draw from, uniformly by code point.
    choices: Vec<(char, char)>,
    min: usize,
    max: usize,
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}

impl StringStrategy {
    /// Compiles `pattern`, panicking on syntax outside the supported
    /// subset (this is test infrastructure; loud failure beats guessing).
    pub fn compile(pattern: &str) -> Self {
        let mut chars = pattern.chars().peekable();
        let mut parts = Vec::new();
        while let Some(c) = chars.next() {
            let choices =
                match c {
                    '[' => {
                        let mut choices = Vec::new();
                        loop {
                            let lo =
                                match chars.next() {
                                    None => panic!("unterminated character class in {pattern:?}"),
                                    Some(']') => break,
                                    Some('\\') => unescape(chars.next().unwrap_or_else(|| {
                                        panic!("dangling escape in {pattern:?}")
                                    })),
                                    Some(other) => other,
                                };
                            if chars.peek() == Some(&'-') {
                                chars.next();
                                let hi = match chars.next() {
                                    None | Some(']') => {
                                        panic!("unterminated range in class in {pattern:?}")
                                    }
                                    Some('\\') => unescape(chars.next().unwrap_or_else(|| {
                                        panic!("dangling escape in {pattern:?}")
                                    })),
                                    Some(other) => other,
                                };
                                assert!(lo <= hi, "inverted range {lo:?}-{hi:?} in {pattern:?}");
                                choices.push((lo, hi));
                            } else {
                                choices.push((lo, lo));
                            }
                        }
                        assert!(!choices.is_empty(), "empty character class in {pattern:?}");
                        choices
                    }
                    '\\' => {
                        let lit = unescape(
                            chars
                                .next()
                                .unwrap_or_else(|| panic!("dangling escape in {pattern:?}")),
                        );
                        vec![(lit, lit)]
                    }
                    lit => vec![(lit, lit)],
                };
            let (min, max) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let digits: String = chars.by_ref().take_while(|&d| d != '}').collect();
                    let (lo, hi) = match digits.split_once(',') {
                        None => (digits.as_str(), digits.as_str()),
                        Some((lo, hi)) => (lo, hi),
                    };
                    let lo: usize = lo
                        .trim()
                        .parse()
                        .unwrap_or_else(|_| panic!("bad repeat count in {pattern:?}"));
                    let hi: usize = if hi.trim().is_empty() {
                        lo + 8
                    } else {
                        hi.trim()
                            .parse()
                            .unwrap_or_else(|_| panic!("bad repeat count in {pattern:?}"))
                    };
                    assert!(lo <= hi, "inverted repeat {lo}..{hi} in {pattern:?}");
                    (lo, hi)
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                _ => (1, 1),
            };
            parts.push(StringPart { choices, min, max });
        }
        StringStrategy { parts }
    }
}

impl Strategy for StringStrategy {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for part in &self.parts {
            let reps = part.min + rng.next_below((part.max - part.min) as u64 + 1) as usize;
            let total: u64 = part
                .choices
                .iter()
                .map(|&(lo, hi)| hi as u64 - lo as u64 + 1)
                .sum();
            for _ in 0..reps {
                let mut k = rng.next_below(total);
                for &(lo, hi) in &part.choices {
                    let span = hi as u64 - lo as u64 + 1;
                    if k < span {
                        // Ranges spanning the surrogate gap fall back to the
                        // range start; the workspace's patterns are ASCII.
                        out.push(char::from_u32(lo as u32 + k as u32).unwrap_or(lo));
                        break;
                    }
                    k -= span;
                }
            }
        }
        out
    }
}

/// Proptest treats a `&str` as a regex generating matching strings; this
/// shim compiles the subset described on [`StringStrategy`].
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        StringStrategy::compile(self).generate(rng)
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.end > self.start, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.next_below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// Collection strategies (just `vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// A fixed size or a size range for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.end > r.start, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    /// Strategy for `Vec`s whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.next_below(span + 1) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Why a generated case failed (carried by `prop_assert!` early returns).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-test configuration (only the case count is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the numerically heavy
        // FEA/solver property tests fast. PROPTEST_CASES still overrides.
        ProptestConfig { cases: 64 }
    }
}

/// Resolves the case count: `PROPTEST_CASES` env var wins over the config.
pub fn resolve_cases(config: &ProptestConfig) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(config.cases)
}

/// Defines property tests: each argument is drawn from its strategy for
/// every generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let cases = $crate::resolve_cases(&config);
                let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..cases {
                    let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!("property `{}` failed at case {case}/{cases}: {e}", stringify!($name));
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

/// Asserts within a property test; failure aborts the case with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {{
        let holds: bool = $cond;
        if !holds {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    }};
}

/// Asserts equality within a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{} == {}` ({a:?} vs {b:?})",
            stringify!($a),
            stringify!($b)
        );
    }};
}

/// Asserts inequality within a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: `{} != {}` (both {a:?})",
            stringify!($a),
            stringify!($b)
        );
    }};
}

/// Builds a named strategy function out of simpler strategies.
#[macro_export]
macro_rules! prop_compose {
    (fn $name:ident($($param:ident: $pty:ty),* $(,)?)
        ($($arg:pat in $strat:expr),* $(,)?)
        -> $ret:ty $body:block) => {
        fn $name($($param: $pty),*) -> impl $crate::Strategy<Value = $ret> {
            $crate::FnStrategy(move |rng: &mut $crate::TestRng| {
                $(let $arg = $crate::Strategy::generate(&($strat), rng);)*
                $body
            })
        }
    };
}

/// Everything the workspace's tests import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, proptest, FnStrategy, Just,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..1000 {
            let f = Strategy::generate(&(-2.0f64..3.0), &mut rng);
            assert!((-2.0..3.0).contains(&f));
            let u = Strategy::generate(&(5u32..9), &mut rng);
            assert!((5..9).contains(&u));
            let i = Strategy::generate(&(-4i32..4), &mut rng);
            assert!((-4..4).contains(&i));
        }
    }

    #[test]
    fn vec_and_tuple_strategies_compose() {
        let mut rng = TestRng::from_name("vec");
        let s = collection::vec((0u32..4, -1.0f64..1.0), 2..7);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v.len() >= 2 && v.len() <= 6);
            for (a, b) in v {
                assert!(a < 4);
                assert!((-1.0..1.0).contains(&b));
            }
        }
        let fixed = collection::vec(0.0f64..1.0, 5usize);
        assert_eq!(fixed.generate(&mut rng).len(), 5);
    }

    #[test]
    fn string_patterns_generate_matching_text() {
        let mut rng = TestRng::from_name("strings");
        for _ in 0..200 {
            let s = Strategy::generate(&"[ -~\n]{0,200}", &mut rng);
            assert!(s.chars().count() <= 200);
            assert!(s.chars().all(|c| (' '..='~').contains(&c) || c == '\n'));

            let t = Strategy::generate(&"[a-c]{2,4}", &mut rng);
            assert!((2..=4).contains(&t.len()));
            assert!(t.chars().all(|c| ('a'..='c').contains(&c)));

            let u = Strategy::generate(&"x[0-9]+v?", &mut rng);
            assert!(u.starts_with('x'));
        }
        assert_eq!(Strategy::generate(&"abc\\n", &mut rng), "abc\n");
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = TestRng::from_name("map");
        let s = (1.0f64..2.0).prop_map(|x| x * 10.0);
        let v = s.generate(&mut rng);
        assert!((10.0..20.0).contains(&v));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_round_trip(x in 0.0f64..1.0, n in 1usize..10) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert_eq!(n, n);
            prop_assert_ne!(n, n + 1);
        }
    }

    prop_compose! {
        fn pairs(limit: u32)(v in collection::vec(0u32..10, 1..5), scale in 1u32..4) -> Vec<u32> {
            v.into_iter().map(|x| (x * scale).min(limit)).collect()
        }
    }

    proptest! {
        #[test]
        fn composed_strategy_respects_limit(v in pairs(12)) {
            prop_assert!(!v.is_empty());
            prop_assert!(v.iter().all(|&x| x <= 12));
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_reports_case() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            #[allow(dead_code)]
            fn always_fails(x in 0.0f64..1.0) {
                prop_assert!(x < 0.0, "x was {x}");
            }
        }
        always_fails();
    }
}
