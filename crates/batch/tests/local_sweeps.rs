//! Conformance suite for the sweep engine over the in-process backend:
//! report byte-stability across worker counts and in-flight windows,
//! partial-failure aggregation, and shutdown-mid-sweep resume.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use emgrid_batch::backend::{JobBackend, JobPoll, SubmitRejected};
use emgrid_batch::{LocalBackend, SubmissionState, SweepEngine};
use emgrid_runtime::JobId;
use emgrid_serve::{JobBody, JobSpec};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "emgrid-batch-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

const SMALL_SWEEP: &str = r#"{
    "name": "conformance",
    "job": {"kind": "characterize", "trials": 64, "threads": 1, "criterion": "rinf"},
    "axes": {
        "array": ["1x1", "4x4"],
        "pattern": ["plus", "ell"]
    }
}"#;

/// Runs `spec_text` to completion on a fresh backend and returns the
/// report bytes.
fn run_sweep(tag: &str, spec_text: &str, workers: usize, max_in_flight: usize) -> Vec<u8> {
    let root = temp_dir(tag);
    let backend = LocalBackend::open(root.join("jobs"), workers, 16).unwrap();
    let engine = SweepEngine::new(
        Arc::new(backend),
        root.join("jobs").join("sweeps"),
        max_in_flight,
    )
    .unwrap();
    let submission = engine.submit_text(spec_text).unwrap();
    assert_eq!(submission.state, SubmissionState::Started);
    engine.wait_idle();
    let report = engine
        .report_bytes(&submission.sweep)
        .expect("sweep finished without a report");
    let _ = std::fs::remove_dir_all(&root);
    report
}

#[test]
fn report_is_worker_count_and_in_flight_invariant() {
    let serial = run_sweep("serial", SMALL_SWEEP, 1, 1);
    let parallel = run_sweep("parallel", SMALL_SWEEP, 3, 8);
    assert_eq!(
        serial, parallel,
        "worker count or queue order leaked into the report"
    );
    let text = String::from_utf8(serial).unwrap();
    assert!(text.contains("\"kind\":\"sweep_report\""), "{text}");
    assert!(text.contains("\"jobs_total\":4"), "{text}");
    assert!(text.contains("\"jobs_done\":4"), "{text}");
    // Rows are addressed by derived keys, never numeric job ids.
    assert!(
        text.contains("\"key\":\"array=1x1,pattern=plus\""),
        "{text}"
    );
    // The pattern axis produces the comparison table view.
    assert!(text.contains("\"pattern_comparison\""), "{text}");
}

#[test]
fn resubmitting_a_completed_sweep_is_idempotent() {
    let root = temp_dir("idem");
    let backend = LocalBackend::open(root.join("jobs"), 2, 16).unwrap();
    let engine = SweepEngine::new(Arc::new(backend), root.join("jobs").join("sweeps"), 4).unwrap();
    let first = engine.submit_text(SMALL_SWEEP).unwrap();
    engine.wait_idle();
    let report = engine.report_bytes(&first.sweep).unwrap();
    let again = engine.submit_text(SMALL_SWEEP).unwrap();
    assert_eq!(again.state, SubmissionState::Complete);
    assert_eq!(again.sweep, first.sweep, "sweep id is content-derived");
    assert_eq!(engine.report_bytes(&first.sweep).unwrap(), report);
    let _ = std::fs::remove_dir_all(&root);
}

/// Delegates to [`LocalBackend`] but sabotages jobs whose spec carries a
/// marker seed: the spec is persisted and an error artifact written, as
/// if a worker had failed the job.
#[derive(Clone)]
struct Sabotage {
    inner: LocalBackend,
    marker_seed: u64,
}

impl Sabotage {
    fn sabotaged(&self, spec: &JobSpec) -> bool {
        matches!(&spec.body, JobBody::Characterize(mc) if mc.seed == self.marker_seed)
    }
}

impl JobBackend for Sabotage {
    fn allocate_id(&self) -> JobId {
        self.inner.allocate_id()
    }
    fn reserve_above(&self, floor: JobId) {
        self.inner.reserve_above(floor);
    }
    fn submit(&self, id: JobId, spec: &JobSpec) -> Result<(), SubmitRejected> {
        if self.sabotaged(spec) {
            self.inner
                .store()
                .write_spec(id, &spec.to_json())
                .map_err(|e| SubmitRejected::Persist(e.to_string()))?;
            let _ = self
                .inner
                .store()
                .write_error(id, "injected worker failure");
            return Ok(());
        }
        self.inner.submit(id, spec)
    }
    fn resubmit(&self, id: JobId, spec: JobSpec) -> Result<(), SubmitRejected> {
        if self.sabotaged(&spec) {
            let _ = self
                .inner
                .store()
                .write_error(id, "injected worker failure");
            return Ok(());
        }
        self.inner.resubmit(id, spec)
    }
    fn poll(&self, id: JobId) -> JobPoll {
        self.inner.poll(id)
    }
    fn read_result(&self, id: JobId) -> Option<Vec<u8>> {
        self.inner.read_result(id)
    }
    fn mark_sweep(&self, id: JobId, sweep: &str) {
        self.inner.mark_sweep(id, sweep);
    }
    fn shutting_down(&self) -> bool {
        self.inner.shutting_down()
    }
}

#[test]
fn a_failed_job_is_listed_in_the_report_not_dropped() {
    let root = temp_dir("partial");
    let backend = Sabotage {
        inner: LocalBackend::open(root.join("jobs"), 2, 16).unwrap(),
        marker_seed: 999,
    };
    let engine = SweepEngine::new(Arc::new(backend), root.join("jobs").join("sweeps"), 4).unwrap();
    let submission = engine
        .submit_text(
            r#"{
            "name": "partial-failure",
            "job": {"kind": "characterize", "trials": 48, "threads": 1},
            "axes": {"seed": [1, 999, 3]}
        }"#,
        )
        .unwrap();
    engine.wait_idle();
    let report = String::from_utf8(engine.report_bytes(&submission.sweep).unwrap()).unwrap();
    assert!(report.contains("\"jobs_total\":3"), "{report}");
    assert!(report.contains("\"jobs_done\":2"), "{report}");
    assert!(report.contains("\"jobs_failed\":1"), "{report}");
    // The failed entry is present, attributed, and carries its message.
    assert!(report.contains("\"key\":\"seed=999\""), "{report}");
    assert!(report.contains("injected worker failure"), "{report}");
    // The healthy entries still carry full result documents.
    assert!(report.contains("\"ttf_median_years\""), "{report}");
    let status = engine.status(&submission.sweep).unwrap();
    assert_eq!((status.done, status.failed, status.total), (2, 1, 3));
    let _ = std::fs::remove_dir_all(&root);
}

/// Shutdown mid-sweep, then resume on fresh backend + engine instances
/// over the same state directories: the final report must be
/// byte-identical to an uninterrupted control run.
#[test]
fn shutdown_mid_sweep_resumes_to_an_identical_report() {
    let spec_text = r#"{
        "name": "resume",
        "job": {"kind": "characterize", "trials": 1200, "threads": 1, "array": "1x1"},
        "axes": {
            "pattern": ["plus", "tee"],
            "seed": [5, 6]
        }
    }"#;
    let control = run_sweep("resume-control", spec_text, 1, 1);

    let root = temp_dir("resume-victim");
    let jobs_dir = root.join("jobs");
    let sweeps_dir = jobs_dir.join("sweeps");
    let sweep = {
        let backend = LocalBackend::open(&jobs_dir, 1, 16).unwrap();
        let engine = SweepEngine::new(Arc::new(backend.clone()), &sweeps_dir, 1).unwrap();
        let submission = engine.submit_text(spec_text).unwrap();
        assert_eq!(submission.state, SubmissionState::Started);
        // Let the sweep make real progress (at least one settled job),
        // then interrupt it the way a daemon shutdown would.
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            let status = engine.status(&submission.sweep).unwrap();
            if status.done >= 1 {
                break;
            }
            assert!(Instant::now() < deadline, "sweep made no progress");
            std::thread::sleep(Duration::from_millis(10));
        }
        backend.shutdown_now();
        engine.wait_idle();
        // Interrupted, not completed: no report yet.
        assert!(engine.report_bytes(&submission.sweep).is_none());
        submission.sweep
    };

    // "Restart": fresh backend (requeues unfinished jobs from disk) and
    // a fresh engine that resumes every report-less sweep.
    let backend = LocalBackend::open(&jobs_dir, 1, 16).unwrap();
    let engine = SweepEngine::new(Arc::new(backend), &sweeps_dir, 1).unwrap();
    assert_eq!(engine.resume_all(), 1);
    engine.wait_idle();
    let resumed = engine
        .report_bytes(&sweep)
        .expect("resumed sweep wrote no report");
    assert_eq!(
        resumed, control,
        "resumed report diverged from the uninterrupted control"
    );
    let _ = std::fs::remove_dir_all(&root);
}
