//! The sweep API end-to-end through a real in-process daemon: the
//! `/v1/sweeps` route hook, structured 400s for bad axis values, the
//! sweep back-reference in job status docs, and idempotent resubmission.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use emgrid_batch::SweepEngine;
use emgrid_serve::{ServeConfig, Server};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "emgrid-daemon-sweeps-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One HTTP/1.1 request over a raw socket; returns (status, body).
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    let text = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(text.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = response
        .split("\r\n\r\n")
        .nth(1)
        .unwrap_or_default()
        .to_owned();
    (status, body)
}

/// Extracts `"field":"value"` from a JSON body (enough for these tests).
fn str_field(body: &str, field: &str) -> Option<String> {
    let marker = format!("\"{field}\":\"");
    let start = body.find(&marker)? + marker.len();
    let end = body[start..].find('"')?;
    Some(body[start..start + end].to_owned())
}

/// Starts a daemon with the sweep engine mounted, exactly as `cmd_serve`
/// wires it.
fn start_daemon(state_dir: &Path) -> (Server, Arc<SweepEngine>, SocketAddr) {
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        checkpoint_every: 16,
        state_dir: state_dir.to_path_buf(),
        ..ServeConfig::default()
    })
    .unwrap();
    let engine =
        SweepEngine::new(Arc::new(server.jobs_api()), state_dir.join("sweeps"), 4).unwrap();
    let hook_engine = Arc::clone(&engine);
    server.set_route_hook(Arc::new(move |req| {
        emgrid_batch::http::route(req, &hook_engine)
    }));
    engine.resume_all();
    let addr = server.local_addr();
    (server, engine, addr)
}

const SWEEP: &str = r#"{
    "name": "daemon-e2e",
    "job": {"kind": "characterize", "trials": 48, "threads": 1},
    "axes": {"array": ["1x1", "4x4"], "seed": [1, 2]}
}"#;

#[test]
fn sweeps_run_end_to_end_through_the_daemon() {
    let state_dir = temp_dir("e2e");
    let (server, engine, addr) = start_daemon(&state_dir);

    // Submit: 202 with the content-derived id.
    let (status, body) = request(addr, "POST", "/v1/sweeps", SWEEP);
    assert_eq!(status, 202, "{body}");
    let sweep = str_field(&body, "sweep").unwrap();
    assert_eq!(sweep.len(), 16, "{body}");
    assert!(body.contains("\"jobs\":4"), "{body}");

    // Progress surfaces through GET /v1/sweeps/:id until done.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, body) = request(addr, "GET", &format!("/v1/sweeps/{sweep}"), "");
        assert_eq!(status, 200, "{body}");
        if str_field(&body, "status").as_deref() == Some("done") {
            break;
        }
        assert!(Instant::now() < deadline, "sweep never finished: {body}");
        std::thread::sleep(Duration::from_millis(25));
    }

    // The report is served byte-for-byte from disk.
    let (status, report) = request(addr, "GET", &format!("/v1/sweeps/{sweep}/report"), "");
    assert_eq!(status, 200);
    assert!(report.contains("\"kind\":\"sweep_report\""), "{report}");
    assert!(report.contains("\"jobs_done\":4"), "{report}");
    assert_eq!(
        report.as_bytes(),
        engine.report_bytes(&sweep).unwrap().as_slice()
    );

    // Regression (sweep back-reference): a sweep-owned job's status doc
    // names its sweep so clients can navigate back.
    let (status, body) = request(addr, "GET", "/v1/jobs/1", "");
    assert_eq!(status, 200, "{body}");
    assert_eq!(
        str_field(&body, "sweep").as_deref(),
        Some(sweep.as_str()),
        "{body}"
    );

    // The list endpoint shows it, and resubmission is idempotent (200,
    // same id, nothing re-runs).
    let (status, body) = request(addr, "GET", "/v1/sweeps", "");
    assert_eq!(status, 200);
    assert!(body.contains(&sweep), "{body}");
    let (status, body) = request(addr, "POST", "/v1/sweeps", SWEEP);
    assert_eq!(status, 200, "{body}");
    assert_eq!(
        str_field(&body, "status").as_deref(),
        Some("done"),
        "{body}"
    );
    assert_eq!(str_field(&body, "sweep").as_deref(), Some(sweep.as_str()));

    // Sweep metrics flow into the Prometheus exposition.
    let (status, metrics) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(
        metrics.contains("emgrid_sweeps_submitted_total"),
        "{metrics}"
    );
    assert!(
        metrics.contains("emgrid_sweeps_completed_total"),
        "{metrics}"
    );
    assert!(
        metrics.contains("emgrid_sweep_jobs_done_total"),
        "{metrics}"
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(&state_dir);
}

#[test]
fn bad_axis_values_produce_attributed_400s() {
    let state_dir = temp_dir("bad-axis");
    let (server, _engine, addr) = start_daemon(&state_dir);

    // A bad value inside an axis names the axis and index…
    let (status, body) = request(
        addr,
        "POST",
        "/v1/sweeps",
        r#"{
            "name": "bad",
            "job": {"kind": "characterize", "trials": 16},
            "axes": {"array": ["1x1", "9x9"]}
        }"#,
    );
    assert_eq!(status, 400, "{body}");
    assert_eq!(
        str_field(&body, "field").as_deref(),
        Some("axes.array[1]"),
        "{body}"
    );
    assert!(body.contains("9x9"), "{body}");

    // …a structural failure names the sweep-level field…
    let (status, body) = request(
        addr,
        "POST",
        "/v1/sweeps",
        r#"{"name": "bad", "job": {"kind": "characterize"}, "axes": {}}"#,
    );
    assert_eq!(status, 400);
    assert_eq!(str_field(&body, "field").as_deref(), Some("axes"), "{body}");

    // …no sweep state is persisted for rejected specs…
    let (status, body) = request(addr, "GET", "/v1/sweeps", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"sweeps\":[]"), "{body}");

    // …and non-sweep unknown routes still fall through to the 404.
    let (status, _) = request(addr, "GET", "/v1/nonsense", "");
    assert_eq!(status, 404);
    // Wrong method under /v1/sweeps is a 405, not a 404.
    let (status, _) = request(addr, "DELETE", "/v1/sweeps/abc", "");
    assert_eq!(status, 405);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&state_dir);
}
