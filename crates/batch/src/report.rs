//! Folding finished sweep jobs into one byte-stable report document.
//!
//! The report is assembled in **manifest order** from on-disk result
//! documents, and every row is addressed by the expansion's derived key —
//! never by runtime job ids — so the bytes depend only on the sweep spec
//! and the (deterministic) per-job results. Worker count, queue order,
//! and any number of `kill -9` + resume cycles leave it unchanged.
//!
//! Beyond the raw `entries`, two derived views reproduce the paper's
//! figure families when the sweep has the axes for them:
//!
//! * `curves.ttf_vs_current_density` (Fig. 8) — per combination of the
//!   remaining axes, TTF statistics against the `current_density` axis;
//! * `tables.pattern_comparison` (Figs. 9–10) — per combination of the
//!   remaining axes, the Plus/T/L (`pattern` axis) statistics side by
//!   side.

use emgrid_scenarios::{SweepJob, SweepSpec};
use emgrid_serve::json::{self, Json};

use crate::backend::{JobBackend, JobPoll};
use crate::manifest::{EntryState, Manifest};

/// Result-doc fields lifted into curve points and table cells.
const SUMMARY_FIELDS: [&str; 3] = ["ttf_median_years", "ttf_p03_years", "lognormal_sigma"];

/// Builds the aggregated report for a fully settled manifest.
pub(crate) fn aggregate(
    spec: &SweepSpec,
    jobs: &[SweepJob],
    manifest: &Manifest,
    backend: &dyn JobBackend,
) -> Json {
    let (done, failed, cancelled, total) = manifest.counts();
    let mut entries = Vec::with_capacity(jobs.len());
    // (job, parsed result doc) for the derived views, in manifest order.
    let mut results: Vec<(&SweepJob, Json)> = Vec::with_capacity(done);

    for (entry, job) in manifest.entries.iter().zip(jobs) {
        let axes = Json::Obj(
            job.axis_values
                .iter()
                .map(|(axis, value)| (axis.clone(), value.clone()))
                .collect(),
        );
        let mut pairs = vec![("key".to_owned(), Json::s(&job.key)), ("axes".into(), axes)];
        match entry.state {
            EntryState::Done => {
                let doc = entry
                    .job
                    .and_then(|id| backend.read_result(id))
                    .and_then(|bytes| String::from_utf8(bytes).ok())
                    .and_then(|text| json::parse(&text).ok());
                match doc {
                    Some(doc) => {
                        pairs.push(("status".into(), Json::s("done")));
                        results.push((job, doc.clone()));
                        pairs.push(("result".into(), doc));
                    }
                    None => {
                        pairs.push(("status".into(), Json::s("failed")));
                        pairs.push(("error".into(), Json::s("result unreadable")));
                    }
                }
            }
            EntryState::Failed => {
                let message = match entry.job.map(|id| backend.poll(id)) {
                    Some(JobPoll::Failed(message)) => message,
                    _ => "failed".to_owned(),
                };
                pairs.push(("status".into(), Json::s("failed")));
                pairs.push(("error".into(), Json::s(message)));
            }
            EntryState::Cancelled => {
                pairs.push(("status".into(), Json::s("cancelled")));
            }
            // Aggregation runs only on settled manifests; an unsettled
            // entry would mean the dispatcher broke its own contract.
            EntryState::Pending | EntryState::Submitted => {
                pairs.push(("status".into(), Json::s("unsettled")));
            }
        }
        entries.push(Json::Obj(pairs));
    }

    let mut doc = vec![
        ("kind".to_owned(), Json::s("sweep_report")),
        ("sweep".into(), Json::s(&manifest.sweep)),
        ("name".into(), Json::s(&manifest.name)),
        ("jobs_total".into(), Json::n(total as f64)),
        ("jobs_done".into(), Json::n(done as f64)),
        ("jobs_failed".into(), Json::n(failed as f64)),
        ("jobs_cancelled".into(), Json::n(cancelled as f64)),
        (
            "axes".into(),
            Json::Obj(
                spec.axes()
                    .iter()
                    .map(|(axis, values)| (axis.clone(), Json::Arr(values.clone())))
                    .collect(),
            ),
        ),
        ("entries".into(), Json::Arr(entries)),
    ];

    let has_axis = |name: &str| spec.axes().iter().any(|(axis, _)| axis == name);
    if has_axis("current_density") {
        doc.push((
            "curves".into(),
            Json::Obj(vec![(
                "ttf_vs_current_density".into(),
                grouped_view(&results, "current_density", false, |job, result| {
                    let mut point = vec![(
                        "current_density".to_owned(),
                        axis_value(job, "current_density"),
                    )];
                    point.extend(summary_fields(result));
                    Json::Obj(point)
                }),
            )]),
        ));
    }
    if has_axis("pattern") {
        doc.push((
            "tables".into(),
            Json::Obj(vec![(
                "pattern_comparison".into(),
                grouped_view(&results, "pattern", true, |job, result| {
                    Json::Obj(vec![(
                        axis_value(job, "pattern")
                            .as_str()
                            .unwrap_or_default()
                            .to_owned(),
                        Json::Obj(summary_fields(result)),
                    )])
                }),
            )]),
        ));
    }
    Json::Obj(doc)
}

/// The job's coordinate on one axis.
fn axis_value(job: &SweepJob, axis: &str) -> Json {
    job.axis_values
        .iter()
        .find(|(a, _)| a == axis)
        .map(|(_, v)| v.clone())
        .unwrap_or(Json::Null)
}

/// The TTF summary statistics present in one result document.
fn summary_fields(result: &Json) -> Vec<(String, Json)> {
    SUMMARY_FIELDS
        .iter()
        .filter_map(|field| result.get(field).map(|v| (field.to_string(), v.clone())))
        .collect()
}

/// Groups finished jobs by every axis except `varying` (first-seen order,
/// which manifest order makes deterministic) and renders each job through
/// `point`. With `merge` set (table view), each group's single-key row
/// objects merge into one object keyed by the varying axis; otherwise
/// (curve view) the rows stay a `points` array.
fn grouped_view(
    results: &[(&SweepJob, Json)],
    varying: &str,
    merge: bool,
    point: impl Fn(&SweepJob, &Json) -> Json,
) -> Json {
    let mut groups: Vec<(String, Vec<Json>)> = Vec::new();
    for (job, result) in results {
        let group: Vec<String> = job
            .axis_values
            .iter()
            .filter(|(axis, _)| axis != varying)
            .map(|(axis, value)| format!("{axis}={}", value_text(value)))
            .collect();
        let group = if group.is_empty() {
            "all".to_owned()
        } else {
            group.join(",")
        };
        let rendered = point(job, result);
        match groups.iter_mut().find(|(g, _)| *g == group) {
            Some((_, points)) => points.push(rendered),
            None => groups.push((group, vec![rendered])),
        }
    }
    Json::Arr(
        groups
            .into_iter()
            .map(|(group, points)| {
                let body = if merge {
                    let mut merged = Vec::with_capacity(points.len());
                    for p in points {
                        if let Json::Obj(pairs) = p {
                            merged.extend(pairs);
                        }
                    }
                    ("values".to_owned(), Json::Obj(merged))
                } else {
                    ("points".to_owned(), Json::Arr(points))
                };
                Json::Obj(vec![("group".into(), Json::s(group)), body])
            })
            .collect(),
    )
}

/// The deterministic text of an axis value inside a group key.
fn value_text(value: &Json) -> String {
    match value {
        Json::Str(s) => s.clone(),
        other => other.to_string(),
    }
}
