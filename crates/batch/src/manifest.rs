//! The on-disk sweep manifest: the crash-safe record of which expanded
//! job holds which engine id and how far it has progressed.
//!
//! Each sweep owns `<sweeps_root>/<sweep-id>/` containing:
//!
//! | file            | meaning                                           |
//! |-----------------|---------------------------------------------------|
//! | `spec.json`     | the canonical sweep spec text                     |
//! | `manifest.json` | entry states and job-id bindings (this module)    |
//! | `report.json`   | the final aggregated report, byte-stable          |
//!
//! Every write uses the same atomic tmp-file + rename discipline as the
//! job store, so a `kill -9` at any instant leaves either the previous
//! complete manifest or the new complete manifest — never a torn one.
//!
//! # Entry state machine
//!
//! ```text
//! pending ──(id bound, persisted)──▶ submitted ──▶ done
//!                                        │    └──▶ failed
//!                                        └───────▶ cancelled
//! ```
//!
//! The binding write happens *before* the job is handed to the engine:
//! a crash between the two leaves a bound entry whose job is missing,
//! and the resume pass simply submits the persisted spec under the
//! already-bound id. The reverse order would orphan a running job and
//! double-submit its work under a fresh id.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use emgrid_runtime::JobId;
use emgrid_serve::json::{self, Json};

/// Manifest format version, bumped on layout changes.
const MANIFEST_VERSION: f64 = 1.0;

/// Monotonic tmp-file disambiguator.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Where one sweep entry stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryState {
    /// No job id bound yet.
    Pending,
    /// An id is bound and the job has been (or is about to be) queued.
    Submitted,
    /// The job's result document is on disk.
    Done,
    /// The job failed; the message lives in the job store.
    Failed,
    /// A client cancelled the job; the sweep records, not retries, it.
    Cancelled,
}

impl EntryState {
    /// The manifest wire label.
    pub fn label(self) -> &'static str {
        match self {
            EntryState::Pending => "pending",
            EntryState::Submitted => "submitted",
            EntryState::Done => "done",
            EntryState::Failed => "failed",
            EntryState::Cancelled => "cancelled",
        }
    }

    fn from_label(label: &str) -> Option<EntryState> {
        Some(match label {
            "pending" => EntryState::Pending,
            "submitted" => EntryState::Submitted,
            "done" => EntryState::Done,
            "failed" => EntryState::Failed,
            "cancelled" => EntryState::Cancelled,
            _ => return None,
        })
    }

    /// Whether this entry needs no further scheduling.
    pub fn is_settled(self) -> bool {
        matches!(
            self,
            EntryState::Done | EntryState::Failed | EntryState::Cancelled
        )
    }
}

/// One expanded job's progress record.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// The stable derived key from the scenario expansion.
    pub key: String,
    /// The engine job id, once bound.
    pub job: Option<JobId>,
    /// Where the entry stands.
    pub state: EntryState,
}

/// The progress record of one sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// The content-derived sweep id.
    pub sweep: String,
    /// The sweep's display name.
    pub name: String,
    /// One entry per expanded job, in expansion order.
    pub entries: Vec<Entry>,
}

impl Manifest {
    /// A fresh manifest with every entry pending.
    pub fn new(sweep: &str, name: &str, keys: &[String]) -> Manifest {
        Manifest {
            sweep: sweep.to_owned(),
            name: name.to_owned(),
            entries: keys
                .iter()
                .map(|key| Entry {
                    key: key.clone(),
                    job: None,
                    state: EntryState::Pending,
                })
                .collect(),
        }
    }

    /// Whether this manifest covers exactly `keys` in order — the guard
    /// against a manifest written by a different expansion.
    pub fn matches(&self, keys: &[String]) -> bool {
        self.entries.len() == keys.len() && self.entries.iter().zip(keys).all(|(e, k)| &e.key == k)
    }

    /// Settled/total progress counts: `(done, failed, cancelled, total)`.
    pub fn counts(&self) -> (usize, usize, usize, usize) {
        let mut done = 0;
        let mut failed = 0;
        let mut cancelled = 0;
        for entry in &self.entries {
            match entry.state {
                EntryState::Done => done += 1,
                EntryState::Failed => failed += 1,
                EntryState::Cancelled => cancelled += 1,
                EntryState::Pending | EntryState::Submitted => {}
            }
        }
        (done, failed, cancelled, self.entries.len())
    }

    /// The highest bound job id, for reserving the daemon's id counter
    /// above everything a resumed sweep already owns.
    pub fn max_job_id(&self) -> Option<JobId> {
        self.entries.iter().filter_map(|e| e.job).max()
    }

    /// The serialized form.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("version".into(), Json::n(MANIFEST_VERSION)),
            ("sweep".into(), Json::s(&self.sweep)),
            ("name".into(), Json::s(&self.name)),
            (
                "entries".into(),
                Json::Arr(
                    self.entries
                        .iter()
                        .map(|entry| {
                            let mut pairs = vec![("key".to_owned(), Json::s(&entry.key))];
                            if let Some(job) = entry.job {
                                pairs.push(("job".into(), Json::n(job as f64)));
                            }
                            pairs.push(("state".into(), Json::s(entry.state.label())));
                            Json::Obj(pairs)
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a persisted manifest; `None` on any structural mismatch
    /// (the caller falls back to rebuilding from the expansion).
    pub fn from_json(doc: &Json) -> Option<Manifest> {
        if doc.get("version")?.as_f64()? != MANIFEST_VERSION {
            return None;
        }
        let sweep = doc.get("sweep")?.as_str()?.to_owned();
        let name = doc.get("name")?.as_str()?.to_owned();
        let Json::Arr(rows) = doc.get("entries")? else {
            return None;
        };
        let mut entries = Vec::with_capacity(rows.len());
        for row in rows {
            entries.push(Entry {
                key: row.get("key")?.as_str()?.to_owned(),
                job: match row.get("job") {
                    Some(v) => Some(v.as_u64()?),
                    None => None,
                },
                state: EntryState::from_label(row.get("state")?.as_str()?)?,
            });
        }
        Some(Manifest {
            sweep,
            name,
            entries,
        })
    }
}

/// Filesystem root for sweep state (`<root>/<sweep-id>/…`).
#[derive(Debug, Clone)]
pub struct SweepStore {
    root: PathBuf,
}

impl SweepStore {
    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Propagates the `create_dir_all` failure.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<SweepStore> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(SweepStore { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The directory owned by one sweep.
    pub fn dir(&self, sweep: &str) -> PathBuf {
        self.root.join(sweep)
    }

    fn write_atomic(&self, sweep: &str, file: &str, bytes: &[u8]) -> io::Result<()> {
        let dir = self.dir(sweep);
        fs::create_dir_all(&dir)?;
        let tmp = dir.join(format!(
            ".{file}.{}.{}.tmp",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::write(&tmp, bytes)?;
        fs::rename(&tmp, dir.join(file))
    }

    /// Persists the canonical sweep spec text.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn write_spec(&self, sweep: &str, canonical: &str) -> io::Result<()> {
        self.write_atomic(sweep, "spec.json", canonical.as_bytes())
    }

    /// Reads the canonical sweep spec text.
    pub fn read_spec(&self, sweep: &str) -> Option<String> {
        fs::read_to_string(self.dir(sweep).join("spec.json")).ok()
    }

    /// Persists the manifest atomically.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn write_manifest(&self, manifest: &Manifest) -> io::Result<()> {
        self.write_atomic(
            &manifest.sweep,
            "manifest.json",
            manifest.to_json().to_string().as_bytes(),
        )
    }

    /// Reads and parses the manifest, `None` if absent or unreadable.
    pub fn read_manifest(&self, sweep: &str) -> Option<Manifest> {
        let text = fs::read_to_string(self.dir(sweep).join("manifest.json")).ok()?;
        Manifest::from_json(&json::parse(&text).ok()?)
    }

    /// Persists the final aggregated report.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn write_report(&self, sweep: &str, bytes: &[u8]) -> io::Result<()> {
        self.write_atomic(sweep, "report.json", bytes)
    }

    /// Reads the final report verbatim.
    pub fn read_report(&self, sweep: &str) -> Option<Vec<u8>> {
        fs::read(self.dir(sweep).join("report.json")).ok()
    }

    /// The path the report lives at (for CLI output).
    pub fn report_path(&self, sweep: &str) -> PathBuf {
        self.dir(sweep).join("report.json")
    }

    /// Every sweep id with a persisted spec, sorted for determinism.
    pub fn list(&self) -> Vec<String> {
        let Ok(entries) = fs::read_dir(&self.root) else {
            return Vec::new();
        };
        let mut ids: Vec<String> = entries
            .flatten()
            .filter_map(|e| e.file_name().to_str().map(str::to_owned))
            .filter(|id| self.dir(id).join("spec.json").is_file())
            .collect();
        ids.sort_unstable();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> SweepStore {
        let root = std::env::temp_dir().join(format!(
            "emgrid-sweepstore-{tag}-{}-{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&root);
        SweepStore::open(root).unwrap()
    }

    fn keys(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("axis=v{i}")).collect()
    }

    #[test]
    fn manifest_round_trips_through_json() {
        let mut manifest = Manifest::new("deadbeefdeadbeef", "fig8", &keys(3));
        manifest.entries[0].job = Some(7);
        manifest.entries[0].state = EntryState::Done;
        manifest.entries[1].job = Some(9);
        manifest.entries[1].state = EntryState::Submitted;
        let text = manifest.to_json().to_string();
        let again = Manifest::from_json(&json::parse(&text).unwrap()).unwrap();
        assert_eq!(manifest, again);
        assert_eq!(again.counts(), (1, 0, 0, 3));
        assert_eq!(again.max_job_id(), Some(9));
    }

    #[test]
    fn matches_guards_key_set_and_order() {
        let manifest = Manifest::new("s", "n", &keys(2));
        assert!(manifest.matches(&keys(2)));
        assert!(!manifest.matches(&keys(3)));
        let mut reversed = keys(2);
        reversed.reverse();
        assert!(!manifest.matches(&reversed));
    }

    #[test]
    fn store_round_trips_all_three_artifacts() {
        let store = temp_store("roundtrip");
        let manifest = Manifest::new("abc123", "demo", &keys(2));
        store.write_spec("abc123", "{\"name\":\"demo\"}").unwrap();
        store.write_manifest(&manifest).unwrap();
        store
            .write_report("abc123", b"{\"kind\":\"sweep_report\"}")
            .unwrap();
        assert_eq!(
            store.read_spec("abc123").as_deref(),
            Some("{\"name\":\"demo\"}")
        );
        assert_eq!(store.read_manifest("abc123"), Some(manifest));
        assert_eq!(
            store.read_report("abc123").as_deref(),
            Some(b"{\"kind\":\"sweep_report\"}".as_slice())
        );
        assert_eq!(store.list(), vec!["abc123".to_owned()]);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn unreadable_manifests_read_as_none_not_panic() {
        let store = temp_store("junk");
        fs::create_dir_all(store.dir("bad")).unwrap();
        fs::write(store.dir("bad").join("manifest.json"), b"{not json").unwrap();
        assert_eq!(store.read_manifest("bad"), None);
        // No spec.json → not listed.
        assert!(store.list().is_empty());
        let _ = fs::remove_dir_all(store.root());
    }
}
