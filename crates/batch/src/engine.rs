//! The sweep engine: one dispatcher thread per active sweep, driving its
//! manifest to settlement and folding the results into a report.
//!
//! # Resume protocol
//!
//! The dispatcher never trusts memory across restarts — disk is the only
//! record. On (re)start it re-expands the persisted spec, reconciles the
//! manifest against the job store through [`JobBackend::poll`], reserves
//! the id counter above every bound id, and keeps going. The ordering
//! discipline that makes this safe:
//!
//! 1. an entry's job-id binding is persisted in the manifest *before*
//!    the job is handed to the engine (a crash in between resumes as
//!    "bound but missing" and submits the same spec under the same id);
//! 2. workers persist results/errors *before* the engine observes
//!    terminal state (so a `done` poll always has bytes behind it);
//! 3. the report is written only after every entry settles, and jobs are
//!    addressed by derived keys, so the aggregated bytes cannot depend
//!    on scheduling history.
//!
//! A daemon shutdown surfaces as [`JobPoll::Interrupted`] (engine-level
//! cancel with no client marker) and aborts the dispatcher without a
//! report; genuine client cancels settle the entry as `cancelled` and
//! the sweep completes around it.

use std::collections::HashSet;
use std::io;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use emgrid_runtime::obs;
use emgrid_scenarios::{SweepJob, SweepSpec};
use emgrid_serve::SpecError;

use crate::backend::{JobBackend, JobPoll, SubmitRejected};
use crate::manifest::{EntryState, Manifest, SweepStore};
use crate::report::aggregate;

/// Dispatcher poll cadence while jobs are in flight.
const TICK: Duration = Duration::from_millis(25);

/// What became of a submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmissionState {
    /// A dispatcher was started for this sweep.
    Started,
    /// The sweep (same content-derived id) is already being dispatched.
    AlreadyRunning,
    /// The sweep already has a report; nothing ran.
    Complete,
}

/// The accepted form of one `POST /v1/sweeps` / `emgrid sweep` call.
#[derive(Debug, Clone)]
pub struct Submission {
    /// The content-derived sweep id.
    pub sweep: String,
    /// The sweep's display name.
    pub name: String,
    /// The expanded job count.
    pub jobs: usize,
    /// What the engine did with it.
    pub state: SubmissionState,
}

/// A disk-derived progress snapshot of one sweep.
#[derive(Debug, Clone)]
pub struct SweepStatus {
    /// The content-derived sweep id.
    pub sweep: String,
    /// The sweep's display name.
    pub name: String,
    /// Expanded job count.
    pub total: usize,
    /// Entries with a result on disk.
    pub done: usize,
    /// Entries that failed.
    pub failed: usize,
    /// Entries a client cancelled.
    pub cancelled: usize,
    /// Whether the final report exists.
    pub complete: bool,
    /// Whether a dispatcher thread is currently driving the sweep.
    pub active: bool,
}

/// The sweep engine: owns the sweep store and the dispatcher threads.
pub struct SweepEngine {
    backend: Arc<dyn JobBackend>,
    store: SweepStore,
    max_in_flight: usize,
    active: Mutex<HashSet<String>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

/// Removes the sweep from the active set however the dispatcher exits —
/// completion, abort, or panic.
struct ActiveGuard {
    engine: Arc<SweepEngine>,
    sweep: String,
}

impl Drop for ActiveGuard {
    fn drop(&mut self) {
        self.engine
            .active
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&self.sweep);
    }
}

impl SweepEngine {
    /// Opens (creating if needed) the sweep store under `sweeps_root`.
    /// `max_in_flight` bounds how many of one sweep's jobs are queued or
    /// running at once.
    ///
    /// # Errors
    ///
    /// Propagates sweep-store failures.
    pub fn new(
        backend: Arc<dyn JobBackend>,
        sweeps_root: impl Into<PathBuf>,
        max_in_flight: usize,
    ) -> io::Result<Arc<SweepEngine>> {
        Ok(Arc::new(SweepEngine {
            backend,
            store: SweepStore::open(sweeps_root)?,
            max_in_flight: max_in_flight.max(1),
            active: Mutex::new(HashSet::new()),
            handles: Mutex::new(Vec::new()),
        }))
    }

    /// The engine's sweep store.
    pub fn store(&self) -> &SweepStore {
        &self.store
    }

    /// Accepts a sweep spec: parses, expands (every job fully validated),
    /// persists the canonical spec, and starts a dispatcher unless the
    /// sweep is already running or already has a report.
    ///
    /// # Errors
    ///
    /// [`SpecError`] from parsing or expansion — axis-value failures are
    /// attributed as `axes.<name>[<index>]`.
    pub fn submit_text(self: &Arc<Self>, text: &str) -> Result<Submission, SpecError> {
        let spec = SweepSpec::parse(text)?;
        let jobs = spec.expand()?;
        let sweep = spec.id();
        let name = spec.name().to_owned();
        let total = jobs.len();
        if self.store.read_report(&sweep).is_some() {
            return Ok(Submission {
                sweep,
                name,
                jobs: total,
                state: SubmissionState::Complete,
            });
        }
        self.store
            .write_spec(&sweep, &spec.canonical_string())
            .map_err(|e| SpecError::document(format!("cannot persist sweep spec: {e}")))?;
        obs::counter(
            "emgrid_sweeps_submitted_total",
            "Sweep specs accepted (idempotent resubmissions included)",
        )
        .inc();
        let state = if self.spawn_dispatcher(spec, jobs) {
            SubmissionState::Started
        } else {
            SubmissionState::AlreadyRunning
        };
        Ok(Submission {
            sweep,
            name,
            jobs: total,
            state,
        })
    }

    /// Restarts a dispatcher for every persisted sweep that has no report
    /// yet — the startup half of the resume protocol. Returns how many
    /// were resumed.
    pub fn resume_all(self: &Arc<Self>) -> usize {
        let mut resumed = 0;
        for sweep in self.store.list() {
            if self.store.read_report(&sweep).is_some() {
                continue;
            }
            let Some(text) = self.store.read_spec(&sweep) else {
                continue;
            };
            let Ok(spec) = SweepSpec::parse(&text) else {
                eprintln!("emgrid-batch: sweep {sweep}: persisted spec unreadable, skipping");
                continue;
            };
            let Ok(jobs) = spec.expand() else {
                eprintln!("emgrid-batch: sweep {sweep}: persisted spec does not expand, skipping");
                continue;
            };
            if self.spawn_dispatcher(spec, jobs) {
                obs::counter(
                    "emgrid_sweeps_resumed_total",
                    "Sweeps re-dispatched after a restart",
                )
                .inc();
                resumed += 1;
            }
        }
        resumed
    }

    /// The disk-derived status of one sweep (`None` if unknown).
    pub fn status(&self, sweep: &str) -> Option<SweepStatus> {
        let text = self.store.read_spec(sweep)?;
        let spec = SweepSpec::parse(&text).ok()?;
        let (done, failed, cancelled, total) = match self.store.read_manifest(sweep) {
            Some(manifest) => manifest.counts(),
            None => (0, 0, 0, spec.job_count()),
        };
        Some(SweepStatus {
            sweep: sweep.to_owned(),
            name: spec.name().to_owned(),
            total,
            done,
            failed,
            cancelled,
            complete: self.store.read_report(sweep).is_some(),
            active: self
                .active
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .contains(sweep),
        })
    }

    /// Status for every persisted sweep, sorted by id.
    pub fn list(&self) -> Vec<SweepStatus> {
        self.store
            .list()
            .iter()
            .filter_map(|sweep| self.status(sweep))
            .collect()
    }

    /// The final report bytes, once written.
    pub fn report_bytes(&self, sweep: &str) -> Option<Vec<u8>> {
        self.store.read_report(sweep)
    }

    /// Whether any dispatcher is currently running.
    pub fn is_active(&self) -> bool {
        !self
            .active
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_empty()
    }

    /// Joins every dispatcher thread started so far (completed *or*
    /// aborted) — the CLI's blocking mode and the tests' barrier.
    pub fn wait_idle(&self) {
        loop {
            let drained: Vec<JoinHandle<()>> = {
                let mut handles = self.handles.lock().unwrap_or_else(|e| e.into_inner());
                handles.drain(..).collect()
            };
            if drained.is_empty() {
                return;
            }
            for handle in drained {
                let _ = handle.join();
            }
        }
    }

    /// Starts the dispatcher thread unless this sweep already has one.
    fn spawn_dispatcher(self: &Arc<Self>, spec: SweepSpec, jobs: Vec<SweepJob>) -> bool {
        let sweep = spec.id();
        {
            let mut active = self.active.lock().unwrap_or_else(|e| e.into_inner());
            if !active.insert(sweep.clone()) {
                return false;
            }
        }
        let engine = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name(format!("emgrid-sweep-{}", &sweep[..8.min(sweep.len())]))
            .spawn(move || {
                let _guard = ActiveGuard {
                    engine: Arc::clone(&engine),
                    sweep,
                };
                engine.dispatch(&spec, &jobs);
            })
            .expect("spawn sweep dispatcher");
        self.handles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(handle);
        true
    }

    /// Drives one sweep's manifest to settlement, then writes the report.
    /// Returns early (no report) when the backend shuts down mid-sweep;
    /// the next `resume_all` picks the sweep back up.
    fn dispatch(&self, spec: &SweepSpec, jobs: &[SweepJob]) {
        let sweep = spec.id();
        let keys: Vec<String> = jobs.iter().map(|j| j.key.clone()).collect();
        let mut manifest = match self.store.read_manifest(&sweep) {
            Some(m) if m.matches(&keys) => m,
            Some(stale) => {
                // A manifest from an older expansion (format drift):
                // rebuild, preserving entries whose keys still exist.
                let mut fresh = Manifest::new(&sweep, spec.name(), &keys);
                for entry in &mut fresh.entries {
                    if let Some(prev) = stale.entries.iter().find(|e| e.key == entry.key) {
                        *entry = prev.clone();
                    }
                }
                fresh
            }
            None => Manifest::new(&sweep, spec.name(), &keys),
        };
        if let Some(floor) = manifest.max_job_id() {
            self.backend.reserve_above(floor);
        }
        if self.store.write_manifest(&manifest).is_err() {
            eprintln!("emgrid-batch: sweep {sweep}: cannot persist manifest, aborting");
            return;
        }

        let jobs_done = obs::counter(
            "emgrid_sweep_jobs_done_total",
            "Sweep-owned jobs settled as done",
        );
        let jobs_failed = obs::counter(
            "emgrid_sweep_jobs_failed_total",
            "Sweep-owned jobs settled as failed",
        );
        let job_wait = obs::histogram(
            "emgrid_sweep_job_wait_seconds",
            "Submission-to-settlement latency of sweep-owned jobs",
        );
        // Submission instants for jobs this dispatcher queued, indexed
        // like the manifest; resumed jobs have no wait sample.
        let mut submitted_at: Vec<Option<Instant>> = vec![None; manifest.entries.len()];

        loop {
            if self.backend.shutting_down() {
                return;
            }
            let mut changed = false;
            let mut all_settled = true;
            let mut in_flight = 0usize;
            for idx in 0..manifest.entries.len() {
                let state = manifest.entries[idx].state;
                if state.is_settled() {
                    continue;
                }
                all_settled = false;
                let bound = manifest.entries[idx].job;
                let settle =
                    |new_state: EntryState, manifest: &mut Manifest, changed: &mut bool| {
                        manifest.entries[idx].state = new_state;
                        *changed = true;
                    };
                match bound {
                    Some(id) => match self.backend.poll(id) {
                        JobPoll::Done => {
                            settle(EntryState::Done, &mut manifest, &mut changed);
                            jobs_done.inc();
                            if let Some(at) = submitted_at[idx] {
                                job_wait.observe_duration(at.elapsed());
                            }
                        }
                        JobPoll::Failed(_) => {
                            settle(EntryState::Failed, &mut manifest, &mut changed);
                            jobs_failed.inc();
                            if let Some(at) = submitted_at[idx] {
                                job_wait.observe_duration(at.elapsed());
                            }
                        }
                        JobPoll::Cancelled => {
                            settle(EntryState::Cancelled, &mut manifest, &mut changed);
                        }
                        JobPoll::Interrupted => return,
                        JobPoll::Pending => in_flight += 1,
                        JobPoll::Unscheduled => {
                            if in_flight < self.max_in_flight {
                                match self.backend.resubmit(id, jobs[idx].spec.clone()) {
                                    Ok(()) => {
                                        submitted_at[idx] = Some(Instant::now());
                                        in_flight += 1;
                                    }
                                    Err(SubmitRejected::ShuttingDown) => return,
                                    // Queue pressure: retry next tick.
                                    Err(_) => {}
                                }
                            }
                        }
                        JobPoll::Missing => {
                            // Bound in the manifest but never persisted: a
                            // crash hit between binding and submission.
                            if in_flight < self.max_in_flight {
                                self.backend.mark_sweep(id, &sweep);
                                match self.backend.submit(id, &jobs[idx].spec) {
                                    Ok(()) => {
                                        submitted_at[idx] = Some(Instant::now());
                                        in_flight += 1;
                                    }
                                    Err(SubmitRejected::ShuttingDown) => return,
                                    Err(_) => {}
                                }
                            }
                        }
                    },
                    None => {
                        if in_flight >= self.max_in_flight {
                            continue;
                        }
                        let id = self.backend.allocate_id();
                        manifest.entries[idx].job = Some(id);
                        manifest.entries[idx].state = EntryState::Submitted;
                        // Persist the binding BEFORE the engine can run
                        // the job — see the module docs' ordering rules.
                        if self.store.write_manifest(&manifest).is_err() {
                            eprintln!(
                                "emgrid-batch: sweep {sweep}: cannot persist manifest, aborting"
                            );
                            return;
                        }
                        self.backend.mark_sweep(id, &sweep);
                        match self.backend.submit(id, &jobs[idx].spec) {
                            Ok(()) => {
                                submitted_at[idx] = Some(Instant::now());
                                in_flight += 1;
                            }
                            Err(SubmitRejected::ShuttingDown) => return,
                            // Stays `submitted` with a bound id; the next
                            // tick polls it as missing and retries.
                            Err(_) => {}
                        }
                    }
                }
            }
            if changed && self.store.write_manifest(&manifest).is_err() {
                eprintln!("emgrid-batch: sweep {sweep}: cannot persist manifest, aborting");
                return;
            }
            if all_settled {
                break;
            }
            std::thread::sleep(TICK);
        }

        let report = aggregate(spec, jobs, &manifest, self.backend.as_ref());
        if self
            .store
            .write_report(&sweep, report.to_string().as_bytes())
            .is_err()
        {
            eprintln!("emgrid-batch: sweep {sweep}: cannot persist report");
            return;
        }
        obs::counter(
            "emgrid_sweeps_completed_total",
            "Sweeps whose aggregated report was written",
        )
        .inc();
    }
}
