//! The `/v1/sweeps` route family, plugged into the daemon through
//! [`Server::set_route_hook`](emgrid_serve::Server::set_route_hook).
//!
//! | method & path               | purpose                                |
//! |-----------------------------|----------------------------------------|
//! | `POST /v1/sweeps`           | submit a sweep spec (idempotent by id) |
//! | `GET /v1/sweeps`            | list every persisted sweep             |
//! | `GET /v1/sweeps/:id`        | one sweep's progress                   |
//! | `GET /v1/sweeps/:id/report` | the aggregated report, byte-for-byte   |

use std::sync::Arc;

use emgrid_serve::http::{Request, Response};
use emgrid_serve::json::Json;

use crate::engine::{SubmissionState, SweepEngine, SweepStatus};

/// Routes one request, `None` when the path is not a sweep route (the
/// daemon then falls through to its own `404`).
pub fn route(request: &Request, engine: &Arc<SweepEngine>) -> Option<Response> {
    let segments: Vec<&str> = request
        .path()
        .split('/')
        .filter(|s| !s.is_empty())
        .collect();
    Some(match (request.method.as_str(), segments.as_slice()) {
        ("POST", ["v1", "sweeps"]) => submit(request, engine),
        ("GET", ["v1", "sweeps"]) => Response::json(
            200,
            &Json::Obj(vec![(
                "sweeps".into(),
                Json::Arr(engine.list().iter().map(status_doc).collect()),
            )]),
        ),
        ("GET", ["v1", "sweeps", sweep]) => match engine.status(sweep) {
            Some(status) => Response::json(200, &status_doc(&status)),
            None => Response::error(404, "no such sweep"),
        },
        ("GET", ["v1", "sweeps", sweep, "report"]) => match engine.report_bytes(sweep) {
            Some(bytes) => Response::json_bytes(200, bytes),
            None if engine.status(sweep).is_some() => Response::error(409, "sweep not finished"),
            None => Response::error(404, "no such sweep"),
        },
        (_, ["v1", "sweeps", ..]) => Response::error(405, "method not allowed"),
        _ => return None,
    })
}

fn submit(request: &Request, engine: &Arc<SweepEngine>) -> Response {
    let Ok(body) = std::str::from_utf8(&request.body) else {
        return Response::error(400, "body must be UTF-8 JSON");
    };
    match engine.submit_text(body) {
        // Structured body, like job-spec rejections: axis-value failures
        // arrive with field `axes.<name>[<index>]`.
        Err(e) => Response::json(400, &e.to_json()),
        Ok(submission) => {
            let (code, status) = match submission.state {
                SubmissionState::Started => (202, "running"),
                SubmissionState::AlreadyRunning => (200, "running"),
                SubmissionState::Complete => (200, "done"),
            };
            Response::json(
                code,
                &Json::Obj(vec![
                    ("sweep".into(), Json::s(submission.sweep)),
                    ("name".into(), Json::s(submission.name)),
                    ("jobs".into(), Json::n(submission.jobs as f64)),
                    ("status".into(), Json::s(status)),
                ]),
            )
        }
    }
}

fn status_doc(status: &SweepStatus) -> Json {
    let state = if status.complete {
        "done"
    } else if status.active {
        "running"
    } else {
        "pending"
    };
    Json::Obj(vec![
        ("sweep".into(), Json::s(&status.sweep)),
        ("name".into(), Json::s(&status.name)),
        ("jobs_total".into(), Json::n(status.total as f64)),
        ("jobs_done".into(), Json::n(status.done as f64)),
        ("jobs_failed".into(), Json::n(status.failed as f64)),
        ("jobs_cancelled".into(), Json::n(status.cancelled as f64)),
        ("status".into(), Json::s(state)),
    ])
}
