//! Where sweep jobs actually run: an abstraction over "the daemon's job
//! engine" so the same dispatcher drives both `POST /v1/sweeps` (through
//! [`JobsApi`]) and `emgrid sweep` (through an in-process
//! [`LocalBackend`]).
//!
//! Polling is **disk-first**: the job store is the authoritative record
//! (the engine's worker closures persist results and errors *before* the
//! engine observes terminal state), so a `Done`/`Failed`/`Cancelled`
//! verdict from [`JobBackend::poll`] is always backed by bytes on disk —
//! the property that makes resume-after-`kill -9` indistinguishable from
//! an uninterrupted run.

use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use emgrid_runtime::{JobEngine, JobId, JobOutcome, JobStatus, SubmitError};
use emgrid_serve::metrics::Metrics;
use emgrid_serve::runner::{run_job, RunEnv};
use emgrid_serve::{DiskJob, JobSpec, JobStore, JobsApi, JobsApiError};

/// The dispatcher's view of one job, reconciled disk-first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobPoll {
    /// Nothing anywhere: the bound id was never persisted — submit fresh.
    Missing,
    /// Spec on disk but the engine does not know the id (a restart
    /// happened after persist but the requeue has not reached it, or the
    /// backend does not auto-requeue) — resubmit under the same id.
    Unscheduled,
    /// Queued, running or checkpointed — check again later.
    Pending,
    /// Result document on disk.
    Done,
    /// Failure message on disk.
    Failed(String),
    /// Client-cancelled marker on disk.
    Cancelled,
    /// The engine cancelled the job *without* a client marker: the daemon
    /// is shutting down. The dispatcher must abort and let a restart
    /// resume the sweep.
    Interrupted,
}

/// Why a backend rejected a submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitRejected {
    /// The engine queue is full; retry after jobs drain.
    QueueFull,
    /// The backend is shutting down; abort the sweep (a restart resumes).
    ShuttingDown,
    /// The spec could not be persisted.
    Persist(String),
}

/// The engine a sweep dispatcher fans jobs out through.
pub trait JobBackend: Send + Sync {
    /// Allocates a fresh job id (never reused while the process lives).
    fn allocate_id(&self) -> JobId;

    /// Keeps future allocations strictly above `floor` (called with a
    /// resumed manifest's highest bound id).
    fn reserve_above(&self, floor: JobId);

    /// Persists `spec` under `id` and queues it. The caller owns `id`
    /// exclusively and has confirmed via [`poll`](Self::poll) that the
    /// engine does not currently know it.
    fn submit(&self, id: JobId, spec: &JobSpec) -> Result<(), SubmitRejected>;

    /// Queues a job whose spec is already persisted under `id`.
    fn resubmit(&self, id: JobId, spec: JobSpec) -> Result<(), SubmitRejected>;

    /// Reconciles one job's state, disk-first.
    fn poll(&self, id: JobId) -> JobPoll;

    /// The result document bytes, once [`JobPoll::Done`].
    fn read_result(&self, id: JobId) -> Option<Vec<u8>>;

    /// Records the owning sweep id in the job's state directory (written
    /// before submission so status docs can always point back).
    fn mark_sweep(&self, id: JobId, sweep: &str);

    /// Whether the backend has begun shutting down.
    fn shutting_down(&self) -> bool;
}

/// The shared disk-first poll: `store` then `engine`, in that order.
fn poll_store_then_engine(
    store: &JobStore,
    engine_status: Option<JobStatus>,
    id: JobId,
) -> JobPoll {
    if store.read_result(id).is_some() {
        return JobPoll::Done;
    }
    if let Some(message) = store.read_error(id) {
        return JobPoll::Failed(message);
    }
    if store.is_cancelled(id) {
        return JobPoll::Cancelled;
    }
    match engine_status {
        // Engine-cancelled with no client marker: daemon shutdown.
        Some(JobStatus::Cancelled) => JobPoll::Interrupted,
        // Engine-terminal but its persisted artifact has not appeared:
        // the worker's disk write failed. Surface it rather than letting
        // the dispatcher poll forever.
        Some(JobStatus::Done) => JobPoll::Failed("result was not persisted".into()),
        Some(JobStatus::Failed) => JobPoll::Failed("failure was not persisted".into()),
        Some(_) => JobPoll::Pending,
        None if store.exists(id) => JobPoll::Unscheduled,
        None => JobPoll::Missing,
    }
}

impl JobBackend for JobsApi {
    fn allocate_id(&self) -> JobId {
        JobsApi::allocate_id(self)
    }

    fn reserve_above(&self, floor: JobId) {
        JobsApi::reserve_above(self, floor);
    }

    fn submit(&self, id: JobId, spec: &JobSpec) -> Result<(), SubmitRejected> {
        JobsApi::submit(self, id, spec).map_err(|e| match e {
            JobsApiError::QueueFull => SubmitRejected::QueueFull,
            JobsApiError::ShuttingDown => SubmitRejected::ShuttingDown,
            JobsApiError::Persist(e) => SubmitRejected::Persist(e.to_string()),
        })
    }

    fn resubmit(&self, id: JobId, spec: JobSpec) -> Result<(), SubmitRejected> {
        JobsApi::resubmit(self, id, spec).map_err(|e| match e {
            JobsApiError::QueueFull => SubmitRejected::QueueFull,
            JobsApiError::ShuttingDown => SubmitRejected::ShuttingDown,
            JobsApiError::Persist(e) => SubmitRejected::Persist(e.to_string()),
        })
    }

    fn poll(&self, id: JobId) -> JobPoll {
        poll_store_then_engine(&self.store(), self.engine_status(id), id)
    }

    fn read_result(&self, id: JobId) -> Option<Vec<u8>> {
        self.store().read_result(id)
    }

    fn mark_sweep(&self, id: JobId, sweep: &str) {
        let _ = self.store().write_sweep(id, sweep);
    }

    fn shutting_down(&self) -> bool {
        JobsApi::shutting_down(self)
    }
}

struct LocalInner {
    engine: JobEngine<String>,
    store: JobStore,
    metrics: Metrics,
    checkpoint_every: usize,
    cache_dir: Option<PathBuf>,
    next_id: AtomicU64,
    shutting: AtomicBool,
    /// Live ids, for draining on shutdown.
    known: Mutex<Vec<JobId>>,
}

/// An in-process backend for `emgrid sweep`: its own job engine and
/// store, with the daemon's restart semantics (unfinished jobs found in
/// the state directory are requeued on open).
#[derive(Clone)]
pub struct LocalBackend {
    inner: Arc<LocalInner>,
}

impl LocalBackend {
    /// Opens the job store at `state_dir`, requeues any unfinished jobs
    /// found there, and starts `workers` worker threads.
    ///
    /// # Errors
    ///
    /// Propagates job-store failures.
    pub fn open(
        state_dir: impl Into<PathBuf>,
        workers: usize,
        checkpoint_every: usize,
    ) -> io::Result<LocalBackend> {
        let store = JobStore::open(state_dir)?;
        let mut unfinished = Vec::new();
        let mut max_id = 0;
        for (id, state) in store.scan() {
            max_id = max_id.max(id);
            if let DiskJob::Unfinished { spec, .. } = state {
                match JobSpec::from_json(&spec) {
                    Ok(spec) => unfinished.push((id, spec)),
                    Err(e) => {
                        let _ = store.write_error(id, &format!("unreadable spec: {e}"));
                    }
                }
            }
        }
        // The queue never blocks a sweep: the dispatcher bounds in-flight
        // work itself, and the startup requeue must always fit.
        let queue_depth = 256usize.max(unfinished.len());
        let backend = LocalBackend {
            inner: Arc::new(LocalInner {
                engine: JobEngine::new(workers.max(1), queue_depth),
                store,
                metrics: Metrics::default(),
                checkpoint_every,
                cache_dir: None,
                next_id: AtomicU64::new(max_id + 1),
                shutting: AtomicBool::new(false),
                known: Mutex::new(Vec::new()),
            }),
        };
        for (id, spec) in unfinished {
            let _ = backend.enqueue(id, spec);
        }
        Ok(backend)
    }

    /// The backend's job store.
    pub fn store(&self) -> &JobStore {
        &self.inner.store
    }

    fn enqueue(&self, id: JobId, spec: JobSpec) -> Result<(), SubmitRejected> {
        let inner = Arc::clone(&self.inner);
        self.inner
            .engine
            .submit_with_id(id, move |ctx| {
                let env = RunEnv {
                    store: &inner.store,
                    metrics: &inner.metrics,
                    checkpoint_every: inner.checkpoint_every,
                    cache_dir: inner.cache_dir.as_deref(),
                    max_netlist_bytes: 8 * 1024 * 1024,
                    max_netlist_lines: 400_000,
                    phases: None,
                };
                let outcome = run_job(&spec, ctx, &env);
                // Terminal artifacts land on disk before the engine sees
                // the outcome — the invariant disk-first polling rests on.
                match &outcome {
                    JobOutcome::Done(result) => {
                        let _ = inner.store.write_result(ctx.id, result);
                    }
                    JobOutcome::Failed(message) => {
                        let _ = inner.store.write_error(ctx.id, message);
                    }
                    JobOutcome::Cancelled => {}
                }
                outcome
            })
            .map(|_| ())
            .map_err(|e| match e {
                SubmitError::QueueFull => SubmitRejected::QueueFull,
                SubmitError::ShuttingDown => SubmitRejected::ShuttingDown,
            })?;
        let mut known = self.inner.known.lock().unwrap_or_else(|e| e.into_inner());
        known.retain(|kid| {
            self.inner
                .engine
                .status(*kid)
                .is_some_and(|status| !status.is_terminal())
        });
        known.push(id);
        Ok(())
    }

    /// Interrupts outstanding work the way a daemon shutdown does:
    /// running Monte Carlo jobs commit a final checkpoint and report
    /// engine-cancelled (no client marker), queued jobs never start.
    /// Used by the in-process resume tests; `kill -9` is the production
    /// equivalent.
    pub fn shutdown_now(&self) {
        self.inner.shutting.store(true, Ordering::SeqCst);
        let ids: Vec<JobId> = self
            .inner
            .known
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        for id in &ids {
            self.inner.engine.cancel(*id);
        }
        for id in ids {
            let _ = self
                .inner
                .engine
                .wait_terminal(id, Duration::from_secs(600));
        }
        self.inner.engine.begin_shutdown();
    }
}

impl JobBackend for LocalBackend {
    fn allocate_id(&self) -> JobId {
        self.inner.next_id.fetch_add(1, Ordering::SeqCst)
    }

    fn reserve_above(&self, floor: JobId) {
        self.inner.next_id.fetch_max(floor + 1, Ordering::SeqCst);
    }

    fn submit(&self, id: JobId, spec: &JobSpec) -> Result<(), SubmitRejected> {
        self.inner
            .store
            .write_spec(id, &spec.to_json())
            .map_err(|e| SubmitRejected::Persist(e.to_string()))?;
        self.enqueue(id, spec.clone())
    }

    fn resubmit(&self, id: JobId, spec: JobSpec) -> Result<(), SubmitRejected> {
        self.enqueue(id, spec)
    }

    fn poll(&self, id: JobId) -> JobPoll {
        poll_store_then_engine(&self.inner.store, self.inner.engine.status(id), id)
    }

    fn read_result(&self, id: JobId) -> Option<Vec<u8>> {
        self.inner.store.read_result(id)
    }

    fn mark_sweep(&self, id: JobId, sweep: &str) {
        let _ = self.inner.store.write_sweep(id, sweep);
    }

    fn shutting_down(&self) -> bool {
        self.inner.shutting.load(Ordering::SeqCst)
    }
}
