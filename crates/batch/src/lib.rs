//! `emgrid-batch`: the manifest-driven sweep engine.
//!
//! Takes a declarative [`SweepSpec`](emgrid_scenarios::SweepSpec), fans
//! its expansion out through the checkpointable job engine, records
//! progress in an atomically-updated on-disk manifest, and folds the
//! results — in manifest order, addressed by derived keys — into one
//! byte-stable aggregated report (the paper's Figs. 8–10 as one
//! artifact).
//!
//! * [`manifest`] — the crash-safe sweep store and entry state machine;
//! * [`backend`] — where jobs run: the daemon's [`JobsApi`]
//!   (`POST /v1/sweeps`) or an in-process [`LocalBackend`]
//!   (`emgrid sweep`), both polled disk-first;
//! * [`engine`] — the per-sweep dispatcher and resume protocol;
//! * [`report`] — aggregation into TTF-vs-j curves and Plus/T/L tables;
//! * [`http`] — the `/v1/sweeps` routes, mounted via the daemon's route
//!   hook.
//!
//! The governing contract is inherited from the rest of the workspace:
//! the report's bytes depend only on the sweep spec. `kill -9` at any
//! instant, restart, worker-count changes and queue reordering all
//! converge on the identical artifact, and the conformance tests in
//! `tests/` hold the crate to it.
//!
//! [`JobsApi`]: emgrid_serve::JobsApi
//! [`LocalBackend`]: backend::LocalBackend

pub mod backend;
pub mod engine;
pub mod http;
pub mod manifest;
mod report;

pub use backend::{JobBackend, JobPoll, LocalBackend, SubmitRejected};
pub use engine::{Submission, SubmissionState, SweepEngine, SweepStatus};
pub use manifest::{Entry, EntryState, Manifest, SweepStore};
