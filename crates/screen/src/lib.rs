//! Chip-scale EM screening: a linear-time steady-state stress prefilter
//! that ranks a power grid's via arrays **before** any Monte Carlo runs.
//!
//! The paper's hierarchical flow prices every via array with a
//! precharacterized TTF distribution and plays failures forward — accurate,
//! but the grid-level Monte Carlo still touches every site. On
//! million-node grids almost all arrays are electromigration-cold: their
//! steady-state EM stress never approaches the critical stress, so they
//! cannot nucleate voids on any relevant horizon. This crate computes that
//! steady-state stress for **every** branch from a single DC solve — no
//! transient analysis — and aggregates it into a deterministic per-via
//! criticality ranking the MC engines use to pick their working set
//! (filter-then-simulate).
//!
//! # The steady-state shortcut
//!
//! Korhonen's equation on an interconnect tree drives atoms with the EM
//! wind force `eZ*ρj/Ω` and blocks them at tree boundaries (vias and pads
//! are diffusion barriers in dual-damascene Cu). At `t → ∞` the atomic
//! flux vanishes everywhere, which integrates to a stress profile that is
//! a pure function of the **electric potential** along the tree
//! (Kirchhoff's voltage law absorbs `ρjL = IR`):
//!
//! ```text
//! σ_ss(x) = β · (V̄ − V(x)),    β = e·Z* / Ω
//! ```
//!
//! where `V̄` is the length-weighted average potential over the tree —
//! the same closed form the fast power-grid EM checkers use (Sukharev &
//! Najm; arXiv 2112.13451 turns it into a linear-time pass). With uniform
//! resistance per length, length-weighting equals resistance-weighting,
//! so `V̄` needs only the branch resistances and the node voltages.
//!
//! The whole screen is therefore: one DC solve ([`emgrid_sparse::solve_spd`]
//! — direct or IC(0)-CG, picked by problem size), one union-find over
//! same-layer branches to recover the trees ([`InterconnectTrees`]), and
//! two passes to form `V̄` and the per-node stresses. Every step is
//! deterministic and bit-identical across thread counts and kernel
//! backends, so a screening report is byte-stable run to run.

use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

use emgrid_em::constants::ELEMENTARY_CHARGE;
use emgrid_em::Technology;
use emgrid_pg::PowerGrid;
use emgrid_runtime::obs;
use emgrid_sparse::{solve_spd, CgOptions, FactorOptions, Method, SparseError};
use emgrid_spice::mna::DcSolution;
use emgrid_spice::netlist::{Element, Netlist, Node};

/// Errors from a screening pass.
#[derive(Debug, Clone, PartialEq)]
pub enum ScreenError {
    /// The DC operating-point solve failed.
    Solve(SparseError),
}

impl fmt::Display for ScreenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScreenError::Solve(e) => write!(f, "screening dc solve failed: {e}"),
        }
    }
}

impl Error for ScreenError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ScreenError::Solve(e) => Some(e),
        }
    }
}

impl From<SparseError> for ScreenError {
    fn from(e: SparseError) -> Self {
        ScreenError::Solve(e)
    }
}

/// Configuration for one screening pass.
#[derive(Debug, Clone, Default)]
pub struct ScreenOptions {
    /// Linear-solve engine for the operating point (default `auto`:
    /// direct below [`emgrid_sparse::method::AUTO_DIRECT_LIMIT`] unknowns,
    /// IC(0)-CG above).
    pub method: Method,
    /// Direct-path factorization options.
    pub factor: FactorOptions,
    /// Iterative-path CG options.
    pub cg: CgOptions,
    /// Keep only the `k` highest-stress via arrays (`None` = keep all).
    pub top_k: Option<usize>,
    /// Keep only arrays whose steady-state stress reaches this many Pa
    /// (`None` = no stress floor). Combined with `top_k`, both must hold.
    pub stress_threshold: Option<f64>,
}

/// The interconnect trees of a netlist: connected components of
/// **same-layer** resistive branches. Vias and pad straps join different
/// layers (or unnamed pad nodes) and act as diffusion barriers, so they
/// delimit the trees exactly as the dual-damascene liner does.
#[derive(Debug, Clone)]
pub struct InterconnectTrees {
    /// Dense tree id per netlist node id; `u32::MAX` = not on any tree.
    tree_of: Vec<u32>,
    count: usize,
}

const NO_TREE: u32 = u32::MAX;

impl InterconnectTrees {
    /// Runs the union-find decomposition over `netlist`'s resistors.
    pub fn build(netlist: &Netlist) -> Self {
        let n = netlist.node_count();
        let mut parent: Vec<u32> = (0..n as u32).collect();
        let mut in_tree = vec![false; n];
        fn find(parent: &mut [u32], mut v: u32) -> u32 {
            while parent[v as usize] != v {
                let up = parent[parent[v as usize] as usize];
                parent[v as usize] = up;
                v = up;
            }
            v
        }
        for (a, b, _) in same_layer_branches(netlist) {
            in_tree[a as usize] = true;
            in_tree[b as usize] = true;
            let ra = find(&mut parent, a);
            let rb = find(&mut parent, b);
            if ra != rb {
                // Deterministic union: the smaller root wins, so the
                // representative is the least node id of the component.
                let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
                parent[hi as usize] = lo;
            }
        }
        // Dense ids in ascending least-node-id order.
        let mut tree_of = vec![NO_TREE; n];
        let mut dense_of_root = vec![NO_TREE; n];
        let mut count = 0u32;
        for v in 0..n as u32 {
            if !in_tree[v as usize] {
                continue;
            }
            let root = find(&mut parent, v);
            if dense_of_root[root as usize] == NO_TREE {
                dense_of_root[root as usize] = count;
                count += 1;
            }
            tree_of[v as usize] = dense_of_root[root as usize];
        }
        InterconnectTrees {
            tree_of,
            count: count as usize,
        }
    }

    /// Number of trees found.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The tree containing `node`, if it lies on one.
    pub fn tree_of(&self, node: Node) -> Option<usize> {
        let id = node.id()?;
        match self.tree_of[id as usize] {
            NO_TREE => None,
            t => Some(t as usize),
        }
    }

    /// Resistance-weighted average node voltage per tree — the `V̄` of the
    /// steady-state stress formula. Each branch contributes its resistance
    /// (∝ length at uniform resistance per length) times the mean of its
    /// endpoint voltages, the trapezoid rule for `(1/L)∫V dx`.
    pub fn average_voltages(&self, netlist: &Netlist, solution: &DcSolution) -> Vec<f64> {
        let mut weight = vec![0.0f64; self.count];
        let mut weighted_v = vec![0.0f64; self.count];
        let mut edges = vec![0usize; self.count];
        let mut plain_v = vec![0.0f64; self.count];
        for (a, b, r) in same_layer_branches(netlist) {
            let t = self.tree_of[a as usize] as usize;
            let mid = 0.5 * (solution.voltage(Node::Id(a)) + solution.voltage(Node::Id(b)));
            weight[t] += r;
            weighted_v[t] += r * mid;
            edges[t] += 1;
            plain_v[t] += mid;
        }
        (0..self.count)
            .map(|t| {
                if weight[t] > 0.0 {
                    weighted_v[t] / weight[t]
                } else {
                    // Degenerate all-zero-resistance tree: unweighted mean.
                    plain_v[t] / edges[t] as f64
                }
            })
            .collect()
    }
}

/// Same-layer resistive branches `(a, b, resistance)`, in element order.
fn same_layer_branches(netlist: &Netlist) -> impl Iterator<Item = (u32, u32, f64)> + '_ {
    netlist.resistors().filter_map(move |(_, e)| {
        let Element::Resistor { a, b, value, .. } = e else {
            return None;
        };
        let (ia, ib) = (a.id()?, b.id()?);
        let (infa, infb) = (netlist.node_info(ia)?, netlist.node_info(ib)?);
        (infa.layer == infb.layer).then_some((ia, ib, *value))
    })
}

/// One via array's screening result.
#[derive(Debug, Clone, PartialEq)]
pub struct ViaScore {
    /// Index into [`PowerGrid::via_sites`].
    pub site: usize,
    /// Via element instance name.
    pub name: String,
    /// Steady-state EM stress at the worse of the two tree endpoints, Pa
    /// (positive = tensile, the void-nucleating sign).
    pub stress_pa: f64,
    /// `stress_pa` over the technology's median critical stress — the
    /// dimensionless criticality the ranking is read in.
    pub criticality: f64,
    /// Nominal via current, A.
    pub current_a: f64,
}

/// A ranked screening report.
#[derive(Debug, Clone)]
pub struct ScreenReport {
    /// Grid node count (the DC unknowns come from these).
    pub nodes: usize,
    /// Interconnect trees found.
    pub trees: usize,
    /// `β = e·Z*/Ω`, Pa per volt.
    pub beta_pa_per_v: f64,
    /// Median critical stress used for [`ViaScore::criticality`], Pa.
    pub critical_stress_pa: f64,
    /// Echo of [`ScreenOptions::top_k`].
    pub top_k: Option<usize>,
    /// Echo of [`ScreenOptions::stress_threshold`].
    pub stress_threshold: Option<f64>,
    scores: Vec<ViaScore>,
    selected: usize,
}

impl ScreenReport {
    /// Every via array, ranked: descending stress, ties broken by
    /// ascending site index.
    pub fn ranked(&self) -> &[ViaScore] {
        &self.scores
    }

    /// The selected (to-be-simulated) prefix of [`ScreenReport::ranked`].
    pub fn selected_scores(&self) -> &[ViaScore] {
        &self.scores[..self.selected]
    }

    /// Selected site indices in ascending order — the exact argument for
    /// `PowerGridMc::with_active_sites`. Empty when the stress threshold
    /// excluded every array.
    pub fn selected_sites(&self) -> Vec<usize> {
        let mut sites: Vec<usize> = self.selected_scores().iter().map(|s| s.site).collect();
        sites.sort_unstable();
        sites
    }

    /// Deterministic JSON document: summary plus the selected scores in
    /// rank order. Identical reports render to identical bytes.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"kind\":\"screen\"");
        let _ = write!(
            out,
            ",\"nodes\":{},\"via_sites\":{},\"trees\":{}",
            self.nodes,
            self.scores.len(),
            self.trees
        );
        let _ = write!(out, ",\"beta_pa_per_v\":{}", fmt_num(self.beta_pa_per_v));
        let _ = write!(
            out,
            ",\"critical_stress_pa\":{}",
            fmt_num(self.critical_stress_pa)
        );
        match self.top_k {
            Some(k) => {
                let _ = write!(out, ",\"top_k\":{k}");
            }
            None => out.push_str(",\"top_k\":null"),
        }
        match self.stress_threshold {
            Some(s) => {
                let _ = write!(out, ",\"stress_threshold\":{}", fmt_num(s));
            }
            None => out.push_str(",\"stress_threshold\":null"),
        }
        let _ = write!(out, ",\"selected\":{},\"scores\":[", self.selected);
        for (i, s) in self.selected_scores().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"site\":{},\"name\":\"{}\",\"stress_pa\":{},\"criticality\":{},\"current_a\":{}}}",
                s.site,
                s.name,
                fmt_num(s.stress_pa),
                fmt_num(s.criticality),
                fmt_num(s.current_a)
            );
        }
        out.push_str("]}");
        out
    }

    /// Human-readable ranked table (at most [`RENDER_ROWS`] rows), built
    /// with fixed-precision formatting so equal reports render to equal
    /// bytes.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "EM screen: {} via arrays over {} nodes, {} interconnect trees",
            self.scores.len(),
            self.nodes,
            self.trees
        );
        let _ = writeln!(
            out,
            "beta {:.4e} Pa/V, median critical stress {:.4e} Pa",
            self.beta_pa_per_v, self.critical_stress_pa
        );
        let top_k = match self.top_k {
            Some(k) => k.to_string(),
            None => "-".to_string(),
        };
        let threshold = match self.stress_threshold {
            Some(s) => format!("{s:.4e} Pa"),
            None => "-".to_string(),
        };
        let _ = writeln!(
            out,
            "selected {} of {} sites (top_k {}, stress_threshold {})",
            self.selected,
            self.scores.len(),
            top_k,
            threshold
        );
        let _ = writeln!(
            out,
            "{:>6}  {:>8}  {:<16} {:>12}  {:>11}  {:>11}",
            "rank", "site", "name", "stress_MPa", "criticality", "current_mA"
        );
        for (rank, s) in self.selected_scores().iter().take(RENDER_ROWS).enumerate() {
            let _ = writeln!(
                out,
                "{:>6}  {:>8}  {:<16} {:>12.4}  {:>11.6}  {:>11.6}",
                rank + 1,
                s.site,
                s.name,
                s.stress_pa / 1e6,
                s.criticality,
                s.current_a * 1e3
            );
        }
        if self.selected > RENDER_ROWS {
            let _ = writeln!(out, "... and {} more", self.selected - RENDER_ROWS);
        }
        out
    }
}

/// Row cap for [`ScreenReport::render`]; `to_json` always carries the
/// full selection.
pub const RENDER_ROWS: usize = 64;

/// Shortest-round-trip float formatting (integral values drop the
/// fraction) — a pure function of the bits, like the daemon's JSON writer.
fn fmt_num(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() <= 9.007199254740992e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

/// Screens `grid` at its DC operating point: solves once, decomposes into
/// interconnect trees, forms the steady-state stress at every via array's
/// tree endpoints and ranks the arrays by criticality.
///
/// Runs in `O(solve + elements)` — no transient analysis and no sampling —
/// and is bit-deterministic for any thread count or kernel backend in
/// `options`.
///
/// # Errors
///
/// Returns [`ScreenError::Solve`] if the operating-point solve fails.
pub fn screen_grid(
    grid: &PowerGrid,
    tech: &Technology,
    options: &ScreenOptions,
) -> Result<ScreenReport, ScreenError> {
    let _span = obs::span("screen");
    obs::counter("emgrid_screen_runs_total", "screening passes run").inc();
    let dc = grid.dc();
    // `PowerGrid::from_netlist` already solved this exact system with the
    // auto-selected engine and default options; all-default screen options
    // reuse that solution instead of paying a second chip-scale solve.
    // Any explicit override still solves with the requested engine (and by
    // the determinism contract, default-equivalent overrides produce the
    // same bits either way).
    let nominal_is_reusable = options.method == Method::Auto
        && options.factor == FactorOptions::default()
        && options.cg == CgOptions::default();
    let solved;
    let solution: &DcSolution = if nominal_is_reusable {
        grid.nominal_solution()
    } else {
        let x = {
            let _s = obs::span("screen-solve");
            solve_spd(
                dc.matrix(),
                dc.rhs(),
                options.method,
                &options.factor,
                &options.cg,
            )?
        };
        solved = dc.solution_from_unknowns(&x);
        &solved
    };

    let (trees, vbar) = {
        let _s = obs::span("screen-trees");
        let trees = InterconnectTrees::build(grid.netlist());
        let vbar = trees.average_voltages(grid.netlist(), solution);
        (trees, vbar)
    };

    let beta = ELEMENTARY_CHARGE * tech.effective_charge / tech.atomic_volume;
    let critical = tech.critical_stress_distribution().median();
    let currents = grid.via_currents(solution);
    let end_stress = |node: Node| -> f64 {
        match trees.tree_of(node) {
            Some(t) => beta * (vbar[t] - solution.voltage(node)),
            None => 0.0,
        }
    };
    let mut scores: Vec<ViaScore> = {
        let _s = obs::span("screen-rank");
        grid.via_sites()
            .iter()
            .enumerate()
            .map(|(k, site)| {
                let stress = end_stress(site.lower).max(end_stress(site.upper));
                ViaScore {
                    site: k,
                    name: site.name.clone(),
                    stress_pa: stress,
                    criticality: stress / critical,
                    current_a: currents[k],
                }
            })
            .collect()
    };
    scores.sort_by(|a, b| {
        b.stress_pa
            .total_cmp(&a.stress_pa)
            .then(a.site.cmp(&b.site))
    });
    obs::counter(
        "emgrid_screen_sites_total",
        "via arrays scored by screening",
    )
    .add(scores.len() as u64);

    let mut selected = match options.stress_threshold {
        Some(threshold) => scores.partition_point(|s| s.stress_pa >= threshold),
        None => scores.len(),
    };
    if let Some(k) = options.top_k {
        selected = selected.min(k);
    }
    obs::counter(
        "emgrid_screen_selected_total",
        "via arrays selected for simulation by screening",
    )
    .add(selected as u64);

    Ok(ScreenReport {
        nodes: grid.netlist().node_count(),
        trees: trees.count(),
        beta_pa_per_v: beta,
        critical_stress_pa: critical,
        top_k: options.top_k,
        stress_threshold: options.stress_threshold,
        scores,
        selected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use emgrid_sparse::KernelBackend;
    use emgrid_spice::benchgen::GridSpec;
    use proptest::prelude::*;

    fn grid(nx: usize, ny: usize) -> PowerGrid {
        PowerGrid::from_netlist(GridSpec::custom("t", nx, ny).generate()).unwrap()
    }

    #[test]
    fn tree_decomposition_finds_every_stripe() {
        // A two-layer mesh has one tree per lower-layer row (x stripes)
        // and one per upper-layer column (y stripes): ny + nx trees.
        let g = grid(7, 5);
        let trees = InterconnectTrees::build(g.netlist());
        assert_eq!(trees.count(), 5 + 7);
        // Via endpoints land on trees of different layers.
        for site in g.via_sites() {
            let lo = trees.tree_of(site.lower).unwrap();
            let up = trees.tree_of(site.upper).unwrap();
            assert_ne!(lo, up);
        }
        // Pad nodes are not on any tree.
        let pad = g.netlist().node_id("pad_0").unwrap();
        assert_eq!(trees.tree_of(pad), None);
    }

    #[test]
    fn tree_stress_has_zero_resistance_weighted_mass() {
        // Mass conservation: the steady-state stress integrates to zero
        // over each tree. Discretely: Σ_branches R·(σ_a+σ_b)/2 = 0.
        let g = grid(8, 6);
        let tech = Technology::default();
        let report = screen_grid(&g, &tech, &ScreenOptions::default()).unwrap();
        let trees = InterconnectTrees::build(g.netlist());
        let vbar = trees.average_voltages(g.netlist(), g.nominal_solution());
        let beta = report.beta_pa_per_v;
        let mut mass = vec![0.0f64; trees.count()];
        let mut scale = vec![0.0f64; trees.count()];
        for (a, b, r) in super::same_layer_branches(g.netlist()) {
            let t = trees.tree_of(Node::Id(a)).unwrap();
            let sa = beta * (vbar[t] - g.nominal_solution().voltage(Node::Id(a)));
            let sb = beta * (vbar[t] - g.nominal_solution().voltage(Node::Id(b)));
            mass[t] += r * 0.5 * (sa + sb);
            scale[t] += r * 0.5 * (sa.abs() + sb.abs());
        }
        for t in 0..trees.count() {
            assert!(
                mass[t].abs() <= 1e-9 * scale[t].max(1.0),
                "tree {t}: residual mass {}",
                mass[t]
            );
        }
    }

    #[test]
    fn ranking_is_deterministic_and_complete() {
        let g = grid(10, 10);
        let tech = Technology::default();
        let a = screen_grid(&g, &tech, &ScreenOptions::default()).unwrap();
        let b = screen_grid(&g, &tech, &ScreenOptions::default()).unwrap();
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.ranked().len(), g.via_sites().len());
        assert_eq!(a.selected_sites().len(), g.via_sites().len());
        // Ranked non-increasing; every stress finite.
        for w in a.ranked().windows(2) {
            assert!(w[0].stress_pa >= w[1].stress_pa);
        }
        assert!(a.ranked().iter().all(|s| s.stress_pa.is_finite()));
        // The worst array is under real tensile stress.
        assert!(a.ranked()[0].stress_pa > 0.0);
    }

    #[test]
    fn hotspot_vias_rank_first() {
        // The load hotspot sits at the grid center; the most critical
        // arrays must cluster there, not at the pad ring.
        let spec = GridSpec::pg1();
        let g = PowerGrid::from_netlist(spec.generate()).unwrap();
        let report = screen_grid(&g, &Technology::default(), &ScreenOptions::default()).unwrap();
        let top = &report.ranked()[0];
        let site = &g.via_sites()[top.site];
        let info = g
            .netlist()
            .node_info(site.lower.id().unwrap())
            .expect("grid node");
        let (cx, cy) = (spec.nx as i64 / 2, spec.ny as i64 / 2);
        let dist = (info.x - cx).abs().max((info.y - cy).abs());
        assert!(
            dist <= spec.nx as i64 / 4,
            "top-ranked via at ({}, {}), {dist} from center",
            info.x,
            info.y
        );
    }

    #[test]
    fn selection_honours_top_k_and_threshold() {
        let g = grid(9, 9);
        let tech = Technology::default();
        let all = screen_grid(&g, &tech, &ScreenOptions::default()).unwrap();
        let median_stress = all.ranked()[all.ranked().len() / 2].stress_pa;

        let top = screen_grid(
            &g,
            &tech,
            &ScreenOptions {
                top_k: Some(5),
                ..ScreenOptions::default()
            },
        )
        .unwrap();
        assert_eq!(top.selected_scores().len(), 5);
        assert_eq!(
            top.selected_scores(),
            &all.ranked()[..5],
            "top-k must be the ranking prefix"
        );

        let floored = screen_grid(
            &g,
            &tech,
            &ScreenOptions {
                stress_threshold: Some(median_stress),
                ..ScreenOptions::default()
            },
        )
        .unwrap();
        assert!(floored
            .selected_scores()
            .iter()
            .all(|s| s.stress_pa >= median_stress));
        assert!(!floored.selected_scores().is_empty());
        assert!(floored.selected_scores().len() < all.ranked().len());

        let both = screen_grid(
            &g,
            &tech,
            &ScreenOptions {
                top_k: Some(3),
                stress_threshold: Some(median_stress),
                ..ScreenOptions::default()
            },
        )
        .unwrap();
        assert_eq!(both.selected_scores().len(), 3);

        // An impossible threshold selects nothing (the caller decides what
        // an empty selection means).
        let none = screen_grid(
            &g,
            &tech,
            &ScreenOptions {
                stress_threshold: Some(1e12),
                ..ScreenOptions::default()
            },
        )
        .unwrap();
        assert!(none.selected_sites().is_empty());
    }

    #[test]
    fn report_bytes_are_identical_across_threads_and_kernels() {
        // The screening determinism contract: thread counts and kernel
        // backends move wall time, never bytes.
        let g = grid(12, 11);
        let tech = Technology::default();
        let mut reports = Vec::new();
        for threads in [1usize, 4] {
            for kernels in [KernelBackend::Scalar, KernelBackend::Blocked] {
                let mut options = ScreenOptions {
                    top_k: Some(25),
                    ..ScreenOptions::default()
                };
                options.factor.threads = threads;
                options.factor.kernels = kernels;
                options.cg.threads = threads;
                options.cg.kernels = kernels;
                let r = screen_grid(&g, &tech, &options).unwrap();
                reports.push((r.to_json(), r.render()));
            }
        }
        for pair in reports.windows(2) {
            assert_eq!(pair[0].0, pair[1].0, "json bytes differ");
            assert_eq!(pair[0].1, pair[1].1, "rendered bytes differ");
        }
    }

    #[test]
    fn direct_and_cg_screens_agree_on_the_ranking() {
        let g = grid(10, 8);
        let tech = Technology::default();
        let direct = screen_grid(
            &g,
            &tech,
            &ScreenOptions {
                method: Method::Direct,
                ..ScreenOptions::default()
            },
        )
        .unwrap();
        let mut cg_options = ScreenOptions {
            method: Method::Cg,
            ..ScreenOptions::default()
        };
        cg_options.cg.tolerance = 1e-12;
        let cg = screen_grid(&g, &tech, &cg_options).unwrap();
        // Engines differ in round-off (near-ties may legally swap ranks),
        // so compare per-site stresses and the top of the ranking.
        let m = direct.ranked().len();
        let mut direct_by_site = vec![0.0f64; m];
        let mut cg_by_site = vec![0.0f64; m];
        for s in direct.ranked() {
            direct_by_site[s.site] = s.stress_pa;
        }
        for s in cg.ranked() {
            cg_by_site[s.site] = s.stress_pa;
        }
        let peak = direct_by_site.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        for k in 0..m {
            assert!(
                (direct_by_site[k] - cg_by_site[k]).abs() < 1e-6 * peak,
                "site {k}: direct {} vs cg {}",
                direct_by_site[k],
                cg_by_site[k]
            );
        }
        assert_eq!(direct.ranked()[0].site, cg.ranked()[0].site);
    }

    #[test]
    fn json_document_is_well_formed() {
        let g = grid(5, 5);
        let report = screen_grid(
            &g,
            &Technology::default(),
            &ScreenOptions {
                top_k: Some(4),
                stress_threshold: Some(0.0),
                ..ScreenOptions::default()
            },
        )
        .unwrap();
        let json = report.to_json();
        assert!(json.starts_with("{\"kind\":\"screen\""), "{json}");
        assert!(json.contains("\"selected\":4"), "{json}");
        assert!(json.contains("\"top_k\":4"), "{json}");
        assert!(json.ends_with("]}"), "{json}");
        assert_eq!(json.matches("\"site\":").count(), 4);
        let rendered = report.render();
        assert!(rendered.contains("selected 4 of"), "{rendered}");
    }

    /// Explicit-Euler Korhonen transient on a 1-D line of `n` nodes with
    /// unit segment lengths, blocked ends, and the EM force implied by the
    /// node potentials `v`. Returns the stress per node at time `t_end`
    /// (κ = 1; only the time scale depends on it).
    fn korhonen_transient(v: &[f64], beta: f64, t_end: f64) -> Vec<f64> {
        let n = v.len();
        let mut sigma = vec![0.0f64; n];
        // Segment EM force g_e = −β dV/dx; flux_e = dσ/dx − g_e.
        let g: Vec<f64> = (0..n - 1).map(|e| -beta * (v[e + 1] - v[e])).collect();
        // Finite-volume node cells: half-length at the blocked ends, so the
        // conserved mass Σ wᵢσᵢ is the trapezoid integral of σ.
        let w = |i: usize| if i == 0 || i == n - 1 { 0.5 } else { 1.0 };
        let dt = 0.2; // stable: worst Gershgorin eigenvalue is 4 (end cells)
        let steps = (t_end / dt).ceil() as usize;
        for _ in 0..steps {
            let flux: Vec<f64> = (0..n - 1).map(|e| sigma[e + 1] - sigma[e] - g[e]).collect();
            let mut next = sigma.clone();
            for i in 0..n {
                let inflow = if i > 0 { flux[i - 1] } else { 0.0 };
                let outflow = if i < n - 1 { flux[i] } else { 0.0 };
                next[i] += dt * (outflow - inflow) / w(i);
            }
            sigma = next;
        }
        sigma
    }

    proptest! {
        /// The screening formula σ_ss = β(V̄ − V) is the t→∞ limit of the
        /// Korhonen transient on the same tree: evolve a random potential
        /// profile to long time and compare.
        #[test]
        fn steady_state_matches_transient_korhonen_limit(
            volts in proptest::collection::vec(0.0f64..1.0, 3..14),
        ) {
            let n = volts.len();
            let beta = 2.0; // arbitrary scale; the limit is linear in β
            // Long-time: the slowest Korhonen mode on a blocked line of
            // length L decays as exp(−π²κt/L²); t = 3L² leaves < 1e-12.
            let t_end = 3.0 * (n as f64 - 1.0).powi(2);
            let transient = korhonen_transient(&volts, beta, t_end);
            // Trapezoid length-average of the potential (unit segments).
            let mut vbar = 0.0;
            for e in 0..n - 1 {
                vbar += 0.5 * (volts[e] + volts[e + 1]);
            }
            vbar /= n as f64 - 1.0;
            // The discrete transient conserves Σ node masses with half
            // weights at the blocked ends (the same trapezoid rule), so it
            // converges to the screen's closed form node for node.
            for i in 0..n {
                let steady = beta * (vbar - volts[i]);
                prop_assert!(
                    (transient[i] - steady).abs() < 1e-6 * beta.max(1.0),
                    "node {i}: transient {} vs steady {}",
                    transient[i],
                    steady
                );
            }
        }
    }
}
