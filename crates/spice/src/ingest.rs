//! Guarded netlist ingestion for untrusted decks.
//!
//! The analysis daemon (`emgrid-serve`) accepts SPICE netlists over HTTP,
//! so a deck must be screened before it reaches the solver: bounded in
//! size, parsed with line-accurate errors, and lint-gated so structurally
//! broken grids are rejected up front instead of failing deep inside DC
//! analysis. [`ingest`] packages that pipeline; [`IngestError`] is the
//! structured rejection the daemon serializes into its `400` responses.
//!
//! Shorted vias ([`LintIssue::ShortedVia`]) are deliberately *not* fatal:
//! the paper's benchmark decks ship with zero-resistance vias and the
//! caller may ask for the paper's retrofit via
//! [`IngestOptions::repair_vias`]. Every other lint class leaves the
//! operating point undefined or ambiguous and rejects the deck.

use std::error::Error;
use std::fmt;

use crate::lint::{lint, repair_shorted_vias, LintIssue};
use crate::netlist::Netlist;
use crate::parser::{parse, ParseError};

/// Size caps applied before any parsing work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestLimits {
    /// Maximum deck size in bytes.
    pub max_bytes: usize,
    /// Maximum number of lines (element cards plus comments/directives).
    pub max_lines: usize,
}

impl Default for IngestLimits {
    fn default() -> Self {
        // Generous for the paper's benchmark scale (pg5 renders well under
        // 2 MiB) while keeping a rogue upload from ballooning the parser.
        IngestLimits {
            max_bytes: 8 * 1024 * 1024,
            max_lines: 400_000,
        }
    }
}

/// Knobs for one ingestion.
#[derive(Debug, Clone, Copy, Default)]
pub struct IngestOptions {
    /// Size caps; [`IngestLimits::default`] unless overridden.
    pub limits: IngestLimits,
    /// When set, shorted inter-layer vias are retrofitted to this nominal
    /// resistance (Ω) before linting — the paper's §5.2 repair.
    pub repair_vias: Option<f64>,
}

/// Why a deck was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum IngestError {
    /// The deck exceeds [`IngestLimits::max_bytes`].
    TooLarge {
        /// Size of the submitted deck.
        bytes: usize,
        /// The configured cap.
        max_bytes: usize,
    },
    /// The deck exceeds [`IngestLimits::max_lines`].
    TooManyLines {
        /// Lines in the submitted deck.
        lines: usize,
        /// The configured cap.
        max_lines: usize,
    },
    /// A card failed to parse (malformed fields, bad value, unsupported
    /// element, zero/negative resistance).
    Parse(ParseError),
    /// The deck parsed but is structurally unsound; every fatal issue is
    /// listed.
    Lint(Vec<LintIssue>),
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::TooLarge { bytes, max_bytes } => {
                write!(f, "netlist too large: {bytes} bytes (limit {max_bytes})")
            }
            IngestError::TooManyLines { lines, max_lines } => {
                write!(f, "netlist too long: {lines} lines (limit {max_lines})")
            }
            IngestError::Parse(e) => write!(f, "parse error: {e}"),
            IngestError::Lint(issues) => {
                write!(f, "netlist rejected by lint ({} issues):", issues.len())?;
                for issue in issues {
                    write!(f, " {issue};")?;
                }
                Ok(())
            }
        }
    }
}

impl Error for IngestError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            IngestError::Parse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for IngestError {
    fn from(e: ParseError) -> Self {
        IngestError::Parse(e)
    }
}

/// A successfully screened deck.
#[derive(Debug)]
pub struct Ingested {
    /// The parsed (and possibly via-repaired) netlist.
    pub netlist: Netlist,
    /// Non-fatal findings left in the deck (shorted vias when no repair
    /// was requested).
    pub warnings: Vec<LintIssue>,
    /// How many vias [`IngestOptions::repair_vias`] retrofitted.
    pub repaired_vias: usize,
}

/// Whether a lint finding rejects the deck.
///
/// Everything except [`LintIssue::ShortedVia`] is fatal: floating nodes
/// and islands leave node voltages undefined, duplicate names make element
/// currents ambiguous, and a zero-volt pad shorts the grid to ground.
pub fn is_fatal(issue: &LintIssue) -> bool {
    !matches!(issue, LintIssue::ShortedVia { .. })
}

/// Screens an untrusted SPICE deck: enforces [`IngestLimits`], parses,
/// optionally repairs shorted vias, and rejects decks with fatal lint
/// findings.
///
/// # Errors
///
/// Returns the first applicable [`IngestError`]; limit violations are
/// detected before any parsing work.
///
/// # Example
///
/// ```
/// use emgrid_spice::ingest::{ingest, IngestOptions};
///
/// let deck = "V1 a 0 1.8\nR1 a b 1.0\nR2 b 0 1.0\n.end";
/// let ok = ingest(deck, &IngestOptions::default()).unwrap();
/// assert_eq!(ok.netlist.counts(), (2, 1, 0));
/// ```
pub fn ingest(deck: &str, options: &IngestOptions) -> Result<Ingested, IngestError> {
    let limits = options.limits;
    if deck.len() > limits.max_bytes {
        return Err(IngestError::TooLarge {
            bytes: deck.len(),
            max_bytes: limits.max_bytes,
        });
    }
    let lines = deck.lines().count();
    if lines > limits.max_lines {
        return Err(IngestError::TooManyLines {
            lines,
            max_lines: limits.max_lines,
        });
    }
    let mut netlist = parse(deck)?;
    let repaired_vias = match options.repair_vias {
        Some(nominal) => repair_shorted_vias(&mut netlist, nominal),
        None => 0,
    };
    let (fatal, warnings): (Vec<_>, Vec<_>) = lint(&netlist).into_iter().partition(is_fatal);
    if !fatal.is_empty() {
        return Err(IngestError::Lint(fatal));
    }
    Ok(Ingested {
        netlist,
        warnings,
        repaired_vias,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::ParseErrorKind;

    fn small_limits() -> IngestOptions {
        IngestOptions {
            limits: IngestLimits {
                max_bytes: 64,
                max_lines: 4,
            },
            repair_vias: None,
        }
    }

    #[test]
    fn accepts_a_clean_generated_deck() {
        let deck =
            crate::writer::write_string(&crate::benchgen::GridSpec::custom("t", 6, 6).generate());
        let ok = ingest(&deck, &IngestOptions::default()).unwrap();
        assert!(ok.warnings.is_empty(), "{:?}", ok.warnings);
        assert_eq!(ok.repaired_vias, 0);
        assert!(ok.netlist.node_count() > 0);
    }

    #[test]
    fn rejects_malformed_element_lines() {
        // Too few fields.
        let err = ingest("V1 a 0 1.8\nR1 a b\n", &IngestOptions::default()).unwrap_err();
        match &err {
            IngestError::Parse(p) => {
                assert_eq!(p.line, 2);
                assert_eq!(p.kind, ParseErrorKind::MissingFields);
            }
            other => panic!("expected parse error, got {other:?}"),
        }
        // Unsupported element type.
        let err = ingest("C1 a b 1p\n", &IngestOptions::default()).unwrap_err();
        assert!(
            matches!(&err, IngestError::Parse(p) if matches!(p.kind, ParseErrorKind::UnsupportedElement('C'))),
            "{err:?}"
        );
        // Unparsable value.
        let err = ingest("R1 a b 1.2.3\n", &IngestOptions::default()).unwrap_err();
        assert!(
            matches!(&err, IngestError::Parse(p) if matches!(p.kind, ParseErrorKind::BadValue(_))),
            "{err:?}"
        );
        assert!(err.to_string().starts_with("parse error: "), "{err}");
    }

    #[test]
    fn rejects_duplicate_names() {
        let deck = "V1 a 0 1.8\nR1 a b 1.0\nR1 b 0 1.0\n";
        let err = ingest(deck, &IngestOptions::default()).unwrap_err();
        let IngestError::Lint(issues) = &err else {
            panic!("expected lint rejection, got {err:?}");
        };
        assert!(
            issues
                .iter()
                .any(|i| matches!(i, LintIssue::DuplicateName { name } if name == "R1")),
            "{issues:?}"
        );
        assert!(err.to_string().contains("duplicate element name"), "{err}");
    }

    #[test]
    fn rejects_zero_resistance_branches() {
        // Zero resistance is a parse-level rejection (value must be > 0)…
        let err = ingest("V1 a 0 1.8\nR1 a 0 0\n", &IngestOptions::default()).unwrap_err();
        assert!(
            matches!(&err, IngestError::Parse(p) if matches!(p.kind, ParseErrorKind::NonPositiveResistance(_))),
            "{err:?}"
        );
        // …while a near-zero *via* is only a warning, repairable on request.
        let deck = "V1 n3_0_0 0 1.8\nRv n1_0_0 n3_0_0 1e-6\nR1 n1_0_0 n1_1_0 0.5\nI1 n1_1_0 0 1m\n";
        let ok = ingest(deck, &IngestOptions::default()).unwrap();
        assert!(
            ok.warnings
                .iter()
                .any(|i| matches!(i, LintIssue::ShortedVia { name, .. } if name == "Rv")),
            "{:?}",
            ok.warnings
        );
        let repaired = ingest(
            deck,
            &IngestOptions {
                repair_vias: Some(0.5),
                ..IngestOptions::default()
            },
        )
        .unwrap();
        assert_eq!(repaired.repaired_vias, 1);
        assert!(repaired.warnings.is_empty(), "{:?}", repaired.warnings);
    }

    #[test]
    fn rejects_floating_nodes_and_islands() {
        let err = ingest(
            "V1 a 0 1.0\nR1 a b 1.0\nR2 b 0 1.0\nI1 c 0 1m\n",
            &IngestOptions::default(),
        )
        .unwrap_err();
        assert!(
            matches!(&err, IngestError::Lint(is) if is.iter().any(|i| matches!(i, LintIssue::FloatingNode { .. }))),
            "{err:?}"
        );
        let err = ingest(
            "V1 a 0 1.0\nR1 a b 1.0\nR2 c d 1.0\n",
            &IngestOptions::default(),
        )
        .unwrap_err();
        assert!(
            matches!(&err, IngestError::Lint(is) if is.iter().any(|i| matches!(i, LintIssue::UnreachableIsland { .. }))),
            "{err:?}"
        );
    }

    #[test]
    fn rejects_oversized_netlists_before_parsing() {
        // Over the byte cap: even an unparsable payload is rejected by size
        // alone, so the parser never sees it.
        let big = "@".repeat(65);
        let err = ingest(&big, &small_limits()).unwrap_err();
        assert_eq!(
            err,
            IngestError::TooLarge {
                bytes: 65,
                max_bytes: 64
            }
        );
        assert!(err.to_string().contains("netlist too large"), "{err}");

        // Under the byte cap but over the line cap.
        let tall = "* c\n".repeat(5);
        let err = ingest(&tall, &small_limits()).unwrap_err();
        assert_eq!(
            err,
            IngestError::TooManyLines {
                lines: 5,
                max_lines: 4
            }
        );
    }
}
