//! Synthetic IBM-style power-grid benchmark generator.
//!
//! The original benchmarks of Nassif (ASP-DAC 2008) are not redistributable,
//! so this generator reproduces their structural properties at configurable
//! scale: a metal stack of alternating-direction stripe layers (odd stack
//! positions run along x, even along y), a via array at every intersection
//! of consecutive layers, voltage pads (with contact resistance) on the
//! top-layer perimeter, and per-node current loads with a deterministic
//! hotspot — tuned, as the paper tunes its decks, "to obtain a reasonable
//! IR drop" (§5.2).
//!
//! The classic profiles (`pg1`, `pg2`, `pg5`) are two-layer meshes at the
//! paper's scale; the chip-scale profiles (`pg100k`, `pg1m`) grow the same
//! structure to multi-layer grids of 10⁵–10⁶ nodes for the screening
//! subsystem. Segment resistance is interpolated geometrically from the
//! thin lower layer to the thick top metal, so intermediate layers behave
//! like real mid-stack metal.
//!
//! Electrical defaults are chosen so the **via current densities** land
//! around the paper's characterization point (`1×10¹⁰ A/m²` for a 1 µm²
//! array): thick low-resistance top metal and a dense perimeter pad ring
//! spread the pad current over many vias, as real flip-chip grids do.

use crate::netlist::{Element, Netlist};

/// A synthetic power-grid specification.
#[derive(Debug, Clone, PartialEq)]
pub struct GridSpec {
    /// Benchmark name (used in reports).
    pub name: String,
    /// Intersections along x.
    pub nx: usize,
    /// Intersections along y.
    pub ny: usize,
    /// Metal layers in the stack (2 for the classic profiles).
    pub layers: usize,
    /// Supply voltage, V.
    pub vdd: f64,
    /// Lower-layer stripe segment resistance between intersections, Ω.
    pub lower_segment_resistance: f64,
    /// Upper-layer (thick top metal) stripe segment resistance, Ω.
    pub upper_segment_resistance: f64,
    /// Nominal via-array resistance at each intersection, Ω.
    pub via_resistance: f64,
    /// Pad contact resistance, Ω.
    pub pad_resistance: f64,
    /// Place a pad at every k-th top-layer perimeter node.
    pub pad_spacing: usize,
    /// Average load current per lower-layer node, A.
    pub load_current: f64,
    /// Relative amplitude of the central load hotspot (0 = uniform).
    pub hotspot: f64,
}

impl GridSpec {
    /// A custom two-layer grid with the default electrical parameters.
    pub fn custom(name: impl Into<String>, nx: usize, ny: usize) -> Self {
        GridSpec {
            name: name.into(),
            nx,
            ny,
            layers: 2,
            vdd: 1.8,
            lower_segment_resistance: 1.5,
            upper_segment_resistance: 0.06,
            via_resistance: 2.0,
            pad_resistance: 0.15,
            pad_spacing: 2,
            load_current: 4.0e-3,
            hotspot: 0.8,
        }
    }

    /// `pg1`: the smallest profile (24×24 mesh, 1 152 nodes) — scaled-down
    /// stand-in for the paper's PG1.
    pub fn pg1() -> Self {
        GridSpec::custom("pg1", 24, 24)
    }

    /// `pg2`: medium profile (32×32 mesh, 2 048 nodes), slightly lighter
    /// per-node loading.
    pub fn pg2() -> Self {
        GridSpec {
            load_current: 3.2e-3,
            ..GridSpec::custom("pg2", 32, 32)
        }
    }

    /// `pg5`: large profile (40×40 mesh, 3 200 nodes) with the lightest
    /// load per node (bigger grids spread their current), giving it the
    /// longest lifetimes — matching PG5's role in the paper's Table 2.
    pub fn pg5() -> Self {
        GridSpec {
            load_current: 2.0e-3,
            ..GridSpec::custom("pg5", 40, 40)
        }
    }

    /// `pg100k`: chip-scale screening profile — a 180×180, 3-layer stack
    /// of 97 200 nodes. Per-node load shrinks with grid area so the total
    /// current (and thus the IR drop across the top-metal spreading mesh)
    /// stays in the tuned regime.
    pub fn pg100k() -> Self {
        GridSpec {
            layers: 3,
            load_current: 1.0e-4,
            hotspot: 0.6,
            ..GridSpec::custom("pg100k", 180, 180)
        }
    }

    /// `pg1m`: the million-node profile — 512×512 intersections across a
    /// 4-layer stack (1 048 576 nodes). The regime the screening
    /// subsystem exists for: far past what per-via Monte Carlo can price
    /// directly.
    pub fn pg1m() -> Self {
        GridSpec {
            layers: 4,
            load_current: 1.4e-5,
            hotspot: 0.6,
            ..GridSpec::custom("pg1m", 512, 512)
        }
    }

    /// The built-in profile named `name`, if any.
    pub fn profile(name: &str) -> Option<GridSpec> {
        match name {
            "pg1" => Some(GridSpec::pg1()),
            "pg2" => Some(GridSpec::pg2()),
            "pg5" => Some(GridSpec::pg5()),
            "pg100k" => Some(GridSpec::pg100k()),
            "pg1m" => Some(GridSpec::pg1m()),
            _ => None,
        }
    }

    /// The built-in profile labels, in size order.
    pub const PROFILES: [&'static str; 5] = ["pg1", "pg2", "pg5", "pg100k", "pg1m"];

    /// Number of via-array intersections (per via level).
    pub fn intersection_count(&self) -> usize {
        self.nx * self.ny
    }

    /// Total grid nodes across the stack (excluding pad nodes).
    pub fn node_count(&self) -> usize {
        self.nx * self.ny * self.layers
    }

    /// The layer *label* of stack position `i` (0-based, bottom first).
    /// Two-layer grids keep the classic `n1`/`n3` naming; deeper stacks
    /// number their layers contiguously from 1.
    fn layer_label(&self, i: usize) -> usize {
        if self.layers == 2 {
            [1, 3][i]
        } else {
            i + 1
        }
    }

    /// Grid node name at stack position `i`.
    fn node(&self, i: usize, x: usize, y: usize) -> String {
        let l = self.layer_label(i);
        format!("n{l}_{x}_{y}")
    }

    /// Lower-layer node name.
    pub fn lower_node(&self, x: usize, y: usize) -> String {
        self.node(0, x, y)
    }

    /// Upper-layer node name.
    pub fn upper_node(&self, x: usize, y: usize) -> String {
        self.node(self.layers - 1, x, y)
    }

    /// Stripe segment resistance at stack position `i`: geometric
    /// interpolation from the thin lower layer to the thick top metal
    /// (exactly the two endpoints for a two-layer stack).
    pub fn segment_resistance(&self, i: usize) -> f64 {
        if i == 0 {
            return self.lower_segment_resistance;
        }
        if i == self.layers - 1 {
            return self.upper_segment_resistance;
        }
        let t = i as f64 / (self.layers as f64 - 1.0);
        self.lower_segment_resistance
            * (self.upper_segment_resistance / self.lower_segment_resistance).powf(t)
    }

    /// Load current at intersection `(x, y)`: the average load modulated by
    /// a deterministic central hotspot and a small tile-to-tile ripple.
    pub fn load_at(&self, x: usize, y: usize) -> f64 {
        let cx = (self.nx as f64 - 1.0) / 2.0;
        let cy = (self.ny as f64 - 1.0) / 2.0;
        let sx = self.nx as f64 / 6.0;
        let sy = self.ny as f64 / 6.0;
        let dx = (x as f64 - cx) / sx;
        let dy = (y as f64 - cy) / sy;
        let bump = (-0.5 * (dx * dx + dy * dy)).exp();
        let ripple = ((x * 7 + y * 13) % 10) as f64 / 100.0; // 0..0.09
        self.load_current * (1.0 + self.hotspot * bump + ripple)
    }

    /// Generates the SPICE netlist.
    ///
    /// # Panics
    ///
    /// Panics if the grid is smaller than 2×2, has fewer than 2 layers, or
    /// `pad_spacing == 0`.
    pub fn generate(&self) -> Netlist {
        assert!(self.nx >= 2 && self.ny >= 2, "grid must be at least 2x2");
        assert!(self.layers >= 2, "grid needs at least 2 layers");
        assert!(self.pad_spacing > 0, "pad spacing must be positive");
        let mut n = Netlist::new();

        // Stripes, bottom layer first; odd stack positions run along x,
        // even along y (the classic lower-along-x / upper-along-y layout).
        for i in 0..self.layers {
            let label = self.layer_label(i);
            let r = self.segment_resistance(i);
            if i % 2 == 0 {
                for y in 0..self.ny {
                    for x in 0..self.nx - 1 {
                        let a = n.intern(&self.node(i, x, y));
                        let b = n.intern(&self.node(i, x + 1, y));
                        n.push(Element::Resistor {
                            name: format!("R{label}_{x}_{y}"),
                            a,
                            b,
                            value: r,
                        });
                    }
                }
            } else {
                for x in 0..self.nx {
                    for y in 0..self.ny - 1 {
                        let a = n.intern(&self.node(i, x, y));
                        let b = n.intern(&self.node(i, x, y + 1));
                        n.push(Element::Resistor {
                            name: format!("R{label}_{x}_{y}"),
                            a,
                            b,
                            value: r,
                        });
                    }
                }
            }
        }
        // Via arrays at every intersection of consecutive layers. The
        // two-layer profiles keep the historical `Rv_` names; deeper
        // stacks tag the via's lower layer label.
        for i in 0..self.layers - 1 {
            let label = self.layer_label(i);
            for y in 0..self.ny {
                for x in 0..self.nx {
                    let a = n.intern(&self.node(i, x, y));
                    let b = n.intern(&self.node(i + 1, x, y));
                    let name = if self.layers == 2 {
                        format!("Rv_{x}_{y}")
                    } else {
                        format!("Rv{label}_{x}_{y}")
                    };
                    n.push(Element::Resistor {
                        name,
                        a,
                        b,
                        value: self.via_resistance,
                    });
                }
            }
        }
        // Pads on the top-layer perimeter.
        let mut pad = 0usize;
        let mut place_pad = |n: &mut Netlist, x: usize, y: usize| {
            let pad_node = n.intern(&format!("pad_{pad}"));
            let grid = n.intern(&self.upper_node(x, y));
            n.push(Element::VoltageSource {
                name: format!("Vp_{pad}"),
                pos: pad_node,
                neg: crate::netlist::Node::Ground,
                value: self.vdd,
            });
            n.push(Element::Resistor {
                name: format!("Rp_{pad}"),
                a: pad_node,
                b: grid,
                value: self.pad_resistance,
            });
            pad += 1;
        };
        for x in (0..self.nx).step_by(self.pad_spacing) {
            place_pad(&mut n, x, 0);
            place_pad(&mut n, x, self.ny - 1);
        }
        for y in (0..self.ny).step_by(self.pad_spacing) {
            if y != 0 && y != self.ny - 1 {
                place_pad(&mut n, 0, y);
                place_pad(&mut n, self.nx - 1, y);
            }
        }
        // Loads at every lower-layer node.
        for y in 0..self.ny {
            for x in 0..self.nx {
                let node = n.intern(&self.lower_node(x, y));
                n.push(Element::CurrentSource {
                    name: format!("I_{x}_{y}"),
                    pos: node,
                    neg: crate::netlist::Node::Ground,
                    value: self.load_at(x, y),
                });
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mna::DcAnalysis;

    #[test]
    fn element_counts_match_structure() {
        let spec = GridSpec::custom("t", 4, 5);
        let n = spec.generate();
        let (r, v, i) = n.counts();
        // Stripes: 5*(4-1) + 4*(5-1) = 31; vias: 20; pads contribute 1 R
        // each; loads: 20 current sources.
        assert_eq!(i, 20);
        assert_eq!(r, 31 + 20 + v);
        assert!(v > 0);
    }

    #[test]
    fn multi_layer_counts_match_structure() {
        let spec = GridSpec {
            layers: 4,
            ..GridSpec::custom("t4", 5, 6)
        };
        let n = spec.generate();
        let (r, v, i) = n.counts();
        assert_eq!(i, 30);
        assert_eq!(spec.node_count(), 120);
        // Stripes: x-layers (positions 0, 2): 6*(5-1)=24 each; y-layers
        // (1, 3): 5*(6-1)=25 each. Vias: 3 levels of 30.
        assert_eq!(r, 2 * 24 + 2 * 25 + 3 * 30 + v);
        assert!(v > 0);
        // Every grid node exists under its layered name.
        for l in 1..=4 {
            assert!(n.node_id(&format!("n{l}_2_3")).is_some(), "layer {l}");
        }
    }

    #[test]
    fn nominal_ir_drop_is_reasonable() {
        // The paper tunes wire geometry for "a reasonable IR drop"; the
        // default profiles must land comfortably inside the 10% Vdd failure
        // threshold but not be trivially over-designed.
        for spec in [GridSpec::pg1(), GridSpec::pg2(), GridSpec::pg5()] {
            let n = spec.generate();
            let s = DcAnalysis::new(&n).unwrap().solve().unwrap();
            let drop = (spec.vdd - s.min_voltage()) / spec.vdd;
            assert!(
                drop > 0.02 && drop < 0.09,
                "{}: nominal IR drop {:.1}% of Vdd",
                spec.name,
                drop * 100.0
            );
        }
    }

    #[test]
    fn chip_scale_profile_ir_drop_is_reasonable() {
        // pg100k is the largest profile a unit test can afford to solve;
        // pg1m shares its structure and tuning law and is exercised by the
        // release-mode screen smoke job.
        let spec = GridSpec::pg100k();
        let n = spec.generate();
        let s = DcAnalysis::new(&n).unwrap().solve().unwrap();
        let drop = (spec.vdd - s.min_voltage()) / spec.vdd;
        assert!(
            drop > 0.01 && drop < 0.09,
            "pg100k: nominal IR drop {:.1}% of Vdd",
            drop * 100.0
        );
    }

    #[test]
    fn via_current_densities_straddle_the_characterization_point() {
        // DESIGN.md §2: the generator is tuned so via current densities for
        // a 1 µm² array bracket the paper's 1e10 A/m² reference.
        let spec = GridSpec::pg1();
        let n = spec.generate();
        let s = DcAnalysis::new(&n).unwrap().solve().unwrap();
        let mut currents: Vec<f64> = n
            .resistors()
            .filter(|(_, e)| e.name().starts_with("Rv"))
            .map(|(_, e)| s.resistor_current(e).abs())
            .collect();
        currents.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = currents[currents.len() / 2] / 1e-12;
        let max = currents.last().expect("non-empty") / 1e-12;
        assert!(
            median > 1e9 && median < 2e10,
            "median via j = {median:.2e} A/m²"
        );
        assert!(max > 5e9 && max < 8e10, "max via j = {max:.2e} A/m²");
    }

    #[test]
    fn hotspot_center_sees_the_worst_voltage() {
        let spec = GridSpec::pg1();
        let n = spec.generate();
        let s = DcAnalysis::new(&n).unwrap().solve().unwrap();
        let v_center = s.voltage(
            n.node_id(&spec.lower_node(spec.nx / 2, spec.ny / 2))
                .unwrap(),
        );
        let v_corner = s.voltage(n.node_id(&spec.lower_node(1, 1)).unwrap());
        assert!(v_center < v_corner);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = GridSpec::pg1().generate();
        let b = GridSpec::pg1().generate();
        assert_eq!(a.counts(), b.counts());
        let wa = crate::writer::write_string(&a);
        let wb = crate::writer::write_string(&b);
        assert_eq!(wa, wb);
    }

    #[test]
    fn two_layer_output_keeps_the_classic_names() {
        // The multi-layer generalization must not disturb the classic
        // profiles: layer labels stay n1/n3 and vias stay `Rv_`, so decks
        // generated before and after the change are byte-identical.
        let deck = crate::writer::write_string(&GridSpec::custom("t", 4, 4).generate());
        assert!(deck.contains("n1_0_0"), "{deck}");
        assert!(deck.contains("n3_0_0"), "{deck}");
        assert!(!deck.contains("n2_"), "{deck}");
        assert!(deck.contains("Rv_0_0"), "{deck}");
        assert!(!deck.contains("Rv1_"), "{deck}");
    }

    #[test]
    fn profiles_resolve_by_name() {
        for name in GridSpec::PROFILES {
            let spec = GridSpec::profile(name).unwrap();
            assert_eq!(spec.name, name);
        }
        assert!(GridSpec::profile("pg9").is_none());
        assert!(GridSpec::profile("pg1m").unwrap().node_count() >= 1_000_000);
    }

    #[test]
    fn round_trips_through_parser_and_solves_identically() {
        let spec = GridSpec::custom("rt", 6, 6);
        let n = spec.generate();
        let deck = crate::writer::write_string(&n);
        let reparsed = crate::parser::parse(&deck).unwrap();
        let s1 = DcAnalysis::new(&n).unwrap().solve().unwrap();
        let s2 = DcAnalysis::new(&reparsed).unwrap().solve().unwrap();
        let center = spec.lower_node(3, 3);
        let v1 = s1.voltage(n.node_id(&center).unwrap());
        let v2 = s2.voltage(reparsed.node_id(&center).unwrap());
        assert!((v1 - v2).abs() < 1e-12);
    }

    #[test]
    fn bigger_profiles_have_more_vias() {
        assert!(GridSpec::pg5().intersection_count() > GridSpec::pg2().intersection_count());
        assert!(GridSpec::pg2().intersection_count() > GridSpec::pg1().intersection_count());
    }

    #[test]
    fn segment_resistance_interpolates_monotonically() {
        let spec = GridSpec::pg1m();
        let mut last = f64::INFINITY;
        for i in 0..spec.layers {
            let r = spec.segment_resistance(i);
            assert!(r < last, "layer {i}: {r} not below {last}");
            last = r;
        }
        assert_eq!(spec.segment_resistance(0), spec.lower_segment_resistance);
        assert_eq!(
            spec.segment_resistance(spec.layers - 1),
            spec.upper_segment_resistance
        );
    }

    #[test]
    fn load_ripple_is_bounded_and_positive() {
        let spec = GridSpec::pg1();
        for y in 0..spec.ny {
            for x in 0..spec.nx {
                let load = spec.load_at(x, y);
                assert!(load > 0.0);
                assert!(load < spec.load_current * 2.0);
            }
        }
    }
}
