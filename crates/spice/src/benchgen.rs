//! Synthetic IBM-style power-grid benchmark generator.
//!
//! The original benchmarks of Nassif (ASP-DAC 2008) are not redistributable,
//! so this generator reproduces their structural properties at configurable
//! scale: a two-layer mesh (lower stripes along x on layer `n1`, upper
//! stripes along y on layer `n3`), a via array at every intersection,
//! voltage pads (with contact resistance) on the top-layer perimeter, and
//! per-node current loads with a deterministic hotspot — tuned, as the paper
//! tunes its decks, "to obtain a reasonable IR drop" (§5.2).
//!
//! Electrical defaults are chosen so the **via current densities** land
//! around the paper's characterization point (`1×10¹⁰ A/m²` for a 1 µm²
//! array): thick low-resistance top metal and a dense perimeter pad ring
//! spread the pad current over many vias, as real flip-chip grids do.

use crate::netlist::{Element, Netlist};

/// A synthetic two-layer power-grid specification.
#[derive(Debug, Clone, PartialEq)]
pub struct GridSpec {
    /// Benchmark name (used in reports).
    pub name: String,
    /// Intersections along x.
    pub nx: usize,
    /// Intersections along y.
    pub ny: usize,
    /// Supply voltage, V.
    pub vdd: f64,
    /// Lower-layer stripe segment resistance between intersections, Ω.
    pub lower_segment_resistance: f64,
    /// Upper-layer (thick top metal) stripe segment resistance, Ω.
    pub upper_segment_resistance: f64,
    /// Nominal via-array resistance at each intersection, Ω.
    pub via_resistance: f64,
    /// Pad contact resistance, Ω.
    pub pad_resistance: f64,
    /// Place a pad at every k-th top-layer perimeter node.
    pub pad_spacing: usize,
    /// Average load current per lower-layer node, A.
    pub load_current: f64,
    /// Relative amplitude of the central load hotspot (0 = uniform).
    pub hotspot: f64,
}

impl GridSpec {
    /// A custom grid with the default electrical parameters.
    pub fn custom(name: impl Into<String>, nx: usize, ny: usize) -> Self {
        GridSpec {
            name: name.into(),
            nx,
            ny,
            vdd: 1.8,
            lower_segment_resistance: 1.5,
            upper_segment_resistance: 0.06,
            via_resistance: 2.0,
            pad_resistance: 0.15,
            pad_spacing: 2,
            load_current: 4.0e-3,
            hotspot: 0.8,
        }
    }

    /// `pg1`: the smallest profile (24×24 mesh, 1 152 nodes) — scaled-down
    /// stand-in for the paper's PG1.
    pub fn pg1() -> Self {
        GridSpec::custom("pg1", 24, 24)
    }

    /// `pg2`: medium profile (32×32 mesh, 2 048 nodes), slightly lighter
    /// per-node loading.
    pub fn pg2() -> Self {
        GridSpec {
            load_current: 3.2e-3,
            ..GridSpec::custom("pg2", 32, 32)
        }
    }

    /// `pg5`: large profile (40×40 mesh, 3 200 nodes) with the lightest
    /// load per node (bigger grids spread their current), giving it the
    /// longest lifetimes — matching PG5's role in the paper's Table 2.
    pub fn pg5() -> Self {
        GridSpec {
            load_current: 2.0e-3,
            ..GridSpec::custom("pg5", 40, 40)
        }
    }

    /// Number of via-array intersections.
    pub fn intersection_count(&self) -> usize {
        self.nx * self.ny
    }

    /// Lower-layer node name.
    pub fn lower_node(&self, x: usize, y: usize) -> String {
        format!("n1_{x}_{y}")
    }

    /// Upper-layer node name.
    pub fn upper_node(&self, x: usize, y: usize) -> String {
        format!("n3_{x}_{y}")
    }

    /// Load current at intersection `(x, y)`: the average load modulated by
    /// a deterministic central hotspot and a small tile-to-tile ripple.
    pub fn load_at(&self, x: usize, y: usize) -> f64 {
        let cx = (self.nx as f64 - 1.0) / 2.0;
        let cy = (self.ny as f64 - 1.0) / 2.0;
        let sx = self.nx as f64 / 6.0;
        let sy = self.ny as f64 / 6.0;
        let dx = (x as f64 - cx) / sx;
        let dy = (y as f64 - cy) / sy;
        let bump = (-0.5 * (dx * dx + dy * dy)).exp();
        let ripple = ((x * 7 + y * 13) % 10) as f64 / 100.0; // 0..0.09
        self.load_current * (1.0 + self.hotspot * bump + ripple)
    }

    /// Generates the SPICE netlist.
    ///
    /// # Panics
    ///
    /// Panics if the grid is smaller than 2×2 or `pad_spacing == 0`.
    pub fn generate(&self) -> Netlist {
        assert!(self.nx >= 2 && self.ny >= 2, "grid must be at least 2x2");
        assert!(self.pad_spacing > 0, "pad spacing must be positive");
        let mut n = Netlist::new();

        // Lower-layer stripes along x.
        for y in 0..self.ny {
            for x in 0..self.nx - 1 {
                let a = n.intern(&self.lower_node(x, y));
                let b = n.intern(&self.lower_node(x + 1, y));
                n.push(Element::Resistor {
                    name: format!("R1_{x}_{y}"),
                    a,
                    b,
                    value: self.lower_segment_resistance,
                });
            }
        }
        // Upper-layer stripes along y.
        for x in 0..self.nx {
            for y in 0..self.ny - 1 {
                let a = n.intern(&self.upper_node(x, y));
                let b = n.intern(&self.upper_node(x, y + 1));
                n.push(Element::Resistor {
                    name: format!("R3_{x}_{y}"),
                    a,
                    b,
                    value: self.upper_segment_resistance,
                });
            }
        }
        // Via arrays at every intersection.
        for y in 0..self.ny {
            for x in 0..self.nx {
                let a = n.intern(&self.lower_node(x, y));
                let b = n.intern(&self.upper_node(x, y));
                n.push(Element::Resistor {
                    name: format!("Rv_{x}_{y}"),
                    a,
                    b,
                    value: self.via_resistance,
                });
            }
        }
        // Pads on the top-layer perimeter.
        let mut pad = 0usize;
        let mut place_pad = |n: &mut Netlist, x: usize, y: usize| {
            let pad_node = n.intern(&format!("pad_{pad}"));
            let grid = n.intern(&self.upper_node(x, y));
            n.push(Element::VoltageSource {
                name: format!("Vp_{pad}"),
                pos: pad_node,
                neg: crate::netlist::Node::Ground,
                value: self.vdd,
            });
            n.push(Element::Resistor {
                name: format!("Rp_{pad}"),
                a: pad_node,
                b: grid,
                value: self.pad_resistance,
            });
            pad += 1;
        };
        for x in (0..self.nx).step_by(self.pad_spacing) {
            place_pad(&mut n, x, 0);
            place_pad(&mut n, x, self.ny - 1);
        }
        for y in (0..self.ny).step_by(self.pad_spacing) {
            if y != 0 && y != self.ny - 1 {
                place_pad(&mut n, 0, y);
                place_pad(&mut n, self.nx - 1, y);
            }
        }
        // Loads at every lower-layer node.
        for y in 0..self.ny {
            for x in 0..self.nx {
                let node = n.intern(&self.lower_node(x, y));
                n.push(Element::CurrentSource {
                    name: format!("I_{x}_{y}"),
                    pos: node,
                    neg: crate::netlist::Node::Ground,
                    value: self.load_at(x, y),
                });
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mna::DcAnalysis;

    #[test]
    fn element_counts_match_structure() {
        let spec = GridSpec::custom("t", 4, 5);
        let n = spec.generate();
        let (r, v, i) = n.counts();
        // Stripes: 5*(4-1) + 4*(5-1) = 31; vias: 20; pads contribute 1 R
        // each; loads: 20 current sources.
        assert_eq!(i, 20);
        assert_eq!(r, 31 + 20 + v);
        assert!(v > 0);
    }

    #[test]
    fn nominal_ir_drop_is_reasonable() {
        // The paper tunes wire geometry for "a reasonable IR drop"; the
        // default profiles must land comfortably inside the 10% Vdd failure
        // threshold but not be trivially over-designed.
        for spec in [GridSpec::pg1(), GridSpec::pg2(), GridSpec::pg5()] {
            let n = spec.generate();
            let s = DcAnalysis::new(&n).unwrap().solve().unwrap();
            let drop = (spec.vdd - s.min_voltage()) / spec.vdd;
            assert!(
                drop > 0.02 && drop < 0.09,
                "{}: nominal IR drop {:.1}% of Vdd",
                spec.name,
                drop * 100.0
            );
        }
    }

    #[test]
    fn via_current_densities_straddle_the_characterization_point() {
        // DESIGN.md §2: the generator is tuned so via current densities for
        // a 1 µm² array bracket the paper's 1e10 A/m² reference.
        let spec = GridSpec::pg1();
        let n = spec.generate();
        let s = DcAnalysis::new(&n).unwrap().solve().unwrap();
        let mut currents: Vec<f64> = n
            .resistors()
            .filter(|(_, e)| e.name().starts_with("Rv"))
            .map(|(_, e)| s.resistor_current(e).abs())
            .collect();
        currents.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = currents[currents.len() / 2] / 1e-12;
        let max = currents.last().expect("non-empty") / 1e-12;
        assert!(
            median > 1e9 && median < 2e10,
            "median via j = {median:.2e} A/m²"
        );
        assert!(max > 5e9 && max < 8e10, "max via j = {max:.2e} A/m²");
    }

    #[test]
    fn hotspot_center_sees_the_worst_voltage() {
        let spec = GridSpec::pg1();
        let n = spec.generate();
        let s = DcAnalysis::new(&n).unwrap().solve().unwrap();
        let v_center = s.voltage(
            n.node_id(&spec.lower_node(spec.nx / 2, spec.ny / 2))
                .unwrap(),
        );
        let v_corner = s.voltage(n.node_id(&spec.lower_node(1, 1)).unwrap());
        assert!(v_center < v_corner);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = GridSpec::pg1().generate();
        let b = GridSpec::pg1().generate();
        assert_eq!(a.counts(), b.counts());
        let wa = crate::writer::write_string(&a);
        let wb = crate::writer::write_string(&b);
        assert_eq!(wa, wb);
    }

    #[test]
    fn round_trips_through_parser_and_solves_identically() {
        let spec = GridSpec::custom("rt", 6, 6);
        let n = spec.generate();
        let deck = crate::writer::write_string(&n);
        let reparsed = crate::parser::parse(&deck).unwrap();
        let s1 = DcAnalysis::new(&n).unwrap().solve().unwrap();
        let s2 = DcAnalysis::new(&reparsed).unwrap().solve().unwrap();
        let center = spec.lower_node(3, 3);
        let v1 = s1.voltage(n.node_id(&center).unwrap());
        let v2 = s2.voltage(reparsed.node_id(&center).unwrap());
        assert!((v1 - v2).abs() < 1e-12);
    }

    #[test]
    fn bigger_profiles_have_more_vias() {
        assert!(GridSpec::pg5().intersection_count() > GridSpec::pg2().intersection_count());
        assert!(GridSpec::pg2().intersection_count() > GridSpec::pg1().intersection_count());
    }

    #[test]
    fn load_ripple_is_bounded_and_positive() {
        let spec = GridSpec::pg1();
        for y in 0..spec.ny {
            for x in 0..spec.nx {
                let load = spec.load_at(x, y);
                assert!(load > 0.0);
                assert!(load < spec.load_current * 2.0);
            }
        }
    }
}
