//! The netlist data model.

use std::collections::HashMap;

/// A circuit node: ground or an interned named node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Node {
    /// The reference node (`0` or `gnd` in the deck).
    Ground,
    /// An interned node: an index into the netlist's name table (see
    /// [`Netlist::node_name`]).
    Id(u32),
}

impl Node {
    /// The interned index, or `None` for ground.
    pub fn id(self) -> Option<u32> {
        match self {
            Node::Ground => None,
            Node::Id(i) => Some(i),
        }
    }
}

/// Layer/position metadata decoded from an IBM-style node name
/// `n<layer>_<x>_<y>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeInfo {
    /// Metal layer number.
    pub layer: u32,
    /// X coordinate (grid units).
    pub x: i64,
    /// Y coordinate (grid units).
    pub y: i64,
}

impl NodeInfo {
    /// Parses `n<layer>_<x>_<y>`; returns `None` for other shapes.
    pub fn parse(name: &str) -> Option<NodeInfo> {
        let rest = name.strip_prefix(['n', 'N'])?;
        let mut parts = rest.split('_');
        let layer = parts.next()?.parse().ok()?;
        let x = parts.next()?.parse().ok()?;
        let y = parts.next()?.parse().ok()?;
        if parts.next().is_some() {
            return None;
        }
        Some(NodeInfo { layer, x, y })
    }
}

/// One circuit element.
#[derive(Debug, Clone, PartialEq)]
pub enum Element {
    /// A resistor between `a` and `b` (Ω).
    Resistor {
        /// Instance name (e.g. `R12`).
        name: String,
        /// First terminal.
        a: Node,
        /// Second terminal.
        b: Node,
        /// Resistance, Ω.
        value: f64,
    },
    /// An ideal voltage source: `pos` is held `value` volts above `neg`.
    VoltageSource {
        /// Instance name.
        name: String,
        /// Positive terminal.
        pos: Node,
        /// Negative terminal.
        neg: Node,
        /// Source voltage, V.
        value: f64,
    },
    /// An ideal current source driving `value` amperes out of `pos`,
    /// through the source, into `neg` (SPICE convention).
    CurrentSource {
        /// Instance name.
        name: String,
        /// Positive terminal.
        pos: Node,
        /// Negative terminal.
        neg: Node,
        /// Source current, A.
        value: f64,
    },
}

impl Element {
    /// The instance name.
    pub fn name(&self) -> &str {
        match self {
            Element::Resistor { name, .. }
            | Element::VoltageSource { name, .. }
            | Element::CurrentSource { name, .. } => name,
        }
    }
}

/// A parsed or generated netlist.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    elements: Vec<Element>,
    node_names: Vec<String>,
    node_ids: HashMap<String, u32>,
}

impl Netlist {
    /// An empty netlist.
    pub fn new() -> Self {
        Netlist::default()
    }

    /// Interns a node name, returning its [`Node`]. `"0"` and `"gnd"`
    /// (case-insensitive) intern to [`Node::Ground`].
    pub fn intern(&mut self, name: &str) -> Node {
        if name == "0" || name.eq_ignore_ascii_case("gnd") {
            return Node::Ground;
        }
        if let Some(&id) = self.node_ids.get(name) {
            return Node::Id(id);
        }
        let id = self.node_names.len() as u32;
        self.node_names.push(name.to_owned());
        self.node_ids.insert(name.to_owned(), id);
        Node::Id(id)
    }

    /// Looks up an existing node id by name.
    pub fn node_id(&self, name: &str) -> Option<Node> {
        if name == "0" || name.eq_ignore_ascii_case("gnd") {
            return Some(Node::Ground);
        }
        self.node_ids.get(name).map(|&i| Node::Id(i))
    }

    /// The name of an interned node.
    pub fn node_name(&self, id: u32) -> &str {
        &self.node_names[id as usize]
    }

    /// Number of interned (non-ground) nodes.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Layer metadata for a node, if the name is IBM-style.
    pub fn node_info(&self, id: u32) -> Option<NodeInfo> {
        NodeInfo::parse(self.node_name(id))
    }

    /// Appends an element.
    pub fn push(&mut self, element: Element) {
        self.elements.push(element);
    }

    /// All elements in deck order.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Mutable access to the elements (used to retrofit via resistances
    /// into benchmark decks whose vias are shorted, per the paper §5.2).
    pub fn elements_mut(&mut self) -> &mut [Element] {
        &mut self.elements
    }

    /// Iterator over resistor elements with their element indices.
    pub fn resistors(&self) -> impl Iterator<Item = (usize, &Element)> + '_ {
        self.elements
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e, Element::Resistor { .. }))
    }

    /// Counts elements of each kind: `(resistors, vsources, isources)`.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut r = 0;
        let mut v = 0;
        let mut i = 0;
        for e in &self.elements {
            match e {
                Element::Resistor { .. } => r += 1,
                Element::VoltageSource { .. } => v += 1,
                Element::CurrentSource { .. } => i += 1,
            }
        }
        (r, v, i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_ground_aware() {
        let mut n = Netlist::new();
        let a = n.intern("n1_2_3");
        let b = n.intern("n1_2_3");
        assert_eq!(a, b);
        assert_eq!(n.node_count(), 1);
        assert_eq!(n.intern("0"), Node::Ground);
        assert_eq!(n.intern("GND"), Node::Ground);
        assert_eq!(n.intern("gnd"), Node::Ground);
        assert_eq!(n.node_count(), 1);
    }

    #[test]
    fn node_info_parses_ibm_names() {
        assert_eq!(
            NodeInfo::parse("n3_120_455"),
            Some(NodeInfo {
                layer: 3,
                x: 120,
                y: 455
            })
        );
        assert_eq!(NodeInfo::parse("N1_0_0").map(|i| i.layer), Some(1));
        assert_eq!(NodeInfo::parse("vdd"), None);
        assert_eq!(NodeInfo::parse("n1_2"), None);
        assert_eq!(NodeInfo::parse("n1_2_3_4"), None);
        assert_eq!(NodeInfo::parse("n1_a_3"), None);
    }

    #[test]
    fn counts_by_kind() {
        let mut n = Netlist::new();
        let a = n.intern("a");
        let b = n.intern("b");
        n.push(Element::Resistor {
            name: "R1".into(),
            a,
            b,
            value: 1.0,
        });
        n.push(Element::VoltageSource {
            name: "V1".into(),
            pos: a,
            neg: Node::Ground,
            value: 1.8,
        });
        n.push(Element::CurrentSource {
            name: "I1".into(),
            pos: b,
            neg: Node::Ground,
            value: 1e-3,
        });
        assert_eq!(n.counts(), (1, 1, 1));
        assert_eq!(n.resistors().count(), 1);
    }
}
