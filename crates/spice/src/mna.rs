//! DC operating-point analysis by modified nodal analysis.
//!
//! Power-grid decks have a restricted topology: resistive mesh, ideal
//! voltage-source **pads** referenced to ground, and ideal current-source
//! **loads**. Voltage sources are eliminated by pinning their node (keeping
//! the system symmetric positive definite so the workspace's sparse
//! Cholesky applies), which is exactly the structure the paper's Monte
//! Carlo re-solves thousands of times.

use std::error::Error;
use std::fmt;

use emgrid_sparse::{CsrMatrix, FactorOptions, LdlFactor, SparseError, TripletMatrix};

use crate::netlist::{Element, Netlist, Node};

/// Errors from building or solving the MNA system.
#[derive(Debug, Clone, PartialEq)]
pub enum MnaError {
    /// A voltage source connects two non-ground nodes (unsupported in the
    /// benchmark subset).
    UnsupportedSource(String),
    /// A node is pinned to two different voltages.
    ConflictingPins(String),
    /// The conductance matrix is singular — some node has no resistive path
    /// to a pad or ground.
    Singular(SparseError),
    /// The deck has no unknowns to solve for.
    Empty,
}

impl fmt::Display for MnaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MnaError::UnsupportedSource(n) => {
                write!(f, "voltage source `{n}` must have one grounded terminal")
            }
            MnaError::ConflictingPins(n) => {
                write!(f, "node `{n}` pinned to conflicting voltages")
            }
            MnaError::Singular(e) => write!(f, "conductance matrix is singular: {e}"),
            MnaError::Empty => write!(f, "netlist has no solvable nodes"),
        }
    }
}

impl Error for MnaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MnaError::Singular(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SparseError> for MnaError {
    fn from(e: SparseError) -> Self {
        MnaError::Singular(e)
    }
}

/// The assembled DC system of a netlist.
#[derive(Debug, Clone)]
pub struct DcAnalysis {
    /// Pinned voltage per node id (`None` = unknown).
    pinned: Vec<Option<f64>>,
    /// Unknown-vector index per node id.
    unknown_index: Vec<Option<usize>>,
    /// Node id per unknown index.
    unknown_node: Vec<u32>,
    matrix: CsrMatrix,
    rhs: Vec<f64>,
}

impl DcAnalysis {
    /// Builds the reduced conductance system for a netlist.
    ///
    /// # Errors
    ///
    /// Returns [`MnaError::UnsupportedSource`] or
    /// [`MnaError::ConflictingPins`] for malformed sources, and
    /// [`MnaError::Empty`] when nothing is solvable.
    pub fn new(netlist: &Netlist) -> Result<Self, MnaError> {
        let nn = netlist.node_count();
        let mut pinned: Vec<Option<f64>> = vec![None; nn];

        // Pass 1: voltage sources pin nodes.
        for e in netlist.elements() {
            if let Element::VoltageSource {
                name,
                pos,
                neg,
                value,
            } = e
            {
                let (node, v) = match (pos, neg) {
                    (Node::Id(i), Node::Ground) => (*i, *value),
                    (Node::Ground, Node::Id(i)) => (*i, -*value),
                    (Node::Ground, Node::Ground) => continue,
                    _ => return Err(MnaError::UnsupportedSource(name.clone())),
                };
                let slot = &mut pinned[node as usize];
                match slot {
                    Some(existing) if (*existing - v).abs() > 1e-12 => {
                        return Err(MnaError::ConflictingPins(
                            netlist.node_name(node).to_owned(),
                        ))
                    }
                    _ => *slot = Some(v),
                }
            }
        }

        // Pass 2: number unknowns.
        let mut unknown_index = vec![None; nn];
        let mut unknown_node = Vec::new();
        for id in 0..nn {
            if pinned[id].is_none() {
                unknown_index[id] = Some(unknown_node.len());
                unknown_node.push(id as u32);
            }
        }
        if unknown_node.is_empty() {
            return Err(MnaError::Empty);
        }
        let n = unknown_node.len();

        // Pass 3: stamp.
        let mut g = TripletMatrix::with_capacity(n, n, netlist.elements().len() * 4);
        let mut rhs = vec![0.0f64; n];
        // Ensure every unknown appears on the diagonal (possibly zero) so
        // the factorization reports dangling nodes as non-PD pivots rather
        // than panicking on pattern holes.
        for i in 0..n {
            g.push(i, i, 0.0);
        }
        let classify = |node: Node| -> NodeClass {
            match node {
                Node::Ground => NodeClass::Fixed(0.0),
                Node::Id(i) => match pinned[i as usize] {
                    Some(v) => NodeClass::Fixed(v),
                    None => NodeClass::Unknown(unknown_index[i as usize].expect("numbered")),
                },
            }
        };
        for e in netlist.elements() {
            match e {
                Element::Resistor { a, b, value, .. } => {
                    let cond = 1.0 / value;
                    match (classify(*a), classify(*b)) {
                        (NodeClass::Unknown(i), NodeClass::Unknown(j)) => {
                            g.push(i, i, cond);
                            g.push(j, j, cond);
                            g.push(i, j, -cond);
                            g.push(j, i, -cond);
                        }
                        (NodeClass::Unknown(i), NodeClass::Fixed(v))
                        | (NodeClass::Fixed(v), NodeClass::Unknown(i)) => {
                            g.push(i, i, cond);
                            rhs[i] += cond * v;
                        }
                        (NodeClass::Fixed(_), NodeClass::Fixed(_)) => {}
                    }
                }
                Element::CurrentSource {
                    pos, neg, value, ..
                } => {
                    if let NodeClass::Unknown(i) = classify(*pos) {
                        rhs[i] -= value;
                    }
                    if let NodeClass::Unknown(i) = classify(*neg) {
                        rhs[i] += value;
                    }
                }
                Element::VoltageSource { .. } => {}
            }
        }

        Ok(DcAnalysis {
            pinned,
            unknown_index,
            unknown_node,
            matrix: g.to_csr(),
            rhs,
        })
    }

    /// The reduced SPD conductance matrix.
    pub fn matrix(&self) -> &CsrMatrix {
        &self.matrix
    }

    /// The reduced right-hand side.
    pub fn rhs(&self) -> &[f64] {
        &self.rhs
    }

    /// Number of unknown node voltages.
    pub fn unknown_count(&self) -> usize {
        self.unknown_node.len()
    }

    /// The unknown-vector index of a node, `None` for pinned/ground nodes.
    pub fn unknown_index(&self, node: Node) -> Option<usize> {
        node.id().and_then(|i| self.unknown_index[i as usize])
    }

    /// The pinned voltage of a node (`Some` for pads and ground).
    pub fn pinned_voltage(&self, node: Node) -> Option<f64> {
        match node {
            Node::Ground => Some(0.0),
            Node::Id(i) => self.pinned[i as usize],
        }
    }

    /// Factors and solves the system.
    ///
    /// # Errors
    ///
    /// Returns [`MnaError::Singular`] when a node floats (no path to any
    /// pad).
    pub fn solve(&self) -> Result<DcSolution, MnaError> {
        self.solve_with(&FactorOptions::default())
    }

    /// [`DcAnalysis::solve`] with the engine picked by problem size:
    /// direct factorization below the auto crossover, IC(0)-CG above it —
    /// a chip-scale grid's operating point stays `O(nnz)` in time and
    /// memory instead of paying a million-unknown factor's fill.
    ///
    /// Below the crossover this is bit-identical to [`DcAnalysis::solve`]
    /// (same factorization, same options); above it the CG solution is
    /// deterministic for any thread count or kernel backend.
    ///
    /// # Errors
    ///
    /// Returns [`MnaError::Singular`] when a node floats (no path to any
    /// pad).
    pub fn solve_auto(&self) -> Result<DcSolution, MnaError> {
        let x = emgrid_sparse::solve_spd(
            &self.matrix,
            &self.rhs,
            emgrid_sparse::Method::Auto,
            &FactorOptions::default(),
            &emgrid_sparse::CgOptions::default(),
        )?;
        Ok(self.solution_from_unknowns(&x))
    }

    /// [`DcSystem::solve`] with explicit factorization options.
    ///
    /// # Errors
    ///
    /// Returns [`MnaError::Singular`] when a node floats (no path to any
    /// pad).
    pub fn solve_with(&self, opts: &FactorOptions) -> Result<DcSolution, MnaError> {
        let factor = LdlFactor::factor_with(&self.matrix, opts)?;
        let x = factor.solve(&self.rhs);
        Ok(self.solution_from_unknowns(&x))
    }

    /// Assembles a [`DcSolution`] from an externally-computed unknown vector
    /// (used by incremental re-solvers).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.unknown_count()`.
    pub fn solution_from_unknowns(&self, x: &[f64]) -> DcSolution {
        assert_eq!(x.len(), self.unknown_count(), "unknown vector length");
        let mut voltages = vec![0.0f64; self.pinned.len()];
        for (id, v) in voltages.iter_mut().enumerate() {
            *v = match self.pinned[id] {
                Some(pin) => pin,
                None => x[self.unknown_index[id].expect("unknown numbered")],
            };
        }
        DcSolution { voltages }
    }
}

enum NodeClass {
    Unknown(usize),
    Fixed(f64),
}

/// Node voltages of a solved DC operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct DcSolution {
    voltages: Vec<f64>,
}

impl DcSolution {
    /// Voltage at a node.
    pub fn voltage(&self, node: Node) -> f64 {
        match node {
            Node::Ground => 0.0,
            Node::Id(i) => self.voltages[i as usize],
        }
    }

    /// Voltage by interned node id.
    pub fn voltage_of(&self, node: Node) -> f64 {
        self.voltage(node)
    }

    /// All node voltages, indexed by interned id.
    pub fn voltages(&self) -> &[f64] {
        &self.voltages
    }

    /// Current through a resistor element, positive from `a` to `b`.
    ///
    /// # Panics
    ///
    /// Panics if `element` is not a resistor.
    pub fn resistor_current(&self, element: &Element) -> f64 {
        match element {
            Element::Resistor { a, b, value, .. } => (self.voltage(*a) - self.voltage(*b)) / value,
            _ => panic!("element is not a resistor"),
        }
    }

    /// Minimum voltage over all interned nodes (worst supply level).
    pub fn min_voltage(&self) -> f64 {
        self.voltages.iter().copied().fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn voltage_divider() {
        let n = parse("V1 a 0 2.0\nR1 a b 1k\nR2 b 0 3k\n").unwrap();
        let s = DcAnalysis::new(&n).unwrap().solve().unwrap();
        let b = n.node_id("b").unwrap();
        assert!((s.voltage(b) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn ladder_ir_drop_is_quadratic() {
        // Pad at one end, uniform loads: drop follows the discrete
        // quadratic profile; check endpoint value against hand calculation.
        // 3 segments of 1Ω, loads 1 mA at each of 3 interior nodes.
        let deck = "\
V1 p 0 1.0
Rp p n1 1.0
R1 n1 n2 1.0
R2 n2 n3 1.0
I1 n1 0 0.001
I2 n2 0 0.001
I3 n3 0 0.001
";
        let n = parse(deck).unwrap();
        let s = DcAnalysis::new(&n).unwrap().solve().unwrap();
        // Segment currents: 3mA, 2mA, 1mA → cumulative drops 3,5,6 mV.
        let v = |name: &str| s.voltage(n.node_id(name).unwrap());
        assert!((v("n1") - 0.997).abs() < 1e-12);
        assert!((v("n2") - 0.995).abs() < 1e-12);
        assert!((v("n3") - 0.994).abs() < 1e-12);
        assert!((s.min_voltage() - 0.994).abs() < 1e-12);
    }

    #[test]
    fn resistor_current_signs() {
        let n = parse("V1 a 0 1.0\nR1 a b 2.0\nR2 b 0 2.0\n").unwrap();
        let s = DcAnalysis::new(&n).unwrap().solve().unwrap();
        let (_, r) = n.resistors().next().unwrap();
        assert!((s.resistor_current(r) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn floating_node_is_reported_singular() {
        let n = parse("V1 a 0 1.0\nR1 a b 1.0\nR2 c d 1.0\n").unwrap();
        let err = DcAnalysis::new(&n).unwrap().solve().unwrap_err();
        assert!(matches!(err, MnaError::Singular(_)));
    }

    #[test]
    fn vsource_between_nodes_rejected() {
        let n = parse("V1 a b 1.0\nR1 a 0 1.0\nR2 b 0 1.0\n").unwrap();
        let err = DcAnalysis::new(&n).unwrap_err();
        assert!(matches!(err, MnaError::UnsupportedSource(_)));
    }

    #[test]
    fn conflicting_pins_rejected() {
        let n = parse("V1 a 0 1.0\nV2 a 0 2.0\nR1 a 0 1.0\n").unwrap();
        let err = DcAnalysis::new(&n).unwrap_err();
        assert!(matches!(err, MnaError::ConflictingPins(_)));
    }

    #[test]
    fn duplicate_consistent_pins_allowed() {
        let n = parse("V1 a 0 1.0\nV2 a 0 1.0\nR1 a b 1.0\nR2 b 0 1.0\n").unwrap();
        let s = DcAnalysis::new(&n).unwrap().solve().unwrap();
        assert!((s.voltage(n.node_id("b").unwrap()) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reversed_vsource_pins_negative() {
        let n = parse("V1 0 a 1.5\nR1 a b 1.0\nR2 b 0 1.0\n").unwrap();
        let s = DcAnalysis::new(&n).unwrap().solve().unwrap();
        assert!((s.voltage(n.node_id("a").unwrap()) + 1.5).abs() < 1e-12);
    }

    #[test]
    fn all_pinned_deck_is_empty() {
        let n = parse("V1 a 0 1.0\nR1 a 0 1.0\n").unwrap();
        assert!(matches!(DcAnalysis::new(&n), Err(MnaError::Empty)));
    }

    #[test]
    fn superposition_of_current_sources() {
        // Linearity: doubling all loads doubles every drop.
        let deck_1 = "V1 p 0 1.0\nR1 p a 1.0\nR2 a b 1.0\nI1 b 0 0.001\n";
        let deck_2 = "V1 p 0 1.0\nR1 p a 1.0\nR2 a b 1.0\nI1 b 0 0.002\n";
        let n1 = parse(deck_1).unwrap();
        let n2 = parse(deck_2).unwrap();
        let s1 = DcAnalysis::new(&n1).unwrap().solve().unwrap();
        let s2 = DcAnalysis::new(&n2).unwrap().solve().unwrap();
        let d1 = 1.0 - s1.voltage(n1.node_id("b").unwrap());
        let d2 = 1.0 - s2.voltage(n2.node_id("b").unwrap());
        assert!((d2 / d1 - 2.0).abs() < 1e-9);
    }
}
