//! SPICE power-grid netlist substrate.
//!
//! The paper evaluates on the industrial power-grid benchmarks of Nassif
//! (ASP-DAC 2008), which are distributed as SPICE decks of resistors,
//! voltage-source pads and current-source loads with layered node names
//! (`n<layer>_<x>_<y>`). This crate supplies everything needed to work with
//! that format from scratch:
//!
//! * a netlist data model ([`netlist::Netlist`]) with layered node metadata,
//! * a parser ([`parser::parse`]) and writer ([`writer::write_string`]) for
//!   the benchmark subset of SPICE (R/V/I elements, engineering suffixes,
//!   comments, `.op`/`.end`),
//! * a DC operating-point solver ([`mna::DcAnalysis`]) built on modified
//!   nodal analysis with voltage-source elimination, producing node
//!   voltages and element currents,
//! * a synthetic benchmark generator ([`benchgen::GridSpec`]) that emits
//!   IBM-style two-layer mesh grids (profiles `pg1`/`pg2`/`pg5`) — the
//!   original decks are not redistributable, so the generator reproduces
//!   their structural properties (mesh redundancy, via arrays at every
//!   intersection, perimeter pads, tuned nominal IR drop; see DESIGN.md §2).
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use emgrid_spice::{parser, mna::DcAnalysis};
//!
//! let deck = "\
//! * trivial divider
//! V1 top 0 1.8
//! R1 top mid 1k
//! R2 mid 0 1k
//! .end";
//! let netlist = parser::parse(deck)?;
//! let solution = DcAnalysis::new(&netlist)?.solve()?;
//! let mid = netlist.node_id("mid").expect("node exists");
//! assert!((solution.voltage_of(mid) - 0.9).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

pub mod benchgen;
pub mod ingest;
pub mod lint;
pub mod mna;
pub mod netlist;
pub mod parser;
pub mod writer;

pub use benchgen::GridSpec;
pub use ingest::{ingest, IngestError, IngestLimits, IngestOptions, Ingested};
pub use lint::{lint, repair_shorted_vias, LintIssue};
pub use mna::{DcAnalysis, DcSolution, MnaError};
pub use netlist::{Element, Netlist, Node, NodeInfo};
pub use parser::{parse, ParseError};
