//! Parser for the power-grid benchmark subset of SPICE.
//!
//! Supported: `R`/`V`/`I` element cards (`<name> <node+> <node-> <value>`),
//! `*` comment lines, `.op`/`.end`/other dot directives (ignored), blank
//! lines, case-insensitive element letters, and engineering suffixes on
//! values (`f p n u m k meg g t`).

use std::error::Error;
use std::fmt;

use crate::netlist::{Element, Netlist};

/// A parse failure, with the 1-based line number.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line of the offending card.
    pub line: usize,
    /// What went wrong.
    pub kind: ParseErrorKind,
}

/// The kinds of parse failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseErrorKind {
    /// A card had fewer than 4 fields.
    MissingFields,
    /// The value field did not parse as a number.
    BadValue(String),
    /// The element letter is not one of R/V/I.
    UnsupportedElement(char),
    /// A resistor with a non-positive value.
    NonPositiveResistance(f64),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ParseErrorKind::MissingFields => {
                write!(f, "line {}: element card needs 4 fields", self.line)
            }
            ParseErrorKind::BadValue(v) => {
                write!(f, "line {}: invalid value `{v}`", self.line)
            }
            ParseErrorKind::UnsupportedElement(c) => {
                write!(f, "line {}: unsupported element type `{c}`", self.line)
            }
            ParseErrorKind::NonPositiveResistance(v) => {
                write!(f, "line {}: non-positive resistance {v}", self.line)
            }
        }
    }
}

impl Error for ParseError {}

/// Parses a numeric field with optional engineering suffix.
///
/// Returns `None` on malformed input.
pub fn parse_value(field: &str) -> Option<f64> {
    let lower = field.to_ascii_lowercase();
    // Longest suffix first.
    const SUFFIXES: [(&str, f64); 9] = [
        ("meg", 1e6),
        ("f", 1e-15),
        ("p", 1e-12),
        ("n", 1e-9),
        ("u", 1e-6),
        ("m", 1e-3),
        ("k", 1e3),
        ("g", 1e9),
        ("t", 1e12),
    ];
    for (suffix, scale) in SUFFIXES {
        if let Some(stripped) = lower.strip_suffix(suffix) {
            // Guard against stripping the exponent `e` forms ("1e3" has no
            // suffix) and against empty mantissas.
            if !stripped.is_empty() && !stripped.ends_with(['e', 'E']) {
                if let Ok(v) = stripped.parse::<f64>() {
                    return Some(v * scale);
                }
            }
        }
    }
    lower.parse().ok()
}

/// Parses a SPICE deck into a [`Netlist`].
///
/// # Errors
///
/// Returns [`ParseError`] with the offending line on malformed cards.
///
/// # Example
///
/// ```
/// let n = emgrid_spice::parse("R1 a b 2k\nV1 a 0 1.8\nI1 b 0 1m\n.end")?;
/// assert_eq!(n.counts(), (1, 1, 1));
/// # Ok::<(), emgrid_spice::ParseError>(())
/// ```
pub fn parse(deck: &str) -> Result<Netlist, ParseError> {
    let mut netlist = Netlist::new();
    for (lineno, raw) in deck.lines().enumerate() {
        let line = lineno + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('*') || trimmed.starts_with('.') {
            continue;
        }
        let mut fields = trimmed.split_whitespace();
        let name = fields.next().expect("non-empty line has a field");
        let (Some(a), Some(b), Some(value)) = (fields.next(), fields.next(), fields.next()) else {
            return Err(ParseError {
                line,
                kind: ParseErrorKind::MissingFields,
            });
        };
        let value = parse_value(value).ok_or_else(|| ParseError {
            line,
            kind: ParseErrorKind::BadValue(value.to_owned()),
        })?;
        let na = netlist.intern(a);
        let nb = netlist.intern(b);
        let kind = name.chars().next().expect("non-empty name");
        match kind.to_ascii_uppercase() {
            'R' => {
                if value <= 0.0 {
                    return Err(ParseError {
                        line,
                        kind: ParseErrorKind::NonPositiveResistance(value),
                    });
                }
                netlist.push(Element::Resistor {
                    name: name.to_owned(),
                    a: na,
                    b: nb,
                    value,
                });
            }
            'V' => netlist.push(Element::VoltageSource {
                name: name.to_owned(),
                pos: na,
                neg: nb,
                value,
            }),
            'I' => netlist.push(Element::CurrentSource {
                name: name.to_owned(),
                pos: na,
                neg: nb,
                value,
            }),
            other => {
                return Err(ParseError {
                    line,
                    kind: ParseErrorKind::UnsupportedElement(other),
                })
            }
        }
    }
    Ok(netlist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Node;
    use proptest::prelude::*;

    #[test]
    fn parses_benchmark_style_deck() {
        let deck = "\
* IBM-style fragment
R1 n1_0_0 n1_1_0 0.5
r2 n1_1_0 n1_2_0 0.5
Rv1 n1_1_0 n2_1_0 1.0
V1 n2_0_0 0 1.8
i_load n1_2_0 0 0.0003
.op
.end
";
        let n = parse(deck).unwrap();
        assert_eq!(n.counts(), (3, 1, 1));
        assert_eq!(n.node_count(), 5);
    }

    #[test]
    fn engineering_suffixes() {
        assert_eq!(parse_value("1k"), Some(1e3));
        assert_eq!(parse_value("2.5m"), Some(2.5e-3));
        assert_eq!(parse_value("3meg"), Some(3e6));
        assert!((parse_value("10u").unwrap() - 1e-5).abs() < 1e-18);
        assert_eq!(parse_value("1e3"), Some(1000.0));
        assert_eq!(parse_value("1E-2"), Some(0.01));
        assert_eq!(parse_value("7"), Some(7.0));
        assert_eq!(parse_value("1n"), Some(1e-9));
        assert_eq!(parse_value("x"), None);
        assert_eq!(parse_value("k"), None);
    }

    #[test]
    fn reports_line_numbers() {
        let err = parse("R1 a b 1.0\nR2 a b\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.kind, ParseErrorKind::MissingFields);
    }

    #[test]
    fn rejects_bad_value_and_type() {
        let err = parse("R1 a b abc").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::BadValue(_)));
        let err = parse("C1 a b 1p").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::UnsupportedElement('C')));
        let err = parse("R1 a b 0").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::NonPositiveResistance(_)));
    }

    #[test]
    fn ground_aliases() {
        let n = parse("R1 a 0 1\nR2 b gnd 1\n").unwrap();
        for (_, e) in n.resistors() {
            if let Element::Resistor { b, .. } = e {
                assert_eq!(*b, Node::Ground);
            }
        }
    }

    proptest! {
        #[test]
        fn parse_value_handles_plain_floats(v in -1e6f64..1e6) {
            let s = format!("{v}");
            let parsed = parse_value(&s).unwrap();
            prop_assert!((parsed - v).abs() <= 1e-9 * v.abs().max(1.0));
        }

        #[test]
        fn parser_never_panics_on_arbitrary_text(deck in "[ -~\n]{0,200}") {
            // Any printable input must either parse or produce a ParseError
            // with a line number inside the deck.
            match parse(&deck) {
                Ok(_) => {}
                Err(e) => prop_assert!(e.line >= 1 && e.line <= deck.lines().count().max(1)),
            }
        }

        #[test]
        fn parser_round_trips_structured_decks(
            values in proptest::collection::vec(0.001f64..1000.0, 1..20),
        ) {
            let mut deck = String::from("V1 n2_0_0 0 1.8\n");
            for (i, v) in values.iter().enumerate() {
                deck.push_str(&format!("R{i} n1_{i}_0 n1_{}_0 {v}\n", i + 1));
            }
            let n = parse(&deck).unwrap();
            let rendered = crate::writer::write_string(&n);
            let again = parse(&rendered).unwrap();
            prop_assert_eq!(n.counts(), again.counts());
            prop_assert_eq!(n.node_count(), again.node_count());
        }
    }
}
