//! Netlist validation and repair.
//!
//! The paper notes (§5.2) that *"the via connections in some of the
//! original circuit netlists are short-circuited, implying the vias are
//! represented by zero resistance. We have modified the netlist to alter
//! the resistance of the vias according to the nominal resistance value"*.
//! [`repair_shorted_vias`] automates exactly that retrofit, and [`lint`]
//! surfaces the structural problems a deck can have before DC analysis:
//! floating nodes, unreachable subnetworks, duplicate instance names and
//! suspicious via resistances.

use std::collections::HashMap;

use crate::netlist::{Element, Netlist, Node};

/// A problem found in a netlist.
#[derive(Debug, Clone, PartialEq)]
pub enum LintIssue {
    /// A node is touched only by current sources: its voltage is undefined.
    FloatingNode {
        /// Node name.
        node: String,
    },
    /// A resistive island with no path to any pad or ground.
    UnreachableIsland {
        /// A representative node of the island.
        representative: String,
        /// Number of nodes in the island.
        nodes: usize,
    },
    /// Two elements share an instance name.
    DuplicateName {
        /// The repeated name.
        name: String,
    },
    /// An inter-layer (via) resistor whose value is suspiciously small —
    /// the "short-circuited via" case the paper repairs.
    ShortedVia {
        /// Element name.
        name: String,
        /// Its resistance, Ω.
        value: f64,
    },
    /// A voltage source of zero volts (usually a netlist bug).
    ZeroVoltSource {
        /// Element name.
        name: String,
    },
}

impl std::fmt::Display for LintIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LintIssue::FloatingNode { node } => write!(f, "floating node `{node}`"),
            LintIssue::UnreachableIsland {
                representative,
                nodes,
            } => write!(
                f,
                "{nodes} nodes around `{representative}` unreachable from any pad"
            ),
            LintIssue::DuplicateName { name } => write!(f, "duplicate element name `{name}`"),
            LintIssue::ShortedVia { name, value } => {
                write!(f, "via `{name}` nearly shorted ({value:e} ohm)")
            }
            LintIssue::ZeroVoltSource { name } => write!(f, "zero-volt source `{name}`"),
        }
    }
}

/// Threshold below which an inter-layer resistor counts as shorted, Ω.
pub const SHORTED_VIA_THRESHOLD: f64 = 1e-3;

/// Scans a netlist for structural problems.
pub fn lint(netlist: &Netlist) -> Vec<LintIssue> {
    let nn = netlist.node_count();
    let mut issues = Vec::new();
    let mut names: HashMap<&str, usize> = HashMap::new();
    let mut touched_resistively = vec![false; nn];
    let mut touched = vec![false; nn];
    let mut dsu = Dsu::new(nn + 1); // extra slot for ground/pads
    let ground = nn;

    for e in netlist.elements() {
        *names.entry(e.name()).or_insert(0) += 1;
        match e {
            Element::Resistor { name, a, b, value } => {
                for n in [a, b] {
                    if let Some(i) = n.id() {
                        touched_resistively[i as usize] = true;
                        touched[i as usize] = true;
                    }
                }
                let ia = a.id().map_or(ground, |i| i as usize);
                let ib = b.id().map_or(ground, |i| i as usize);
                dsu.union(ia, ib);
                if is_via(netlist, *a, *b) && *value < SHORTED_VIA_THRESHOLD {
                    issues.push(LintIssue::ShortedVia {
                        name: name.clone(),
                        value: *value,
                    });
                }
            }
            Element::VoltageSource {
                name,
                pos,
                neg,
                value,
            } => {
                for n in [pos, neg] {
                    if let Some(i) = n.id() {
                        touched[i as usize] = true;
                        touched_resistively[i as usize] = true;
                        // A pinned node is as good as grounded for
                        // reachability.
                        dsu.union(i as usize, ground);
                    }
                }
                if *value == 0.0 {
                    issues.push(LintIssue::ZeroVoltSource { name: name.clone() });
                }
            }
            Element::CurrentSource { pos, neg, .. } => {
                for n in [pos, neg] {
                    if let Some(i) = n.id() {
                        touched[i as usize] = true;
                    }
                }
            }
        }
    }

    for (name, count) in names {
        if count > 1 {
            issues.push(LintIssue::DuplicateName {
                name: name.to_owned(),
            });
        }
    }
    #[allow(clippy::needless_range_loop)]
    for i in 0..nn {
        if touched[i] && !touched_resistively[i] {
            issues.push(LintIssue::FloatingNode {
                node: netlist.node_name(i as u32).to_owned(),
            });
        }
    }
    // Islands: resistively-touched nodes not connected to ground/pads.
    let mut island_sizes: HashMap<usize, (usize, u32)> = HashMap::new();
    let ground_root = dsu.find(ground);
    #[allow(clippy::needless_range_loop)]
    for i in 0..nn {
        if touched_resistively[i] {
            let root = dsu.find(i);
            if root != ground_root {
                let entry = island_sizes.entry(root).or_insert((0, i as u32));
                entry.0 += 1;
            }
        }
    }
    let mut islands: Vec<_> = island_sizes.into_values().collect();
    islands.sort_by_key(|&(_, rep)| rep);
    for (nodes, rep) in islands {
        issues.push(LintIssue::UnreachableIsland {
            representative: netlist.node_name(rep).to_owned(),
            nodes,
        });
    }
    issues
}

/// Sets every shorted inter-layer resistor to `nominal` Ω (the paper's
/// retrofit); returns how many were repaired.
pub fn repair_shorted_vias(netlist: &mut Netlist, nominal: f64) -> usize {
    // Collect indices first to sidestep the borrow on `netlist`.
    let shorted: Vec<usize> = netlist
        .elements()
        .iter()
        .enumerate()
        .filter_map(|(idx, e)| match e {
            Element::Resistor { a, b, value, .. }
                if *value < SHORTED_VIA_THRESHOLD && is_via(netlist, *a, *b) =>
            {
                Some(idx)
            }
            _ => None,
        })
        .collect();
    let count = shorted.len();
    for idx in shorted {
        if let Element::Resistor { value, .. } = &mut netlist.elements_mut()[idx] {
            *value = nominal;
        }
    }
    count
}

/// Whether a resistor joins nodes on different metal layers.
fn is_via(netlist: &Netlist, a: Node, b: Node) -> bool {
    let (Some(ia), Some(ib)) = (a.id(), b.id()) else {
        return false;
    };
    match (netlist.node_info(ia), netlist.node_info(ib)) {
        (Some(x), Some(y)) => x.layer != y.layer,
        _ => false,
    }
}

/// Minimal union-find.
struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn clean_generated_deck_lints_clean() {
        let n = crate::benchgen::GridSpec::custom("t", 6, 6).generate();
        assert!(lint(&n).is_empty(), "{:?}", lint(&n));
    }

    #[test]
    fn detects_floating_node() {
        let n = parse("V1 a 0 1.0\nR1 a b 1.0\nR2 b 0 1.0\nI1 c 0 1m\n").unwrap();
        let issues = lint(&n);
        assert!(issues
            .iter()
            .any(|i| matches!(i, LintIssue::FloatingNode { node } if node == "c")));
    }

    #[test]
    fn detects_unreachable_island() {
        let n = parse("V1 a 0 1.0\nR1 a b 1.0\nR2 c d 1.0\nR3 d e 1.0\n").unwrap();
        let issues = lint(&n);
        let island = issues
            .iter()
            .find(|i| matches!(i, LintIssue::UnreachableIsland { .. }))
            .expect("island found");
        if let LintIssue::UnreachableIsland { nodes, .. } = island {
            assert_eq!(*nodes, 3); // c, d, e
        }
    }

    #[test]
    fn detects_duplicate_names_and_zero_sources() {
        let n = parse("R1 a b 1.0\nR1 b 0 1.0\nV1 a 0 0.0\n").unwrap();
        let issues = lint(&n);
        assert!(issues
            .iter()
            .any(|i| matches!(i, LintIssue::DuplicateName { name } if name == "R1")));
        assert!(issues
            .iter()
            .any(|i| matches!(i, LintIssue::ZeroVoltSource { name } if name == "V1")));
    }

    #[test]
    fn detects_and_repairs_shorted_vias() {
        // An inter-layer resistor at 1 µΩ: the paper's "short-circuited via".
        let mut n =
            parse("V1 n3_0_0 0 1.8\nRv n1_0_0 n3_0_0 1e-6\nR1 n1_0_0 n1_1_0 0.5\nI1 n1_1_0 0 1m\n")
                .unwrap();
        let issues = lint(&n);
        assert!(issues
            .iter()
            .any(|i| matches!(i, LintIssue::ShortedVia { name, .. } if name == "Rv")));

        let repaired = repair_shorted_vias(&mut n, 0.5);
        assert_eq!(repaired, 1);
        assert!(lint(&n)
            .iter()
            .all(|i| !matches!(i, LintIssue::ShortedVia { .. })));
        // The repaired deck now solves with a sensible via drop.
        let s = crate::mna::DcAnalysis::new(&n).unwrap().solve().unwrap();
        let v = s.voltage(n.node_id("n1_0_0").unwrap());
        assert!(v < 1.8 && v > 1.7);
    }

    #[test]
    fn same_layer_small_resistor_is_not_a_via_short() {
        let n = parse("V1 n1_0_0 0 1.0\nR1 n1_0_0 n1_1_0 1e-6\nI1 n1_1_0 0 1m\n").unwrap();
        assert!(lint(&n)
            .iter()
            .all(|i| !matches!(i, LintIssue::ShortedVia { .. })));
    }

    #[test]
    fn issue_display_strings() {
        let i = LintIssue::FloatingNode { node: "x".into() };
        assert_eq!(i.to_string(), "floating node `x`");
        let i = LintIssue::ShortedVia {
            name: "Rv".into(),
            value: 1e-6,
        };
        assert!(i.to_string().contains("nearly shorted"));
    }
}
