//! Netlist writer (round-trips with [`crate::parser`]).

use std::fmt::Write as _;

use crate::netlist::{Element, Netlist, Node};

/// Renders a netlist as a SPICE deck string, ending with `.end`.
pub fn write_string(netlist: &Netlist) -> String {
    let mut out = String::new();
    let node = |n: Node| -> String {
        match n {
            Node::Ground => "0".to_owned(),
            Node::Id(i) => netlist.node_name(i).to_owned(),
        }
    };
    for e in netlist.elements() {
        match e {
            Element::Resistor { name, a, b, value } => {
                let _ = writeln!(out, "{name} {} {} {value:e}", node(*a), node(*b));
            }
            Element::VoltageSource {
                name,
                pos,
                neg,
                value,
            } => {
                let _ = writeln!(out, "{name} {} {} {value:e}", node(*pos), node(*neg));
            }
            Element::CurrentSource {
                name,
                pos,
                neg,
                value,
            } => {
                let _ = writeln!(out, "{name} {} {} {value:e}", node(*pos), node(*neg));
            }
        }
    }
    out.push_str(".end\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn round_trips_through_parser() {
        let deck = "\
R1 n1_0_0 n1_1_0 0.5
Rv n1_1_0 n2_1_0 1.25
V1 n2_0_0 0 1.8
I1 n1_1_0 0 0.0003
.end
";
        let first = parse(deck).unwrap();
        let rendered = write_string(&first);
        let second = parse(&rendered).unwrap();
        assert_eq!(first.counts(), second.counts());
        assert_eq!(first.node_count(), second.node_count());
        // Values survive the round trip exactly (Rust float formatting).
        for (a, b) in first.elements().iter().zip(second.elements()) {
            if let (
                crate::netlist::Element::Resistor { value: va, .. },
                crate::netlist::Element::Resistor { value: vb, .. },
            ) = (a, b)
            {
                assert_eq!(va, vb)
            }
        }
    }

    #[test]
    fn ends_with_end_directive() {
        let n = Netlist::new();
        assert!(write_string(&n).ends_with(".end\n"));
    }
}
