//! The `emgrid` command-line tool; all logic lives in [`emgrid::cli`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match emgrid::cli::run(&args) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}
