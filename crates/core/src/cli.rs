//! Command-line interface logic for the `emgrid` binary.
//!
//! Argument parsing is hand-rolled (the workspace avoids CLI dependencies)
//! and the command handlers return their report as a `String`, which keeps
//! the whole surface unit-testable; the binary in `src/bin/emgrid.rs` only
//! forwards `std::env::args` and prints.

use std::fmt::Write as _;

use emgrid_em::black::BlackModel;
use emgrid_em::{Technology, SECONDS_PER_YEAR};
use emgrid_fea::geometry::{CharacterizationModel, IntersectionPattern, ViaArrayGeometry};
use emgrid_pg::signoff::{current_density_signoff, WireGeometry};
use emgrid_pg::{GridVariation, IrDropReport, PowerGrid, PowerGridMc, SystemCriterion};
use emgrid_runtime::obs;
use emgrid_runtime::{EarlyStop, RunReport, RuntimeConfig};
use emgrid_screen::{screen_grid, ScreenOptions};
use emgrid_serve::{ServeConfig, Server};
use emgrid_sparse::{FactorOptions, KernelBackend, Method, Ordering};
use emgrid_spice::writer::write_string;
use emgrid_spice::{lint, parse, repair_shorted_vias, GridSpec};
use emgrid_via::{
    FailureCriterion, FeaOptions, LayerPair, StressCache, StressTable, Variation, ViaArrayConfig,
    ViaArrayMc,
};

/// A CLI failure: the message to print to stderr.
#[derive(Debug, Clone, PartialEq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

/// Usage text.
pub const USAGE: &str = "\
emgrid — stress-aware EM reliability analysis of power grids with via arrays

USAGE:
    emgrid <COMMAND> [OPTIONS]

COMMANDS:
    generate      emit a synthetic IBM-style benchmark deck to stdout
                    --profile pg1|pg2|pg5|pg100k|pg1m (default pg1)
    lint          check a SPICE deck for structural problems
                    <deck.sp>
    irdrop        nominal IR-drop report of a deck
                    <deck.sp> [--repair-vias <ohms>]
    characterize  via-array TTF characterization (level-1 Monte Carlo)
                    --array 1x1|4x4|8x8 (default 4x4)
                    --pattern plus|tee|ell (default plus)
                    --criterion wl|r2x|rinf (default rinf)
                    --trials <n> (default 2000)  --seed <n> (default 1)
                    [--threads <n>] [--target-ci <half-width>]
                    [--edge-current-factor <f>] [--temperature-sigma <degC>]
                    [--linewidth-sigma <f>] [--variance-analysis]
    analyze       system TTF of a deck (two-level Monte Carlo)
                    <deck.sp> [same options as characterize]
                    --grid-trials <n> (default 200)
                    [--repair-vias <ohms>] [--threads <n>]
                    [--target-ci <half-width>]
                    [--ordering natural|rcm|amd|nd]
                    [--kernels auto|scalar|blocked]
                    [--edge-current-factor <f>] [--temperature-sigma <degC>]
                    [--linewidth-sigma <f>]
    screen        linear-time steady-state EM screening: rank every via
                  array of a deck by steady-state stress, no Monte Carlo
                    <deck.sp> | --profile pg1|pg2|pg5|pg100k|pg1m
                    [--top-k <n>] [--stress-threshold <Pa>]
                    [--method auto|direct|cg] (default auto: direct small,
                                               IC(0)-CG chip-scale)
                    [--ordering natural|rcm|amd|nd]
                    [--kernels auto|scalar|blocked]
                    [--repair-vias <ohms>] [--json]

    fea           finite-element stress characterization of one primitive
                    --array 1x1|4x4|8x8 (default 4x4)
                    --pattern plus|tee|ell (default plus)
                    [--resolution <um>] [--fea-threads <n>] [--no-cache]
                    [--cache-dir <dir>] [--ordering natural|rcm|amd|nd]
                    [--kernels auto|scalar|blocked]

    signoff       traditional current-density signoff (Black's law)
                    <deck.sp> --target-years <y> (default 10)
    sweep         run a manifest-driven parameter sweep to completion
                    <spec.json> (declarative sweep: job template + axes)
                    [--state-dir <dir>] (default results/jobs)
                    [--workers <n>] (default 2)
                    [--checkpoint-every <trials>] (default 64; 0 disables)
                    [--max-in-flight <n>] (default 2*workers)
    validate      check a job or sweep spec offline, no daemon required
                    <spec.json> (a spec with a `kind` key is validated as
                                 a job spec, anything else as a sweep spec)
                  prints the canonical JSON to stdout on success; on
                  failure prints the offending field and exits nonzero
    serve         run the analysis daemon (JSON over HTTP)
                    [--addr <ip:port>] (default 127.0.0.1:8080; port 0 = ephemeral)
                    [--workers <n>] (default 2)
                    [--queue-depth <n>] (default 64)
                    [--checkpoint-every <trials>] (default 64; 0 disables)
                    [--state-dir <dir>] (default results/jobs)
                    [--cache-dir <dir>] [--max-body-bytes <n>]
                    [--max-netlist-lines <n>] (default 400000; raise for
                                               chip-scale inline decks)
                    [--max-connections <n>] (default 256)
                    [--io threads|poll] (default poll: readiness event loop
                                         with keep-alive + admission control;
                                         threads = legacy 1 thread/connection)
                    [--dispatchers <n>] (default 2; poll-backend handler
                                         threads, thread 0 interactive-only)
                    [--max-in-flight-per-client <n>] (default 64; 0 = off)
                    [--debug-panic-route] (CI only: POST /debug/panic panics
                                           the connection thread)
    help          print this message

Every command takes --trace: span timers are collected across all layers
(assembly, factorization, CG iterations, Monte Carlo batches, checkpoint
commits) and a nested wall-time summary is printed to stderr on exit.

Monte Carlo commands take --threads (work-stealing across n OS threads;
results are bit-identical for any thread count) and --target-ci (stop as
soon as the 95% CI half-width on mean ln TTF reaches the target instead
of exhausting the trial budget).

The characterize and analyze commands model on-die variation:
--edge-current-factor weights edge/corner vias with `1 + f*sides` of the
array current, --temperature-sigma and --linewidth-sigma sample
spatially correlated per-via temperature and linewidth fields each trial
(from per-trial RNG sub-streams, so results stay bit-identical for any
thread count). characterize additionally takes --variance-analysis: it
replays the same trials with the fields frozen and reports how much of
the ln-TTF variance the correlated fields add on top of void nucleation.

The screen command solves one operating point, decomposes the grid into
interconnect trees, and prints every via array ranked by its steady-state
EM stress (the Korhonen long-time limit) — seconds even at a million
nodes, so it runs before (and gates) the expensive two-level Monte Carlo.
--top-k / --stress-threshold select the subset; --json emits the same
deterministic document the serve/sweep `screening` block records.

The analyze, screen and fea commands read the sparse solver's
fill-reducing ordering from --ordering first, the EMGRID_ORDERING
environment variable second, and default to amd. The ordering changes factorization wall time
only, never which statistics come out. They likewise read the dense-panel
microkernel backend from --kernels first, EMGRID_KERNELS second, and
default to auto (which picks the register-blocked kernels); every backend
produces bit-identical factors and solutions, so this too is purely a
speed knob.

The fea command reads its mesh resolution from --resolution first, the
EMGRID_RESOLUTION environment variable second, and defaults to 0.25 um.
Solved fields are cached keyed by model content under --cache-dir,
falling back to EMGRID_CACHE_DIR and then results/cache/; --no-cache
(or EMGRID_NO_CACHE=1) bypasses the cache. --fea-threads splits threads
across primitives and solver kernels; results are bit-identical for any
thread count.

The serve command runs in the foreground until killed. Job state lives
under --state-dir; a restarted daemon requeues unfinished jobs and
resumes them from their last checkpoint, reproducing the exact bytes an
uninterrupted run would have returned. The daemon also mounts the sweep
API (POST /v1/sweeps, GET /v1/sweeps/:id[/report]) and resumes any
interrupted sweeps on startup.

The sweep command expands a JSON sweep spec (a job template plus axes of
values) into one job per axis combination, runs them through the same
checkpointable engine, and folds the results into a single byte-stable
report under <state-dir>/sweeps/<id>/report.json. Progress is tracked in
an on-disk manifest: re-running the same spec after an interruption (or
`kill -9`) resumes from the completed jobs instead of starting over, and
the final report is byte-identical to an uninterrupted run's.

The validate command runs the same strict spec checks the daemon and the
sweep engine apply — unknown keys, bounds, schema versions, full axis
expansion — without touching a state directory, and prints the canonical
(persisted) form of the spec. Job and sweep specs both take an optional
`\"schema\": 1` version pin; unknown versions are rejected up front.
";

/// Runs the CLI on pre-split arguments (without the program name).
///
/// # Errors
///
/// Returns [`CliError`] with a user-facing message on bad arguments or
/// failing analyses.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let Some(command) = args.first() else {
        return Err(CliError(USAGE.to_owned()));
    };
    let rest = &args[1..];
    // `--trace` arms the runtime's span timers for any command; the span
    // tree goes to stderr so piped stdout reports stay clean.
    let trace = rest.iter().any(|a| a == "--trace");
    if trace {
        obs::reset_spans();
        obs::set_trace(true);
    }
    let result = match command.as_str() {
        "generate" => cmd_generate(rest),
        "lint" => cmd_lint(rest),
        "irdrop" => cmd_irdrop(rest),
        "characterize" => cmd_characterize(rest),
        "analyze" => cmd_analyze(rest),
        "screen" => cmd_screen(rest),
        "fea" => cmd_fea(rest),
        "signoff" => cmd_signoff(rest),
        "sweep" => cmd_sweep(rest),
        "validate" => cmd_validate(rest),
        "serve" => cmd_serve(rest),
        "help" | "--help" | "-h" => Ok(USAGE.to_owned()),
        other => Err(CliError(format!("unknown command `{other}`\n\n{USAGE}"))),
    };
    if trace {
        obs::set_trace(false);
        eprintln!("{}", obs::span_report());
    }
    result
}

fn option_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
}

fn parse_usize(args: &[String], name: &str, default: usize) -> Result<usize, CliError> {
    match option_value(args, name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| CliError(format!("invalid value `{v}` for {name}"))),
    }
}

fn parse_u64(args: &[String], name: &str, default: u64) -> Result<u64, CliError> {
    match option_value(args, name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| CliError(format!("invalid value `{v}` for {name}"))),
    }
}

/// Parses `--threads` / `--target-ci` into a runtime configuration shared
/// by the Monte Carlo commands.
fn parse_runtime(args: &[String]) -> Result<RuntimeConfig, CliError> {
    let threads = parse_usize(args, "--threads", 1)?;
    if threads == 0 {
        return Err(CliError("--threads must be at least 1".to_owned()));
    }
    let mut runtime = RuntimeConfig::threaded(threads);
    if let Some(v) = option_value(args, "--target-ci") {
        let hw: f64 = v
            .parse()
            .map_err(|_| CliError(format!("invalid value `{v}` for --target-ci")))?;
        if hw.is_nan() || hw <= 0.0 {
            return Err(CliError("--target-ci must be positive".to_owned()));
        }
        runtime = runtime.with_early_stop(EarlyStop::to_half_width(hw));
    }
    Ok(runtime)
}

/// One-line execution summary appended to Monte Carlo reports.
fn format_report(report: &RunReport) -> String {
    let mut line = format!(
        "execution      : {}/{} trials, {} thread(s), {:.0} ms, {:.0} trials/s",
        report.trials_run,
        report.trials_requested,
        report.threads,
        report.wall.as_secs_f64() * 1e3,
        report.throughput(),
    );
    if report.stopped_early {
        let _ = write!(
            line,
            " (stopped early: 95% CI half-width {:.4})",
            report.achieved_half_width(0.95)
        );
    }
    line
}

fn parse_pattern(args: &[String]) -> Result<IntersectionPattern, CliError> {
    match option_value(args, "--pattern").unwrap_or("plus") {
        "plus" => Ok(IntersectionPattern::Plus),
        "tee" | "t" => Ok(IntersectionPattern::Tee),
        "ell" | "l" => Ok(IntersectionPattern::Ell),
        other => Err(CliError(format!("unknown pattern `{other}`"))),
    }
}

fn parse_array(args: &[String]) -> Result<(ViaArrayConfig, &'static str), CliError> {
    let pattern = parse_pattern(args)?;
    match option_value(args, "--array").unwrap_or("4x4") {
        "1x1" => Ok((ViaArrayConfig::paper_1x1(pattern), "1x1")),
        "4x4" => Ok((ViaArrayConfig::paper_4x4(pattern), "4x4")),
        "8x8" => Ok((ViaArrayConfig::paper_8x8(pattern), "8x8")),
        other => Err(CliError(format!("unknown array `{other}`"))),
    }
}

/// Mesh resolution precedence: `--resolution` flag, then the
/// `EMGRID_RESOLUTION` environment variable, then 0.25 µm. Returns the
/// value and which source supplied it.
fn parse_resolution(args: &[String]) -> Result<(f64, &'static str), CliError> {
    if let Some(v) = option_value(args, "--resolution") {
        let r: f64 = v
            .parse()
            .map_err(|_| CliError(format!("invalid value `{v}` for --resolution")))?;
        if !r.is_finite() || r <= 0.0 {
            return Err(CliError("--resolution must be positive".to_owned()));
        }
        return Ok((r, "--resolution"));
    }
    if let Ok(v) = std::env::var("EMGRID_RESOLUTION") {
        let r: f64 = v
            .parse()
            .map_err(|_| CliError(format!("invalid value `{v}` in EMGRID_RESOLUTION")))?;
        if !r.is_finite() || r <= 0.0 {
            return Err(CliError("EMGRID_RESOLUTION must be positive".to_owned()));
        }
        return Ok((r, "EMGRID_RESOLUTION"));
    }
    Ok((0.25, "default"))
}

/// Fill-reducing ordering precedence: `--ordering` flag, then the
/// `EMGRID_ORDERING` environment variable, then AMD. Returns the value
/// and which source supplied it.
fn parse_ordering(args: &[String]) -> Result<(Ordering, &'static str), CliError> {
    if let Some(v) = option_value(args, "--ordering") {
        return Ordering::parse(v)
            .map(|o| (o, "--ordering"))
            .ok_or_else(|| {
                CliError(format!(
                    "unknown ordering `{v}` for --ordering (expected natural, rcm, amd or nd)"
                ))
            });
    }
    if let Ok(v) = std::env::var("EMGRID_ORDERING") {
        return Ordering::parse(&v)
            .map(|o| (o, "EMGRID_ORDERING"))
            .ok_or_else(|| {
                CliError(format!(
                    "unknown ordering `{v}` in EMGRID_ORDERING (expected natural, rcm, amd or nd)"
                ))
            });
    }
    Ok((Ordering::default(), "default"))
}

/// Dense-panel microkernel backend precedence: `--kernels` flag, then
/// the `EMGRID_KERNELS` environment variable, then `auto`. Returns the
/// value and which source supplied it.
fn parse_kernels(args: &[String]) -> Result<(KernelBackend, &'static str), CliError> {
    if let Some(v) = option_value(args, "--kernels") {
        return KernelBackend::parse(v)
            .map(|k| (k, "--kernels"))
            .ok_or_else(|| {
                CliError(format!(
                    "unknown kernel backend `{v}` for --kernels (expected auto, scalar or blocked)"
                ))
            });
    }
    if let Ok(v) = std::env::var("EMGRID_KERNELS") {
        return KernelBackend::parse(&v)
            .map(|k| (k, "EMGRID_KERNELS"))
            .ok_or_else(|| {
                CliError(format!(
                    "unknown kernel backend `{v}` in EMGRID_KERNELS (expected auto, scalar or blocked)"
                ))
            });
    }
    Ok((KernelBackend::default(), "default"))
}

fn parse_criterion(args: &[String]) -> Result<FailureCriterion, CliError> {
    match option_value(args, "--criterion").unwrap_or("rinf") {
        "wl" | "weakest-link" => Ok(FailureCriterion::WeakestLink),
        "r2x" => Ok(FailureCriterion::ResistanceRatio(2.0)),
        "rinf" | "open" => Ok(FailureCriterion::OpenCircuit),
        other => Err(CliError(format!("unknown criterion `{other}`"))),
    }
}

/// One bounded, non-negative variation flag. The bounds mirror the serve
/// spec layer's, so a flag combination that works here also works as a
/// `variation` block in a job spec.
fn variation_flag(args: &[String], name: &str, max: f64) -> Result<Option<f64>, CliError> {
    match option_value(args, name) {
        None => Ok(None),
        Some(v) => {
            let x: f64 = v
                .parse()
                .map_err(|_| CliError(format!("invalid value `{v}` for {name}")))?;
            if !x.is_finite() || x < 0.0 || x > max {
                return Err(CliError(format!("{name} must be in [0, {max}]")));
            }
            Ok(Some(x))
        }
    }
}

/// Parses the on-die variation flags shared by the Monte Carlo commands.
/// `None` when no variation flag appears at all, so unvaried runs keep the
/// legacy single-stream RNG draws (and their exact historical bytes);
/// passing any flag — even at zero — opts into the sub-stream draws.
fn parse_variation(args: &[String]) -> Result<Option<Variation>, CliError> {
    let edge = variation_flag(args, "--edge-current-factor", 10.0)?;
    let temperature = variation_flag(args, "--temperature-sigma", 100.0)?;
    let linewidth = variation_flag(args, "--linewidth-sigma", 0.5)?;
    let variance = args.iter().any(|a| a == "--variance-analysis");
    if edge.is_none() && temperature.is_none() && linewidth.is_none() && !variance {
        return Ok(None);
    }
    Ok(Some(Variation {
        edge_current_factor: edge.unwrap_or(0.0),
        temperature_sigma_c: temperature.unwrap_or(0.0),
        linewidth_sigma: linewidth.unwrap_or(0.0),
    }))
}

fn load_deck(args: &[String]) -> Result<emgrid_spice::Netlist, CliError> {
    // First positional argument: skip `--option value` pairs.
    let mut path = None;
    let mut i = 0;
    while i < args.len() {
        if args[i].starts_with("--") {
            i += 2;
        } else {
            path = Some(&args[i]);
            break;
        }
    }
    let path = path.ok_or_else(|| CliError("missing deck path".to_owned()))?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError(format!("cannot read `{path}`: {e}")))?;
    let mut netlist = parse(&text).map_err(|e| CliError(format!("parse error: {e}")))?;
    if let Some(ohms) = option_value(args, "--repair-vias") {
        let ohms: f64 = ohms
            .parse()
            .map_err(|_| CliError(format!("invalid value `{ohms}` for --repair-vias")))?;
        repair_shorted_vias(&mut netlist, ohms);
    }
    Ok(netlist)
}

fn cmd_generate(args: &[String]) -> Result<String, CliError> {
    let name = option_value(args, "--profile").unwrap_or("pg1");
    let spec = GridSpec::profile(name).ok_or_else(|| {
        CliError(format!(
            "unknown profile `{name}` (expected {})",
            GridSpec::PROFILES.join(", ")
        ))
    })?;
    Ok(write_string(&spec.generate()))
}

fn cmd_lint(args: &[String]) -> Result<String, CliError> {
    let netlist = load_deck(args)?;
    let issues = lint(&netlist);
    let mut out = String::new();
    let (r, v, i) = netlist.counts();
    let _ = writeln!(
        out,
        "{} nodes, {r} resistors, {v} voltage sources, {i} current sources",
        netlist.node_count()
    );
    if issues.is_empty() {
        out.push_str("no issues found\n");
    } else {
        for issue in &issues {
            let _ = writeln!(out, "warning: {issue}");
        }
        let _ = writeln!(out, "{} issue(s)", issues.len());
    }
    Ok(out)
}

fn cmd_irdrop(args: &[String]) -> Result<String, CliError> {
    let netlist = load_deck(args)?;
    let grid = PowerGrid::from_netlist(netlist).map_err(|e| CliError(e.to_string()))?;
    let report = IrDropReport::evaluate(&grid, grid.nominal_solution());
    let mut out = String::new();
    let _ = writeln!(out, "vdd            : {:.3} V", report.vdd);
    let _ = writeln!(
        out,
        "worst IR drop  : {:.1} mV ({:.2}% of Vdd)",
        report.worst_drop * 1e3,
        report.worst_fraction * 100.0
    );
    let _ = writeln!(out, "via arrays     : {}", grid.via_sites().len());
    let _ = writeln!(
        out,
        "10% budget     : {}",
        if report.violates(0.10) {
            "VIOLATED"
        } else {
            "met"
        }
    );
    Ok(out)
}

fn cmd_characterize(args: &[String]) -> Result<String, CliError> {
    let (config, label) = parse_array(args)?;
    let criterion = parse_criterion(args)?;
    let trials = parse_usize(args, "--trials", 2000)?;
    let seed = parse_u64(args, "--seed", 1)?;
    let runtime = parse_runtime(args)?;
    let variation = parse_variation(args)?;
    let variance_analysis = args.iter().any(|a| a == "--variance-analysis");
    let mut model = ViaArrayMc::from_reference_table(&config, Technology::default(), 1e10);
    if let Some(v) = variation {
        model = model.with_variation(v);
    }
    let (result, variance) = if variance_analysis {
        let (result, decomposition) = model.characterize_with_variance(trials, seed, &runtime);
        (result, Some(decomposition))
    } else {
        (model.characterize_with(trials, seed, &runtime), None)
    };
    let ecdf = result.ecdf(criterion);
    let fit = result
        .fit_lognormal(criterion)
        .map_err(|e| CliError(e.to_string()))?;
    let ks = result
        .fit_quality(criterion)
        .map_err(|e| CliError(e.to_string()))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "array {label} ({} pattern), criterion {criterion}, {trials} trials",
        config.pattern
    );
    if let Some(v) = variation {
        let _ = writeln!(
            out,
            "variation      : edge factor {}, sigma_T {} degC, sigma_w {}",
            v.edge_current_factor, v.temperature_sigma_c, v.linewidth_sigma
        );
    }
    let _ = writeln!(
        out,
        "TTF median     : {:.2} years",
        ecdf.median() / SECONDS_PER_YEAR
    );
    let _ = writeln!(
        out,
        "TTF 0.3%ile    : {:.2} years",
        ecdf.worst_case() / SECONDS_PER_YEAR
    );
    let _ = writeln!(
        out,
        "lognormal fit  : median {:.2} years, sigma {:.3} (KS {:.3})",
        fit.median() / SECONDS_PER_YEAR,
        fit.sigma(),
        ks
    );
    if let Some(d) = variance {
        let _ = writeln!(
            out,
            "ln-TTF variance: total {:.4} (void {:.4} + environment {:.4})",
            d.total, d.void, d.environment
        );
    }
    let _ = writeln!(out, "{}", format_report(result.report()));
    Ok(out)
}

fn cmd_analyze(args: &[String]) -> Result<String, CliError> {
    let netlist = load_deck(args)?;
    let (config, label) = parse_array(args)?;
    let criterion = parse_criterion(args)?;
    let trials = parse_usize(args, "--trials", 2000)?;
    let grid_trials = parse_usize(args, "--grid-trials", 200)?;
    let seed = parse_u64(args, "--seed", 1)?;
    let runtime = parse_runtime(args)?;
    let (ordering, _) = parse_ordering(args)?;
    let (kernels, _) = parse_kernels(args)?;
    let variation = parse_variation(args)?;
    let mut level1 = ViaArrayMc::from_reference_table(&config, Technology::default(), 1e10);
    if let Some(v) = variation {
        level1 = level1.with_variation(v);
    }
    let reliability = level1
        .characterize_with(trials, seed, &runtime)
        .reliability(criterion)
        .map_err(|e| CliError(e.to_string()))?;
    let grid = PowerGrid::from_netlist(netlist).map_err(|e| CliError(e.to_string()))?;
    let sites = grid.via_sites().len();
    let mut mc = PowerGridMc::new(grid, reliability)
        .with_system_criterion(SystemCriterion::IrDropFraction(0.10))
        .with_factor_options(
            FactorOptions::default()
                .with_ordering(ordering)
                .with_kernels(kernels),
        );
    if let Some(v) = variation {
        mc = mc.with_variation(GridVariation {
            ttf_ln_sigma: v.grid_ttf_ln_sigma(&Technology::default()),
            linewidth_sigma: v.linewidth_sigma,
        });
    }
    let result = mc
        .run_with(grid_trials, seed ^ 0xc11, &runtime)
        .map_err(|e| CliError(e.to_string()))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{sites} via arrays as {label}/{criterion}; {grid_trials} grid trials"
    );
    if let Some(v) = variation {
        let _ = writeln!(
            out,
            "variation      : edge factor {}, sigma_T {} degC, sigma_w {}",
            v.edge_current_factor, v.temperature_sigma_c, v.linewidth_sigma
        );
    }
    let _ = writeln!(
        out,
        "system TTF median   : {:.2} years",
        result.median_years()
    );
    let _ = writeln!(
        out,
        "system TTF 0.3%ile  : {:.2} years",
        result.worst_case_years()
    );
    let _ = writeln!(out, "mean failures/trial : {:.1}", result.mean_failures());
    let _ = writeln!(out, "most critical sites :");
    for (site, count) in result.critical_sites(5) {
        let _ = writeln!(out, "  site {site:>5}  failed in {count} trials");
    }
    let _ = writeln!(out, "{}", format_report(result.report()));
    Ok(out)
}

/// Operating-point solve engine: `--method` flag, defaulting to `auto`
/// (direct below the size cutover, IC(0)-CG above).
fn parse_method(args: &[String]) -> Result<Method, CliError> {
    match option_value(args, "--method") {
        None => Ok(Method::default()),
        Some(v) => Method::parse(v).ok_or_else(|| {
            CliError(format!(
                "unknown method `{v}` for --method (expected auto, direct or cg)"
            ))
        }),
    }
}

fn cmd_screen(args: &[String]) -> Result<String, CliError> {
    // The deck comes from either a benchmark profile (generated in memory,
    // no 65 MB chip-scale file round-trip) or a positional deck path.
    let netlist = match option_value(args, "--profile") {
        Some(name) => {
            let spec = GridSpec::profile(name).ok_or_else(|| {
                CliError(format!(
                    "unknown profile `{name}` (expected {})",
                    GridSpec::PROFILES.join(", ")
                ))
            })?;
            spec.generate()
        }
        None => load_deck(args)?,
    };
    let (ordering, _) = parse_ordering(args)?;
    let (kernels, _) = parse_kernels(args)?;
    let method = parse_method(args)?;
    let top_k = match option_value(args, "--top-k") {
        None => None,
        Some(v) => {
            let k: usize = v
                .parse()
                .map_err(|_| CliError(format!("invalid value `{v}` for --top-k")))?;
            if k == 0 {
                return Err(CliError("--top-k must be at least 1".to_owned()));
            }
            Some(k)
        }
    };
    let stress_threshold = match option_value(args, "--stress-threshold") {
        None => None,
        Some(v) => {
            let s: f64 = v
                .parse()
                .map_err(|_| CliError(format!("invalid value `{v}` for --stress-threshold")))?;
            if !s.is_finite() || s <= 0.0 {
                return Err(CliError("--stress-threshold must be positive".to_owned()));
            }
            Some(s)
        }
    };
    let grid = PowerGrid::from_netlist(netlist).map_err(|e| CliError(e.to_string()))?;
    let options = ScreenOptions {
        method,
        factor: FactorOptions::default()
            .with_ordering(ordering)
            .with_kernels(kernels),
        top_k,
        stress_threshold,
        ..ScreenOptions::default()
    };
    let report = screen_grid(&grid, &Technology::default(), &options)
        .map_err(|e| CliError(e.to_string()))?;
    if args.iter().any(|a| a == "--json") {
        let mut out = report.to_json();
        out.push('\n');
        Ok(out)
    } else {
        Ok(report.render())
    }
}

fn cmd_fea(args: &[String]) -> Result<String, CliError> {
    let pattern = parse_pattern(args)?;
    let (array, label) = match option_value(args, "--array").unwrap_or("4x4") {
        "1x1" => (ViaArrayGeometry::paper_1x1(), "1x1"),
        "4x4" => (ViaArrayGeometry::paper_4x4(), "4x4"),
        "8x8" => (ViaArrayGeometry::paper_8x8(), "8x8"),
        other => return Err(CliError(format!("unknown array `{other}`"))),
    };
    let (resolution, source) = parse_resolution(args)?;
    let (ordering, ordering_source) = parse_ordering(args)?;
    let (kernels, kernels_source) = parse_kernels(args)?;
    let threads = parse_usize(args, "--fea-threads", 1)?;
    if threads == 0 {
        return Err(CliError("--fea-threads must be at least 1".to_owned()));
    }
    let no_cache = args.iter().any(|a| a == "--no-cache");
    let model = CharacterizationModel {
        pattern,
        array,
        resolution,
        ..CharacterizationModel::default()
    };
    let cache = if no_cache {
        None
    } else if let Some(dir) = option_value(args, "--cache-dir") {
        Some(StressCache::new(dir))
    } else {
        StressCache::open_default()
    };
    let caching = match &cache {
        Some(c) => format!("{}", c.dir().display()),
        None => "disabled".to_owned(),
    };
    let opts = FeaOptions {
        threads,
        ordering,
        kernels,
        cache,
        ..FeaOptions::default()
    };
    let (table, report) =
        StressTable::characterize_with_fea_opts(&[(model, LayerPair::IntermediateTop)], &opts)
            .map_err(|e| CliError(e.to_string()))?;
    let entry = &table.entries()[0];
    let prim = &report.primitives[0];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "array {label} ({pattern} pattern), resolution {resolution} um (from {source})"
    );
    let _ = writeln!(out, "cache          : {caching}");
    let _ = writeln!(
        out,
        "ordering       : {} (from {ordering_source})",
        ordering.label()
    );
    let _ = writeln!(
        out,
        "kernels        : {} (from {kernels_source})",
        kernels.label()
    );
    let _ = writeln!(
        out,
        "solve          : {} ({} unknowns, {} iterations), {} thread(s), {:.0} ms",
        prim.solver,
        prim.unknowns,
        prim.iterations,
        threads,
        report.total_time.as_secs_f64() * 1e3
    );
    let _ = writeln!(out, "per-via peak tensile stress (MPa, row-major):");
    for r in 0..entry.rows {
        let row: Vec<String> = (0..entry.cols)
            .map(|c| format!("{:7.1}", entry.per_via_stress[r * entry.cols + c] / 1e6))
            .collect();
        let _ = writeln!(out, "  {}", row.join(" "));
    }
    Ok(out)
}

fn cmd_signoff(args: &[String]) -> Result<String, CliError> {
    let netlist = load_deck(args)?;
    let target_years: f64 = match option_value(args, "--target-years") {
        None => 10.0,
        Some(v) => v
            .parse()
            .map_err(|_| CliError(format!("invalid value `{v}` for --target-years")))?,
    };
    let tech = Technology::default();
    let black = BlackModel::from_accelerated_test(&tech, 3e10, 300.0);
    let grid = PowerGrid::from_netlist(netlist).map_err(|e| CliError(e.to_string()))?;
    let report = current_density_signoff(
        &grid,
        &tech,
        &black,
        &WireGeometry::default(),
        target_years * SECONDS_PER_YEAR,
    );
    let mut out = String::new();
    let _ = writeln!(
        out,
        "traditional (Black's-law) signoff at a {target_years}-year target"
    );
    let _ = writeln!(out, "current-density limit : {:.3e} A/m^2", report.limit);
    let _ = writeln!(
        out,
        "peak current density  : {:.3e} A/m^2 over {} elements",
        report.peak_current_density, report.checked
    );
    if report.passes() {
        out.push_str(
            "verdict               : PASS (no element above the limit)
",
        );
        out.push_str(
            "note: this check ignores thermomechanical stress and via-array
",
        );
        out.push_str(
            "redundancy; run `analyze` for the stress-aware lifetime.
",
        );
    } else {
        let _ = writeln!(
            out,
            "verdict               : FAIL ({} element(s) above the limit)",
            report.violations.len()
        );
        for v in report.violations.iter().take(5) {
            let _ = writeln!(
                out,
                "  {:<12} {:.3e} A/m^2 (limit {:.3e})",
                v.name, v.current_density, v.limit
            );
        }
    }
    Ok(out)
}

/// Parses the `serve` flags into a daemon configuration.
fn serve_config(args: &[String]) -> Result<ServeConfig, CliError> {
    let defaults = ServeConfig::default();
    let workers = parse_usize(args, "--workers", defaults.workers)?;
    if workers == 0 {
        return Err(CliError("--workers must be at least 1".to_owned()));
    }
    let queue_depth = parse_usize(args, "--queue-depth", defaults.queue_depth)?;
    if queue_depth == 0 {
        return Err(CliError("--queue-depth must be at least 1".to_owned()));
    }
    let max_connections = parse_usize(args, "--max-connections", defaults.max_connections)?;
    if max_connections == 0 {
        return Err(CliError("--max-connections must be at least 1".to_owned()));
    }
    let max_netlist_lines = parse_usize(args, "--max-netlist-lines", defaults.max_netlist_lines)?;
    if max_netlist_lines == 0 {
        return Err(CliError(
            "--max-netlist-lines must be at least 1".to_owned(),
        ));
    }
    Ok(ServeConfig {
        addr: option_value(args, "--addr")
            .unwrap_or("127.0.0.1:8080")
            .to_owned(),
        workers,
        queue_depth,
        checkpoint_every: parse_usize(args, "--checkpoint-every", defaults.checkpoint_every)?,
        state_dir: option_value(args, "--state-dir")
            .map(Into::into)
            .unwrap_or(defaults.state_dir),
        cache_dir: option_value(args, "--cache-dir").map(Into::into),
        max_body_bytes: parse_usize(args, "--max-body-bytes", defaults.max_body_bytes)?,
        max_netlist_lines,
        max_connections,
        request_deadline: defaults.request_deadline,
        debug_panic_route: args.iter().any(|a| a == "--debug-panic-route"),
        io: match option_value(args, "--io") {
            None => defaults.io,
            Some(value) => value
                .parse()
                .map_err(|e: String| CliError(format!("--io: {e}")))?,
        },
        dispatchers: {
            let dispatchers = parse_usize(args, "--dispatchers", defaults.dispatchers)?;
            if dispatchers == 0 {
                return Err(CliError("--dispatchers must be at least 1".to_owned()));
            }
            dispatchers
        },
        max_in_flight_per_client: parse_usize(
            args,
            "--max-in-flight-per-client",
            defaults.max_in_flight_per_client,
        )?,
        shutdown_grace: defaults.shutdown_grace,
    })
}

/// Runs one sweep spec to completion on an in-process backend and prints
/// where the aggregated report landed. Sharing `--state-dir` with a prior
/// interrupted run resumes it from the completed jobs.
fn cmd_sweep(args: &[String]) -> Result<String, CliError> {
    use emgrid_batch::{LocalBackend, SweepEngine};

    // First positional argument: the sweep spec path.
    let mut path = None;
    let mut i = 0;
    while i < args.len() {
        if args[i].starts_with("--") {
            i += 2;
        } else {
            path = Some(&args[i]);
            break;
        }
    }
    let path = path.ok_or_else(|| CliError("missing sweep spec path".to_owned()))?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError(format!("cannot read `{path}`: {e}")))?;

    let workers = parse_usize(args, "--workers", 2)?;
    if workers == 0 {
        return Err(CliError("--workers must be at least 1".to_owned()));
    }
    let checkpoint_every = parse_usize(args, "--checkpoint-every", 64)?;
    let max_in_flight = parse_usize(args, "--max-in-flight", 2 * workers)?;
    if max_in_flight == 0 {
        return Err(CliError("--max-in-flight must be at least 1".to_owned()));
    }
    let state_dir: std::path::PathBuf = option_value(args, "--state-dir")
        .unwrap_or("results/jobs")
        .into();

    let backend = LocalBackend::open(&state_dir, workers, checkpoint_every)
        .map_err(|e| CliError(format!("cannot open state dir: {e}")))?;
    let engine = SweepEngine::new(
        std::sync::Arc::new(backend),
        state_dir.join("sweeps"),
        max_in_flight,
    )
    .map_err(|e| CliError(format!("cannot open sweep store: {e}")))?;
    let submission = engine.submit_text(&text).map_err(|e| {
        CliError(match &e.field {
            Some(field) => format!("invalid sweep spec at `{field}`: {e}"),
            None => format!("invalid sweep spec: {e}"),
        })
    })?;
    engine.wait_idle();

    let status = engine
        .status(&submission.sweep)
        .ok_or_else(|| CliError("sweep state disappeared".to_owned()))?;
    let report = engine.store().report_path(&submission.sweep);
    if engine.report_bytes(&submission.sweep).is_none() {
        return Err(CliError(format!(
            "sweep {} was interrupted before completing; re-run to resume",
            submission.sweep
        )));
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "sweep          : {} ({})",
        submission.sweep, submission.name
    );
    let _ = writeln!(
        out,
        "jobs           : {} total, {} done, {} failed, {} cancelled",
        status.total, status.done, status.failed, status.cancelled
    );
    let _ = writeln!(out, "report         : {}", report.display());
    Ok(out)
}

/// Validates one job or sweep spec offline and prints the canonical
/// (persisted) document to stdout — the same strict checks the HTTP API
/// and the sweep engine apply, including full axis expansion, with the
/// same field attribution, but with no daemon and no state directory.
fn cmd_validate(args: &[String]) -> Result<String, CliError> {
    use emgrid_scenarios::SweepSpec;
    use emgrid_serve::json::{self, Json};
    use emgrid_serve::{JobSpec, SpecError};

    // First positional argument: the spec path.
    let mut path = None;
    let mut i = 0;
    while i < args.len() {
        if args[i].starts_with("--") {
            i += 2;
        } else {
            path = Some(&args[i]);
            break;
        }
    }
    let path = path.ok_or_else(|| CliError("missing spec path".to_owned()))?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError(format!("cannot read `{path}`: {e}")))?;
    let doc =
        json::parse(&text).map_err(|e| CliError(format!("`{path}` is not valid JSON: {e}")))?;
    let spec_err = |kind: &str, e: SpecError| {
        CliError(match &e.field {
            Some(field) => format!("invalid {kind} spec at `{field}`: {e}"),
            None => format!("invalid {kind} spec: {e}"),
        })
    };
    // A `kind` key marks a job spec; everything else is tried as a sweep.
    let is_job = matches!(&doc, Json::Obj(pairs) if pairs.iter().any(|(k, _)| k == "kind"));
    let mut canonical = if is_job {
        let spec = JobSpec::from_json(&doc).map_err(|e| spec_err("job", e))?;
        spec.resolve().map_err(|e| spec_err("job", e))?;
        spec.to_json().to_string()
    } else {
        let spec = SweepSpec::from_json(&doc).map_err(|e| spec_err("sweep", e))?;
        spec.expand().map_err(|e| spec_err("sweep", e))?;
        spec.canonical_string()
    };
    canonical.push('\n');
    Ok(canonical)
}

/// Runs the daemon in the foreground until the process is killed. Prints
/// the bound address before blocking so scripts can discover an ephemeral
/// port (`--addr 127.0.0.1:0`).
fn cmd_serve(args: &[String]) -> Result<String, CliError> {
    use emgrid_batch::SweepEngine;
    use std::sync::Arc;

    let config = serve_config(args)?;
    let state_dir = config.state_dir.clone();
    let workers = config.workers;
    let server =
        Server::start(config).map_err(|e| CliError(format!("cannot start daemon: {e}")))?;
    // Mount the sweep API over the job engine and resume any sweep that
    // was interrupted (spec on disk, no report) by a previous daemon.
    let engine = SweepEngine::new(
        Arc::new(server.jobs_api()),
        state_dir.join("sweeps"),
        2 * workers,
    )
    .map_err(|e| CliError(format!("cannot open sweep store: {e}")))?;
    let hook_engine = Arc::clone(&engine);
    server.set_route_hook(Arc::new(move |req| {
        emgrid_batch::http::route(req, &hook_engine)
    }));
    engine.resume_all();
    println!("emgrid-serve listening on {}", server.local_addr());
    println!("state dir      : {}", state_dir.display());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.wait();
    Ok(String::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn no_args_prints_usage() {
        let err = run(&[]).unwrap_err();
        assert!(err.0.contains("USAGE"));
    }

    #[test]
    fn unknown_command_is_rejected() {
        let err = run(&argv("frobnicate")).unwrap_err();
        assert!(err.0.contains("unknown command"));
    }

    #[test]
    fn help_prints_usage() {
        let out = run(&argv("help")).unwrap();
        assert!(out.contains("characterize"));
    }

    #[test]
    fn serve_flags_parse_into_a_config() {
        let cfg = serve_config(&argv(
            "--addr 127.0.0.1:0 --workers 3 --queue-depth 9 --checkpoint-every 5 \
             --state-dir /tmp/emgrid-jobs --cache-dir /tmp/emgrid-cache --max-body-bytes 4096 \
             --max-netlist-lines 3000000 --max-connections 17 --debug-panic-route \
             --io threads --dispatchers 3 --max-in-flight-per-client 8",
        ))
        .unwrap();
        assert_eq!(cfg.addr, "127.0.0.1:0");
        assert_eq!(
            (cfg.workers, cfg.queue_depth, cfg.checkpoint_every),
            (3, 9, 5)
        );
        assert_eq!(cfg.state_dir, std::path::PathBuf::from("/tmp/emgrid-jobs"));
        assert_eq!(
            cfg.cache_dir.as_deref(),
            Some(std::path::Path::new("/tmp/emgrid-cache"))
        );
        assert_eq!(cfg.max_body_bytes, 4096);
        assert_eq!(cfg.max_netlist_lines, 3_000_000);
        assert_eq!(cfg.max_connections, 17);
        assert!(cfg.debug_panic_route);
        assert_eq!(cfg.io, emgrid_serve::IoBackend::Threads);
        assert_eq!(cfg.dispatchers, 3);
        assert_eq!(cfg.max_in_flight_per_client, 8);

        let defaults = serve_config(&[]).unwrap();
        assert_eq!(defaults.addr, "127.0.0.1:8080");
        assert_eq!(defaults.max_netlist_lines, 400_000);
        assert!(defaults.cache_dir.is_none());
        assert!(!defaults.debug_panic_route);
        // On Unix the readiness event loop is the default backend.
        #[cfg(unix)]
        assert_eq!(defaults.io, emgrid_serve::IoBackend::Poll);
        assert_eq!(
            serve_config(&argv("--io poll")).unwrap().io,
            emgrid_serve::IoBackend::Poll
        );
        assert!(serve_config(&argv("--io epoll")).is_err());
        assert!(serve_config(&argv("--workers 0")).is_err());
        assert!(serve_config(&argv("--queue-depth 0")).is_err());
        assert!(serve_config(&argv("--max-connections 0")).is_err());
        assert!(serve_config(&argv("--max-netlist-lines 0")).is_err());
        assert!(serve_config(&argv("--dispatchers 0")).is_err());
    }

    #[test]
    fn generate_produces_parsable_deck() {
        let out = run(&argv("generate --profile pg1")).unwrap();
        let n = parse(&out).unwrap();
        assert!(n.node_count() > 1000);
        assert!(run(&argv("generate --profile nope")).is_err());
    }

    #[test]
    fn lint_and_irdrop_on_a_temp_deck() {
        let deck = run(&argv("generate --profile pg1")).unwrap();
        let path = std::env::temp_dir().join("emgrid_cli_test_pg1.sp");
        std::fs::write(&path, deck).unwrap();
        let path = path.to_string_lossy().into_owned();

        let out = run(&[String::from("lint"), path.clone()]).unwrap();
        assert!(out.contains("no issues found"), "{out}");

        let out = run(&[String::from("irdrop"), path.clone()]).unwrap();
        assert!(out.contains("worst IR drop"));
        assert!(out.contains("met"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn characterize_reports_fit() {
        let out = run(&argv(
            "characterize --array 4x4 --pattern plus --criterion r2x --trials 200 --seed 3",
        ))
        .unwrap();
        assert!(out.contains("lognormal fit"));
        assert!(out.contains("R=2x"));
    }

    #[test]
    fn characterize_rejects_bad_options() {
        assert!(run(&argv("characterize --array 3x3")).is_err());
        assert!(run(&argv("characterize --pattern round")).is_err());
        assert!(run(&argv("characterize --criterion maybe")).is_err());
        assert!(run(&argv("characterize --trials many")).is_err());
        assert!(run(&argv("characterize --threads 0")).is_err());
        assert!(run(&argv("characterize --target-ci 0")).is_err());
        assert!(run(&argv("characterize --target-ci tight")).is_err());
    }

    #[test]
    fn characterize_is_thread_count_invariant() {
        let base = "characterize --trials 120 --seed 5 --threads";
        let one = run(&argv(&format!("{base} 1"))).unwrap();
        let four = run(&argv(&format!("{base} 4"))).unwrap();
        // Identical modulo the execution telemetry line (timing/threads).
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with("execution"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&one), strip(&four));
        assert!(four.contains("4 thread(s)"), "{four}");
    }

    #[test]
    fn characterize_stops_early_at_a_loose_target() {
        let out = run(&argv(
            "characterize --trials 100000 --seed 5 --target-ci 0.2",
        ))
        .unwrap();
        assert!(out.contains("stopped early"), "{out}");
    }

    #[test]
    fn analyze_runs_end_to_end_on_a_small_deck() {
        let deck = write_string(&GridSpec::custom("cli", 8, 8).generate());
        let path = std::env::temp_dir().join("emgrid_cli_test_small.sp");
        std::fs::write(&path, deck).unwrap();
        let path = path.to_string_lossy().into_owned();
        let out = run(&[
            "analyze".into(),
            path.clone(),
            "--trials".into(),
            "150".into(),
            "--grid-trials".into(),
            "10".into(),
        ])
        .unwrap();
        assert!(out.contains("system TTF median"), "{out}");
        assert!(out.contains("most critical sites"));

        // Variation flags thread through both Monte Carlo levels.
        let varied = run(&[
            "analyze".into(),
            path.clone(),
            "--trials".into(),
            "150".into(),
            "--grid-trials".into(),
            "10".into(),
            "--edge-current-factor".into(),
            "0.5".into(),
            "--temperature-sigma".into(),
            "8".into(),
        ])
        .unwrap();
        assert!(
            varied.contains("variation      : edge factor 0.5, sigma_T 8 degC, sigma_w 0"),
            "{varied}"
        );
        assert!(varied.contains("system TTF median"), "{varied}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn screen_ranks_a_profile_without_monte_carlo() {
        let out = run(&argv("screen --profile pg1 --top-k 8")).unwrap();
        assert!(out.contains("via arrays"), "{out}");
        assert!(out.contains("stress"), "{out}");

        // The JSON document is deterministic run to run.
        let a = run(&argv("screen --profile pg1 --top-k 8 --json")).unwrap();
        let b = run(&argv("screen --profile pg1 --top-k 8 --json")).unwrap();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"kind\":\"screen\""), "{a}");
        assert!(a.contains("\"selected\":8"), "{a}");

        // Both engines rank; an explicit method is honoured.
        let cg = run(&argv("screen --profile pg1 --top-k 8 --method cg --json")).unwrap();
        assert!(cg.contains("\"selected\":8"), "{cg}");

        assert!(run(&argv("screen --profile nope")).is_err());
        assert!(run(&argv("screen --profile pg1 --top-k 0")).is_err());
        assert!(run(&argv("screen --profile pg1 --stress-threshold -4")).is_err());
        assert!(run(&argv("screen --profile pg1 --method simplex")).is_err());
        assert!(run(&argv("screen")).is_err(), "missing deck path");
    }

    #[test]
    fn screen_reads_a_deck_file_too() {
        let deck = write_string(&GridSpec::custom("cli-screen", 8, 8).generate());
        let path = std::env::temp_dir().join("emgrid_cli_test_screen.sp");
        std::fs::write(&path, deck).unwrap();
        let path = path.to_string_lossy().into_owned();
        let out = run(&["screen".into(), path.clone(), "--json".into()]).unwrap();
        assert!(out.contains("\"kind\":\"screen\""), "{out}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn signoff_command_reports_verdict() {
        let deck = run(&argv("generate --profile pg1")).unwrap();
        let path = std::env::temp_dir().join("emgrid_cli_test_signoff.sp");
        std::fs::write(&path, deck).unwrap();
        let path = path.to_string_lossy().into_owned();
        let out = run(&[
            "signoff".into(),
            path.clone(),
            "--target-years".into(),
            "1".into(),
        ])
        .unwrap();
        assert!(out.contains("verdict"), "{out}");
        assert!(out.contains("current-density limit"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn sweep_runs_a_small_spec_and_writes_a_report() {
        let dir = std::env::temp_dir().join(format!("emgrid-cli-sweep-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let spec = dir.join("spec.json");
        std::fs::write(
            &spec,
            r#"{
                "name": "cli-sweep",
                "job": {"kind": "characterize", "trials": 32, "threads": 1, "array": "1x1"},
                "axes": {"seed": [1, 2]}
            }"#,
        )
        .unwrap();
        let out = run(&[
            "sweep".into(),
            spec.to_string_lossy().into_owned(),
            "--state-dir".into(),
            dir.join("jobs").to_string_lossy().into_owned(),
        ])
        .unwrap();
        assert!(out.contains("2 total, 2 done, 0 failed"), "{out}");
        let report = out
            .lines()
            .find(|l| l.starts_with("report"))
            .and_then(|l| l.split_once(':').map(|x| x.1))
            .map(str::trim)
            .unwrap();
        assert!(std::path::Path::new(report).exists(), "{out}");
        assert!(run(&argv("sweep")).is_err(), "missing spec path");
        assert!(run(&argv("sweep nope.json --workers 0")).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn validate_canonicalizes_job_and_sweep_specs() {
        let dir = std::env::temp_dir().join(format!("emgrid-cli-validate-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        // Job spec (has `kind`): defaults materialize, `schema` renders first.
        let job = dir.join("job.json");
        std::fs::write(&job, r#"{"schema": 1, "kind": "characterize"}"#).unwrap();
        let out = run(&["validate".into(), job.to_string_lossy().into_owned()]).unwrap();
        assert_eq!(
            out,
            "{\"schema\":1,\"kind\":\"characterize\",\"array\":\"4x4\",\"pattern\":\"plus\",\
             \"criterion\":\"rinf\",\"trials\":2000,\"seed\":1,\"threads\":1}\n"
        );

        // Sweep spec (no `kind`): validated through full axis expansion,
        // dotted variation axes included.
        let sweep = dir.join("sweep.json");
        std::fs::write(
            &sweep,
            r#"{
                "name": "v",
                "job": {"kind": "characterize", "trials": 8},
                "axes": {"variation.edge_current_factor": [0, 0.5]}
            }"#,
        )
        .unwrap();
        let out = run(&["validate".into(), sweep.to_string_lossy().into_owned()]).unwrap();
        assert!(out.starts_with("{\"name\":\"v\""), "{out}");
        assert!(out.contains("variation.edge_current_factor"), "{out}");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn validate_names_the_offending_field() {
        let dir =
            std::env::temp_dir().join(format!("emgrid-cli-validate-bad-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let bad_job = dir.join("bad-job.json");
        std::fs::write(&bad_job, r#"{"kind": "characterize", "schema": 7}"#).unwrap();
        let err = run(&["validate".into(), bad_job.to_string_lossy().into_owned()]).unwrap_err();
        assert!(err.0.contains("`schema`"), "{}", err.0);
        assert!(err.0.contains("unsupported spec schema 7"), "{}", err.0);

        let bad_sweep = dir.join("bad-sweep.json");
        std::fs::write(
            &bad_sweep,
            r#"{"name": "b", "job": {"kind": "characterize", "trials": 8},
                "axes": {"array": ["1x1", "9x9"]}}"#,
        )
        .unwrap();
        let err = run(&["validate".into(), bad_sweep.to_string_lossy().into_owned()]).unwrap_err();
        assert!(err.0.contains("`axes.array[1]`"), "{}", err.0);

        let not_json = dir.join("not.json");
        std::fs::write(&not_json, "nope").unwrap();
        let err = run(&["validate".into(), not_json.to_string_lossy().into_owned()]).unwrap_err();
        assert!(err.0.contains("not valid JSON"), "{}", err.0);

        assert!(run(&argv("validate")).is_err(), "missing spec path");
        assert!(run(&argv("validate /nonexistent/spec.json")).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn characterize_variation_flags_report_fields_and_variance() {
        let base = "characterize --array 4x4 --trials 64 --seed 9";
        let nominal = run(&argv(base)).unwrap();
        let varied = run(&argv(&format!(
            "{base} --edge-current-factor 0.5 --temperature-sigma 8 \
             --linewidth-sigma 0.1 --variance-analysis"
        )))
        .unwrap();
        assert!(
            varied.contains("variation      : edge factor 0.5, sigma_T 8 degC, sigma_w 0.1"),
            "{varied}"
        );
        assert!(varied.contains("ln-TTF variance: total "), "{varied}");
        assert!(!nominal.contains("variation"), "{nominal}");
        assert_ne!(nominal, varied);
    }

    #[test]
    fn variation_flags_are_bounded() {
        assert!(run(&argv("characterize --edge-current-factor -1")).is_err());
        assert!(run(&argv("characterize --edge-current-factor lots")).is_err());
        assert!(run(&argv("characterize --temperature-sigma 1000")).is_err());
        assert!(run(&argv("characterize --linewidth-sigma 0.9")).is_err());
    }

    #[test]
    fn varied_characterize_is_thread_count_invariant() {
        let base = "characterize --trials 96 --seed 7 --edge-current-factor 0.4 \
                    --temperature-sigma 6 --linewidth-sigma 0.05 --threads";
        let one = run(&argv(&format!("{base} 1"))).unwrap();
        let four = run(&argv(&format!("{base} 4"))).unwrap();
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with("execution"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&one), strip(&four));
    }

    #[test]
    fn missing_deck_path_reported() {
        let err = run(&argv("irdrop --repair-vias 0.5")).unwrap_err();
        assert!(err.0.contains("missing deck path"));
    }

    #[test]
    fn fea_solves_a_coarse_primitive() {
        let out = run(&argv(
            "fea --array 1x1 --pattern plus --resolution 0.5 --no-cache",
        ))
        .unwrap();
        assert!(
            out.contains("resolution 0.5 um (from --resolution)"),
            "{out}"
        );
        assert!(out.contains("cache          : disabled"), "{out}");
        assert!(out.contains("per-via peak tensile stress"), "{out}");
    }

    #[test]
    fn fea_cache_dir_flag_redirects_the_cache() {
        let dir = std::env::temp_dir().join(format!("emgrid-cli-cache-{}", std::process::id()));
        let out = run(&argv(&format!(
            "fea --array 1x1 --pattern plus --resolution 0.5 --cache-dir {}",
            dir.display()
        )))
        .unwrap();
        assert!(
            out.contains(&format!("cache          : {}", dir.display())),
            "{out}"
        );
        // The run populated the redirected cache on disk.
        assert!(
            std::fs::read_dir(&dir)
                .map(|mut d| d.next().is_some())
                .unwrap_or(false),
            "expected a cache entry under {}",
            dir.display()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fea_rejects_bad_options() {
        assert!(run(&argv("fea --array 3x3")).is_err());
        assert!(run(&argv("fea --pattern round")).is_err());
        assert!(run(&argv("fea --resolution 0")).is_err());
        assert!(run(&argv("fea --resolution coarse")).is_err());
        assert!(run(&argv("fea --fea-threads 0")).is_err());
        assert!(run(&argv("fea --ordering best")).is_err());
        assert!(run(&argv("fea --kernels simd")).is_err());
    }

    #[test]
    fn kernels_flag_beats_env_var_and_env_beats_default() {
        // One test mutates EMGRID_KERNELS to avoid races.
        std::env::set_var("EMGRID_KERNELS", "scalar");
        let (k, src) = parse_kernels(&argv("--kernels blocked")).unwrap();
        assert_eq!((k, src), (KernelBackend::Blocked, "--kernels"));
        let (k, src) = parse_kernels(&argv("")).unwrap();
        assert_eq!((k, src), (KernelBackend::Scalar, "EMGRID_KERNELS"));
        std::env::set_var("EMGRID_KERNELS", "fastest");
        assert!(parse_kernels(&argv("")).is_err());
        std::env::remove_var("EMGRID_KERNELS");
        let (k, src) = parse_kernels(&argv("")).unwrap();
        assert_eq!((k, src), (KernelBackend::Auto, "default"));
    }

    #[test]
    fn ordering_flag_beats_env_var_and_env_beats_default() {
        // One test mutates EMGRID_ORDERING to avoid races.
        std::env::set_var("EMGRID_ORDERING", "rcm");
        let (o, src) = parse_ordering(&argv("--ordering natural")).unwrap();
        assert_eq!((o, src), (Ordering::Natural, "--ordering"));
        let (o, src) = parse_ordering(&argv("")).unwrap();
        assert_eq!((o, src), (Ordering::Rcm, "EMGRID_ORDERING"));
        std::env::set_var("EMGRID_ORDERING", "fastest");
        assert!(parse_ordering(&argv("")).is_err());
        std::env::remove_var("EMGRID_ORDERING");
        let (o, src) = parse_ordering(&argv("")).unwrap();
        assert_eq!((o, src), (Ordering::Amd, "default"));
    }

    #[test]
    fn resolution_flag_beats_env_var_and_env_beats_default() {
        // One test mutates the process environment to avoid races.
        std::env::set_var("EMGRID_RESOLUTION", "0.7");
        let (r, src) = parse_resolution(&argv("--resolution 0.5")).unwrap();
        assert_eq!((r, src), (0.5, "--resolution"));
        let (r, src) = parse_resolution(&argv("")).unwrap();
        assert_eq!((r, src), (0.7, "EMGRID_RESOLUTION"));
        std::env::set_var("EMGRID_RESOLUTION", "junk");
        assert!(parse_resolution(&argv("")).is_err());
        std::env::remove_var("EMGRID_RESOLUTION");
        let (r, src) = parse_resolution(&argv("")).unwrap();
        assert_eq!((r, src), (0.25, "default"));
    }
}
