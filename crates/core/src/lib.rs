//! `emgrid` — stress-aware electromigration reliability analysis of power
//! grids with via arrays.
//!
//! A from-scratch Rust reproduction of *"Incorporating the Role of Stress on
//! Electromigration in Power Grids with Via Arrays"* (Mishra, Jain, Marella,
//! Sapatnekar — DAC 2017), including every substrate the paper relies on:
//!
//! | sub-crate | role |
//! |---|---|
//! | [`sparse`] | sparse Cholesky / CG / Sherman–Morrison–Woodbury solvers |
//! | [`stats`] | lognormal machinery, Wilkinson approximation, ECDFs, KS |
//! | [`fea`] | 3-D thermoelastic FEM of the Cu dual-damascene stack |
//! | [`em`] | Korhonen nucleation model, Eq. (1)–(4) |
//! | [`via`] | via-array redundancy, stress tables, level-1 Monte Carlo |
//! | [`spice`] | SPICE netlists, MNA DC solver, benchmark generator |
//! | [`pg`] | power-grid IR-drop reliability, level-2 Monte Carlo |
//! | [`screen`] | linear-time steady-state EM screening (prefilter before MC) |
//!
//! The typical flow mirrors the paper:
//!
//! 1. **Characterize** a via-array configuration: thermomechanical stress
//!    from the FEA engine (or the bundled reference table), level-1 Monte
//!    Carlo, lognormal fit.
//! 2. **Analyze** a power grid: sample via-array TTFs at each site's local
//!    current, fail arrays until the IR-drop criterion is breached.
//!
//! [`ReliabilityStudy`] packages the whole flow.
//!
//! # Example
//!
//! ```
//! use emgrid::prelude::*;
//! use emgrid::ReliabilityStudy;
//!
//! let outcome = ReliabilityStudy::new(GridSpec::custom("demo", 8, 8))
//!     .with_array(ViaArrayConfig::paper_4x4(IntersectionPattern::Plus))
//!     .with_via_criterion(FailureCriterion::OpenCircuit)
//!     .with_system_criterion(SystemCriterion::IrDropFraction(0.10))
//!     .with_trials(100, 20)
//!     .run(42)
//!     .unwrap();
//! assert!(outcome.grid_result.worst_case_years() > 0.0);
//! ```

pub mod cli;

pub use emgrid_em as em;
pub use emgrid_fea as fea;
pub use emgrid_pg as pg;
pub use emgrid_runtime as runtime;
pub use emgrid_screen as screen;
pub use emgrid_sparse as sparse;
pub use emgrid_spice as spice;
pub use emgrid_stats as stats;
pub use emgrid_via as via;

use std::error::Error;
use std::fmt;

use emgrid_em::Technology;
use emgrid_fea::geometry::IntersectionPattern;
use emgrid_pg::{McResult, PgError, PowerGrid, PowerGridMc, SolverStrategy, SystemCriterion};
use emgrid_runtime::RuntimeConfig;
use emgrid_spice::GridSpec;
use emgrid_stats::InvalidParameterError;
use emgrid_via::{
    CharacterizationResult, FailureCriterion, ViaArrayConfig, ViaArrayMc, ViaArrayReliability,
};

/// Everything most users need.
pub mod prelude {
    pub use emgrid_em::{Technology, SECONDS_PER_YEAR};
    pub use emgrid_fea::geometry::{CharacterizationModel, IntersectionPattern, ViaArrayGeometry};
    pub use emgrid_fea::model::ThermalStressAnalysis;
    pub use emgrid_pg::{
        GridVariation, IrDropReport, McResult, PowerGrid, PowerGridMc, SiteAssignment,
        SolverStrategy, SystemCriterion, Table2Row, TtfCurve,
    };
    pub use emgrid_runtime::{EarlyStop, RunReport, RuntimeConfig};
    pub use emgrid_spice::{parse, GridSpec};
    pub use emgrid_stats::{Ecdf, LogNormal, OnlineStats};
    pub use emgrid_via::{
        CurrentModel, FailureCriterion, FeaOptions, FeaReport, StressCache, StressTable,
        VarianceDecomposition, Variation, ViaArrayConfig, ViaArrayMc, ViaArrayReliability,
    };
}

/// Errors from the end-to-end study pipeline.
#[derive(Debug)]
pub enum StudyError {
    /// Via-array characterization could not be fitted.
    Fit(InvalidParameterError),
    /// Power-grid analysis failed.
    Grid(PgError),
}

impl fmt::Display for StudyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StudyError::Fit(e) => write!(f, "via-array characterization failed: {e}"),
            StudyError::Grid(e) => write!(f, "power-grid analysis failed: {e}"),
        }
    }
}

impl Error for StudyError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StudyError::Fit(e) => Some(e),
            StudyError::Grid(e) => Some(e),
        }
    }
}

impl From<InvalidParameterError> for StudyError {
    fn from(e: InvalidParameterError) -> Self {
        StudyError::Fit(e)
    }
}

impl From<PgError> for StudyError {
    fn from(e: PgError) -> Self {
        StudyError::Grid(e)
    }
}

/// An end-to-end study: characterize one via-array configuration, then run
/// the power-grid Monte Carlo with it at every site.
#[derive(Debug, Clone)]
pub struct ReliabilityStudy {
    grid_spec: GridSpec,
    array: ViaArrayConfig,
    technology: Technology,
    via_criterion: FailureCriterion,
    system_criterion: SystemCriterion,
    solver: SolverStrategy,
    characterization_current: f64,
    via_trials: usize,
    grid_trials: usize,
    runtime: RuntimeConfig,
}

impl ReliabilityStudy {
    /// A study of the given synthetic grid with paper-default settings:
    /// 4×4 Plus array, open-circuit array criterion, 10% IR-drop system
    /// criterion, 500 level-1 trials and 500 level-2 trials (the paper's
    /// `N_trials`).
    pub fn new(grid_spec: GridSpec) -> Self {
        ReliabilityStudy {
            grid_spec,
            array: ViaArrayConfig::paper_4x4(IntersectionPattern::Plus),
            technology: Technology::default(),
            via_criterion: FailureCriterion::OpenCircuit,
            system_criterion: SystemCriterion::IrDropFraction(0.10),
            solver: SolverStrategy::default(),
            characterization_current: 1e10,
            via_trials: 500,
            grid_trials: 500,
            runtime: RuntimeConfig::sequential(),
        }
    }

    /// Selects the via-array configuration used at every site.
    pub fn with_array(mut self, array: ViaArrayConfig) -> Self {
        self.array = array;
        self
    }

    /// Overrides the technology parameters.
    pub fn with_technology(mut self, technology: Technology) -> Self {
        self.technology = technology;
        self
    }

    /// Selects the via-array failure criterion.
    pub fn with_via_criterion(mut self, criterion: FailureCriterion) -> Self {
        self.via_criterion = criterion;
        self
    }

    /// Selects the system failure criterion.
    pub fn with_system_criterion(mut self, criterion: SystemCriterion) -> Self {
        self.system_criterion = criterion;
        self
    }

    /// Selects the re-solve strategy.
    pub fn with_solver(mut self, solver: SolverStrategy) -> Self {
        self.solver = solver;
        self
    }

    /// Sets the level-1 and level-2 Monte Carlo trial counts.
    pub fn with_trials(mut self, via_trials: usize, grid_trials: usize) -> Self {
        self.via_trials = via_trials;
        self.grid_trials = grid_trials;
        self
    }

    /// Runs both Monte Carlo levels on the given runtime (thread count and
    /// optional early termination). Results are bit-identical for any
    /// thread count.
    pub fn with_runtime(mut self, runtime: RuntimeConfig) -> Self {
        self.runtime = runtime;
        self
    }

    /// Runs the two-level analysis.
    ///
    /// # Errors
    ///
    /// Returns [`StudyError`] if the characterization cannot be fitted or
    /// the grid analysis fails.
    pub fn run(&self, seed: u64) -> Result<StudyOutcome, StudyError> {
        let characterization = ViaArrayMc::from_reference_table(
            &self.array,
            self.technology,
            self.characterization_current,
        )
        .characterize_with(self.via_trials, seed ^ 0x5eed_0001, &self.runtime);
        let reliability = characterization.reliability(self.via_criterion)?;
        let grid = PowerGrid::from_netlist(self.grid_spec.generate())?;
        let nominal_ir = emgrid_pg::IrDropReport::evaluate(&grid, grid.nominal_solution());
        let mc = PowerGridMc::new(grid, reliability)
            .with_system_criterion(self.system_criterion)
            .with_solver(self.solver);
        let grid_result = mc.run_with(self.grid_trials, seed ^ 0x5eed_0002, &self.runtime)?;
        Ok(StudyOutcome {
            characterization,
            reliability,
            nominal_ir,
            grid_result,
        })
    }
}

/// The artifacts of a [`ReliabilityStudy`].
#[derive(Debug, Clone)]
pub struct StudyOutcome {
    /// Level-1 characterization (per-trial via failure times).
    pub characterization: CharacterizationResult,
    /// The fitted lognormal used at every grid site.
    pub reliability: ViaArrayReliability,
    /// Nominal (failure-free) IR drop of the grid.
    pub nominal_ir: emgrid_pg::IrDropReport,
    /// Level-2 system TTF samples.
    pub grid_result: McResult,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_study() -> ReliabilityStudy {
        ReliabilityStudy::new(GridSpec::custom("t", 8, 8)).with_trials(100, 15)
    }

    #[test]
    fn study_runs_end_to_end() {
        let outcome = quick_study().run(1).unwrap();
        assert!(outcome.nominal_ir.worst_fraction < 0.10);
        assert!(outcome.grid_result.worst_case_years() > 0.0);
        assert!(outcome.reliability.distribution.median() > 0.0);
    }

    #[test]
    fn larger_arrays_improve_system_ttf() {
        // The paper's bottom line (Table 2): 8×8 beats 4×4 for the same
        // criteria.
        let small = quick_study()
            .with_array(ViaArrayConfig::paper_4x4(IntersectionPattern::Plus))
            .run(5)
            .unwrap();
        let large = quick_study()
            .with_array(ViaArrayConfig::paper_8x8(IntersectionPattern::Plus))
            .run(5)
            .unwrap();
        assert!(
            large.grid_result.median_years() > small.grid_result.median_years(),
            "8x8 {} vs 4x4 {}",
            large.grid_result.median_years(),
            small.grid_result.median_years()
        );
    }

    #[test]
    fn study_is_reproducible() {
        let a = quick_study().run(9).unwrap();
        let b = quick_study().run(9).unwrap();
        assert_eq!(a.grid_result.ttf_seconds(), b.grid_result.ttf_seconds());
    }
}
