//! Kill -9 the real `emgrid serve` binary mid-job and prove the restarted
//! daemon finishes the job with exactly the bytes an uninterrupted daemon
//! produces.
//!
//! This is the process-level version of the in-crate daemon tests: no
//! in-process `Server` handles, just the shipped binary, raw sockets and
//! `SIGKILL` — the failure mode the checkpoint design exists for.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const SPEC: &str = r#"{"kind":"characterize","array":"4x4","pattern":"plus","criterion":"rinf","trials":1200,"seed":5,"threads":1}"#;

/// A daemon subprocess that is killed when dropped (so a failing assert
/// cannot leak servers).
struct Daemon {
    child: Child,
    addr: String,
    /// Keeps the stdout pipe open: dropping it would EPIPE the daemon's
    /// own startup prints.
    _stdout: BufReader<std::process::ChildStdout>,
}

impl Daemon {
    fn spawn(state_dir: &PathBuf) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_emgrid"))
            .args([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--workers",
                "1",
                "--checkpoint-every",
                "8",
                "--state-dir",
            ])
            .arg(state_dir)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn emgrid serve");
        // The daemon announces its (ephemeral) address before blocking.
        let stdout = child.stdout.take().expect("piped stdout");
        let mut reader = BufReader::new(stdout);
        let mut first_line = String::new();
        reader
            .read_line(&mut first_line)
            .expect("read listening line");
        let addr = first_line
            .trim()
            .strip_prefix("emgrid-serve listening on ")
            .unwrap_or_else(|| panic!("unexpected banner: {first_line}"))
            .to_owned();
        Daemon {
            child,
            addr,
            _stdout: reader,
        }
    }

    fn request(&self, method: &str, path: &str, body: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(&self.addr).expect("connect to daemon");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        stream.write_all(head.as_bytes()).unwrap();
        stream.write_all(body.as_bytes()).unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read response");
        let status = raw.split_whitespace().nth(1).unwrap().parse().unwrap();
        let body = raw
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_owned())
            .unwrap_or_default();
        (status, body)
    }

    fn submit(&self) -> u64 {
        let (status, body) = self.request("POST", "/v1/jobs", SPEC);
        assert_eq!(status, 202, "{body}");
        // {"id":N,...} — pull N out without a JSON parser.
        let digits: String = body
            .split("\"id\":")
            .nth(1)
            .expect("id in response")
            .chars()
            .take_while(char::is_ascii_digit)
            .collect();
        digits.parse().expect("numeric id")
    }

    fn wait_done(&self, id: u64) -> String {
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            let (status, body) = self.request("GET", &format!("/v1/jobs/{id}"), "");
            assert_eq!(status, 200, "{body}");
            if body.contains("\"status\":\"done\"") {
                let (status, result) = self.request("GET", &format!("/v1/jobs/{id}/result"), "");
                assert_eq!(status, 200, "{result}");
                return result;
            }
            assert!(
                !body.contains("failed") && !body.contains("cancelled"),
                "job ended badly: {body}"
            );
            assert!(Instant::now() < deadline, "job {id} never finished");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// `SIGKILL` — no destructors, no graceful drain.
    fn kill_hard(mut self) {
        self.child.kill().expect("kill daemon");
        self.child.wait().expect("reap daemon");
        std::mem::forget(self); // already reaped
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("emgrid-restart-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn sigkilled_daemon_resumes_to_byte_identical_results() {
    // Reference bytes from an undisturbed daemon.
    let ref_dir = temp_dir("ref");
    let reference = Daemon::spawn(&ref_dir);
    let ref_id = reference.submit();
    let expected = reference.wait_done(ref_id);
    drop(reference);

    // Victim: wait until at least one checkpoint is on disk (or the job
    // beat us to the finish), then SIGKILL the process.
    let victim_dir = temp_dir("victim");
    let victim = Daemon::spawn(&victim_dir);
    let id = victim.submit();
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if victim_dir.join(id.to_string()).join("checkpoint").exists() {
            break;
        }
        let (_, body) = victim.request("GET", &format!("/v1/jobs/{id}"), "");
        if body.contains("\"status\":\"done\"") {
            break;
        }
        assert!(Instant::now() < deadline, "job never progressed: {body}");
        std::thread::yield_now();
    }
    victim.kill_hard();

    // The revived daemon requeues the job under its original id and must
    // reproduce the reference bytes exactly.
    let revived = Daemon::spawn(&victim_dir);
    let resumed = revived.wait_done(id);
    assert_eq!(resumed, expected, "restart changed the result bytes");
    drop(revived);

    let _ = std::fs::remove_dir_all(ref_dir);
    let _ = std::fs::remove_dir_all(victim_dir);
}
