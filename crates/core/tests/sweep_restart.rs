//! Kill -9 the real `emgrid serve` binary mid-sweep and prove the
//! restarted daemon finishes the sweep with exactly the report bytes an
//! uninterrupted daemon produces.
//!
//! This is the process-level half of the sweep conformance suite: the
//! in-crate tests in `emgrid-batch` interrupt through an in-process
//! shutdown, this one uses the shipped binary, raw sockets and `SIGKILL`
//! — the failure mode the manifest's resume protocol exists for.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// 2×2×2 = 8 jobs, each big enough to checkpoint before finishing.
const SWEEP: &str = r#"{
    "name": "restart-conformance",
    "job": {"kind": "characterize", "array": "4x4", "trials": 900, "threads": 1},
    "axes": {
        "pattern": ["plus", "tee"],
        "criterion": ["wl", "rinf"],
        "seed": [5, 6]
    }
}"#;

/// A daemon subprocess that is killed when dropped (so a failing assert
/// cannot leak servers).
struct Daemon {
    child: Child,
    addr: String,
    /// Keeps the stdout pipe open: dropping it would EPIPE the daemon's
    /// own startup prints.
    _stdout: BufReader<std::process::ChildStdout>,
}

impl Daemon {
    fn spawn(state_dir: &PathBuf) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_emgrid"))
            .args([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--workers",
                "1",
                "--checkpoint-every",
                "8",
                "--state-dir",
            ])
            .arg(state_dir)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn emgrid serve");
        // The daemon announces its (ephemeral) address before blocking.
        let stdout = child.stdout.take().expect("piped stdout");
        let mut reader = BufReader::new(stdout);
        let mut first_line = String::new();
        reader
            .read_line(&mut first_line)
            .expect("read listening line");
        let addr = first_line
            .trim()
            .strip_prefix("emgrid-serve listening on ")
            .unwrap_or_else(|| panic!("unexpected banner: {first_line}"))
            .to_owned();
        Daemon {
            child,
            addr,
            _stdout: reader,
        }
    }

    fn request(&self, method: &str, path: &str, body: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(&self.addr).expect("connect to daemon");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        stream.write_all(head.as_bytes()).unwrap();
        stream.write_all(body.as_bytes()).unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read response");
        let status = raw.split_whitespace().nth(1).unwrap().parse().unwrap();
        let body = raw
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_owned())
            .unwrap_or_default();
        (status, body)
    }

    /// Submits the sweep and returns its content-derived id.
    fn submit_sweep(&self) -> String {
        let (status, body) = self.request("POST", "/v1/sweeps", SWEEP);
        assert!(status == 202 || status == 200, "{status}: {body}");
        let marker = "\"sweep\":\"";
        let start = body.find(marker).expect("sweep id in response") + marker.len();
        let end = body[start..].find('"').unwrap();
        body[start..start + end].to_owned()
    }

    /// Polls sweep status until `ready` accepts the body; returns that
    /// body (the state observed at the instant the predicate fired).
    fn wait_progress(&self, sweep: &str, ready: impl Fn(&str) -> bool) -> String {
        let deadline = Instant::now() + Duration::from_secs(300);
        loop {
            let (status, body) = self.request("GET", &format!("/v1/sweeps/{sweep}"), "");
            assert_eq!(status, 200, "{body}");
            if ready(&body) {
                return body;
            }
            assert!(Instant::now() < deadline, "sweep stalled: {body}");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    fn report(&self, sweep: &str) -> String {
        let (status, body) = self.request("GET", &format!("/v1/sweeps/{sweep}/report"), "");
        assert_eq!(status, 200, "{body}");
        body
    }

    /// `SIGKILL` — no destructors, no graceful drain.
    fn kill_hard(mut self) {
        self.child.kill().expect("kill daemon");
        self.child.wait().expect("reap daemon");
        std::mem::forget(self); // already reaped
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("emgrid-sweep-restart-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn sigkilled_daemon_resumes_a_sweep_to_a_byte_identical_report() {
    // Reference report from an undisturbed daemon.
    let ref_dir = temp_dir("ref");
    let reference = Daemon::spawn(&ref_dir);
    let ref_sweep = reference.submit_sweep();
    reference.wait_progress(&ref_sweep, |s| s.contains("\"status\":\"done\""));
    let expected = reference.report(&ref_sweep);
    drop(reference);

    // Victim: let the sweep settle at least one job (so the resume path
    // genuinely skips completed work) but kill long before all eight.
    let victim_dir = temp_dir("victim");
    let victim = Daemon::spawn(&victim_dir);
    let sweep = victim.submit_sweep();
    assert_eq!(sweep, ref_sweep, "sweep id is content-derived");
    let at_kill = victim.wait_progress(&sweep, |s| {
        !s.contains("\"jobs_done\":0") || s.contains("\"status\":\"done\"")
    });
    victim.kill_hard();
    assert!(
        !at_kill.contains("\"status\":\"done\""),
        "sweep finished before the kill; grow the spec: {at_kill}"
    );

    // The revived daemon requeues unfinished jobs, resumes the manifest,
    // and must converge on exactly the reference bytes.
    let revived = Daemon::spawn(&victim_dir);
    let body = revived.wait_progress(&sweep, |s| s.contains("\"status\":\"done\""));
    assert!(body.contains("\"jobs_failed\":0"), "{body}");
    let resumed = revived.report(&sweep);
    assert_eq!(resumed, expected, "restart changed the report bytes");
    drop(revived);

    let _ = std::fs::remove_dir_all(ref_dir);
    let _ = std::fs::remove_dir_all(victim_dir);
}
