//! Cost of the finite-element characterization pipeline (the paper's
//! per-primitive ABAQUS run) at increasing mesh refinement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use emgrid::fea::assembly::{assemble, BoundaryConditions};
use emgrid::prelude::*;
use std::hint::black_box;

fn model(resolution: f64) -> CharacterizationModel {
    CharacterizationModel {
        pattern: IntersectionPattern::Plus,
        array: ViaArrayGeometry::square(2, 0.5, 1.0),
        wire_width: 2.0,
        margin: 0.5,
        resolution,
        ..CharacterizationModel::default()
    }
}

fn bench_fea(c: &mut Criterion) {
    let mut group = c.benchmark_group("fea_pipeline");
    group.sample_size(10);
    for resolution in [0.5f64, 0.4, 0.3] {
        let m = model(resolution);
        group.bench_with_input(
            BenchmarkId::new("voxelize", format!("{resolution}um")),
            &m,
            |bench, m| bench.iter(|| black_box(m.build_mesh())),
        );
        let mesh = m.build_mesh();
        group.bench_with_input(
            BenchmarkId::new("assemble", format!("{resolution}um")),
            &mesh,
            |bench, mesh| {
                bench.iter(|| {
                    black_box(assemble(
                        black_box(mesh),
                        &BoundaryConditions::confined_stack(),
                        -220.0,
                    ))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("full_solve", format!("{resolution}um")),
            &m,
            |bench, m| {
                bench.iter(|| {
                    black_box(
                        ThermalStressAnalysis::new(*m)
                            .run()
                            .expect("bench model solves"),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fea);
criterion_main!(benches);
