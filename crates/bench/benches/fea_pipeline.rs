//! Cost of the finite-element characterization pipeline (the paper's
//! per-primitive ABAQUS run) at increasing mesh refinement, the scaling of
//! the threaded assembly/CG path (with a bitwise determinism gate), and
//! the cold-vs-warm persistent stress cache.
//!
//! Results also land machine-readably in `BENCH_fea.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use emgrid::fea::assembly::{assemble, assemble_with, BoundaryConditions};
use emgrid::fea::SolveMethod;
use emgrid::prelude::*;
use emgrid::via::{FeaOptions, LayerPair, StressCache};
use std::hint::black_box;

fn model(resolution: f64) -> CharacterizationModel {
    CharacterizationModel {
        pattern: IntersectionPattern::Plus,
        array: ViaArrayGeometry::square(2, 0.5, 1.0),
        wire_width: 2.0,
        margin: 0.5,
        resolution,
        ..CharacterizationModel::default()
    }
}

fn bench_fea(c: &mut Criterion) {
    c.json_output("BENCH_fea.json");
    let mut group = c.benchmark_group("fea_pipeline");
    group.sample_size(10);
    for resolution in [0.5f64, 0.4, 0.3] {
        let m = model(resolution);
        group.bench_with_input(
            BenchmarkId::new("voxelize", format!("{resolution}um")),
            &m,
            |bench, m| bench.iter(|| black_box(m.build_mesh())),
        );
        let mesh = m.build_mesh();
        group.bench_with_input(
            BenchmarkId::new("assemble", format!("{resolution}um")),
            &mesh,
            |bench, mesh| {
                bench.iter(|| {
                    black_box(assemble(
                        black_box(mesh),
                        &BoundaryConditions::confined_stack(),
                        -220.0,
                    ))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("full_solve", format!("{resolution}um")),
            &m,
            |bench, m| {
                bench.iter(|| {
                    black_box(
                        ThermalStressAnalysis::new(*m)
                            .run()
                            .expect("bench model solves"),
                    )
                })
            },
        );
    }
    group.finish();
}

/// Threaded assembly + CG at a fine mesh, serial vs parallel. Before
/// timing, asserts the parallel stress field is **bitwise identical** to
/// the serial one — the determinism contract the speedup rides on.
fn bench_fea_threads(c: &mut Criterion) {
    let m = model(0.3);
    // Force the iterative path so the CG kernels (not the LDL
    // factorization) dominate the timing.
    let method = SolveMethod::Iterative {
        tolerance: 1e-7,
        max_iterations: 40_000,
    };
    let solve = |threads: usize| {
        ThermalStressAnalysis::new(m)
            .with_method(method)
            .with_threads(threads)
            .run()
            .expect("bench model solves")
    };
    let serial = solve(1);
    for threads in [2, 8] {
        assert_eq!(
            solve(threads).displacements(),
            serial.displacements(),
            "stress field must be bit-identical at {threads} threads"
        );
    }

    let mesh = m.build_mesh();
    let mut group = c.benchmark_group("fea_threads");
    group.sample_size(10);
    for threads in [1usize, 2, 8] {
        group.bench_with_input(
            BenchmarkId::new("assemble_0.3um", format!("{threads}t")),
            &threads,
            |bench, &threads| {
                bench.iter(|| {
                    black_box(assemble_with(
                        black_box(&mesh),
                        &BoundaryConditions::confined_stack(),
                        -220.0,
                        threads,
                    ))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("assemble_solve_0.3um", format!("{threads}t")),
            &threads,
            |bench, &threads| bench.iter(|| black_box(solve(threads))),
        );
    }
    group.finish();
}

/// Cold vs warm persistent stress cache on one primitive, gated on the
/// warm result agreeing bit-for-bit with the cold solve.
fn bench_fea_cache(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("emgrid-bench-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let m = model(0.4);
    let models = [(m, LayerPair::IntermediateTop)];
    let opts = FeaOptions {
        cache: Some(StressCache::new(&dir)),
        ..FeaOptions::default()
    };
    let characterize = || {
        StressTable::characterize_with_fea_opts(&models, &opts).expect("bench model characterizes")
    };
    let (cold_table, _) = characterize();
    let (warm_table, warm_report) = characterize();
    assert_eq!(warm_report.cache_hits, 1, "second run must hit the cache");
    assert_eq!(
        warm_table.entries(),
        cold_table.entries(),
        "warm entries must be bit-identical to the cold solve"
    );

    let mut group = c.benchmark_group("fea_cache");
    group.sample_size(10);
    group.bench_function("cold_0.4um", |bench| {
        bench.iter(|| {
            let _ = std::fs::remove_dir_all(&dir);
            black_box(characterize())
        })
    });
    // Re-seed the cache, then time pure hits.
    characterize();
    group.bench_function("warm_0.4um", |bench| {
        bench.iter(|| black_box(characterize()))
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_fea, bench_fea_threads, bench_fea_cache);
criterion_main!(benches);
