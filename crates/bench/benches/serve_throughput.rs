//! Daemon serving benchmarks: a small closed-loop group (full end-to-end
//! exchanges, job execution included) and an **open-loop load harness**
//! that holds hundreds-to-thousands of concurrent keep-alive connections
//! against the poll event loop and reports latency percentiles.
//!
//! Open-loop means request send times are *scheduled*, not gated on the
//! previous response: when a response is late the next request's latency
//! is measured from when it was supposed to be sent, so server-side
//! queueing shows up in the percentiles instead of being silently
//! absorbed by a slow client (the coordinated-omission trap).
//!
//! The client side runs in this process on the same `poll(2)` wrapper the
//! server uses (`emgrid_serve::poll`), so the harness needs no external
//! load generator. Results land in `BENCH_serve.json` as
//! `open_loop/healthz/conns=<N>/p{50,90,99}` records. CI runs the same
//! harness shrunk via `EMGRID_BENCH_SMALL=1` and shape-checks the JSON.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::os::fd::AsRawFd;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use emgrid_serve::poll::{poll_fds, PollFd, POLLIN, POLLOUT};
use emgrid_serve::{ServeConfig, Server};
use std::hint::black_box;

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: bench\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    raw.split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default()
}

/// Submits a job and spins until its result is served; returns the bytes.
fn run_job(addr: SocketAddr, spec: &str) -> String {
    let accepted = request(addr, "POST", "/v1/jobs", spec);
    let id: u64 = accepted
        .split("\"id\":")
        .nth(1)
        .and_then(|d| {
            d.chars()
                .take_while(char::is_ascii_digit)
                .collect::<String>()
                .parse()
                .ok()
        })
        .expect("submit accepted");
    loop {
        let status = request(addr, "GET", &format!("/v1/jobs/{id}"), "");
        if status.contains("\"status\":\"done\"") {
            return request(addr, "GET", &format!("/v1/jobs/{id}/result"), "");
        }
        assert!(!status.contains("failed"), "bench job failed: {status}");
        std::thread::yield_now();
    }
}

/// One keep-alive load connection in the open-loop client.
struct LoadConn {
    stream: TcpStream,
    /// Requests not yet sent, as their scheduled send instants (front is
    /// next). The schedule is fixed up front — that is what makes the
    /// loop "open".
    schedule: Vec<Instant>,
    next: usize,
    /// Scheduled instant of the in-flight request, if any.
    in_flight: Option<Instant>,
    out: Vec<u8>,
    out_pos: usize,
    inbuf: Vec<u8>,
}

const HEALTHZ: &[u8] = b"GET /healthz HTTP/1.1\r\nHost: bench\r\nContent-Length: 0\r\n\r\n";

impl LoadConn {
    fn done(&self) -> bool {
        self.next >= self.schedule.len() && self.in_flight.is_none()
    }

    /// Starts the next scheduled request if the connection is idle and
    /// its send time has arrived. Latency is measured from the scheduled
    /// instant even when the actual send is late.
    fn maybe_start(&mut self, now: Instant) {
        if self.in_flight.is_some() || self.next >= self.schedule.len() {
            return;
        }
        let due = self.schedule[self.next];
        if now < due {
            return;
        }
        self.next += 1;
        self.in_flight = Some(due);
        self.out.clear();
        self.out.extend_from_slice(HEALTHZ);
        self.out_pos = 0;
    }

    fn writing(&self) -> bool {
        self.out_pos < self.out.len()
    }

    /// Returns `Some(latency)` when a full response has been consumed.
    fn try_finish(&mut self, now: Instant) -> Option<Duration> {
        let head_end = self
            .inbuf
            .windows(4)
            .position(|w| w == b"\r\n\r\n")
            .map(|p| p + 4)?;
        let head = std::str::from_utf8(&self.inbuf[..head_end]).ok()?;
        assert!(head.starts_with("HTTP/1.1 200"), "unexpected: {head}");
        let declared: usize = head
            .lines()
            .find_map(|l| {
                let lower = l.to_ascii_lowercase();
                lower
                    .strip_prefix("content-length:")
                    .map(|v| v.trim().to_owned())
            })
            .and_then(|v| v.parse().ok())
            .expect("content-length in bench response");
        if self.inbuf.len() < head_end + declared {
            return None;
        }
        self.inbuf.drain(..head_end + declared);
        let scheduled = self.in_flight.take().expect("response without a request");
        Some(now.saturating_duration_since(scheduled))
    }
}

/// Drives `conns` keep-alive connections, each sending `per_conn`
/// healthz requests spaced `interval` apart, and returns every measured
/// latency in nanoseconds.
fn open_loop_run(addr: SocketAddr, conns: usize, per_conn: usize, interval: Duration) -> Vec<u128> {
    let mut clients: Vec<LoadConn> = Vec::with_capacity(conns);
    for i in 0..conns {
        let stream = TcpStream::connect(addr).expect("bench connect");
        stream.set_nonblocking(true).expect("nonblocking client");
        stream.set_nodelay(true).ok();
        clients.push(LoadConn {
            stream,
            schedule: Vec::new(),
            next: 0,
            in_flight: None,
            out: Vec::new(),
            out_pos: 0,
            inbuf: Vec::new(),
        });
        // Let the accept loop keep pace with the connect burst (the
        // listener backlog is finite and the whole bench is one core).
        if i % 64 == 63 {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    // Fix the schedule only after every connection is up, staggering
    // connection start offsets so sends are spread across the interval.
    let start = Instant::now() + Duration::from_millis(20);
    for (i, client) in clients.iter_mut().enumerate() {
        let offset = interval.mul_f64(i as f64 / conns as f64);
        client.schedule = (0..per_conn)
            .map(|k| start + offset + interval * k as u32)
            .collect();
    }

    let mut latencies: Vec<u128> = Vec::with_capacity(conns * per_conn);
    let mut pollfds: Vec<PollFd> = Vec::new();
    let mut owners: Vec<usize> = Vec::new();
    let overall_deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let now = Instant::now();
        assert!(now < overall_deadline, "open-loop run wedged");
        let mut next_due: Option<Instant> = None;
        pollfds.clear();
        owners.clear();
        let mut all_done = true;
        for (i, client) in clients.iter_mut().enumerate() {
            client.maybe_start(now);
            if client.done() {
                continue;
            }
            all_done = false;
            if client.writing() {
                pollfds.push(PollFd::new(client.stream.as_raw_fd(), POLLOUT));
                owners.push(i);
            } else if client.in_flight.is_some() {
                pollfds.push(PollFd::new(client.stream.as_raw_fd(), POLLIN));
                owners.push(i);
            } else if let Some(due) = client.schedule.get(client.next) {
                next_due = Some(next_due.map_or(*due, |d| d.min(*due)));
            }
        }
        if all_done {
            break;
        }
        let timeout = next_due
            .map(|d| d.saturating_duration_since(now))
            .unwrap_or(Duration::from_millis(100));
        let _ = poll_fds(&mut pollfds, Some(timeout));
        let now = Instant::now();
        for (fd, &i) in pollfds.iter().zip(&owners) {
            if fd.revents() == 0 {
                continue;
            }
            let client = &mut clients[i];
            if client.writing() {
                loop {
                    match client.stream.write(&client.out[client.out_pos..]) {
                        Ok(n) => {
                            client.out_pos += n;
                            if !client.writing() {
                                break;
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                        Err(e) => panic!("bench write: {e}"),
                    }
                }
            } else {
                let mut chunk = [0u8; 4096];
                loop {
                    match client.stream.read(&mut chunk) {
                        Ok(0) => panic!("server closed a keep-alive bench connection"),
                        Ok(n) => client.inbuf.extend_from_slice(&chunk[..n]),
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                        Err(e) => panic!("bench read: {e}"),
                    }
                }
                if let Some(latency) = client.try_finish(now) {
                    latencies.push(latency.as_nanos());
                }
            }
        }
    }
    latencies
}

fn percentile(sorted: &[u128], p: f64) -> u128 {
    let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn bench_open_loop(c: &mut Criterion) {
    let small = std::env::var("EMGRID_BENCH_SMALL").is_ok_and(|v| v == "1");
    let scales: &[usize] = if small { &[128] } else { &[1000, 4000] };
    // Per-connection request pacing: the aggregate offered load stays
    // ~2k req/s at every scale so percentile shifts reflect *connection
    // count*, not a changing request rate.
    for &conns in scales {
        let per_conn = if small { 8 } else { 5 };
        let interval = Duration::from_millis((conns / 2).max(50) as u64);

        let state_dir =
            std::env::temp_dir().join(format!("emgrid-bench-load-{conns}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&state_dir);
        let server = Server::start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            state_dir: state_dir.clone(),
            max_connections: conns + 64,
            // Every bench client shares 127.0.0.1: the per-IP fairness
            // cap would serialize them and measure the cap, not the loop.
            max_in_flight_per_client: 0,
            ..ServeConfig::default()
        })
        .expect("start daemon");
        let addr = server.local_addr();

        let mut latencies = open_loop_run(addr, conns, per_conn, interval);
        latencies.sort_unstable();
        assert!(!latencies.is_empty());
        let samples = latencies.len();
        let mean: u128 = latencies.iter().sum::<u128>() / samples as u128;
        for (tag, p) in [("p50", 0.50), ("p90", 0.90), ("p99", 0.99)] {
            let v = percentile(&latencies, p);
            c.record_custom(
                "open_loop",
                &format!("healthz/conns={conns}/{tag}"),
                v,
                v,
                mean,
                samples,
            );
        }

        server.shutdown();
        let _ = std::fs::remove_dir_all(&state_dir);
    }
}

fn bench_serve(c: &mut Criterion) {
    c.json_output("BENCH_serve.json");
    let small = std::env::var("EMGRID_BENCH_SMALL").is_ok_and(|v| v == "1");
    let state_dir = std::env::temp_dir().join(format!("emgrid-bench-serve-{}", std::process::id()));
    let cache_dir = std::env::temp_dir().join(format!("emgrid-bench-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state_dir);
    let _ = std::fs::remove_dir_all(&cache_dir);
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        state_dir: state_dir.clone(),
        cache_dir: Some(cache_dir.clone()),
        ..ServeConfig::default()
    })
    .expect("start daemon");
    let addr = server.local_addr();

    let mut group = c.benchmark_group("serve");
    group.sample_size(if small { 5 } else { 20 });
    group.bench_function("healthz_roundtrip", |b| {
        b.iter(|| black_box(request(addr, "GET", "/healthz", "")))
    });
    group.bench_function("metrics_scrape", |b| {
        b.iter(|| black_box(request(addr, "GET", "/metrics", "")))
    });
    group.bench_function("characterize_64_trials_end_to_end", |b| {
        b.iter(|| {
            black_box(run_job(
                addr,
                r#"{"kind":"characterize","array":"4x4","trials":64,"seed":9}"#,
            ))
        })
    });
    // Warm the stress cache once, then measure cache-hit FEA jobs — the
    // common steady-state for a long-lived daemon.
    let fea = r#"{"kind":"fea","array":"1x1","pattern":"plus","resolution":0.5}"#;
    run_job(addr, fea);
    group.bench_function("fea_1x1_warm_cache_end_to_end", |b| {
        b.iter(|| black_box(run_job(addr, fea)))
    });
    group.finish();

    server.shutdown();
    let _ = std::fs::remove_dir_all(state_dir);
    let _ = std::fs::remove_dir_all(cache_dir);
}

criterion_group!(benches, bench_serve, bench_open_loop);
criterion_main!(benches);
