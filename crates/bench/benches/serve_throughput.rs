//! End-to-end throughput of the analysis daemon: every iteration is a real
//! HTTP exchange against an in-process [`Server`] on a loopback socket, so
//! the numbers include request parsing, queueing, job execution, state-dir
//! persistence and result serving — the full path an operator's client
//! sees, not just the Monte Carlo kernel.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

use criterion::{criterion_group, criterion_main, Criterion};
use emgrid_serve::{ServeConfig, Server};
use std::hint::black_box;

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    raw.split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default()
}

/// Submits a job and spins until its result is served; returns the bytes.
fn run_job(addr: SocketAddr, spec: &str) -> String {
    let accepted = request(addr, "POST", "/v1/jobs", spec);
    let id: u64 = accepted
        .split("\"id\":")
        .nth(1)
        .and_then(|d| {
            d.chars()
                .take_while(char::is_ascii_digit)
                .collect::<String>()
                .parse()
                .ok()
        })
        .expect("submit accepted");
    loop {
        let status = request(addr, "GET", &format!("/v1/jobs/{id}"), "");
        if status.contains("\"status\":\"done\"") {
            return request(addr, "GET", &format!("/v1/jobs/{id}/result"), "");
        }
        assert!(!status.contains("failed"), "bench job failed: {status}");
        std::thread::yield_now();
    }
}

fn bench_serve(c: &mut Criterion) {
    let state_dir = std::env::temp_dir().join(format!("emgrid-bench-serve-{}", std::process::id()));
    let cache_dir = std::env::temp_dir().join(format!("emgrid-bench-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state_dir);
    let _ = std::fs::remove_dir_all(&cache_dir);
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        state_dir: state_dir.clone(),
        cache_dir: Some(cache_dir.clone()),
        ..ServeConfig::default()
    })
    .expect("start daemon");
    let addr = server.local_addr();

    let mut group = c.benchmark_group("serve");
    group.bench_function("healthz_roundtrip", |b| {
        b.iter(|| black_box(request(addr, "GET", "/healthz", "")))
    });
    group.bench_function("metrics_scrape", |b| {
        b.iter(|| black_box(request(addr, "GET", "/metrics", "")))
    });
    group.bench_function("characterize_64_trials_end_to_end", |b| {
        b.iter(|| {
            black_box(run_job(
                addr,
                r#"{"kind":"characterize","array":"4x4","trials":64,"seed":9}"#,
            ))
        })
    });
    // Warm the stress cache once, then measure cache-hit FEA jobs — the
    // common steady-state for a long-lived daemon.
    let fea = r#"{"kind":"fea","array":"1x1","pattern":"plus","resolution":0.5}"#;
    run_job(addr, fea);
    group.bench_function("fea_1x1_warm_cache_end_to_end", |b| {
        b.iter(|| black_box(run_job(addr, fea)))
    });
    group.finish();

    server.shutdown();
    let _ = std::fs::remove_dir_all(state_dir);
    let _ = std::fs::remove_dir_all(cache_dir);
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
