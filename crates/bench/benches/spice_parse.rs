//! SPICE netlist parse / stamp / solve throughput on generated decks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use emgrid::prelude::*;
use emgrid::spice::writer::write_string;
use emgrid::spice::DcAnalysis;
use std::hint::black_box;

fn bench_spice(c: &mut Criterion) {
    let mut group = c.benchmark_group("spice");
    for spec in [GridSpec::pg1(), GridSpec::pg2(), GridSpec::pg5()] {
        let netlist = spec.generate();
        let deck = write_string(&netlist);
        group.throughput(Throughput::Bytes(deck.len() as u64));
        group.bench_with_input(BenchmarkId::new("parse", &spec.name), &deck, |b, deck| {
            b.iter(|| black_box(parse(black_box(deck)).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("stamp", &spec.name), &netlist, |b, n| {
            b.iter(|| black_box(DcAnalysis::new(black_box(n)).unwrap()))
        });
        let dc = DcAnalysis::new(&netlist).unwrap();
        group.bench_with_input(BenchmarkId::new("dc_solve", &spec.name), &dc, |b, dc| {
            b.iter(|| black_box(dc.solve().unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_spice);
criterion_main!(benches);
