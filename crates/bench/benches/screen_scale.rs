//! Scaling benchmark for the steady-state EM screening prefilter.
//!
//! Two ids per profile: `screen/<profile>/sites=<m>` times the screening
//! pass alone (tree decomposition, per-branch steady-state stress,
//! ranking) on a grid whose nominal solve is already done — this is the
//! part that must stay linear in grid size — and
//! `end_to_end/<profile>/nodes=<n>` times the whole pipeline from deck
//! generation through the ranked report, which is what `emgrid screen`
//! costs a user.
//!
//! Results land in `BENCH_screen.json` (same record shape as
//! `BENCH_sparse.json`); the CI `screen-smoke` job regenerates it with
//! `EMGRID_BENCH_SMALL=1` on the small profiles and shape-checks the
//! records. The committed file is a full-size run: the screening pass on
//! the chip-scale `pg1m` profile (786k via arrays over 1.05M nodes) next
//! to `pg100k`, so the near-linear scaling is on the record.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use emgrid::em::Technology;
use emgrid::pg::PowerGrid;
use emgrid::screen::{screen_grid, ScreenOptions};
use emgrid::spice::GridSpec;
use std::hint::black_box;

fn bench_screen(c: &mut Criterion) {
    c.json_output("BENCH_screen.json");
    let small = std::env::var("EMGRID_BENCH_SMALL").is_ok_and(|v| v == "1");
    // In small mode the multi-layer pg100k profile still finishes in
    // seconds; pg1m is reserved for the full-size committed artifact.
    let profiles: &[&str] = if small {
        &["pg1", "pg100k"]
    } else {
        &["pg100k", "pg1m"]
    };
    let tech = Technology::default();
    let mut group = c.benchmark_group("screen_scale");
    group.sample_size(if small { 3 } else { 5 });
    for name in profiles {
        let spec = GridSpec::profile(name).expect("bench profile exists");
        let grid = PowerGrid::from_netlist(spec.generate()).expect("profile builds");
        let sites = grid.via_sites().len();
        // The screening pass alone: default options reuse the grid's
        // nominal solution, so this isolates trees + stress + ranking.
        group.bench_with_input(
            BenchmarkId::new(format!("screen/{name}"), format!("sites={sites}")),
            &grid,
            |bench, grid| {
                bench.iter(|| {
                    black_box(
                        screen_grid(black_box(grid), &tech, &ScreenOptions::default()).unwrap(),
                    )
                })
            },
        );
    }
    // End-to-end on the first (cheaper) profile only: deck generation,
    // grid construction with its auto-selected nominal solve, then the
    // screen. This is the `emgrid screen --profile <p>` wall time.
    let name = profiles[0];
    let spec = GridSpec::profile(name).unwrap();
    let nodes = spec.generate().node_count();
    group.bench_with_input(
        BenchmarkId::new(format!("end_to_end/{name}"), format!("nodes={nodes}")),
        &spec,
        |bench, spec| {
            bench.iter(|| {
                let grid = PowerGrid::from_netlist(spec.generate()).unwrap();
                black_box(screen_grid(&grid, &tech, &ScreenOptions::default()).unwrap())
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench_screen);
criterion_main!(benches);
