//! Overhead of the observability layer.
//!
//! The contract of `runtime::obs` is that instrumentation woven through
//! the hot paths (FEA solves, CG iterations, Monte Carlo batches) costs
//! nothing measurable when tracing is disarmed and single-digit
//! nanoseconds per event when armed. These benches watch that contract:
//! the disarmed span case must stay within noise of a bare function
//! call, and a full Monte Carlo characterization must not slow down when
//! spans are armed.

use criterion::{criterion_group, criterion_main, Criterion};
use emgrid::prelude::*;
use emgrid::runtime::obs;
use std::hint::black_box;

fn bench_instruments(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs");

    obs::set_trace(false);
    group.bench_function("span_disarmed", |b| {
        b.iter(|| {
            let _span = black_box(obs::span("bench-disarmed"));
        })
    });

    obs::set_trace(true);
    group.bench_function("span_armed", |b| {
        b.iter(|| {
            let _span = black_box(obs::span("bench-armed"));
        })
    });
    obs::set_trace(false);
    obs::reset_spans();

    let counter = obs::counter("emgrid_bench_events_total", "Bench-only counter.");
    group.bench_function("counter_inc", |b| b.iter(|| black_box(counter).inc()));

    let histogram = obs::histogram("emgrid_bench_latency_seconds", "Bench-only histogram.");
    group.bench_function("histogram_observe", |b| {
        b.iter(|| black_box(histogram).observe(black_box(1.3e-4)))
    });

    group.finish();
}

/// End-to-end check that arming spans does not tax the Monte Carlo loop:
/// the two variants below should report indistinguishable times.
fn bench_mc_with_and_without_tracing(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_mc");
    let config = ViaArrayConfig::paper_4x4(IntersectionPattern::Plus);
    let mc = ViaArrayMc::from_reference_table(&config, Technology::default(), 1e10);
    group.bench_function("mc_100_trials_disarmed", |b| {
        b.iter(|| black_box(mc.characterize(100, 1)))
    });
    group.bench_function("mc_100_trials_armed", |b| {
        obs::set_trace(true);
        b.iter(|| black_box(mc.characterize(100, 1)));
        obs::set_trace(false);
        obs::reset_spans();
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_instruments,
    bench_mc_with_and_without_tracing
);
criterion_main!(benches);
