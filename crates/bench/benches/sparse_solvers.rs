//! Direct LDLᵀ vs Jacobi-PCG on grid Laplacians of increasing size — the
//! solver trade-off behind both the FEA engine and the MNA analysis.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use emgrid::sparse::{
    conjugate_gradient, CgOptions, CsrMatrix, FactorOptions, LdlFactor, Preconditioner,
    TripletMatrix,
};
use std::hint::black_box;

fn grid_laplacian(n: usize) -> CsrMatrix {
    let id = |x: usize, y: usize| y * n + x;
    let mut t = TripletMatrix::new(n * n, n * n);
    for y in 0..n {
        for x in 0..n {
            t.push(id(x, y), id(x, y), 4.01);
            if x + 1 < n {
                t.push_sym(id(x, y), id(x + 1, y), -1.0);
            }
            if y + 1 < n {
                t.push_sym(id(x, y), id(x, y + 1), -1.0);
            }
        }
    }
    t.to_csr()
}

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_solvers");
    for n in [16usize, 32, 64] {
        let a = grid_laplacian(n);
        let b = vec![1.0; n * n];
        group.bench_with_input(
            BenchmarkId::new("ldl_factor_solve", n * n),
            &n,
            |bench, _| {
                bench.iter(|| {
                    let f =
                        LdlFactor::factor_with(black_box(&a), &FactorOptions::default()).unwrap();
                    black_box(f.solve(&b))
                })
            },
        );
        let factored = LdlFactor::factor_with(&a, &FactorOptions::default()).unwrap();
        group.bench_with_input(BenchmarkId::new("ldl_solve_only", n * n), &n, |bench, _| {
            bench.iter(|| black_box(factored.solve(black_box(&b))))
        });
        group.bench_with_input(BenchmarkId::new("pcg_jacobi", n * n), &n, |bench, _| {
            bench.iter(|| {
                black_box(
                    conjugate_gradient(black_box(&a), &b, None, &CgOptions::default()).unwrap(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("pcg_ic0", n * n), &n, |bench, _| {
            let opts = CgOptions {
                preconditioner: Preconditioner::IncompleteCholesky,
                ..CgOptions::default()
            };
            bench.iter(|| black_box(conjugate_gradient(black_box(&a), &b, None, &opts).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
