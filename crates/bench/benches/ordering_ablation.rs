//! Fill-in and wall-time ablation of the direct solver's orderings and
//! numeric engines: natural vs RCM vs AMD vs nested dissection (scalar
//! up-looking) vs AMD + supernodes, on the two matrix families the
//! workspace actually factors — the fig. 7 FEA stiffness matrix (paper
//! 4x4 array) and a large synthetic power-grid Laplacian.
//!
//! Results land machine-readably in `BENCH_sparse.json`; each `factor`
//! benchmark id embeds the factor's fill (`fill_nnz=`) so the CI smoke
//! job can assert AMD never fills more than RCM without re-running the
//! factorization. Set `EMGRID_BENCH_SMALL=1` (CI) to shrink both
//! matrices and sample counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use emgrid::fea::assembly::{assemble, BoundaryConditions};
use emgrid::prelude::*;
use emgrid::sparse::{
    conjugate_gradient, CgOptions, CsrMatrix, FactorOptions, KernelBackend, LdlFactor, Ordering,
    Preconditioner, TripletMatrix,
};
use std::hint::black_box;

fn grid_laplacian(n: usize) -> CsrMatrix {
    let id = |x: usize, y: usize| y * n + x;
    let mut t = TripletMatrix::new(n * n, n * n);
    for y in 0..n {
        for x in 0..n {
            t.push(id(x, y), id(x, y), 4.01);
            if x + 1 < n {
                t.push_sym(id(x, y), id(x + 1, y), -1.0);
            }
            if y + 1 < n {
                t.push_sym(id(x, y), id(x, y + 1), -1.0);
            }
        }
    }
    t.to_csr()
}

fn fea_matrix(small: bool) -> CsrMatrix {
    let model = if small {
        CharacterizationModel {
            pattern: IntersectionPattern::Plus,
            array: ViaArrayGeometry::square(2, 0.5, 1.0),
            margin: 0.5,
            resolution: 0.5,
            ..CharacterizationModel::default()
        }
    } else {
        CharacterizationModel {
            pattern: IntersectionPattern::Plus,
            array: ViaArrayGeometry::paper_4x4(),
            resolution: 1.0,
            ..CharacterizationModel::default()
        }
    };
    let mesh = model.build_mesh();
    assemble(&mesh, &BoundaryConditions::confined_stack(), -220.0).stiffness
}

fn configs() -> [(&'static str, FactorOptions); 5] {
    let scalar = |ordering| FactorOptions {
        ordering,
        supernodal: false,
        threads: 1,
        ..FactorOptions::default()
    };
    [
        ("natural", scalar(Ordering::Natural)),
        ("rcm", scalar(Ordering::Rcm)),
        ("amd", scalar(Ordering::Amd)),
        ("nd", scalar(Ordering::Nd)),
        ("amd_supernodal", FactorOptions::default()),
    ]
}

/// The microkernel axis: both explicit backends on the default
/// AMD + supernodal configuration. `auto` is excluded — it is one of
/// these two, and benching it twice would only add noise.
const KERNEL_AXIS: [KernelBackend; 2] = [KernelBackend::Scalar, KernelBackend::Blocked];

fn bench_ordering(c: &mut Criterion) {
    c.json_output("BENCH_sparse.json");
    let small = std::env::var("EMGRID_BENCH_SMALL").is_ok_and(|v| v == "1");
    let grid_n = if small { 48 } else { 110 };
    let matrices = [
        ("fea_fig07", fea_matrix(small)),
        ("grid", grid_laplacian(grid_n)),
    ];
    let mut group = c.benchmark_group("ordering_ablation");
    group.sample_size(if small { 3 } else { 5 });
    for (name, a) in &matrices {
        let n = a.rows();
        let b: Vec<f64> = (0..n).map(|i| ((i * 37) % 19) as f64 - 9.0).collect();
        for (label, opts) in configs() {
            let factored = LdlFactor::factor_with(a, &opts).expect("SPD bench matrix factors");
            group.bench_with_input(
                BenchmarkId::new(
                    format!("factor/{name}/{label}"),
                    format!("fill_nnz={}", factored.l_nnz()),
                ),
                a,
                |bench, a| {
                    bench.iter(|| black_box(LdlFactor::factor_with(black_box(a), &opts).unwrap()))
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("solve/{name}/{label}"), n),
                &factored,
                |bench, f| bench.iter(|| black_box(f.solve(black_box(&b)))),
            );
        }
        // The microkernel axis on the default AMD + supernodal
        // configuration: factor, blocked multi-RHS solves and CG with each
        // explicit backend. Backends are bit-identical by contract, so any
        // spread between these ids is pure wall time.
        let many: Vec<Vec<f64>> = (0..8)
            .map(|s| {
                (0..n)
                    .map(|i| ((i * 29 + s * 13) % 23) as f64 - 11.0)
                    .collect()
            })
            .collect();
        for kernels in KERNEL_AXIS {
            let opts = FactorOptions::default().with_kernels(kernels);
            let klabel = kernels.label();
            let factored = LdlFactor::factor_with(a, &opts).unwrap();
            group.bench_with_input(
                BenchmarkId::new(
                    format!("factor/{name}/amd_supernodal/kernels={klabel}"),
                    format!("fill_nnz={}", factored.l_nnz()),
                ),
                a,
                |bench, a| {
                    bench.iter(|| black_box(LdlFactor::factor_with(black_box(a), &opts).unwrap()))
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("solve_many8/{name}/kernels={klabel}"), n),
                &factored,
                |bench, f| bench.iter(|| black_box(f.solve_many(black_box(&many)))),
            );
            let cg_opts = CgOptions {
                tolerance: 1e-10,
                preconditioner: Preconditioner::IncompleteCholesky,
                kernels,
                ..CgOptions::default()
            };
            group.bench_with_input(
                BenchmarkId::new(format!("cg/{name}/kernels={klabel}"), n),
                a,
                |bench, a| {
                    bench.iter(|| {
                        black_box(
                            conjugate_gradient(black_box(a), black_box(&b), None, &cg_opts)
                                .unwrap(),
                        )
                    })
                },
            );
        }
        // The blocked multi-RHS path against one-at-a-time solves, both on
        // the default AMD + supernodal factor.
        let factored = LdlFactor::factor_with(a, &FactorOptions::default()).unwrap();
        group.bench_with_input(
            BenchmarkId::new(format!("solve_many8/{name}/blocked"), n),
            &factored,
            |bench, f| bench.iter(|| black_box(f.solve_many(black_box(&many)))),
        );
        group.bench_with_input(
            BenchmarkId::new(format!("solve_many8/{name}/one_by_one"), n),
            &factored,
            |bench, f| {
                bench.iter(|| {
                    many.iter()
                        .map(|rhs| f.solve(black_box(rhs)))
                        .collect::<Vec<_>>()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ordering);
criterion_main!(benches);
