//! Ablation of a design choice called out in DESIGN.md: after each
//! via-array failure, re-solve the grid with incremental
//! Sherman–Morrison–Woodbury updates vs. a full refactorization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use emgrid::prelude::*;
use emgrid::sparse::{FactorOptions, IncrementalSolver, LdlFactor, TripletMatrix};
use std::hint::black_box;

/// Builds the PG1-profile conductance system and the list of via edges in
/// unknown-index space.
fn pg_system() -> (
    emgrid::sparse::CsrMatrix,
    Vec<f64>,
    Vec<(usize, usize, f64)>,
) {
    let grid = PowerGrid::from_netlist(GridSpec::pg1().generate()).unwrap();
    let dc = grid.dc();
    let edges = grid
        .via_sites()
        .iter()
        .filter_map(
            |s| match (dc.unknown_index(s.lower), dc.unknown_index(s.upper)) {
                (Some(i), Some(j)) => Some((i, j, 1.0 / s.resistance)),
                _ => None,
            },
        )
        .collect();
    (dc.matrix().clone(), dc.rhs().to_vec(), edges)
}

fn bench_failure_sequences(c: &mut Criterion) {
    let (matrix, rhs, edges) = pg_system();
    let mut group = c.benchmark_group("smw_ablation");
    group.sample_size(10);
    for failures in [4usize, 16, 32] {
        group.bench_with_input(
            BenchmarkId::new("smw_incremental", failures),
            &failures,
            |bench, &failures| {
                bench.iter(|| {
                    let mut solver = IncrementalSolver::new(&matrix).unwrap();
                    for k in 0..failures {
                        let (i, j, g) = edges[k * 7 % edges.len()];
                        solver.update_edge(i, j, -g * 0.999).unwrap();
                        black_box(solver.solve(&rhs).unwrap());
                    }
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("full_refactor", failures),
            &failures,
            |bench, &failures| {
                bench.iter(|| {
                    let n = matrix.rows();
                    let mut removed: Vec<(usize, usize, f64)> = Vec::new();
                    for k in 0..failures {
                        let (i, j, g) = edges[k * 7 % edges.len()];
                        removed.push((i, j, g * 0.999));
                        let mut t =
                            TripletMatrix::with_capacity(n, n, matrix.nnz() + 4 * removed.len());
                        for r in 0..n {
                            for (cc, v) in matrix.row(r) {
                                t.push(r, cc, v);
                            }
                        }
                        for &(i, j, g) in &removed {
                            t.push(i, i, -g);
                            t.push(j, j, -g);
                            t.push(i, j, g);
                            t.push(j, i, g);
                        }
                        let f =
                            LdlFactor::factor_with(&t.to_csr(), &FactorOptions::default()).unwrap();
                        black_box(f.solve(&rhs));
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_failure_sequences);
criterion_main!(benches);
