//! Throughput of the level-1 (via array) Monte Carlo, including the
//! current-model and void-growth ablations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use emgrid::em::void_growth::GrowthModel;
use emgrid::prelude::*;
use std::hint::black_box;

fn bench_via_mc(c: &mut Criterion) {
    let mut group = c.benchmark_group("via_mc");
    let tech = Technology::default();
    for (label, config) in [
        ("1x1", ViaArrayConfig::paper_1x1(IntersectionPattern::Plus)),
        ("4x4", ViaArrayConfig::paper_4x4(IntersectionPattern::Plus)),
        ("8x8", ViaArrayConfig::paper_8x8(IntersectionPattern::Plus)),
    ] {
        let mc = ViaArrayMc::from_reference_table(&config, tech, 1e10);
        group.bench_with_input(
            BenchmarkId::new("uniform_100_trials", label),
            &mc,
            |b, mc| b.iter(|| black_box(mc.characterize(100, 1))),
        );
    }
    let base = ViaArrayConfig::paper_4x4(IntersectionPattern::Plus);
    let network = ViaArrayMc::from_reference_table(&base, tech, 1e10)
        .with_current_model(CurrentModel::Network(Default::default()));
    group.bench_function("network_4x4_100_trials", |b| {
        b.iter(|| black_box(network.characterize(100, 1)))
    });
    let growth =
        ViaArrayMc::from_reference_table(&base, tech, 1e10).with_growth(GrowthModel::slit());
    group.bench_function("growth_4x4_100_trials", |b| {
        b.iter(|| black_box(growth.characterize(100, 1)))
    });
    let uniform = ViaArrayMc::from_reference_table(&base, tech, 1e10);
    group.bench_function("work_stealing_4x4_100_trials_8t", |b| {
        b.iter(|| black_box(uniform.characterize_with(100, 1, &RuntimeConfig::threaded(8))))
    });
    group.bench_function("early_stop_4x4_ci_0.05", |b| {
        b.iter(|| {
            let cfg = RuntimeConfig::sequential().with_early_stop(EarlyStop::to_half_width(0.05));
            black_box(uniform.characterize_with(100_000, 1, &cfg))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_via_mc);
criterion_main!(benches);
