//! Throughput of the level-2 (power grid) Monte Carlo on the benchmark
//! profiles, comparing the system criteria and solver strategies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use emgrid::prelude::*;
use std::hint::black_box;

fn reliability() -> ViaArrayReliability {
    ViaArrayMc::from_reference_table(
        &ViaArrayConfig::paper_4x4(IntersectionPattern::Plus),
        Technology::default(),
        1e10,
    )
    .characterize(300, 5)
    .reliability(FailureCriterion::OpenCircuit)
    .unwrap()
}

fn bench_pg_mc(c: &mut Criterion) {
    // One Criterion instance runs both bench fns, so results of the whole
    // binary land in BENCH_mc.json.
    c.json_output("BENCH_mc.json");
    let rel = reliability();
    let mut group = c.benchmark_group("pg_mc");
    group.sample_size(10);
    for spec in [GridSpec::custom("g12", 12, 12), GridSpec::pg1()] {
        let grid = PowerGrid::from_netlist(spec.generate()).unwrap();
        let sites = grid.via_sites().len();
        group.bench_with_input(
            BenchmarkId::new("ir_drop_10_trials", sites),
            &grid,
            |b, grid| {
                b.iter(|| {
                    let mc = PowerGridMc::new(grid.clone(), rel)
                        .with_system_criterion(SystemCriterion::IrDropFraction(0.10));
                    black_box(mc.run(10, 1).unwrap())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("weakest_link_10_trials", sites),
            &grid,
            |b, grid| {
                b.iter(|| {
                    let mc = PowerGridMc::new(grid.clone(), rel)
                        .with_system_criterion(SystemCriterion::WeakestLink);
                    black_box(mc.run(10, 1).unwrap())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("refactor_strategy_10_trials", sites),
            &grid,
            |b, grid| {
                b.iter(|| {
                    let mc =
                        PowerGridMc::new(grid.clone(), rel).with_solver(SolverStrategy::Refactor);
                    black_box(mc.run(10, 1).unwrap())
                })
            },
        );
    }
    group.finish();
}

/// Scheduling ablation: the work-stealing runtime against the static-chunk
/// baseline at 8 threads, plus CI-based early termination against the fixed
/// budget. Both schedulers produce bit-identical results (asserted below);
/// only wall-clock differs, because grid-MC trials walk variable-length
/// failure sequences and static chunks leave threads idle behind the
/// longest chunk.
fn bench_scheduling(c: &mut Criterion) {
    let rel = reliability();
    let grid = PowerGrid::from_netlist(GridSpec::custom("g16", 16, 16).generate()).unwrap();
    let mc =
        PowerGridMc::new(grid, rel).with_system_criterion(SystemCriterion::IrDropFraction(0.10));

    // Determinism gate: any thread count, either scheduler, same result.
    let baseline = mc.run(24, 9).unwrap();
    for threads in [2, 4, 8] {
        let r = mc.run_threaded(24, 9, threads).unwrap();
        assert_eq!(baseline.ttf_seconds(), r.ttf_seconds());
    }
    let chunked = mc.run_static_chunked(24, 9, 8).unwrap();
    assert_eq!(baseline.ttf_seconds(), chunked.ttf_seconds());

    let mut group = c.benchmark_group("pg_mc_scheduling");
    group.sample_size(10);
    group.bench_function("work_stealing_8t_64_trials", |b| {
        b.iter(|| black_box(mc.run_threaded(64, 1, 8).unwrap()))
    });
    group.bench_function("static_chunked_8t_64_trials", |b| {
        b.iter(|| black_box(mc.run_static_chunked(64, 1, 8).unwrap()))
    });
    group.bench_function("early_stop_ci_0.10_8t", |b| {
        b.iter(|| {
            let cfg = RuntimeConfig::threaded(8).with_early_stop(EarlyStop::to_half_width(0.10));
            black_box(mc.run_with(10_000, 1, &cfg).unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pg_mc, bench_scheduling);
criterion_main!(benches);
