//! Throughput of the level-2 (power grid) Monte Carlo on the benchmark
//! profiles, comparing the system criteria and solver strategies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use emgrid::prelude::*;
use std::hint::black_box;

fn reliability() -> ViaArrayReliability {
    ViaArrayMc::from_reference_table(
        &ViaArrayConfig::paper_4x4(IntersectionPattern::Plus),
        Technology::default(),
        1e10,
    )
    .characterize(300, 5)
    .reliability(FailureCriterion::OpenCircuit)
    .unwrap()
}

fn bench_pg_mc(c: &mut Criterion) {
    let rel = reliability();
    let mut group = c.benchmark_group("pg_mc");
    group.sample_size(10);
    for spec in [GridSpec::custom("g12", 12, 12), GridSpec::pg1()] {
        let grid = PowerGrid::from_netlist(spec.generate()).unwrap();
        let sites = grid.via_sites().len();
        group.bench_with_input(
            BenchmarkId::new("ir_drop_10_trials", sites),
            &grid,
            |b, grid| {
                b.iter(|| {
                    let mc = PowerGridMc::new(grid.clone(), rel)
                        .with_system_criterion(SystemCriterion::IrDropFraction(0.10));
                    black_box(mc.run(10, 1).unwrap())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("weakest_link_10_trials", sites),
            &grid,
            |b, grid| {
                b.iter(|| {
                    let mc = PowerGridMc::new(grid.clone(), rel)
                        .with_system_criterion(SystemCriterion::WeakestLink);
                    black_box(mc.run(10, 1).unwrap())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("refactor_strategy_10_trials", sites),
            &grid,
            |b, grid| {
                b.iter(|| {
                    let mc =
                        PowerGridMc::new(grid.clone(), rel).with_solver(SolverStrategy::Refactor);
                    black_box(mc.run(10, 1).unwrap())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pg_mc);
criterion_main!(benches);
