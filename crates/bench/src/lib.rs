//! Shared harness code for the figure/table regeneration binaries and the
//! Criterion benches.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §5 for the index) and prints the series the paper plots,
//! alongside the paper's qualitative expectations, so EXPERIMENTS.md can be
//! filled by running them:
//!
//! ```text
//! cargo run -p emgrid-bench --release --bin fig01_stress_profile
//! ```
//!
//! FEA mesh resolution for the figure binaries can be overridden with the
//! `EMGRID_RESOLUTION` environment variable (µm, default 0.25); Monte Carlo
//! trial counts with `EMGRID_TRIALS` (default 2000 for level 1, 500 for
//! level 2, the paper's `N_trials`).

use emgrid::prelude::*;

/// Mesh resolution for figure FEA runs (µm), `EMGRID_RESOLUTION` override.
pub fn fea_resolution() -> f64 {
    std::env::var("EMGRID_RESOLUTION")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.25)
}

/// FEA worker threads for figure runs, `EMGRID_FEA_THREADS` override
/// (default 1). Assembly and CG kernels run fixed-chunk deterministic
/// arithmetic, so stress fields are bit-identical for any thread count.
pub fn fea_threads() -> usize {
    std::env::var("EMGRID_FEA_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1)
}

/// Solves a figure model through the persistent stress cache
/// (`results/cache/`, disabled by `EMGRID_NO_CACHE=1`).
///
/// On a hit the full field is reconstructed bit-exactly from the cached
/// displacement vector; on a miss the solve runs on [`fea_threads`]
/// threads and the cache is populated. Telemetry goes to **stderr** so the
/// figure's stdout stays byte-identical between cold and warm runs.
pub fn solve_figure_field(model: &CharacterizationModel) -> emgrid::fea::StressField {
    use emgrid::via::{CacheEntry, StressCache};
    let method = emgrid::fea::SolveMethod::default();
    let cache = StressCache::open_default();
    let key = StressCache::key(model, &method, emgrid::sparse::Ordering::default());
    if let Some(cache) = &cache {
        if let Some(field) = cache.load_field(key, model) {
            eprintln!("# fea: cache hit {key:016x} ({})", cache.dir().display());
            return field;
        }
    }
    let (field, stats) = ThermalStressAnalysis::new(*model)
        .with_threads(fea_threads())
        .run_with_stats()
        .expect("figure FEA run solves");
    eprintln!(
        "# fea: solved {key:016x}: {} unknowns, {} ({} iterations), assemble {:.0} ms, solve {:.0} ms, {} thread(s)",
        stats.unknowns,
        stats.solver,
        stats.iterations,
        stats.assemble_time.as_secs_f64() * 1e3,
        stats.solve_time.as_secs_f64() * 1e3,
        fea_threads()
    );
    if let Some(cache) = &cache {
        let stored = cache.store(
            key,
            &CacheEntry {
                per_via_stress: field.per_via_peak_stress(),
                displacements: field.displacements().to_vec(),
            },
        );
        if let Err(e) = stored {
            eprintln!("# fea: cache store failed (continuing uncached): {e}");
        }
    }
    field
}

/// Level-1 Monte Carlo trial count, `EMGRID_TRIALS` override.
pub fn level1_trials() -> usize {
    std::env::var("EMGRID_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2000)
}

/// Level-2 (power grid) Monte Carlo trial count: the paper's 500, or the
/// `EMGRID_GRID_TRIALS` override.
pub fn level2_trials() -> usize {
    std::env::var("EMGRID_GRID_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(500)
}

/// Monte Carlo worker threads, `EMGRID_THREADS` override (default 1).
/// Results are bit-identical for any thread count.
pub fn mc_threads() -> usize {
    std::env::var("EMGRID_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1)
}

/// Optional CI-based early termination, `EMGRID_TARGET_CI` override: stop
/// once the 95% CI half-width on the mean `ln TTF` reaches this value
/// instead of exhausting the trial budget. Unset = fixed budget.
pub fn mc_target_ci() -> Option<f64> {
    std::env::var("EMGRID_TARGET_CI")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&hw| hw > 0.0)
}

/// The runtime configuration every figure/table binary runs its Monte
/// Carlo on, assembled from `EMGRID_THREADS` / `EMGRID_TARGET_CI`.
pub fn runtime_config() -> RuntimeConfig {
    let mut runtime = RuntimeConfig::threaded(mc_threads());
    if let Some(hw) = mc_target_ci() {
        runtime = runtime.with_early_stop(EarlyStop::to_half_width(hw));
    }
    runtime
}

/// Prints one execution-telemetry comment line for a scheduler run.
pub fn print_report(label: &str, report: &RunReport) {
    let early = if report.stopped_early {
        format!(
            " (stopped early, 95% CI half-width {:.4})",
            report.achieved_half_width(0.95)
        )
    } else {
        String::new()
    };
    println!(
        "# execution: {label}: {}/{} trials, {} thread(s), {:.0} ms{early}",
        report.trials_run,
        report.trials_requested,
        report.threads,
        report.wall.as_secs_f64() * 1e3,
    );
}

/// The paper's nominal characterization current density, A/m².
pub const PAPER_CURRENT_DENSITY: f64 = 1e10;

/// Builds the characterization model for a paper figure FEA run.
pub fn figure_model(
    pattern: IntersectionPattern,
    array: ViaArrayGeometry,
) -> CharacterizationModel {
    CharacterizationModel {
        pattern,
        array,
        wire_width: 2.0,
        margin: 1.0,
        resolution: fea_resolution(),
        ..CharacterizationModel::default()
    }
}

/// Formats a line scan as `x_um sigma_mpa` rows, tagged with a label.
pub fn print_scan(label: &str, scan: &[emgrid::fea::stress::LineSample]) {
    println!("# scan: {label} ({} samples)", scan.len());
    println!("# x_um   sigma_h_MPa");
    for s in scan {
        println!("{:8.3}  {:9.2}", s.position, s.hydrostatic_mpa);
    }
    println!();
}

/// Formats an ECDF as `ttf_years cum_probability` rows.
pub fn print_cdf(label: &str, ecdf: &Ecdf) {
    println!("# cdf: {label} ({} samples)", ecdf.len());
    println!("# ttf_years   cumulative_probability");
    for p in [
        0.003, 0.01, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99, 0.997,
    ] {
        println!("{:10.2}  {:6.3}", ecdf.quantile(p) / SECONDS_PER_YEAR, p);
    }
    println!();
}

/// Characterizes a paper configuration against the bundled reference table,
/// on the environment-selected runtime ([`runtime_config`]).
pub fn characterize(
    config: &ViaArrayConfig,
    trials: usize,
    seed: u64,
) -> emgrid::via::CharacterizationResult {
    ViaArrayMc::from_reference_table(config, Technology::default(), PAPER_CURRENT_DENSITY)
        .characterize_with(trials, seed, &runtime_config())
}

/// Runs one power-grid Monte Carlo combination and returns the result, on
/// the environment-selected runtime ([`runtime_config`]).
pub fn run_grid(
    spec: &GridSpec,
    array: &ViaArrayConfig,
    via_criterion: FailureCriterion,
    system: SystemCriterion,
    seed: u64,
) -> McResult {
    let reliability = characterize(array, level1_trials(), seed ^ 0xa11ce)
        .reliability(via_criterion)
        .expect("characterization fits");
    let grid = PowerGrid::from_netlist(spec.generate()).expect("benchmark grid builds");
    PowerGridMc::new(grid, reliability)
        .with_system_criterion(system)
        .run_with(level2_trials(), seed, &runtime_config())
        .expect("grid monte carlo runs")
}

/// A compact label for an array geometry ("4x4").
pub fn array_label(g: &ViaArrayGeometry) -> String {
    format!("{}x{}", g.rows, g.cols)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults() {
        // Note: assumes the test environment doesn't set the overrides.
        assert!(fea_resolution() > 0.0);
        assert!(level1_trials() >= 100);
        assert!(level2_trials() >= 100);
        assert!(mc_threads() >= 1);
        assert_eq!(
            runtime_config().early_stop,
            mc_target_ci().map(EarlyStop::to_half_width)
        );
    }

    #[test]
    fn array_labels() {
        assert_eq!(array_label(&ViaArrayGeometry::paper_4x4()), "4x4");
        assert_eq!(array_label(&ViaArrayGeometry::paper_8x8()), "8x8");
    }
}
