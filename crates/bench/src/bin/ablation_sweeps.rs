//! Sensitivity sweeps over the model inputs the paper treats as knobs:
//! operating temperature, package stress (explicitly "an input to the
//! method", §2.3), flaw-size statistics (§2.2), and the contrast with the
//! conventional Black's-law signoff (§1).
//!
//! ```text
//! cargo run -p emgrid-bench --release --bin ablation_sweeps
//! ```

use emgrid::em::black::BlackModel;
use emgrid::em::constants::celsius_to_kelvin;
use emgrid::prelude::*;
use emgrid_bench::characterize;

fn median_years(tech: Technology) -> f64 {
    let config = ViaArrayConfig::paper_4x4(IntersectionPattern::Plus);
    ViaArrayMc::from_reference_table(&config, tech, 1e10)
        .characterize(800, 77)
        .ecdf(FailureCriterion::ResistanceRatio(2.0))
        .median()
        / SECONDS_PER_YEAR
}

fn main() {
    println!("== Ablation sweeps (4x4 Plus, R=2x criterion, 800 trials each) ==\n");

    println!("# operating temperature sweep");
    println!("# temp_C   median_ttf_years");
    for t in [85.0, 95.0, 105.0, 115.0, 125.0] {
        let tech = Technology {
            operating_temperature_c: t,
            ..Technology::default()
        };
        println!("{t:8.0}  {:10.2}", median_years(tech));
    }
    println!("# expectation: strong Arrhenius decrease with temperature.\n");

    println!("# package stress sweep (added to sigma_T, paper §2.3)");
    println!("# package_MPa   median_ttf_years");
    for p in [0.0, 20.0, 40.0, 60.0, 80.0] {
        let tech = Technology {
            package_stress: p * 1e6,
            ..Technology::default()
        };
        println!("{p:12.0}  {:10.2}", median_years(tech));
    }
    println!("# expectation: quadratic-in-margin decrease with package stress.\n");

    println!("# flaw-radius mean sweep (paper §2.2 uses 10 nm)");
    println!("# flaw_nm   median_ttf_years");
    for rf in [8.0, 9.0, 10.0, 11.0, 12.0] {
        let tech = Technology {
            flaw_radius_mean: rf * 1e-9,
            ..Technology::default()
        };
        println!("{rf:7.1}  {:10.2}", median_years(tech));
    }
    println!("# expectation: larger flaws -> lower critical stress -> shorter TTF.\n");

    println!("# Black's-law baseline vs stress-aware TTF (same via, j sweep)");
    let tech = Technology::default();
    let black = BlackModel::from_accelerated_test(&tech, 3e10, 300.0);
    let t_op = celsius_to_kelvin(tech.operating_temperature_c);
    println!("# j_A_per_m2   black_years   stress_aware_years (sigma_T = 240 MPa)");
    for j in [5e9, 1e10, 2e10] {
        let black_years = black.mttf(j, t_op) / SECONDS_PER_YEAR;
        let aware = emgrid::em::nucleation_time(
            &tech,
            tech.critical_stress_distribution().median(),
            240e6,
            j,
        ) / SECONDS_PER_YEAR;
        println!("{j:10.1e}  {black_years:12.2}  {aware:12.2}");
    }
    println!("# expectation: the stress-blind extrapolation overpredicts life");
    println!("# at operating conditions (the paper's core motivation).\n");

    println!("# current-redistribution model ablation (4x4, R=2x)");
    let config = ViaArrayConfig::paper_4x4(IntersectionPattern::Plus);
    let uniform = characterize(&config, 800, 78)
        .ecdf(FailureCriterion::ResistanceRatio(2.0))
        .median()
        / SECONDS_PER_YEAR;
    let crowded = ViaArrayMc::from_reference_table(&config, tech, 1e10)
        .with_current_model(CurrentModel::Network(Default::default()))
        .characterize(800, 78)
        .ecdf(FailureCriterion::ResistanceRatio(2.0))
        .median()
        / SECONDS_PER_YEAR;
    println!("# uniform sharing : {uniform:.2} years");
    println!("# crowding network: {crowded:.2} years");
    println!("# expectation: crowding concentrates current on perimeter vias and");
    println!("# shortens the early failures.");
}
