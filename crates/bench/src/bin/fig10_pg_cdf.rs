//! Figure 10: system TTF percentile curves for the PG1 profile, with 4×4
//! (a) and 8×8 (b) via arrays, under the four (system criterion, via-array
//! criterion) combinations.
//!
//! Paper expectations: for a fixed via-array criterion, the 10%-IR-drop
//! system criterion outlives the system weakest link; for a fixed system
//! criterion, the `R = ∞` array criterion outlives the array weakest link;
//! the 8×8 panel sits right of the 4×4 panel.

use emgrid::prelude::*;
use emgrid_bench::{level2_trials, print_report, run_grid};

fn main() {
    let spec = GridSpec::pg1();
    println!(
        "== Figure 10: {} system TTF percentile curves ({} trials) ==",
        spec.name,
        level2_trials()
    );
    for array in [
        ViaArrayConfig::paper_4x4(IntersectionPattern::Plus),
        ViaArrayConfig::paper_8x8(IntersectionPattern::Plus),
    ] {
        let label = emgrid_bench::array_label(&array.geometry);
        println!("-- panel: {label} via arrays --");
        for (system, sys_label) in [
            (SystemCriterion::WeakestLink, "system weakest-link"),
            (SystemCriterion::IrDropFraction(0.10), "system 10% IR-drop"),
        ] {
            for (via_crit, via_label) in [
                (FailureCriterion::WeakestLink, "array weakest-link"),
                (FailureCriterion::OpenCircuit, "array R=inf"),
            ] {
                let result = run_grid(&spec, &array, via_crit, system, 810);
                let curve = TtfCurve::from_result(format!("{sys_label}, {via_label}"), &result);
                println!("# curve: {}", curve.label);
                print_report(&curve.label, result.report());
                println!("# ttf_years  percentile");
                for (t, p) in &curve.points {
                    println!("{t:10.2}  {p:6.3}");
                }
                println!(
                    "# worst-case {:.1} yr, median {:.1} yr, mean failures/trial {:.1}",
                    result.worst_case_years(),
                    result.median_years(),
                    result.mean_failures()
                );
                println!();
            }
        }
    }
    println!(
        "# expectation: IR-drop criterion > weakest link; R=inf > array weakest link; 8x8 > 4x4."
    );
}
