//! Figure 6: thermomechanical stress under the first via row of a 4×4 array
//! for the Plus-, T- and L-shaped intersection patterns.
//!
//! Paper expectation: Plus > T > L in stress magnitude (more surrounding
//! ILD lets the copper contract, relieving stress).

use emgrid::prelude::*;
use emgrid_bench::{fea_resolution, figure_model, print_scan, solve_figure_field};

fn main() {
    println!(
        "== Figure 6: sigma_T by intersection pattern (4x4 array, resolution {} um) ==",
        fea_resolution()
    );
    let mut peaks = Vec::new();
    for pattern in IntersectionPattern::ALL {
        let model = figure_model(pattern, ViaArrayGeometry::paper_4x4());
        let field = solve_figure_field(&model);
        let scan = field.via_row_scan(0);
        print_scan(&format!("{pattern}-shaped pattern, first via row"), &scan);
        let peak = field
            .per_via_peak_stress()
            .into_iter()
            .fold(f64::NEG_INFINITY, f64::max);
        peaks.push((pattern, peak));
    }
    println!("# peak sigma_T per pattern (MPa):");
    for (pattern, peak) in &peaks {
        println!("#   {:>4}-shaped: {:7.1}", pattern.to_string(), peak / 1e6);
    }
    println!("# expectation: plus > tee > ell.");
}
