//! Table 2: worst-case (0.3%ile) TTF for the PG1/PG2/PG5 benchmark
//! profiles under every (system criterion, via-array criterion) pair, for
//! 4×4 and 8×8 via arrays.
//!
//! Paper values (years) for orientation:
//!
//! ```text
//!           weakest-link        10% IR-drop
//!           WL      R=inf       WL      R=inf
//! 4x4 PG1   0.8     2.0         1.5     3.9
//!     PG2   0.9     3.1         2.2     5.5
//!     PG5   1.7     4.4         3.1     10.2
//! 8x8 PG1   0.9     4.2         1.7     7.6
//!     PG2   1.0     4.9         2.8     7.9
//!     PG5   1.9     8.4         4.5     16.7
//! ```
//!
//! Expected shape: every row grows left→right; every 8×8 entry beats its
//! 4×4 counterpart; PG5 ≥ PG2 ≥ PG1.

use emgrid::prelude::*;
use emgrid_bench::{level2_trials, mc_target_ci, mc_threads, run_grid};

fn main() {
    println!(
        "== Table 2: worst-case TTF (0.3%ile, years), {} trials ==",
        level2_trials()
    );
    println!(
        "# runtime: {} thread(s), early stop: {}",
        mc_threads(),
        mc_target_ci().map_or_else(
            || "off (fixed budget)".to_owned(),
            |hw| format!("95% CI half-width target {hw}")
        )
    );
    println!(
        "{:<5} {:<4} {:>10} {:>10} {:>10} {:>10}",
        "bench", "cfg", "WL/WL", "WL/Rinf", "IR/WL", "IR/Rinf"
    );
    for array in [
        ViaArrayConfig::paper_4x4(IntersectionPattern::Plus),
        ViaArrayConfig::paper_8x8(IntersectionPattern::Plus),
    ] {
        let cfg = emgrid_bench::array_label(&array.geometry);
        for spec in [GridSpec::pg1(), GridSpec::pg2(), GridSpec::pg5()] {
            let mut cells = Vec::new();
            for system in [
                SystemCriterion::WeakestLink,
                SystemCriterion::IrDropFraction(0.10),
            ] {
                for via_crit in [FailureCriterion::WeakestLink, FailureCriterion::OpenCircuit] {
                    // One seed across all criteria combinations: common
                    // random numbers, so column differences are compared on
                    // identical failure-time draws (lower variance).
                    let result = run_grid(&spec, &array, via_crit, system, 0x7ab1e2);
                    cells.push(result.worst_case_years());
                }
            }
            println!(
                "{:<5} {:<4} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
                spec.name, cfg, cells[0], cells[1], cells[2], cells[3]
            );
        }
    }
    println!("# columns: system/via-array criteria; WL = weakest link, Rinf = open circuit, IR = 10% IR-drop.");
}
