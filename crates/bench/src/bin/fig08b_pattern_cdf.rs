//! Figure 8(b): CDF of the 4×4 via-array TTF at the 8th-via failure
//! criterion, for the three intersection patterns.
//!
//! Paper expectation: L and T outlive Plus (lower thermomechanical stress).

use emgrid::prelude::*;
use emgrid_bench::{characterize, level1_trials, print_cdf, print_report};

fn main() {
    let trials = level1_trials();
    println!("== Figure 8(b): pattern comparison at n_F = 8 ({trials} trials) ==");
    let crit = FailureCriterion::ViaCount(8);
    let mut medians = Vec::new();
    for pattern in IntersectionPattern::ALL {
        let result = characterize(&ViaArrayConfig::paper_4x4(pattern), trials, 802);
        print_report(
            &format!("{pattern}-shaped characterization"),
            result.report(),
        );
        print_cdf(&format!("{pattern}-shaped"), &result.ecdf(crit));
        medians.push((pattern, result.ecdf(crit).median() / SECONDS_PER_YEAR));
    }
    println!("# medians (years):");
    for (pattern, med) in &medians {
        println!("#   {:>4}-shaped: {med:6.2}", pattern.to_string());
    }
    println!("# expectation: ell > tee > plus in lifetime.");
}
