//! Figure 7: stress line scans through each via row of a 4×4 vs an 8×8 via
//! array of equal effective area.
//!
//! Paper expectations: perimeter vias of both arrays see similar peak
//! stress; interior vias of the 8×8 see smaller peaks and smoother
//! fluctuations than those of the 4×4.

use emgrid::prelude::*;
use emgrid_bench::{fea_resolution, figure_model, print_scan, solve_figure_field};

fn main() {
    println!(
        "== Figure 7: 4x4 vs 8x8 via array stress (resolution {} um) ==",
        fea_resolution()
    );
    for array in [ViaArrayGeometry::paper_4x4(), ViaArrayGeometry::paper_8x8()] {
        let label = emgrid_bench::array_label(&array);
        let model = figure_model(IntersectionPattern::Plus, array);
        let field = solve_figure_field(&model);
        // One scan per distinct ring of rows (symmetry halves the work).
        for row in 0..array.rows / 2 {
            let scan = field.via_row_scan(row);
            print_scan(&format!("{label}, via row {row}"), &scan);
        }
        let peaks = field.per_via_peak_stress();
        let perimeter: Vec<f64> = peaks
            .iter()
            .enumerate()
            .filter(|(i, _)| array.is_perimeter(*i))
            .map(|(_, &p)| p / 1e6)
            .collect();
        let interior: Vec<f64> = peaks
            .iter()
            .enumerate()
            .filter(|(i, _)| !array.is_perimeter(*i))
            .map(|(_, &p)| p / 1e6)
            .collect();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        println!(
            "# {label}: mean perimeter peak {:7.1} MPa, mean interior peak {:7.1} MPa",
            mean(&perimeter),
            mean(&interior)
        );
        println!();
    }
    println!("# expectation: similar perimeter peaks; 8x8 interior < 4x4 interior.");
}
