//! Figure 1: hydrostatic stress along the lower wire beneath a 1×1 via and
//! a 4×4 via array (Plus pattern, 2 µm wires, 1 µm² effective via area),
//! plus Table 1 (material inputs).
//!
//! Paper expectations: local stress minima inside each via, local maxima
//! between vias of the 4×4 array; the 4×4 perimeter peak is similar to the
//! 1×1 peak while interior vias see visibly lower stress.

use emgrid::fea::material::{table1, MaterialKind};
use emgrid::prelude::*;
use emgrid_bench::{fea_resolution, figure_model, print_scan, solve_figure_field};

fn main() {
    println!("== Table 1: mechanical properties of materials in Cu DD ==");
    println!(
        "{:<10} {:<8} {:>8} {:>9} {:>12}",
        "structure", "material", "E(GPa)", "nu", "CTE(ppm/C)"
    );
    for kind in MaterialKind::ALL {
        let m = table1(kind);
        println!(
            "{:<10} {:<8} {:>8.1} {:>9.3} {:>12.2}",
            kind.to_string(),
            m.name,
            m.youngs_modulus / 1e9,
            m.poisson_ratio,
            m.cte * 1e6
        );
    }
    println!();
    println!(
        "== Figure 1: stress beneath 1x1 vs 4x4 via array (resolution {} um) ==",
        fea_resolution()
    );

    for array in [ViaArrayGeometry::paper_1x1(), ViaArrayGeometry::paper_4x4()] {
        let label = emgrid_bench::array_label(&array);
        let model = figure_model(IntersectionPattern::Plus, array);
        let field = solve_figure_field(&model);
        // Outer row (black arrow) and, for the 4x4, the inner row (red).
        let rows: &[usize] = if array.rows > 1 { &[0, 1] } else { &[0] };
        for &row in rows {
            let scan = field.via_row_scan(row);
            print_scan(&format!("{label} via array, row {row}"), &scan);
        }
        let peaks = field.per_via_peak_stress();
        println!("# per-via peak sigma_T (MPa), row-major, {label}:");
        for (i, p) in peaks.iter().enumerate() {
            print!("{:8.1}", p / 1e6);
            if (i + 1) % array.cols == 0 {
                println!();
            }
        }
        println!();
    }
    println!("# expectation: interior 4x4 vias shielded relative to perimeter;");
    println!("# perimeter peak comparable to the 1x1 peak.");
}
