//! Figure 9: TTF comparison of 1×1, 4×4 and 8×8 via arrays under the
//! `R = 2×` and `R = ∞` (open-circuit) failure criteria.
//!
//! Paper expectations: 1×1 worst, then 4×4, then 8×8 under each criterion;
//! at `R = 2×` the worst-case (0.3%ile) TTF of the 8×8 (~8 yr in the paper)
//! beats the 4×4 (~4 yr) and even the 4×4 at `R = ∞` (~6 yr).

use emgrid::prelude::*;
use emgrid_bench::{characterize, level1_trials, print_cdf, print_report};

fn main() {
    let trials = level1_trials();
    println!("== Figure 9: redundancy comparison ({trials} trials) ==");
    let configs = [
        (
            ViaArrayConfig::paper_1x1(IntersectionPattern::Plus),
            vec![FailureCriterion::OpenCircuit],
        ),
        (
            ViaArrayConfig::paper_4x4(IntersectionPattern::Plus),
            vec![
                FailureCriterion::ResistanceRatio(2.0),
                FailureCriterion::OpenCircuit,
            ],
        ),
        (
            ViaArrayConfig::paper_8x8(IntersectionPattern::Plus),
            vec![
                FailureCriterion::ResistanceRatio(2.0),
                FailureCriterion::OpenCircuit,
            ],
        ),
    ];
    println!("# worst-case (0.3%ile) TTF in years:");
    let mut summaries = Vec::new();
    for (config, criteria) in &configs {
        let label = emgrid_bench::array_label(&config.geometry);
        let result = characterize(config, trials, 809);
        print_report(&format!("{label} characterization"), result.report());
        for &crit in criteria {
            let ecdf = result.ecdf(crit);
            print_cdf(&format!("{label}, {crit}"), &ecdf);
            summaries.push((
                format!("{label} {crit}"),
                ecdf.worst_case() / SECONDS_PER_YEAR,
                ecdf.median() / SECONDS_PER_YEAR,
            ));
        }
    }
    println!("# summary (worst-case 0.3%ile | median, years):");
    for (label, wc, med) in &summaries {
        println!("#   {label:<14} {wc:6.2} | {med:6.2}");
    }
    println!("# paper anchors: 8x8@R=2x ~8 yr, 4x4@R=2x ~4 yr, 4x4@R=inf ~6 yr (0.3%ile).");
}
