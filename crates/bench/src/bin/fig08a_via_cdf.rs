//! Figure 8(a): CDF of the via-array TTF for failure criteria based on the
//! number of failed vias (Plus-shaped 4×4 array, j = 1×10¹⁰ A/m², 105 °C).
//!
//! Paper expectation: CDFs shift right with the allowed failure count; the
//! spread spans roughly 2–14 years.

use emgrid::prelude::*;
use emgrid_bench::{characterize, level1_trials, print_cdf, print_report};

fn main() {
    let trials = level1_trials();
    println!("== Figure 8(a): 4x4 Plus via-array TTF CDFs ({trials} trials) ==");
    let result = characterize(
        &ViaArrayConfig::paper_4x4(IntersectionPattern::Plus),
        trials,
        801,
    );
    print_report("4x4 plus characterization", result.report());
    // The paper's curve set: 1st, 2nd, 4th, 8th, 14th, 15th, last via.
    for n_f in [1usize, 2, 4, 8, 14, 15, 16] {
        let crit = FailureCriterion::ViaCount(n_f);
        print_cdf(&format!("n_F = {n_f}"), &result.ecdf(crit));
    }
    println!("# medians (years):");
    for n_f in [1usize, 2, 4, 8, 14, 15, 16] {
        let med = result.ecdf(FailureCriterion::ViaCount(n_f)).median() / SECONDS_PER_YEAR;
        println!("#   {n_f:>2} vias: {med:6.2}");
    }
    println!("# expectation: monotone in n_F.");
}
