//! A minimal, std-only, in-repo stand-in for the [`criterion`] benchmark
//! crate.
//!
//! The build environment cannot reach the crates.io registry, so the
//! workspace vendors the subset of criterion's API its benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Throughput`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: after one warm-up run, each
//! benchmark body is timed `sample_size` times with [`std::time::Instant`]
//! and the min / median / mean per-iteration times are printed. That is
//! enough to compare strategies within one machine and run (the only use
//! the workspace makes of benches); it does not attempt criterion's
//! statistical outlier analysis.
//!
//! Beyond printing, results can be captured machine-readably: point
//! [`Criterion::json_output`] at a path (the workspace convention is
//! `BENCH_fea.json` / `BENCH_mc.json` in the repo root) and every
//! completed benchmark is appended to a JSON array of
//! `{group, id, min_ns, median_ns, mean_ns, samples}` records. The file
//! is rewritten after each benchmark, so a crashed run still leaves the
//! completed prefix on disk. This is how the perf trajectory is tracked
//! across PRs.
//!
//! [`criterion`]: https://docs.rs/criterion

use std::fmt::Display;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// One completed benchmark measurement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchRecord {
    /// Group name (empty for ungrouped benchmarks).
    pub group: String,
    /// Benchmark id within the group.
    pub id: String,
    /// Fastest sample, nanoseconds.
    pub min_ns: u128,
    /// Median sample, nanoseconds.
    pub median_ns: u128,
    /// Mean sample, nanoseconds.
    pub mean_ns: u128,
    /// Number of timed samples.
    pub samples: usize,
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    json_path: Option<PathBuf>,
    records: Vec<BenchRecord>,
}

impl Criterion {
    /// Mirrors criterion's CLI-argument handling; a no-op here.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Writes every completed benchmark to `path` as a JSON array (shim
    /// extension; re-written after each benchmark so partial runs persist).
    pub fn json_output(&mut self, path: impl Into<PathBuf>) -> &mut Self {
        self.json_path = Some(path.into());
        self
    }

    /// The records measured so far.
    pub fn records(&self) -> &[BenchRecord] {
        &self.records
    }

    /// Records an externally-measured result (shim extension). Load
    /// harnesses that measure latency distributions themselves — rather
    /// than timing a closure with [`Bencher::iter`] — report through this
    /// so their percentiles land in the same JSON stream as ordinary
    /// benchmarks. The record is printed and flushed like any other.
    pub fn record_custom(
        &mut self,
        group: &str,
        id: &str,
        min_ns: u128,
        median_ns: u128,
        mean_ns: u128,
        samples: usize,
    ) {
        println!(
            "  {group}/{id}: min {min_ns}ns  median {median_ns}ns  mean {mean_ns}ns  ({samples} samples)"
        );
        self.records.push(BenchRecord {
            group: group.to_owned(),
            id: id.to_owned(),
            min_ns,
            median_ns,
            mean_ns,
            samples,
        });
        self.flush_json();
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let group = name.into();
        println!("group {group}");
        BenchmarkGroup {
            criterion: self,
            group,
            sample_size: 20,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Display, f: F) {
        if let Some(stats) = run_benchmark(&name.to_string(), 20, f) {
            self.record("", &name.to_string(), stats);
        }
    }

    fn record(&mut self, group: &str, id: &str, stats: SampleStats) {
        self.records.push(BenchRecord {
            group: group.to_owned(),
            id: id.to_owned(),
            min_ns: stats.min.as_nanos(),
            median_ns: stats.median.as_nanos(),
            mean_ns: stats.mean.as_nanos(),
            samples: stats.samples,
        });
        self.flush_json();
    }

    fn flush_json(&self) {
        let Some(path) = &self.json_path else { return };
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("warning: cannot create {}: {e}", parent.display());
            }
        }
        let mut out = String::from("[\n");
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&format!(
                "  {{\"group\": {}, \"id\": {}, \"min_ns\": {}, \"median_ns\": {}, \"mean_ns\": {}, \"samples\": {}}}",
                json_string(&r.group),
                json_string(&r.id),
                r.min_ns,
                r.median_ns,
                r.mean_ns,
                r.samples
            ));
        }
        out.push_str("\n]\n");
        if let Err(e) = std::fs::write(path, out) {
            eprintln!("warning: cannot write {}: {e}", path.display());
        }
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A named set of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    group: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares the amount of work one iteration represents (printed, not
    /// analyzed).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        match t {
            Throughput::Bytes(b) => println!("  throughput: {b} bytes/iter"),
            Throughput::Elements(e) => println!("  throughput: {e} elements/iter"),
        }
        self
    }

    /// Benchmarks `f` with shared setup data `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        if let Some(stats) = run_benchmark(&id.0, self.sample_size, |b| f(b, input)) {
            self.criterion.record(&self.group, &id.0, stats);
        }
        self
    }

    /// Benchmarks a closure with no input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Display,
        f: F,
    ) -> &mut Self {
        let name = name.to_string();
        if let Some(stats) = run_benchmark(&name, self.sample_size, f) {
            self.criterion.record(&self.group, &name, stats);
        }
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// A benchmark name with an attached parameter, e.g. `solve/1024`.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Combines a function name and a parameter into an id.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }
}

/// Work-per-iteration annotations.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Passed to each benchmark body; its [`iter`](Bencher::iter) method times
/// one sample.
pub struct Bencher {
    sample: Option<Duration>,
}

impl Bencher {
    /// Times one execution of `f` (the routine under benchmark).
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.sample = Some(start.elapsed());
        std::hint::black_box(out);
    }
}

/// Summary of one benchmark's timed samples.
#[derive(Debug, Clone, Copy)]
struct SampleStats {
    min: Duration,
    median: Duration,
    mean: Duration,
    samples: usize,
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    name: &str,
    samples: usize,
    mut f: F,
) -> Option<SampleStats> {
    // Warm-up: one untimed run populates caches and lazy state.
    let mut bench = Bencher { sample: None };
    f(&mut bench);
    let mut times: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        bench.sample = None;
        f(&mut bench);
        // A body that never calls iter() contributes nothing.
        if let Some(t) = bench.sample {
            times.push(t);
        }
    }
    if times.is_empty() {
        println!("  {name}: no samples (body never called iter)");
        return None;
    }
    times.sort();
    let stats = SampleStats {
        min: times[0],
        median: times[times.len() / 2],
        mean: times.iter().sum::<Duration>() / times.len() as u32,
        samples: times.len(),
    };
    println!(
        "  {name}: min {:?}  median {:?}  mean {:?}  ({} samples)",
        stats.min, stats.median, stats.mean, stats.samples
    );
    Some(stats)
}

/// Re-export for compatibility: benches import `black_box` from either
/// place.
pub use std::hint::black_box;

/// Collects benchmark functions into a runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("solve", 1024).0, "solve/1024");
    }

    #[test]
    fn bencher_times_and_groups_run() {
        let mut c = Criterion::default().configure_from_args();
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("shim");
            g.sample_size(3)
                .throughput(Throughput::Bytes(10))
                .bench_function("count", |b| {
                    b.iter(|| {
                        ran += 1;
                        std::hint::black_box(ran)
                    })
                });
            g.bench_with_input(BenchmarkId::new("with_input", 7), &7u32, |b, &x| {
                b.iter(|| x * 2)
            });
            g.finish();
        }
        // warm-up + 3 samples.
        assert_eq!(ran, 4);
        // Both benchmarks were recorded with their group attached.
        assert_eq!(c.records().len(), 2);
        assert_eq!(c.records()[0].group, "shim");
        assert_eq!(c.records()[0].id, "count");
        assert_eq!(c.records()[1].id, "with_input/7");
        assert_eq!(c.records()[0].samples, 3);
    }

    #[test]
    fn custom_records_join_the_stream() {
        let mut c = Criterion::default();
        c.record_custom("open_loop", "healthz/conns=8/p99", 10, 20, 30, 100);
        assert_eq!(c.records().len(), 1);
        let r = &c.records()[0];
        assert_eq!(r.group, "open_loop");
        assert_eq!(r.id, "healthz/conns=8/p99");
        assert_eq!(
            (r.min_ns, r.median_ns, r.mean_ns, r.samples),
            (10, 20, 30, 100)
        );
    }

    #[test]
    fn json_output_writes_valid_records() {
        let path =
            std::env::temp_dir().join(format!("criterion-shim-test-{}.json", std::process::id()));
        let mut c = Criterion::default();
        c.json_output(&path);
        c.bench_function("alpha \"quoted\"", |b| b.iter(|| 1 + 1));
        {
            let mut g = c.benchmark_group("grp");
            g.sample_size(2)
                .bench_function("beta", |b| b.iter(|| 2 + 2));
            g.finish();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.trim_start().starts_with('['), "{text}");
        assert!(text.contains("\"group\": \"grp\""), "{text}");
        assert!(text.contains("\"id\": \"beta\""), "{text}");
        assert!(text.contains("\\\"quoted\\\""), "{text}");
        assert!(text.contains("\"median_ns\""), "{text}");
        std::fs::remove_file(&path).ok();
    }
}
