//! A minimal, std-only, in-repo stand-in for the [`criterion`] benchmark
//! crate.
//!
//! The build environment cannot reach the crates.io registry, so the
//! workspace vendors the subset of criterion's API its benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Throughput`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: after one warm-up run, each
//! benchmark body is timed `sample_size` times with [`std::time::Instant`]
//! and the min / median / mean per-iteration times are printed. That is
//! enough to compare strategies within one machine and run (the only use
//! the workspace makes of benches); it does not attempt criterion's
//! statistical outlier analysis.
//!
//! [`criterion`]: https://docs.rs/criterion

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Mirrors criterion's CLI-argument handling; a no-op here.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        println!("group {}", name.into());
        BenchmarkGroup {
            _criterion: self,
            sample_size: 20,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Display, f: F) {
        run_benchmark(&name.to_string(), 20, f);
    }
}

/// A named set of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares the amount of work one iteration represents (printed, not
    /// analyzed).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        match t {
            Throughput::Bytes(b) => println!("  throughput: {b} bytes/iter"),
            Throughput::Elements(e) => println!("  throughput: {e} elements/iter"),
        }
        self
    }

    /// Benchmarks `f` with shared setup data `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_benchmark(&id.0, self.sample_size, |b| f(b, input));
        self
    }

    /// Benchmarks a closure with no input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Display,
        f: F,
    ) -> &mut Self {
        run_benchmark(&name.to_string(), self.sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// A benchmark name with an attached parameter, e.g. `solve/1024`.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Combines a function name and a parameter into an id.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }
}

/// Work-per-iteration annotations.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Passed to each benchmark body; its [`iter`](Bencher::iter) method times
/// one sample.
pub struct Bencher {
    sample: Option<Duration>,
}

impl Bencher {
    /// Times one execution of `f` (the routine under benchmark).
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.sample = Some(start.elapsed());
        std::hint::black_box(out);
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    // Warm-up: one untimed run populates caches and lazy state.
    let mut bench = Bencher { sample: None };
    f(&mut bench);
    let mut times: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        bench.sample = None;
        f(&mut bench);
        // A body that never calls iter() contributes nothing.
        if let Some(t) = bench.sample {
            times.push(t);
        }
    }
    if times.is_empty() {
        println!("  {name}: no samples (body never called iter)");
        return;
    }
    times.sort();
    let median = times[times.len() / 2];
    let mean = times.iter().sum::<Duration>() / times.len() as u32;
    println!(
        "  {name}: min {:?}  median {:?}  mean {:?}  ({} samples)",
        times[0],
        median,
        mean,
        times.len()
    );
}

/// Re-export for compatibility: benches import `black_box` from either
/// place.
pub use std::hint::black_box;

/// Collects benchmark functions into a runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("solve", 1024).0, "solve/1024");
    }

    #[test]
    fn bencher_times_and_groups_run() {
        let mut c = Criterion::default().configure_from_args();
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("shim");
            g.sample_size(3)
                .throughput(Throughput::Bytes(10))
                .bench_function("count", |b| {
                    b.iter(|| {
                        ran += 1;
                        std::hint::black_box(ran)
                    })
                });
            g.bench_with_input(BenchmarkId::new("with_input", 7), &7u32, |b, &x| {
                b.iter(|| x * 2)
            });
            g.finish();
        }
        // warm-up + 3 samples.
        assert_eq!(ran, 4);
    }

    mod macro_expansion {
        use super::super::*;

        fn target(c: &mut Criterion) {
            c.bench_function("noop", |b| b.iter(|| 1 + 1));
        }

        criterion_group!(benches, target);

        #[test]
        fn group_macro_produces_runner() {
            benches();
        }
    }
}
