//! Daemon metrics exported in Prometheus text exposition format.
//!
//! Counters are plain relaxed atomics and histograms are the lock-free
//! fixed-bucket kind from [`emgrid_runtime::obs`] — they feed dashboards,
//! not control flow. The queue gauges are sampled from the job engine at
//! scrape time rather than stored, so `/metrics` can never disagree with
//! the engine about how much work is outstanding. A scrape also appends
//! the process-global registry (stress-cache hit/miss/store counters, MC
//! trial counters, checkpoint-commit latency), so one endpoint covers
//! every layer.
//!
//! Two response-side families exist deliberately:
//! `emgrid_http_requests_total` counts requests — one per parsed request
//! on a (possibly keep-alive) connection, plus one per early protocol
//! error (400/408/413) and one per accept-path shed — while
//! `emgrid_http_responses_total{status_class}` counts every response
//! *written*, sheds and early errors included. Because every counted
//! response was first counted as a request (panicked handlers count a
//! request but write nothing), `requests_total ≥ responses_total` holds
//! at every scrape; a shed storm can no longer push responses above
//! requests.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use emgrid_runtime::obs::{self, Histogram};

/// Route labels for the request-latency histogram family. `other` takes
/// unroutable requests (parse errors, unknown paths).
pub const ROUTES: &[&str] = &[
    "healthz", "metrics", "submit", "status", "result", "cancel", "sweep", "other",
];

/// Status classes tracked by `emgrid_http_responses_total`.
const STATUS_CLASSES: &[&str] = &["2xx", "3xx", "4xx", "5xx"];

/// Monotonic counters, latency histograms, plus scrape-time gauges.
#[derive(Debug)]
pub struct Metrics {
    /// HTTP requests: parsed requests, early protocol errors, and sheds.
    pub http_requests: AtomicU64,
    /// Requests served on a reused (keep-alive) connection — the second
    /// and later requests on each connection.
    pub keepalive_reuses: AtomicU64,
    /// Connection threads that panicked; their slot is reclaimed by the
    /// accept loop's drop guard.
    pub connection_panics: AtomicU64,
    /// Jobs accepted through `POST /v1/jobs` or requeued at startup.
    pub jobs_submitted: AtomicU64,
    /// Jobs finished successfully.
    pub jobs_done: AtomicU64,
    /// Jobs that returned an error or panicked.
    pub jobs_failed: AtomicU64,
    /// Jobs cancelled (client delete or shutdown).
    pub jobs_cancelled: AtomicU64,
    /// Jobs that resumed from an on-disk checkpoint at startup.
    pub jobs_resumed: AtomicU64,
    /// Checkpoints persisted across all jobs.
    pub checkpoints: AtomicU64,
    /// Responses written, indexed by status class (2xx..5xx).
    responses: [AtomicU64; 4],
    /// Request latency per route, parallel to [`ROUTES`].
    route_latency: Vec<Histogram>,
    /// Time jobs spent queued before a worker picked them up.
    pub queue_wait: Histogram,
    /// End-to-end job execution time (queue wait excluded).
    pub job_duration: Histogram,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            http_requests: AtomicU64::new(0),
            keepalive_reuses: AtomicU64::new(0),
            connection_panics: AtomicU64::new(0),
            jobs_submitted: AtomicU64::new(0),
            jobs_done: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            jobs_cancelled: AtomicU64::new(0),
            jobs_resumed: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            responses: Default::default(),
            route_latency: ROUTES.iter().map(|_| Histogram::latency()).collect(),
            queue_wait: Histogram::latency(),
            job_duration: Histogram::latency(),
        }
    }
}

impl Metrics {
    /// Adds one to a counter.
    pub fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one written response under its status class. Every path
    /// that writes a response — routed, early-error, or accept-loop shed —
    /// must pass through here.
    pub fn count_response(&self, status: u16) {
        let class = (status / 100).clamp(2, 5) as usize - 2;
        self.responses[class].fetch_add(1, Ordering::Relaxed);
    }

    /// Written responses in a status class (`"5xx"` etc.), for tests.
    pub fn responses_in_class(&self, class: &str) -> u64 {
        STATUS_CLASSES
            .iter()
            .position(|c| *c == class)
            .map(|i| self.responses[i].load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Records one request's wall time under its route label (unknown
    /// labels fold into `other`).
    pub fn observe_route(&self, route: &str, elapsed: Duration) {
        let idx = ROUTES
            .iter()
            .position(|r| *r == route)
            .unwrap_or(ROUTES.len() - 1);
        self.route_latency[idx].observe_duration(elapsed);
    }

    /// Renders the Prometheus text format. `queued`, `running` and
    /// `active_connections` are sampled by the caller.
    pub fn render(&self, queued: usize, running: usize, active_connections: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(8 * 1024);
        let mut counter = |name: &str, help: &str, value: u64| {
            obs::render_help(&mut out, name, help, "counter");
            let _ = writeln!(out, "{name} {value}");
        };
        counter(
            "emgrid_http_requests_total",
            "HTTP requests handled (parsed requests, early errors, and sheds).",
            self.http_requests.load(Ordering::Relaxed),
        );
        counter(
            "emgrid_http_keepalive_reuses_total",
            "Requests served on a reused keep-alive connection.",
            self.keepalive_reuses.load(Ordering::Relaxed),
        );
        counter(
            "emgrid_http_connection_panics_total",
            "Connection threads that panicked (slot reclaimed by drop guard).",
            self.connection_panics.load(Ordering::Relaxed),
        );
        counter(
            "emgrid_jobs_submitted_total",
            "Jobs accepted or requeued.",
            self.jobs_submitted.load(Ordering::Relaxed),
        );
        counter(
            "emgrid_jobs_done_total",
            "Jobs finished successfully.",
            self.jobs_done.load(Ordering::Relaxed),
        );
        counter(
            "emgrid_jobs_failed_total",
            "Jobs that failed or panicked.",
            self.jobs_failed.load(Ordering::Relaxed),
        );
        counter(
            "emgrid_jobs_cancelled_total",
            "Jobs cancelled by clients or shutdown.",
            self.jobs_cancelled.load(Ordering::Relaxed),
        );
        counter(
            "emgrid_jobs_resumed_total",
            "Jobs resumed from a checkpoint at startup.",
            self.jobs_resumed.load(Ordering::Relaxed),
        );
        counter(
            "emgrid_checkpoints_total",
            "Checkpoints persisted across all jobs.",
            self.checkpoints.load(Ordering::Relaxed),
        );

        obs::render_help(
            &mut out,
            "emgrid_http_responses_total",
            "HTTP responses written, by status class (sheds and early errors included).",
            "counter",
        );
        for (class, count) in STATUS_CLASSES.iter().zip(&self.responses) {
            let _ = writeln!(
                out,
                "emgrid_http_responses_total{{status_class=\"{class}\"}} {}",
                count.load(Ordering::Relaxed)
            );
        }

        for (name, help, value) in [
            (
                "emgrid_jobs_queued",
                "Jobs waiting in the bounded queue.",
                queued,
            ),
            ("emgrid_jobs_running", "Jobs currently executing.", running),
            (
                "emgrid_http_active_connections",
                "Connection threads currently alive (shed capacity in use).",
                active_connections,
            ),
        ] {
            obs::render_help(&mut out, name, help, "gauge");
            let _ = writeln!(out, "{name} {value}");
        }

        obs::render_help(
            &mut out,
            "emgrid_http_request_duration_seconds",
            "Request wall time from accept to response, by route.",
            "histogram",
        );
        for (route, h) in ROUTES.iter().zip(&self.route_latency) {
            obs::render_histogram(
                &mut out,
                "emgrid_http_request_duration_seconds",
                &format!("route=\"{route}\""),
                h,
            );
        }
        obs::render_help(
            &mut out,
            "emgrid_job_queue_wait_seconds",
            "Time jobs spent queued before a worker picked them up.",
            "histogram",
        );
        obs::render_histogram(
            &mut out,
            "emgrid_job_queue_wait_seconds",
            "",
            &self.queue_wait,
        );
        obs::render_help(
            &mut out,
            "emgrid_job_duration_seconds",
            "Job execution wall time (queue wait excluded).",
            "histogram",
        );
        obs::render_histogram(
            &mut out,
            "emgrid_job_duration_seconds",
            "",
            &self.job_duration,
        );

        // Instruments registered anywhere in the process: stress-cache
        // hit/miss/store, MC trial counters, checkpoint-commit latency.
        obs::render_registry(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_series_in_prometheus_format() {
        let m = Metrics::default();
        Metrics::inc(&m.http_requests);
        Metrics::inc(&m.http_requests);
        Metrics::inc(&m.jobs_submitted);
        m.count_response(202);
        m.count_response(503);
        m.count_response(408);
        m.observe_route("healthz", Duration::from_micros(80));
        m.queue_wait.observe(0.002);
        m.job_duration.observe(1.5);
        let text = m.render(3, 1, 7);
        assert!(text.contains("emgrid_http_requests_total 2\n"), "{text}");
        assert!(text.contains("emgrid_jobs_submitted_total 1\n"), "{text}");
        assert!(text.contains("emgrid_jobs_done_total 0\n"), "{text}");
        assert!(text.contains("emgrid_jobs_queued 3\n"), "{text}");
        assert!(text.contains("emgrid_jobs_running 1\n"), "{text}");
        assert!(
            text.contains("emgrid_http_active_connections 7\n"),
            "{text}"
        );
        assert!(
            text.contains("emgrid_http_responses_total{status_class=\"2xx\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains("emgrid_http_responses_total{status_class=\"4xx\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains("emgrid_http_responses_total{status_class=\"5xx\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains(
                "emgrid_http_request_duration_seconds_bucket{route=\"healthz\",le=\"0.0001\"} 1"
            ),
            "{text}"
        );
        assert!(
            text.contains("emgrid_job_queue_wait_seconds_count 1\n"),
            "{text}"
        );
        assert!(
            text.contains("emgrid_job_duration_seconds_count 1\n"),
            "{text}"
        );
        // At least the three daemon histogram families are exposed.
        let families = [
            "emgrid_http_request_duration_seconds",
            "emgrid_job_queue_wait_seconds",
            "emgrid_job_duration_seconds",
        ];
        for f in families {
            assert!(text.contains(&format!("# TYPE {f} histogram\n")), "{text}");
        }
    }

    /// The same HELP/TYPE discipline the CI `metrics-smoke` lint enforces:
    /// every sample series must belong to a family with both a HELP and a
    /// TYPE line, with histogram suffixes resolved to their base family.
    #[test]
    fn every_series_has_matching_help_and_type() {
        let m = Metrics::default();
        m.count_response(200);
        m.observe_route("metrics", Duration::from_millis(1));
        let text = m.render(0, 0, 1);
        let mut help = std::collections::BTreeSet::new();
        let mut types = std::collections::BTreeSet::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                help.insert(rest.split_whitespace().next().unwrap().to_owned());
            } else if let Some(rest) = line.strip_prefix("# TYPE ") {
                types.insert(rest.split_whitespace().next().unwrap().to_owned());
            }
        }
        assert_eq!(help, types, "HELP and TYPE sets diverge");
        let mut checked = 0;
        for line in text.lines() {
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let series = line.split(['{', ' ']).next().unwrap().to_owned();
            let base = ["_bucket", "_sum", "_count"]
                .iter()
                .find_map(|s| series.strip_suffix(s))
                .filter(|b| types.contains(*b))
                .unwrap_or(&series);
            assert!(
                types.contains(base),
                "series {series} has no TYPE line:\n{text}"
            );
            checked += 1;
        }
        assert!(checked > 20, "suspiciously few series: {checked}");
    }
}
