//! Daemon counters exported in Prometheus text exposition format.
//!
//! Counters are plain relaxed atomics — they feed dashboards, not control
//! flow — and the two queue gauges are sampled from the job engine at
//! scrape time rather than stored, so `/metrics` can never disagree with
//! the engine about how much work is outstanding.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters plus scrape-time gauges.
#[derive(Debug, Default)]
pub struct Metrics {
    /// HTTP requests handled (any route, any status).
    pub http_requests: AtomicU64,
    /// Jobs accepted through `POST /v1/jobs` or requeued at startup.
    pub jobs_submitted: AtomicU64,
    /// Jobs finished successfully.
    pub jobs_done: AtomicU64,
    /// Jobs that returned an error or panicked.
    pub jobs_failed: AtomicU64,
    /// Jobs cancelled (client delete or shutdown).
    pub jobs_cancelled: AtomicU64,
    /// Jobs that resumed from an on-disk checkpoint at startup.
    pub jobs_resumed: AtomicU64,
    /// Checkpoints persisted across all jobs.
    pub checkpoints: AtomicU64,
}

impl Metrics {
    /// Adds one to a counter.
    pub fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Renders the Prometheus text format. `queued` and `running` are
    /// sampled by the caller from the job engine.
    pub fn render(&self, queued: usize, running: usize) -> String {
        let mut out = String::with_capacity(1024);
        let mut counter = |name: &str, help: &str, value: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
            ));
        };
        counter(
            "emgrid_http_requests_total",
            "HTTP requests handled.",
            self.http_requests.load(Ordering::Relaxed),
        );
        counter(
            "emgrid_jobs_submitted_total",
            "Jobs accepted or requeued.",
            self.jobs_submitted.load(Ordering::Relaxed),
        );
        counter(
            "emgrid_jobs_done_total",
            "Jobs finished successfully.",
            self.jobs_done.load(Ordering::Relaxed),
        );
        counter(
            "emgrid_jobs_failed_total",
            "Jobs that failed or panicked.",
            self.jobs_failed.load(Ordering::Relaxed),
        );
        counter(
            "emgrid_jobs_cancelled_total",
            "Jobs cancelled by clients or shutdown.",
            self.jobs_cancelled.load(Ordering::Relaxed),
        );
        counter(
            "emgrid_jobs_resumed_total",
            "Jobs resumed from a checkpoint at startup.",
            self.jobs_resumed.load(Ordering::Relaxed),
        );
        counter(
            "emgrid_checkpoints_total",
            "Checkpoints persisted across all jobs.",
            self.checkpoints.load(Ordering::Relaxed),
        );
        for (name, help, value) in [
            (
                "emgrid_jobs_queued",
                "Jobs waiting in the bounded queue.",
                queued,
            ),
            ("emgrid_jobs_running", "Jobs currently executing.", running),
        ] {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n"
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_series_in_prometheus_format() {
        let m = Metrics::default();
        Metrics::inc(&m.http_requests);
        Metrics::inc(&m.http_requests);
        Metrics::inc(&m.jobs_submitted);
        let text = m.render(3, 1);
        assert!(text.contains("emgrid_http_requests_total 2\n"), "{text}");
        assert!(text.contains("emgrid_jobs_submitted_total 1\n"), "{text}");
        assert!(text.contains("emgrid_jobs_done_total 0\n"), "{text}");
        assert!(text.contains("emgrid_jobs_queued 3\n"), "{text}");
        assert!(text.contains("emgrid_jobs_running 1\n"), "{text}");
        // Every series carries HELP and TYPE lines.
        assert_eq!(text.matches("# HELP").count(), 9, "{text}");
        assert_eq!(text.matches("# TYPE").count(), 9, "{text}");
    }
}
