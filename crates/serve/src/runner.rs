//! Executes accepted jobs inside the engine's worker threads.
//!
//! Every job runs a deterministic pipeline keyed only by its canonical
//! spec: the result document contains statistics but never timing,
//! thread-count or resume telemetry, so the same spec (and seed) yields
//! byte-identical `result.json` whether the job ran cold, warm, on one
//! worker or eight, straight through or resumed from a checkpoint after a
//! `kill -9`. Checkpoints stream to the [`JobStore`] with atomic renames;
//! cancellation (client delete or daemon shutdown) commits a final
//! checkpoint via the runtime's session machinery and reports
//! [`JobOutcome::Cancelled`] so a later restart can pick the work back up.

use std::collections::{HashMap, VecDeque};
use std::path::Path;
use std::sync::Mutex;
use std::time::Instant;

use emgrid_em::{Technology, SECONDS_PER_YEAR};
use emgrid_fea::geometry::CharacterizationModel;
use emgrid_pg::{
    GridCheckpoint, GridSession, GridVariation, PowerGrid, PowerGridMc, SystemCriterion,
};
use emgrid_runtime::{JobCtx, JobId, JobOutcome};
use emgrid_screen::{screen_grid, ScreenOptions};
use emgrid_spice::ingest::{ingest, IngestLimits, IngestOptions};
use emgrid_spice::GridSpec;
use emgrid_via::{
    CharacterizationResult, FailureCriterion, FeaOptions, LayerPair, StressCache, StressTable,
    VarianceDecomposition, ViaArrayMc, ViaCheckpoint, ViaSession,
};

use crate::json::Json;
use crate::metrics::Metrics;
use crate::spec::{
    DeckSource, JobSpec, ResolvedAnalyze, ResolvedFea, ResolvedJob, ResolvedMc, VariationSpec,
};
use crate::store::JobStore;

/// Jobs whose phase timings stay queryable after the map would otherwise
/// grow without bound; disk stays authoritative for everything else, so
/// evicted phase data is merely absent from old status docs.
const PHASE_RETENTION: usize = 1024;

/// Per-job phase wall times (`mc`, `ingest`, `level1`, `screen`,
/// `level2`, `fea`),
/// surfaced in `GET /v1/jobs/:id` status docs — never in result docs,
/// which must stay byte-identical whatever the timings were.
///
/// Bounded like the engine's terminal-record ring: beyond
/// [`PHASE_RETENTION`] jobs the oldest entry is evicted.
#[derive(Debug, Default)]
pub struct PhaseLog {
    /// Insertion order (for eviction) alongside the id → phases map.
    inner: Mutex<(VecDeque<JobId>, HashMap<JobId, PhaseTimings>)>,
}

/// `(phase, seconds)` pairs in execution order.
type PhaseTimings = Vec<(&'static str, f64)>;

impl PhaseLog {
    /// Appends one `(phase, seconds)` pair for `id`.
    pub fn record(&self, id: JobId, phase: &'static str, seconds: f64) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let (order, map) = &mut *inner;
        if !map.contains_key(&id) {
            order.push_back(id);
            if order.len() > PHASE_RETENTION {
                if let Some(old) = order.pop_front() {
                    map.remove(&old);
                }
            }
        }
        map.entry(id).or_default().push((phase, seconds));
    }

    /// The recorded phases of `id`, in execution order.
    pub fn phases(&self, id: JobId) -> PhaseTimings {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.1.get(&id).cloned().unwrap_or_default()
    }
}

/// Everything a job needs besides its spec.
pub struct RunEnv<'a> {
    /// Where checkpoints (and final artifacts) are persisted.
    pub store: &'a JobStore,
    /// Daemon counters (checkpoints written).
    pub metrics: &'a Metrics,
    /// Trials between checkpoints; 0 disables periodic checkpointing.
    pub checkpoint_every: usize,
    /// Stress-cache directory override for `fea` jobs.
    pub cache_dir: Option<&'a Path>,
    /// Byte cap for netlist re-ingest, mirroring the limit the submission
    /// endpoint screened with — a deck accepted at the door must never be
    /// rejected as "too large" once it reaches a worker.
    pub max_netlist_bytes: usize,
    /// Line cap for netlist re-ingest, same door/worker symmetry as
    /// [`RunEnv::max_netlist_bytes`] — chip-scale decks run to millions of
    /// lines, far past the ingest default.
    pub max_netlist_lines: usize,
    /// Phase-duration sink for status docs (`None` = don't record).
    pub phases: Option<&'a PhaseLog>,
}

impl RunEnv<'_> {
    fn record_phase(&self, id: JobId, phase: &'static str, started: Instant) {
        if let Some(log) = self.phases {
            log.record(id, phase, started.elapsed().as_secs_f64());
        }
    }
}

/// Runs one job to an outcome. Never panics on bad input — every failure
/// becomes [`JobOutcome::Failed`] with a client-readable message.
pub fn run_job(spec: &JobSpec, ctx: &JobCtx, env: &RunEnv<'_>) -> JobOutcome<String> {
    // Accepted specs always resolve; a failure here means a hand-built or
    // tampered spec reached a worker, and the field-level message says why.
    let resolved = match spec.resolve() {
        Ok(resolved) => resolved,
        Err(e) => return JobOutcome::Failed(format!("spec failed to resolve: {e}")),
    };
    match resolved {
        ResolvedJob::Characterize(mc) => run_characterize(&mc, ctx, env),
        ResolvedJob::Analyze(job) => run_analyze(&job, ctx, env),
        ResolvedJob::Fea(job) => run_fea(&job, ctx.id, env),
    }
}

fn run_characterize(mc: &ResolvedMc, ctx: &JobCtx, env: &RunEnv<'_>) -> JobOutcome<String> {
    let mut model =
        ViaArrayMc::from_reference_table(&mc.config, Technology::default(), mc.current_density);
    if let Some(v) = &mc.variation {
        model = model.with_variation(v.to_via());
    }

    let resume = env
        .store
        .read_checkpoint(ctx.id)
        .and_then(|text| ViaCheckpoint::decode(&text).ok());
    let mut on_checkpoint = |cp: &ViaCheckpoint| {
        if env.store.write_checkpoint(ctx.id, &cp.encode()).is_ok() {
            ctx.note_checkpoint();
            Metrics::inc(&env.metrics.checkpoints);
        }
    };
    let session = ViaSession {
        resume,
        cancel: Some(&ctx.cancel),
        checkpoint_every: env.checkpoint_every,
        on_checkpoint: Some(&mut on_checkpoint),
    };
    let mc_start = Instant::now();
    let outcome = model.characterize_session(mc.trials, mc.seed, &mc.runtime, session);
    env.record_phase(ctx.id, "mc", mc_start);
    let Some(result) = outcome else {
        return JobOutcome::Cancelled;
    };
    if result.report().cancelled {
        return JobOutcome::Cancelled;
    }

    let ecdf = result.ecdf(mc.criterion);
    let fit = match result.fit_lognormal(mc.criterion) {
        Ok(fit) => fit,
        Err(e) => return JobOutcome::Failed(format!("lognormal fit failed: {e}")),
    };
    let ks = match result.fit_quality(mc.criterion) {
        Ok(ks) => ks,
        Err(e) => return JobOutcome::Failed(format!("fit quality failed: {e}")),
    };
    let mut doc = vec![
        ("kind".into(), Json::s("characterize")),
        ("array".into(), Json::s(&mc.array)),
        ("pattern".into(), Json::s(&mc.pattern)),
        ("criterion".into(), Json::s(&mc.criterion_label)),
        ("trials".into(), Json::n(mc.trials as f64)),
        ("seed".into(), Json::n(mc.seed as f64)),
        (
            "trials_run".into(),
            Json::n(result.report().trials_run as f64),
        ),
        (
            "ttf_median_years".into(),
            Json::n(ecdf.median() / SECONDS_PER_YEAR),
        ),
        (
            "ttf_p03_years".into(),
            Json::n(ecdf.worst_case() / SECONDS_PER_YEAR),
        ),
        (
            "lognormal_median_years".into(),
            Json::n(fit.median() / SECONDS_PER_YEAR),
        ),
        ("lognormal_sigma".into(), Json::n(fit.sigma())),
        ("ks".into(), Json::n(ks)),
    ];
    // Variation is opt-in; unvaried result documents keep their
    // historical bytes.
    if let Some(v) = &mc.variation {
        let variance = if v.variance_analysis {
            match frozen_variance(&model, v, mc, ctx, &result) {
                Some(d) => Some(d),
                None => return JobOutcome::Cancelled,
            }
        } else {
            None
        };
        doc.push(("variation".into(), variation_doc(v, variance.as_ref())));
    }
    JobOutcome::Done(Json::Obj(doc).to_string())
}

/// The result-document `variation` block: the knobs that shaped the run,
/// plus the variance decomposition when the spec asked for one.
fn variation_doc(v: &VariationSpec, variance: Option<&VarianceDecomposition>) -> Json {
    let mut pairs = vec![
        ("edge_current_factor".into(), Json::n(v.edge_current_factor)),
        ("temperature_sigma_c".into(), Json::n(v.temperature_sigma_c)),
        ("linewidth_sigma".into(), Json::n(v.linewidth_sigma)),
    ];
    if let Some(d) = variance {
        pairs.push((
            "variance".into(),
            Json::Obj(vec![
                ("total".into(), Json::n(d.total)),
                ("void".into(), Json::n(d.void)),
                ("environment".into(), Json::n(d.environment)),
            ]),
        ));
    }
    Json::Obj(pairs)
}

/// Runs the frozen-fields companion Monte Carlo (same seed; the void
/// sub-stream is shared trial for trial) and decomposes the open-circuit
/// `ln TTF` variance over the common committed prefix. `None` means the
/// companion run was cancelled.
fn frozen_variance(
    model: &ViaArrayMc,
    spec: &VariationSpec,
    mc: &ResolvedMc,
    ctx: &JobCtx,
    varied: &CharacterizationResult,
) -> Option<VarianceDecomposition> {
    let frozen_model = model.clone().with_variation(spec.to_via().frozen_fields());
    let session = ViaSession {
        cancel: Some(&ctx.cancel),
        ..ViaSession::default()
    };
    let frozen = frozen_model.characterize_session(mc.trials, mc.seed, &mc.runtime, session)?;
    if frozen.report().cancelled {
        return None;
    }
    let ln = |xs: Vec<f64>| -> Vec<f64> {
        xs.into_iter()
            .map(|x| x.max(f64::MIN_POSITIVE).ln())
            .collect()
    };
    let lv = ln(varied.ttf_samples(FailureCriterion::OpenCircuit));
    let lf = ln(frozen.ttf_samples(FailureCriterion::OpenCircuit));
    let common = lv.len().min(lf.len());
    if common < 2 {
        return Some(VarianceDecomposition {
            total: 0.0,
            void: 0.0,
            environment: 0.0,
        });
    }
    Some(VarianceDecomposition::from_ln_samples(
        &lv[..common],
        &lf[..common],
    ))
}

fn run_analyze(job: &ResolvedAnalyze, ctx: &JobCtx, env: &RunEnv<'_>) -> JobOutcome<String> {
    let mc = &job.mc;
    // Materialize the grid.
    let ingest_start = Instant::now();
    let (netlist, deck_label) = match &job.deck {
        DeckSource::Benchmark(name) => {
            let spec = GridSpec::profile(name).unwrap_or_else(GridSpec::pg1);
            (spec.generate(), name.clone())
        }
        DeckSource::Netlist(text) => {
            let options = IngestOptions {
                limits: IngestLimits {
                    max_bytes: env.max_netlist_bytes,
                    max_lines: env.max_netlist_lines,
                },
                repair_vias: job.repair_vias,
            };
            match ingest(text, &options) {
                Ok(ok) => (ok.netlist, "inline".to_owned()),
                Err(e) => return JobOutcome::Failed(format!("netlist rejected: {e}")),
            }
        }
    };
    env.record_phase(ctx.id, "ingest", ingest_start);

    // Level 1: via-array characterization (deterministic, re-run in full on
    // resume — only the level-2 grid loop is checkpointed).
    let mut model =
        ViaArrayMc::from_reference_table(&mc.config, Technology::default(), mc.current_density);
    if let Some(v) = &mc.variation {
        model = model.with_variation(v.to_via());
    }
    let level1 = ViaSession {
        cancel: Some(&ctx.cancel),
        ..ViaSession::default()
    };
    let level1_start = Instant::now();
    let level1_outcome = model.characterize_session(mc.trials, mc.seed, &mc.runtime, level1);
    env.record_phase(ctx.id, "level1", level1_start);
    let Some(characterization) = level1_outcome else {
        return JobOutcome::Cancelled;
    };
    if characterization.report().cancelled {
        return JobOutcome::Cancelled;
    }
    let reliability = match characterization.reliability(mc.criterion) {
        Ok(r) => r,
        Err(e) => return JobOutcome::Failed(format!("level-1 fit failed: {e}")),
    };

    // Level 2: system Monte Carlo over the grid, checkpointed.
    let grid = match PowerGrid::from_netlist(netlist) {
        Ok(g) => g,
        Err(e) => return JobOutcome::Failed(format!("grid construction failed: {e}")),
    };
    let sites = grid.via_sites().len();

    // Optional prefilter: steady-state screening ranks every via array in
    // one linear-time pass, and the grid Monte Carlo then simulates only
    // the selected subset.
    let screen = match &job.screening {
        Some(s) => {
            let screen_start = Instant::now();
            let options = ScreenOptions {
                method: job.method,
                factor: job.factor,
                top_k: s.top_k,
                stress_threshold: s.stress_threshold,
                ..ScreenOptions::default()
            };
            let report = match screen_grid(&grid, &Technology::default(), &options) {
                Ok(report) => report,
                Err(e) => return JobOutcome::Failed(format!("screening failed: {e}")),
            };
            env.record_phase(ctx.id, "screen", screen_start);
            if report.selected_scores().is_empty() {
                return JobOutcome::Failed(
                    "screening selected no via arrays: stress_threshold excludes every site".into(),
                );
            }
            Some(report)
        }
        None => None,
    };

    let mut grid_mc = PowerGridMc::new(grid, reliability)
        .with_system_criterion(SystemCriterion::IrDropFraction(0.10))
        .with_factor_options(job.factor);
    if let Some(v) = &mc.variation {
        // Temperature enters the grid level as a first-order ln-TTF sigma
        // (Ea/(kB·T²)·σ_T); linewidth scales per-site current directly.
        grid_mc = grid_mc.with_variation(GridVariation {
            ttf_ln_sigma: v.to_via().grid_ttf_ln_sigma(&Technology::default()),
            linewidth_sigma: v.linewidth_sigma,
        });
    }
    if let Some(report) = &screen {
        grid_mc = grid_mc.with_active_sites(&report.selected_sites());
    }
    let resume = env
        .store
        .read_checkpoint(ctx.id)
        .and_then(|text| GridCheckpoint::decode(&text).ok());
    let mut on_checkpoint = |cp: &GridCheckpoint| {
        if env.store.write_checkpoint(ctx.id, &cp.encode()).is_ok() {
            ctx.note_checkpoint();
            Metrics::inc(&env.metrics.checkpoints);
        }
    };
    let session = GridSession {
        resume,
        cancel: Some(&ctx.cancel),
        checkpoint_every: env.checkpoint_every,
        on_checkpoint: Some(&mut on_checkpoint),
    };
    let level2_start = Instant::now();
    let level2_outcome =
        grid_mc.run_session(job.grid_trials, mc.seed ^ 0xc11, &mc.runtime, session);
    env.record_phase(ctx.id, "level2", level2_start);
    let result = match level2_outcome {
        Ok(r) => r,
        Err(e) => return JobOutcome::Failed(format!("grid Monte Carlo failed: {e}")),
    };
    if result.report().cancelled {
        return JobOutcome::Cancelled;
    }

    let critical = Json::Arr(
        result
            .critical_sites(5)
            .into_iter()
            .map(|(site, count)| Json::Arr(vec![Json::n(site as f64), Json::n(count as f64)]))
            .collect(),
    );
    let mut doc = vec![
        ("kind".into(), Json::s("analyze")),
        ("deck".into(), Json::s(deck_label)),
        ("array".into(), Json::s(&mc.array)),
        ("pattern".into(), Json::s(&mc.pattern)),
        ("criterion".into(), Json::s(&mc.criterion_label)),
        ("trials".into(), Json::n(mc.trials as f64)),
        ("grid_trials".into(), Json::n(job.grid_trials as f64)),
        ("seed".into(), Json::n(mc.seed as f64)),
        ("sites".into(), Json::n(sites as f64)),
    ];
    // Variation rides in its own block, like screening below; unvaried
    // documents keep their historical bytes.
    if let Some(v) = &mc.variation {
        let variance = if v.variance_analysis {
            match frozen_variance(&model, v, mc, ctx, &characterization) {
                Some(d) => Some(d),
                None => return JobOutcome::Cancelled,
            }
        } else {
            None
        };
        doc.push(("variation".into(), variation_doc(v, variance.as_ref())));
    }
    // Screened jobs record both the screen scores and the MC results in
    // one document; unscreened jobs keep their historical bytes.
    if let Some(report) = &screen {
        let scores = Json::Arr(
            report
                .selected_scores()
                .iter()
                .map(|s| {
                    Json::Obj(vec![
                        ("site".into(), Json::n(s.site as f64)),
                        ("name".into(), Json::s(&s.name)),
                        ("stress_pa".into(), Json::n(s.stress_pa)),
                        ("criticality".into(), Json::n(s.criticality)),
                        ("current_a".into(), Json::n(s.current_a)),
                    ])
                })
                .collect(),
        );
        doc.push((
            "screening".into(),
            Json::Obj(vec![
                ("trees".into(), Json::n(report.trees as f64)),
                (
                    "critical_stress_pa".into(),
                    Json::n(report.critical_stress_pa),
                ),
                (
                    "selected".into(),
                    Json::n(report.selected_scores().len() as f64),
                ),
                ("scores".into(), scores),
            ]),
        ));
    }
    doc.extend([
        (
            "grid_trials_run".into(),
            Json::n(result.report().trials_run as f64),
        ),
        ("ttf_median_years".into(), Json::n(result.median_years())),
        ("ttf_p03_years".into(), Json::n(result.worst_case_years())),
        ("mean_failures".into(), Json::n(result.mean_failures())),
        ("critical_sites".into(), critical),
    ]);
    JobOutcome::Done(Json::Obj(doc).to_string())
}

fn run_fea(job: &ResolvedFea, id: JobId, env: &RunEnv<'_>) -> JobOutcome<String> {
    let model = CharacterizationModel {
        pattern: job.intersection,
        array: job.geometry,
        resolution: job.resolution,
        ..CharacterizationModel::default()
    };
    let cache = if job.use_cache {
        match env.cache_dir {
            Some(dir) => Some(StressCache::new(dir)),
            None => StressCache::open_default(),
        }
    } else {
        None
    };
    let opts = FeaOptions {
        threads: job.threads,
        ordering: job.ordering,
        kernels: job.kernels,
        cache,
        ..FeaOptions::default()
    };
    let fea_start = Instant::now();
    let fea_outcome =
        StressTable::characterize_with_fea_opts(&[(model, LayerPair::IntermediateTop)], &opts);
    env.record_phase(id, "fea", fea_start);
    let (table, report) = match fea_outcome {
        Ok(out) => out,
        Err(e) => return JobOutcome::Failed(format!("FEA failed: {e}")),
    };
    let entry = &table.entries()[0];
    let prim = &report.primitives[0];
    let doc = Json::Obj(vec![
        ("kind".into(), Json::s("fea")),
        ("array".into(), Json::s(&job.array)),
        ("pattern".into(), Json::s(&job.pattern)),
        ("resolution".into(), Json::n(job.resolution)),
        ("rows".into(), Json::n(entry.rows as f64)),
        ("cols".into(), Json::n(entry.cols as f64)),
        ("unknowns".into(), Json::n(prim.unknowns as f64)),
        (
            "per_via_stress_mpa".into(),
            Json::Arr(
                entry
                    .per_via_stress
                    .iter()
                    .map(|s| Json::n(s / 1e6))
                    .collect(),
            ),
        ),
    ]);
    JobOutcome::Done(doc.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{JobBody, McParams, ScreeningSpec, SolverSpec};
    use emgrid_runtime::JobEngine;
    use std::time::Duration;

    fn temp_store(tag: &str) -> JobStore {
        let root = std::env::temp_dir().join(format!("emgrid-runner-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        JobStore::open(root).unwrap()
    }

    /// Runs a spec through a real engine (so a genuine JobCtx exists) and
    /// waits for the outcome.
    fn run_to_outcome(
        spec: JobSpec,
        store: &JobStore,
        checkpoint_every: usize,
    ) -> (u64, JobOutcome<String>) {
        let engine: JobEngine<String> = JobEngine::new(1, 4);
        let store2 = store.clone();
        let id = engine
            .submit(move |ctx| {
                let metrics = Metrics::default();
                let env = RunEnv {
                    store: &store2,
                    metrics: &metrics,
                    checkpoint_every,
                    cache_dir: None,
                    max_netlist_bytes: IngestLimits::default().max_bytes,
                    max_netlist_lines: IngestLimits::default().max_lines,
                    phases: None,
                };
                run_job(&spec, ctx, &env)
            })
            .unwrap();
        engine.wait_terminal(id, Duration::from_secs(120)).unwrap();
        let snap = engine.snapshot(id).unwrap();
        let outcome = match snap.result {
            Some(r) => JobOutcome::Done(r),
            None if snap.error.is_some() => JobOutcome::Failed(snap.error.unwrap()),
            None => JobOutcome::Cancelled,
        };
        (id, outcome)
    }

    fn characterize_spec(trials: usize, seed: u64, threads: usize) -> JobSpec {
        JobSpec::from(JobBody::Characterize(McParams {
            array: "4x4".into(),
            pattern: "plus".into(),
            criterion: "rinf".into(),
            trials,
            seed,
            threads,
            target_ci: None,
            current_density: None,
            variation: None,
        }))
    }

    #[test]
    fn characterize_result_is_thread_count_invariant() {
        let store = temp_store("char");
        let (_, one) = run_to_outcome(characterize_spec(96, 11, 1), &store, 0);
        let (_, two) = run_to_outcome(characterize_spec(96, 11, 3), &store, 0);
        let (JobOutcome::Done(a), JobOutcome::Done(b)) = (&one, &two) else {
            panic!("jobs failed: {one:?} / {two:?}");
        };
        assert_eq!(a, b, "thread count leaked into the result document");
        assert!(a.contains("\"kind\":\"characterize\""), "{a}");
        assert!(a.contains("\"trials_run\":96"), "{a}");
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn varied_characterize_reports_variance_and_stays_thread_invariant() {
        let store = temp_store("varied");
        let make = |threads: usize| {
            let mut spec = characterize_spec(64, 21, threads);
            let JobBody::Characterize(mc) = &mut spec.body else {
                unreachable!()
            };
            mc.variation = Some(crate::spec::VariationSpec {
                edge_current_factor: 0.4,
                temperature_sigma_c: 6.0,
                linewidth_sigma: 0.05,
                variance_analysis: true,
            });
            spec
        };
        let (_, one) = run_to_outcome(make(1), &store, 0);
        let (_, four) = run_to_outcome(make(4), &store, 0);
        let (JobOutcome::Done(a), JobOutcome::Done(b)) = (&one, &four) else {
            panic!("jobs failed: {one:?} / {four:?}");
        };
        assert_eq!(a, b, "thread count leaked into the varied result");
        assert!(
            a.contains("\"variation\":{\"edge_current_factor\":0.4"),
            "{a}"
        );
        assert!(a.contains("\"variance\":{\"total\":"), "{a}");
        assert!(a.contains("\"environment\":"), "{a}");
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn analyze_checkpoint_resume_reproduces_the_uninterrupted_result() {
        let deck =
            emgrid_spice::writer::write_string(&GridSpec::custom("runner-test", 8, 8).generate());
        let make_spec = |grid_trials: usize| {
            JobSpec::from(JobBody::Analyze {
                mc: McParams {
                    array: "4x4".into(),
                    pattern: "plus".into(),
                    criterion: "rinf".into(),
                    trials: 120,
                    seed: 9,
                    threads: 2,
                    target_ci: None,
                    current_density: None,
                    variation: None,
                },
                deck: DeckSource::Netlist(deck.clone()),
                grid_trials,
                repair_vias: None,
                screening: None,
                solver: SolverSpec::default(),
            })
        };

        // Reference: 40 grid trials straight through, no checkpointing.
        let store = temp_store("analyze");
        let (_, reference) = run_to_outcome(make_spec(40), &store, 0);
        let JobOutcome::Done(reference) = reference else {
            panic!("reference failed: {reference:?}")
        };

        // Interruption, constructed deterministically: an 8-trial run with
        // checkpoint cadence 8 leaves on disk exactly the checkpoint a
        // 40-trial run would have written at its first watermark (same
        // seed, and batch ends align to absolute trial-index multiples).
        let store2 = temp_store("analyze-resume");
        let (prefix_id, prefix) = run_to_outcome(make_spec(8), &store2, 8);
        assert!(matches!(prefix, JobOutcome::Done(_)), "{prefix:?}");
        assert!(
            store2.read_checkpoint(prefix_id).is_some(),
            "no checkpoint persisted"
        );

        // Resume: the full 40-trial spec under the same id finds the
        // watermark-8 checkpoint and must land on the reference bytes.
        let (resumed_id, resumed) = run_to_outcome(make_spec(40), &store2, 8);
        assert_eq!(resumed_id, prefix_id, "store keying broken");
        let JobOutcome::Done(resumed) = resumed else {
            panic!("resumed run failed: {resumed:?}")
        };
        assert_eq!(
            resumed, reference,
            "resumed run diverged from the uninterrupted reference"
        );
        let _ = std::fs::remove_dir_all(store.root());
        let _ = std::fs::remove_dir_all(store2.root());
    }

    #[test]
    fn a_pre_cancelled_job_reports_cancelled_without_output() {
        let store = temp_store("cancel");
        let engine: JobEngine<String> = JobEngine::new(1, 4);
        let spec = characterize_spec(5_000, 3, 1);
        let s = store.clone();
        let id = engine
            .submit(move |ctx| {
                // Trip the job's own token before running, modelling a
                // delete that raced submission.
                ctx.cancel.cancel();
                let metrics = Metrics::default();
                let env = RunEnv {
                    store: &s,
                    metrics: &metrics,
                    checkpoint_every: 0,
                    cache_dir: None,
                    max_netlist_bytes: IngestLimits::default().max_bytes,
                    max_netlist_lines: IngestLimits::default().max_lines,
                    phases: None,
                };
                run_job(&spec, ctx, &env)
            })
            .unwrap();
        engine.wait_terminal(id, Duration::from_secs(60)).unwrap();
        let snap = engine.snapshot(id).unwrap();
        assert!(snap.result.is_none(), "{snap:?}");
        assert!(snap.error.is_none(), "{snap:?}");
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn screened_analyze_records_scores_and_stays_byte_stable() {
        let store = temp_store("screened");
        let make = |screening: Option<ScreeningSpec>| {
            JobSpec::from(JobBody::Analyze {
                mc: McParams {
                    array: "4x4".into(),
                    pattern: "plus".into(),
                    criterion: "rinf".into(),
                    trials: 48,
                    seed: 7,
                    threads: 2,
                    target_ci: None,
                    current_density: None,
                    variation: None,
                },
                deck: DeckSource::Benchmark("pg1".into()),
                grid_trials: 10,
                repair_vias: None,
                screening,
                solver: SolverSpec::default(),
            })
        };
        let top6 = ScreeningSpec {
            top_k: Some(6),
            stress_threshold: None,
        };
        let (_, first) = run_to_outcome(make(Some(top6)), &store, 0);
        let JobOutcome::Done(first) = first else {
            panic!("screened job failed: {first:?}")
        };
        assert!(first.contains("\"screening\":{\"trees\":"), "{first}");
        assert!(first.contains("\"selected\":6"), "{first}");
        assert!(first.contains("\"stress_pa\":"), "{first}");
        assert!(first.contains("\"ttf_median_years\":"), "{first}");

        let (_, second) = run_to_outcome(make(Some(top6)), &store, 0);
        let JobOutcome::Done(second) = second else {
            panic!("rerun failed: {second:?}")
        };
        assert_eq!(first, second, "screened result document is not byte-stable");

        // A threshold no array can reach fails structurally instead of
        // running a Monte Carlo with nothing allowed to fail.
        let impossible = ScreeningSpec {
            top_k: None,
            stress_threshold: Some(1e30),
        };
        let (_, outcome) = run_to_outcome(make(Some(impossible)), &store, 0);
        let JobOutcome::Failed(message) = outcome else {
            panic!("expected failure, got {outcome:?}")
        };
        assert!(
            message.contains("screening selected no via arrays"),
            "{message}"
        );
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn bad_netlists_fail_with_structured_messages() {
        let store = temp_store("badnet");
        let spec = JobSpec::from(JobBody::Analyze {
            mc: McParams {
                array: "4x4".into(),
                pattern: "plus".into(),
                criterion: "rinf".into(),
                trials: 10,
                seed: 1,
                threads: 1,
                target_ci: None,
                current_density: None,
                variation: None,
            },
            deck: DeckSource::Netlist("R1 a b\n".into()),
            grid_trials: 5,
            repair_vias: None,
            screening: None,
            solver: SolverSpec::default(),
        });
        let (_, outcome) = run_to_outcome(spec, &store, 0);
        let JobOutcome::Failed(message) = outcome else {
            panic!("expected failure, got {outcome:?}")
        };
        assert!(message.contains("netlist rejected"), "{message}");
        let _ = std::fs::remove_dir_all(store.root());
    }
}
