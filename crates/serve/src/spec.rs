//! Job specifications: the JSON contract of `POST /v1/jobs`.
//!
//! A spec names one of three analyses — `characterize` (level-1 via-array
//! Monte Carlo), `analyze` (two-level system MC over a benchmark grid or
//! an uploaded SPICE netlist) or `fea` (finite-element stress
//! characterization of one primitive) — plus its technology knobs.
//! Parsing is strict: unknown keys, out-of-range budgets and malformed
//! values are all rejected with a [`SpecError`] naming the offending
//! field; the daemon renders it as a structured `400` body.
//!
//! [`JobSpec::to_json`] renders the *canonical* form with every default
//! materialized; that document is persisted as `spec.json` and is what a
//! restarted daemon re-parses, so a job resumes under exactly the
//! parameters it was accepted with even if the client omitted them.
//!
//! Label strings stay labels inside the spec; [`JobSpec::resolve`] turns
//! an accepted spec into the [`ResolvedJob`] a worker actually runs —
//! configurations, criteria, scheduler settings and the sparse-solver
//! [`FactorOptions`] — in one validated step.

use std::fmt;

use emgrid_fea::geometry::{IntersectionPattern, ViaArrayGeometry};
use emgrid_runtime::{EarlyStop, RuntimeConfig};
use emgrid_sparse::{FactorOptions, KernelBackend, Method, Ordering};
use emgrid_via::{FailureCriterion, Variation, ViaArrayConfig};

use crate::json::Json;

/// Hard budget ceilings; a daemon accepts work from the network and must
/// bound it.
const MAX_TRIALS: usize = 1_000_000;
const MAX_THREADS: usize = 64;

/// Reference current density for via-array characterization (A/m²) when a
/// spec does not set `current_density`, matching the CLI's
/// `characterize`/`analyze` commands and the paper's stress tables.
pub const REFERENCE_CURRENT_DENSITY: f64 = 1e10;

/// The spec schema version this daemon understands. A document may pin it
/// with a top-level `"schema"` key on job and sweep specs alike; absent
/// means version 1, and the canonical form materializes the key only when
/// the client sent it, so documents accepted before versioning existed
/// keep their exact bytes.
pub const SCHEMA_VERSION: u64 = 1;

/// A validation failure, phrased for the client and naming the field at
/// fault so a caller can highlight it without parsing prose.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecError {
    /// The offending spec field (dotted for nested keys, e.g.
    /// `solver.ordering`); `None` for document-level failures.
    pub field: Option<String>,
    /// Human-readable explanation.
    pub message: String,
}

impl SpecError {
    /// A failure attributed to one spec field.
    pub fn field(field: impl Into<String>, message: impl Into<String>) -> SpecError {
        SpecError {
            field: Some(field.into()),
            message: message.into(),
        }
    }

    /// A failure of the document as a whole (wrong shape, missing kind).
    pub fn document(message: impl Into<String>) -> SpecError {
        SpecError {
            field: None,
            message: message.into(),
        }
    }

    /// The structured `400` body: `{"error": ..., "field": ...}` with the
    /// `field` key omitted for document-level failures.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![("error".to_owned(), Json::s(&self.message))];
        if let Some(field) = &self.field {
            pairs.push(("field".into(), Json::s(field)));
        }
        Json::Obj(pairs)
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for SpecError {}

/// Monte Carlo parameters shared by `characterize` and `analyze`.
#[derive(Debug, Clone, PartialEq)]
pub struct McParams {
    /// Array label: `1x1`, `4x4` or `8x8`.
    pub array: String,
    /// Intersection pattern label: `plus`, `tee` or `ell`.
    pub pattern: String,
    /// Failure criterion label: `wl`, `r2x` or `rinf`.
    pub criterion: String,
    /// Level-1 trial budget.
    pub trials: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Worker threads inside the Monte Carlo scheduler.
    pub threads: usize,
    /// Optional early-stop target on the 95% CI half-width of mean ln TTF.
    pub target_ci: Option<f64>,
    /// Stress current density, A/m² (`None` = the reference
    /// [`REFERENCE_CURRENT_DENSITY`]). The sweep axis behind the paper's
    /// TTF-vs-j curves (Fig. 8).
    pub current_density: Option<f64>,
    /// Optional on-die variation block. `None` keeps the legacy
    /// single-stream Monte Carlo path bit-for-bit; any present block (even
    /// all-zero) switches the trial bodies onto named RNG sub-streams.
    pub variation: Option<VariationSpec>,
}

/// Where an `analyze` job's power grid comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum DeckSource {
    /// A built-in synthetic benchmark profile (see
    /// [`emgrid_spice::GridSpec::PROFILES`]): `pg1` through `pg1m`.
    Benchmark(String),
    /// An uploaded SPICE deck (screened by [`emgrid_spice::ingest`]).
    Netlist(String),
}

/// The `screening` block of an `analyze` spec: run the linear-time
/// steady-state EM prefilter first and hand the Monte Carlo only the
/// selected via arrays (filter-then-simulate). An empty block screens and
/// records scores without narrowing the working set.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ScreeningSpec {
    /// Simulate only the `k` highest-stress via arrays.
    pub top_k: Option<usize>,
    /// Simulate only arrays whose steady-state stress reaches this many
    /// Pa; combined with `top_k`, both must hold.
    pub stress_threshold: Option<f64>,
}

impl ScreeningSpec {
    fn to_json(self) -> Json {
        let mut pairs = Vec::new();
        if let Some(k) = self.top_k {
            pairs.push(("top_k".to_owned(), Json::n(k as f64)));
        }
        if let Some(s) = self.stress_threshold {
            pairs.push(("stress_threshold".to_owned(), Json::n(s)));
        }
        Json::Obj(pairs)
    }
}

/// The `variation` block shared by `characterize` and `analyze`: on-die
/// variation knobs for the Monte Carlo. All magnitudes default to zero; a
/// present-but-zero block still routes the trial bodies through the named
/// RNG sub-streams, which is what lets a frozen-fields companion run share
/// its void draws with a varied run trial for trial.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct VariationSpec {
    /// Extra current share for perimeter vias: weight `1 + f·sides` where
    /// `sides` counts the array edges a via touches (corners get 2).
    pub edge_current_factor: f64,
    /// Standard deviation of the spatially correlated temperature field,
    /// °C around the technology's nominal operating temperature.
    pub temperature_sigma_c: f64,
    /// Relative sigma of the spatially correlated linewidth field; current
    /// density scales as `1/(1 + σ·f)`.
    pub linewidth_sigma: f64,
    /// Run the frozen-fields companion Monte Carlo and report a TTF
    /// variance decomposition (total / void / environment) next to the
    /// mean and CI statistics.
    pub variance_analysis: bool,
}

impl VariationSpec {
    /// The level-1 variation model this block resolves to.
    pub fn to_via(self) -> Variation {
        Variation {
            edge_current_factor: self.edge_current_factor,
            temperature_sigma_c: self.temperature_sigma_c,
            linewidth_sigma: self.linewidth_sigma,
        }
    }

    fn to_json(self) -> Json {
        // Defaults are materialized: a present block is canonicalized in
        // full, mirroring `solver`; only the block itself is optional.
        Json::Obj(vec![
            (
                "edge_current_factor".to_owned(),
                Json::n(self.edge_current_factor),
            ),
            (
                "temperature_sigma_c".to_owned(),
                Json::n(self.temperature_sigma_c),
            ),
            ("linewidth_sigma".to_owned(), Json::n(self.linewidth_sigma)),
            (
                "variance_analysis".to_owned(),
                Json::Bool(self.variance_analysis),
            ),
        ])
    }
}

/// The `solver` block of an `analyze` spec: which sparse factorization
/// engine the grid solves run on. Maps onto [`FactorOptions`]; changes
/// wall time, never the statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolverSpec {
    /// Fill-reducing ordering: `natural`, `rcm`, `amd` or `nd`.
    pub ordering: Ordering,
    /// Whether the blocked supernodal numeric engine is used.
    pub supernodal: bool,
    /// Dense-panel microkernel backend: `auto`, `scalar` or `blocked`.
    /// Bit-identical results by contract, so this is purely a speed knob.
    pub kernels: KernelBackend,
    /// Linear-solve engine for whole-grid operating-point solves (the
    /// screening pass): `auto`, `direct` or `cg`. `auto` picks by problem
    /// size at run time.
    pub method: Method,
}

impl Default for SolverSpec {
    fn default() -> Self {
        SolverSpec {
            ordering: Ordering::Amd,
            supernodal: true,
            kernels: KernelBackend::Auto,
            method: Method::Auto,
        }
    }
}

impl SolverSpec {
    /// The factorization options this block resolves to. Solve threading
    /// stays at 1: the Monte Carlo scheduler already parallelizes across
    /// trials, so nested solver threads would only oversubscribe.
    pub fn factor_options(&self) -> FactorOptions {
        FactorOptions {
            ordering: self.ordering,
            supernodal: self.supernodal,
            threads: 1,
            kernels: self.kernels,
            ..FactorOptions::default()
        }
    }

    fn to_json(self) -> Json {
        let mut pairs = vec![
            ("ordering".into(), Json::s(self.ordering.label())),
            ("supernodal".into(), Json::Bool(self.supernodal)),
        ];
        // `auto` is the default and resolves at run time; materializing it
        // would pin old canonical documents to whatever backend `auto`
        // meant when they were accepted.
        if self.kernels != KernelBackend::Auto {
            pairs.push(("kernels".into(), Json::s(self.kernels.label())));
        }
        // Same rule for the solve method: `auto` resolves by problem size
        // at run time and stays implicit in canonical documents.
        if self.method != Method::Auto {
            pairs.push(("method".into(), Json::s(self.method.label())));
        }
        Json::Obj(pairs)
    }
}

/// One accepted unit of work: an optional explicit spec schema version
/// plus the job body.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// `Some(SCHEMA_VERSION)` when the document carried an explicit
    /// top-level `"schema"` key (materialized first in the canonical
    /// form); `None` means implicitly version 1 and keeps pre-versioning
    /// canonical documents byte-identical.
    pub schema: Option<u64>,
    /// Which analysis runs, and its knobs.
    pub body: JobBody,
}

impl From<JobBody> for JobSpec {
    /// Wraps a hand-built body under the implicit schema version, so its
    /// canonical form matches documents from before versioning existed.
    fn from(body: JobBody) -> JobSpec {
        JobSpec { schema: None, body }
    }
}

/// The job body: which of the three analyses runs.
#[derive(Debug, Clone, PartialEq)]
pub enum JobBody {
    /// Level-1 via-array TTF characterization.
    Characterize(McParams),
    /// Two-level system analysis of a power grid.
    Analyze {
        /// Shared MC parameters (level-1 budget in `mc.trials`).
        mc: McParams,
        /// The grid under analysis.
        deck: DeckSource,
        /// Level-2 (grid) trial budget.
        grid_trials: usize,
        /// Retrofit resistance for shorted vias, Ω (the paper's §5.2).
        repair_vias: Option<f64>,
        /// Optional steady-state EM screening prefilter.
        screening: Option<ScreeningSpec>,
        /// Sparse-solver selection for the grid solves.
        solver: SolverSpec,
    },
    /// Finite-element stress characterization of one primitive.
    Fea {
        /// Array label: `1x1`, `4x4` or `8x8`.
        array: String,
        /// Intersection pattern label.
        pattern: String,
        /// Mesh resolution, µm.
        resolution: f64,
        /// FEA solver threads.
        threads: usize,
        /// Whether to consult / populate the stress cache.
        use_cache: bool,
        /// Fill-reducing ordering for the stiffness factorization. The
        /// `solver` block of an `fea` spec accepts `ordering` and
        /// `kernels` but not `supernodal`: the stress cache keys on the
        /// ordering, and the microkernel backend is bit-identical by
        /// contract, so these are the solver knobs an `fea` job may vary
        /// without invalidating cached fields.
        ordering: Ordering,
        /// Dense-panel microkernel backend for the stiffness solves.
        /// Deliberately absent from the stress-cache key: every backend
        /// produces byte-identical fields.
        kernels: KernelBackend,
    },
}

/// A characterization spec resolved to runnable configuration.
#[derive(Debug, Clone)]
pub struct ResolvedMc {
    /// Array label, echoed into result documents.
    pub array: String,
    /// Pattern label, echoed into result documents.
    pub pattern: String,
    /// Criterion label, echoed into result documents.
    pub criterion_label: String,
    /// The paper's via-array configuration for the label pair.
    pub config: ViaArrayConfig,
    /// The failure criterion the labels name.
    pub criterion: FailureCriterion,
    /// Scheduler configuration (threads + optional early stop).
    pub runtime: RuntimeConfig,
    /// Level-1 trial budget.
    pub trials: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Stress current density, A/m² (defaults materialized).
    pub current_density: f64,
    /// On-die variation knobs, when the spec asked for them.
    pub variation: Option<VariationSpec>,
}

/// An `analyze` spec resolved to runnable configuration.
#[derive(Debug, Clone)]
pub struct ResolvedAnalyze {
    /// Level-1 configuration.
    pub mc: ResolvedMc,
    /// The grid under analysis.
    pub deck: DeckSource,
    /// Level-2 (grid) trial budget.
    pub grid_trials: usize,
    /// Retrofit resistance for shorted vias, Ω.
    pub repair_vias: Option<f64>,
    /// Screening prefilter parameters, if the spec asked for one.
    pub screening: Option<ScreeningSpec>,
    /// Factorization options for the grid solves.
    pub factor: FactorOptions,
    /// Operating-point solve engine for the screening pass.
    pub method: Method,
}

/// An `fea` spec resolved to runnable configuration.
#[derive(Debug, Clone)]
pub struct ResolvedFea {
    /// Array label, echoed into result documents.
    pub array: String,
    /// Pattern label, echoed into result documents.
    pub pattern: String,
    /// The FEA geometry for the array label.
    pub geometry: ViaArrayGeometry,
    /// The intersection pattern for the pattern label.
    pub intersection: IntersectionPattern,
    /// Mesh resolution, µm.
    pub resolution: f64,
    /// FEA solver threads.
    pub threads: usize,
    /// Whether to consult / populate the stress cache.
    pub use_cache: bool,
    /// Fill-reducing ordering for the stiffness factorization.
    pub ordering: Ordering,
    /// Dense-panel microkernel backend for the stiffness solves.
    pub kernels: KernelBackend,
}

/// What a worker actually runs: every label resolved, every knob typed.
#[derive(Debug, Clone)]
pub enum ResolvedJob {
    /// Level-1 via-array TTF characterization.
    Characterize(ResolvedMc),
    /// Two-level system analysis of a power grid.
    Analyze(ResolvedAnalyze),
    /// Finite-element stress characterization of one primitive.
    Fea(ResolvedFea),
}

impl JobSpec {
    /// The job kind label.
    pub fn kind(&self) -> &'static str {
        self.body.kind()
    }

    /// Parses and validates a client-submitted document.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] naming the offending field.
    pub fn from_json(doc: &Json) -> Result<JobSpec, SpecError> {
        let Json::Obj(_) = doc else {
            return Err(SpecError::document("spec must be a JSON object"));
        };
        let schema = get_schema(doc)?;
        let body = JobBody::from_json(doc)?;
        Ok(JobSpec { schema, body })
    }

    /// Renders the canonical form (defaults materialized, fixed key
    /// order). An explicit schema version renders first; an implicit one
    /// stays implicit, keeping pre-versioning documents byte-identical.
    pub fn to_json(&self) -> Json {
        let mut pairs = Vec::new();
        if self.schema.is_some() {
            pairs.push(("schema".to_owned(), Json::n(SCHEMA_VERSION as f64)));
        }
        self.body.push_pairs(&mut pairs);
        Json::Obj(pairs)
    }

    /// Resolves labels and knobs into the configuration a worker runs.
    ///
    /// Specs built by [`JobSpec::from_json`] always resolve; the
    /// fallible signature exists because specs can also be constructed
    /// directly, and a bad label must surface as a [`SpecError`] naming
    /// its field rather than silently falling back to a default.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] naming the unresolvable field.
    pub fn resolve(&self) -> Result<ResolvedJob, SpecError> {
        self.body.resolve()
    }
}

impl JobBody {
    /// The job kind label.
    pub fn kind(&self) -> &'static str {
        match self {
            JobBody::Characterize(_) => "characterize",
            JobBody::Analyze { .. } => "analyze",
            JobBody::Fea { .. } => "fea",
        }
    }

    fn from_json(doc: &Json) -> Result<JobBody, SpecError> {
        let kind =
            get_str(doc, "kind")?.ok_or_else(|| SpecError::field("kind", "missing `kind`"))?;
        match kind {
            "characterize" => {
                reject_unknown_keys(doc, &MC_KEYS)?;
                Ok(JobBody::Characterize(mc_params(doc)?))
            }
            "analyze" => {
                const ANALYZE_KEYS: [&str; 17] = [
                    "schema",
                    "kind",
                    "array",
                    "pattern",
                    "criterion",
                    "trials",
                    "seed",
                    "threads",
                    "target_ci",
                    "current_density",
                    "variation",
                    "grid_trials",
                    "benchmark",
                    "netlist",
                    "repair_vias",
                    "screening",
                    "solver",
                ];
                reject_unknown_keys(doc, &ANALYZE_KEYS)?;
                let mc = mc_params(doc)?;
                let deck = match (get_str(doc, "benchmark")?, get_str(doc, "netlist")?) {
                    (Some(_), Some(_)) => {
                        return Err(SpecError::document(
                            "give either `benchmark` or `netlist`, not both",
                        ))
                    }
                    (None, None) => {
                        return Err(SpecError::document(
                            "analyze needs `benchmark` or `netlist`",
                        ))
                    }
                    (Some(b), None) => {
                        if emgrid_spice::GridSpec::profile(b).is_none() {
                            return Err(SpecError::field(
                                "benchmark",
                                format!(
                                    "unknown benchmark `{b}` (expected pg1, pg2, pg5, pg100k or pg1m)"
                                ),
                            ));
                        }
                        DeckSource::Benchmark(b.to_owned())
                    }
                    (None, Some(n)) => DeckSource::Netlist(n.to_owned()),
                };
                let grid_trials = get_usize(doc, "grid_trials", 200, 1, MAX_TRIALS)?;
                let repair_vias = get_pos_f64(doc, "repair_vias")?;
                let screening = get_screening(doc)?;
                let solver = get_solver(doc, &ANALYZE_SOLVER)?;
                Ok(JobBody::Analyze {
                    mc,
                    deck,
                    grid_trials,
                    repair_vias,
                    screening,
                    solver,
                })
            }
            "fea" => {
                reject_unknown_keys(
                    doc,
                    &[
                        "schema",
                        "kind",
                        "array",
                        "pattern",
                        "resolution",
                        "threads",
                        "use_cache",
                        "solver",
                    ],
                )?;
                let array = get_array_label(doc)?;
                let pattern = get_pattern_label(doc)?;
                let resolution = match get_pos_f64(doc, "resolution")? {
                    None => 0.25,
                    Some(r) if (0.05..=5.0).contains(&r) => r,
                    Some(r) => {
                        return Err(SpecError::field(
                            "resolution",
                            format!("resolution {r} out of range [0.05, 5.0] um"),
                        ))
                    }
                };
                let threads = get_usize(doc, "threads", 1, 1, MAX_THREADS)?;
                let use_cache = match doc.get("use_cache") {
                    None => true,
                    Some(v) => v.as_bool().ok_or_else(|| {
                        SpecError::field("use_cache", "`use_cache` must be a boolean")
                    })?,
                };
                let solver = get_solver(doc, &FEA_SOLVER)?;
                let (ordering, kernels) = (solver.ordering, solver.kernels);
                Ok(JobBody::Fea {
                    array,
                    pattern,
                    resolution,
                    threads,
                    use_cache,
                    ordering,
                    kernels,
                })
            }
            other => Err(SpecError::field(
                "kind",
                format!("unknown kind `{other}` (expected characterize, analyze or fea)"),
            )),
        }
    }

    /// Appends the body's canonical key/value pairs in fixed order.
    fn push_pairs(&self, pairs: &mut Vec<(String, Json)>) {
        match self {
            JobBody::Characterize(mc) => {
                pairs.push(("kind".to_owned(), Json::s("characterize")));
                push_mc(pairs, mc);
            }
            JobBody::Analyze {
                mc,
                deck,
                grid_trials,
                repair_vias,
                screening,
                solver,
            } => {
                pairs.push(("kind".to_owned(), Json::s("analyze")));
                push_mc(pairs, mc);
                pairs.push(("grid_trials".into(), Json::n(*grid_trials as f64)));
                match deck {
                    DeckSource::Benchmark(b) => pairs.push(("benchmark".into(), Json::s(b))),
                    DeckSource::Netlist(n) => pairs.push(("netlist".into(), Json::s(n))),
                }
                if let Some(r) = repair_vias {
                    pairs.push(("repair_vias".into(), Json::n(*r)));
                }
                // Screening is opt-in; canonical documents from before the
                // prefilter existed must keep their bytes.
                if let Some(s) = screening {
                    pairs.push(("screening".into(), s.to_json()));
                }
                pairs.push(("solver".into(), solver.to_json()));
            }
            JobBody::Fea {
                array,
                pattern,
                resolution,
                threads,
                use_cache,
                ordering,
                kernels,
            } => {
                let mut solver = vec![("ordering".to_owned(), Json::s(ordering.label()))];
                // Same rule as `SolverSpec::to_json`: `auto` stays implicit.
                if *kernels != KernelBackend::Auto {
                    solver.push(("kernels".into(), Json::s(kernels.label())));
                }
                pairs.push(("kind".into(), Json::s("fea")));
                pairs.push(("array".into(), Json::s(array)));
                pairs.push(("pattern".into(), Json::s(pattern)));
                pairs.push(("resolution".into(), Json::n(*resolution)));
                pairs.push(("threads".into(), Json::n(*threads as f64)));
                pairs.push(("use_cache".into(), Json::Bool(*use_cache)));
                pairs.push(("solver".into(), Json::Obj(solver)));
            }
        }
    }

    fn resolve(&self) -> Result<ResolvedJob, SpecError> {
        match self {
            JobBody::Characterize(mc) => Ok(ResolvedJob::Characterize(resolve_mc(mc)?)),
            JobBody::Analyze {
                mc,
                deck,
                grid_trials,
                repair_vias,
                screening,
                solver,
            } => Ok(ResolvedJob::Analyze(ResolvedAnalyze {
                mc: resolve_mc(mc)?,
                deck: deck.clone(),
                grid_trials: *grid_trials,
                repair_vias: *repair_vias,
                screening: *screening,
                factor: solver.factor_options(),
                method: solver.method,
            })),
            JobBody::Fea {
                array,
                pattern,
                resolution,
                threads,
                use_cache,
                ordering,
                kernels,
            } => Ok(ResolvedJob::Fea(ResolvedFea {
                array: array.clone(),
                pattern: pattern.clone(),
                geometry: geometry_of(array)?,
                intersection: pattern_of(pattern)?,
                resolution: *resolution,
                threads: *threads,
                use_cache: *use_cache,
                ordering: *ordering,
                kernels: *kernels,
            })),
        }
    }
}

fn resolve_mc(mc: &McParams) -> Result<ResolvedMc, SpecError> {
    let intersection = pattern_of(&mc.pattern)?;
    let config = match mc.array.as_str() {
        "1x1" => ViaArrayConfig::paper_1x1(intersection),
        "4x4" => ViaArrayConfig::paper_4x4(intersection),
        "8x8" => ViaArrayConfig::paper_8x8(intersection),
        other => {
            return Err(SpecError::field(
                "array",
                format!("unknown array `{other}` (expected 1x1, 4x4 or 8x8)"),
            ))
        }
    };
    let criterion = match mc.criterion.as_str() {
        "wl" => FailureCriterion::WeakestLink,
        "r2x" => FailureCriterion::ResistanceRatio(2.0),
        "rinf" => FailureCriterion::OpenCircuit,
        other => {
            return Err(SpecError::field(
                "criterion",
                format!("unknown criterion `{other}` (expected wl, r2x or rinf)"),
            ))
        }
    };
    let mut runtime = RuntimeConfig::threaded(mc.threads);
    if let Some(hw) = mc.target_ci {
        runtime = runtime.with_early_stop(EarlyStop::to_half_width(hw));
    }
    Ok(ResolvedMc {
        array: mc.array.clone(),
        pattern: mc.pattern.clone(),
        criterion_label: mc.criterion.clone(),
        config,
        criterion,
        runtime,
        trials: mc.trials,
        seed: mc.seed,
        current_density: mc.current_density.unwrap_or(REFERENCE_CURRENT_DENSITY),
        variation: mc.variation,
    })
}

fn geometry_of(array: &str) -> Result<ViaArrayGeometry, SpecError> {
    match array {
        "1x1" => Ok(ViaArrayGeometry::paper_1x1()),
        "4x4" => Ok(ViaArrayGeometry::paper_4x4()),
        "8x8" => Ok(ViaArrayGeometry::paper_8x8()),
        other => Err(SpecError::field(
            "array",
            format!("unknown array `{other}` (expected 1x1, 4x4 or 8x8)"),
        )),
    }
}

fn pattern_of(pattern: &str) -> Result<IntersectionPattern, SpecError> {
    match pattern {
        "plus" => Ok(IntersectionPattern::Plus),
        "tee" => Ok(IntersectionPattern::Tee),
        "ell" => Ok(IntersectionPattern::Ell),
        other => Err(SpecError::field(
            "pattern",
            format!("unknown pattern `{other}` (expected plus, tee or ell)"),
        )),
    }
}

const MC_KEYS: [&str; 11] = [
    "schema",
    "kind",
    "array",
    "pattern",
    "criterion",
    "trials",
    "seed",
    "threads",
    "target_ci",
    "current_density",
    "variation",
];

fn push_mc(pairs: &mut Vec<(String, Json)>, mc: &McParams) {
    pairs.push(("array".into(), Json::s(&mc.array)));
    pairs.push(("pattern".into(), Json::s(&mc.pattern)));
    pairs.push(("criterion".into(), Json::s(&mc.criterion)));
    pairs.push(("trials".into(), Json::n(mc.trials as f64)));
    pairs.push(("seed".into(), Json::n(mc.seed as f64)));
    pairs.push(("threads".into(), Json::n(mc.threads as f64)));
    if let Some(ci) = mc.target_ci {
        pairs.push(("target_ci".into(), Json::n(ci)));
    }
    // Emitted only when set: older canonical spec documents (and their
    // byte-exact tests) predate the key and must keep re-parsing.
    if let Some(j) = mc.current_density {
        pairs.push(("current_density".into(), Json::n(j)));
    }
    // Same rule: the block is materialized only when the client asked for
    // variation, so unvaried documents keep their bytes.
    if let Some(v) = mc.variation {
        pairs.push(("variation".into(), v.to_json()));
    }
}

fn mc_params(doc: &Json) -> Result<McParams, SpecError> {
    Ok(McParams {
        array: get_array_label(doc)?,
        pattern: get_pattern_label(doc)?,
        criterion: {
            let c = get_str(doc, "criterion")?.unwrap_or("rinf");
            if !matches!(c, "wl" | "r2x" | "rinf") {
                return Err(SpecError::field(
                    "criterion",
                    format!("unknown criterion `{c}` (expected wl, r2x or rinf)"),
                ));
            }
            c.to_owned()
        },
        trials: get_usize(doc, "trials", 2000, 1, MAX_TRIALS)?,
        seed: get_u64(doc, "seed", 1)?,
        threads: get_usize(doc, "threads", 1, 1, MAX_THREADS)?,
        // Positivity and finiteness are enforced by get_pos_f64.
        target_ci: get_pos_f64(doc, "target_ci")?,
        current_density: get_pos_f64(doc, "current_density")?,
        variation: get_variation(doc)?,
    })
}

/// Parses the optional top-level `schema` key shared by every spec kind.
fn get_schema(doc: &Json) -> Result<Option<u64>, SpecError> {
    match doc.get("schema") {
        None => Ok(None),
        Some(v) => {
            let n = v.as_u64().ok_or_else(|| {
                SpecError::field("schema", "`schema` must be a non-negative integer")
            })?;
            if n != SCHEMA_VERSION {
                return Err(SpecError::field(
                    "schema",
                    format!("unsupported spec schema {n} (supported: {SCHEMA_VERSION})"),
                ));
            }
            Ok(Some(n))
        }
    }
}

/// Parses the optional `variation` block of a `characterize` or `analyze`
/// spec.
fn get_variation(doc: &Json) -> Result<Option<VariationSpec>, SpecError> {
    let Some(block) = doc.get("variation") else {
        return Ok(None);
    };
    let Json::Obj(pairs) = block else {
        return Err(SpecError::field(
            "variation",
            "`variation` must be an object",
        ));
    };
    let mut variation = VariationSpec::default();
    for (key, value) in pairs {
        match key.as_str() {
            "edge_current_factor" => {
                variation.edge_current_factor = variation_magnitude(key, value, 10.0)?
            }
            "temperature_sigma_c" => {
                variation.temperature_sigma_c = variation_magnitude(key, value, 100.0)?
            }
            "linewidth_sigma" => variation.linewidth_sigma = variation_magnitude(key, value, 0.5)?,
            "variance_analysis" => {
                variation.variance_analysis = value.as_bool().ok_or_else(|| {
                    SpecError::field(
                        "variation.variance_analysis",
                        "`variation.variance_analysis` must be a boolean",
                    )
                })?
            }
            other => {
                return Err(SpecError::field(
                    format!("variation.{other}"),
                    format!("unknown key `variation.{other}`"),
                ))
            }
        }
    }
    Ok(Some(variation))
}

/// A non-negative, bounded variation magnitude; zero is meaningful (the
/// sub-stream layout without the perturbation).
fn variation_magnitude(key: &str, value: &Json, max: f64) -> Result<f64, SpecError> {
    let v = value.as_f64().ok_or_else(|| {
        SpecError::field(
            format!("variation.{key}"),
            format!("`variation.{key}` must be a number"),
        )
    })?;
    if !v.is_finite() || !(0.0..=max).contains(&v) {
        return Err(SpecError::field(
            format!("variation.{key}"),
            format!("`variation.{key}` = {v} out of range [0, {max}]"),
        ));
    }
    Ok(v)
}

fn get_array_label(doc: &Json) -> Result<String, SpecError> {
    let a = get_str(doc, "array")?.unwrap_or("4x4");
    if !matches!(a, "1x1" | "4x4" | "8x8") {
        return Err(SpecError::field(
            "array",
            format!("unknown array `{a}` (expected 1x1, 4x4 or 8x8)"),
        ));
    }
    Ok(a.to_owned())
}

fn get_pattern_label(doc: &Json) -> Result<String, SpecError> {
    let p = get_str(doc, "pattern")?.unwrap_or("plus");
    if !matches!(p, "plus" | "tee" | "ell") {
        return Err(SpecError::field(
            "pattern",
            format!("unknown pattern `{p}` (expected plus, tee or ell)"),
        ));
    }
    Ok(p.to_owned())
}

/// Which `solver` keys one spec kind exposes; the one shared sub-parser
/// below serves every kind with a solver block.
struct SolverProfile {
    /// Whether the supernode toggle may vary per job.
    supernodal: bool,
    /// Whether the operating-point solve `method` (the screening pass's
    /// engine) may be set.
    method: bool,
    /// Appended to unknown-or-disallowed-key messages to say why.
    rejection_note: &'static str,
}

/// `analyze` exposes every solver knob, including the screening pass's
/// operating-point `method`.
const ANALYZE_SOLVER: SolverProfile = SolverProfile {
    supernodal: true,
    method: true,
    rejection_note: "",
};

/// `fea` exposes only `ordering` and `kernels`: the stress cache keys on
/// the ordering alone, so only knobs that cannot change cached fields may
/// vary per job.
const FEA_SOLVER: SolverProfile = SolverProfile {
    supernodal: false,
    method: false,
    rejection_note: " (fea accepts only `ordering` and `kernels`)",
};

/// Parses a `solver` block under the given profile. Every spec kind's
/// solver block funnels through here, so `solver.<field>` attribution and
/// label vocabularies stay identical across kinds.
fn get_solver(doc: &Json, profile: &SolverProfile) -> Result<SolverSpec, SpecError> {
    let Some(block) = doc.get("solver") else {
        return Ok(SolverSpec::default());
    };
    let Json::Obj(pairs) = block else {
        return Err(SpecError::field("solver", "`solver` must be an object"));
    };
    let mut solver = SolverSpec::default();
    for (key, value) in pairs {
        match key.as_str() {
            "ordering" => solver.ordering = parse_ordering(value)?,
            "supernodal" if profile.supernodal => {
                solver.supernodal = value.as_bool().ok_or_else(|| {
                    SpecError::field("solver.supernodal", "`solver.supernodal` must be a boolean")
                })?
            }
            "kernels" => solver.kernels = parse_kernels(value)?,
            "method" if profile.method => solver.method = parse_method(value)?,
            other => {
                return Err(SpecError::field(
                    format!("solver.{other}"),
                    format!("unknown key `solver.{other}`{}", profile.rejection_note),
                ))
            }
        }
    }
    Ok(solver)
}

/// Parses the optional `screening` block of an `analyze` spec.
fn get_screening(doc: &Json) -> Result<Option<ScreeningSpec>, SpecError> {
    let Some(block) = doc.get("screening") else {
        return Ok(None);
    };
    let Json::Obj(pairs) = block else {
        return Err(SpecError::field(
            "screening",
            "`screening` must be an object",
        ));
    };
    let mut screening = ScreeningSpec::default();
    for (key, value) in pairs {
        match key.as_str() {
            "top_k" => {
                let k = value.as_u64().ok_or_else(|| {
                    SpecError::field(
                        "screening.top_k",
                        "`screening.top_k` must be a positive integer",
                    )
                })?;
                if k == 0 {
                    return Err(SpecError::field(
                        "screening.top_k",
                        "`screening.top_k` must be at least 1",
                    ));
                }
                screening.top_k = Some(usize::try_from(k).map_err(|_| {
                    SpecError::field("screening.top_k", "`screening.top_k` too large")
                })?);
            }
            "stress_threshold" => {
                let s = value.as_f64().ok_or_else(|| {
                    SpecError::field(
                        "screening.stress_threshold",
                        "`screening.stress_threshold` must be a number (Pa)",
                    )
                })?;
                if !s.is_finite() || s <= 0.0 {
                    return Err(SpecError::field(
                        "screening.stress_threshold",
                        "`screening.stress_threshold` must be positive",
                    ));
                }
                screening.stress_threshold = Some(s);
            }
            other => {
                return Err(SpecError::field(
                    format!("screening.{other}"),
                    format!("unknown key `screening.{other}`"),
                ))
            }
        }
    }
    Ok(Some(screening))
}

fn parse_ordering(value: &Json) -> Result<Ordering, SpecError> {
    let s = value
        .as_str()
        .ok_or_else(|| SpecError::field("solver.ordering", "`solver.ordering` must be a string"))?;
    Ordering::parse(s).ok_or_else(|| {
        SpecError::field(
            "solver.ordering",
            format!("unknown ordering `{s}` (expected natural, rcm, amd or nd)"),
        )
    })
}

fn parse_method(value: &Json) -> Result<Method, SpecError> {
    let s = value
        .as_str()
        .ok_or_else(|| SpecError::field("solver.method", "`solver.method` must be a string"))?;
    Method::parse(s).ok_or_else(|| {
        SpecError::field(
            "solver.method",
            format!("unknown method `{s}` (expected auto, direct or cg)"),
        )
    })
}

fn parse_kernels(value: &Json) -> Result<KernelBackend, SpecError> {
    let s = value
        .as_str()
        .ok_or_else(|| SpecError::field("solver.kernels", "`solver.kernels` must be a string"))?;
    KernelBackend::parse(s).ok_or_else(|| {
        SpecError::field(
            "solver.kernels",
            format!("unknown kernel backend `{s}` (expected auto, scalar or blocked)"),
        )
    })
}

fn get_str<'a>(doc: &'a Json, key: &str) -> Result<Option<&'a str>, SpecError> {
    match doc.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_str()
            .map(Some)
            .ok_or_else(|| SpecError::field(key, format!("`{key}` must be a string"))),
    }
}

fn get_usize(
    doc: &Json,
    key: &str,
    default: usize,
    min: usize,
    max: usize,
) -> Result<usize, SpecError> {
    let v = match doc.get(key) {
        None => return Ok(default),
        Some(v) => v.as_u64().ok_or_else(|| {
            SpecError::field(key, format!("`{key}` must be a non-negative integer"))
        })?,
    };
    let v = usize::try_from(v).map_err(|_| SpecError::field(key, format!("`{key}` too large")))?;
    if v < min || v > max {
        return Err(SpecError::field(
            key,
            format!("`{key}` = {v} out of range [{min}, {max}]"),
        ));
    }
    Ok(v)
}

fn get_u64(doc: &Json, key: &str, default: u64) -> Result<u64, SpecError> {
    match doc.get(key) {
        None => Ok(default),
        Some(v) => v.as_u64().ok_or_else(|| {
            SpecError::field(key, format!("`{key}` must be a non-negative integer"))
        }),
    }
}

fn get_pos_f64(doc: &Json, key: &str) -> Result<Option<f64>, SpecError> {
    match doc.get(key) {
        None => Ok(None),
        Some(v) => {
            let v = v
                .as_f64()
                .ok_or_else(|| SpecError::field(key, format!("`{key}` must be a number")))?;
            if !v.is_finite() || v <= 0.0 {
                return Err(SpecError::field(key, format!("`{key}` must be positive")));
            }
            Ok(Some(v))
        }
    }
}

fn reject_unknown_keys(doc: &Json, allowed: &[&str]) -> Result<(), SpecError> {
    let Json::Obj(pairs) = doc else {
        return Ok(());
    };
    for (key, _) in pairs {
        if !allowed.contains(&key.as_str()) {
            return Err(SpecError::field(key, format!("unknown key `{key}`")));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn spec(text: &str) -> Result<JobSpec, SpecError> {
        JobSpec::from_json(&json::parse(text).unwrap())
    }

    #[test]
    fn characterize_defaults_are_materialized() {
        let s = spec(r#"{"kind":"characterize"}"#).unwrap();
        let JobBody::Characterize(mc) = &s.body else {
            panic!("wrong kind")
        };
        assert_eq!(
            (
                mc.array.as_str(),
                mc.pattern.as_str(),
                mc.criterion.as_str()
            ),
            ("4x4", "plus", "rinf")
        );
        assert_eq!((mc.trials, mc.seed, mc.threads), (2000, 1, 1));
        assert_eq!(
            s.to_json().to_string(),
            r#"{"kind":"characterize","array":"4x4","pattern":"plus","criterion":"rinf","trials":2000,"seed":1,"threads":1}"#
        );
        // The canonical form re-parses to the same spec.
        assert_eq!(spec(&s.to_json().to_string()).unwrap(), s);
    }

    #[test]
    fn analyze_requires_exactly_one_deck_source() {
        assert!(spec(r#"{"kind":"analyze"}"#).is_err());
        assert!(spec(r#"{"kind":"analyze","benchmark":"pg1","netlist":"R1 a 0 1"}"#).is_err());
        assert!(spec(r#"{"kind":"analyze","benchmark":"pg9"}"#).is_err());
        let s = spec(r#"{"kind":"analyze","benchmark":"pg1","grid_trials":50,"repair_vias":0.5}"#)
            .unwrap();
        let JobBody::Analyze {
            deck,
            grid_trials,
            repair_vias,
            ..
        } = &s.body
        else {
            panic!("wrong kind")
        };
        assert_eq!(deck, &DeckSource::Benchmark("pg1".into()));
        assert_eq!(*grid_trials, 50);
        assert_eq!(*repair_vias, Some(0.5));
        assert_eq!(spec(&s.to_json().to_string()).unwrap(), s);
    }

    #[test]
    fn analyze_canonical_form_materializes_the_solver_block() {
        let s = spec(r#"{"kind":"analyze","benchmark":"pg2","grid_trials":10}"#).unwrap();
        assert_eq!(
            s.to_json().to_string(),
            r#"{"kind":"analyze","array":"4x4","pattern":"plus","criterion":"rinf","trials":2000,"seed":1,"threads":1,"grid_trials":10,"benchmark":"pg2","solver":{"ordering":"amd","supernodal":true}}"#
        );
        assert_eq!(spec(&s.to_json().to_string()).unwrap(), s);
    }

    #[test]
    fn solver_block_round_trips_and_names_bad_nested_fields() {
        let s = spec(
            r#"{"kind":"analyze","benchmark":"pg1","solver":{"ordering":"rcm","supernodal":false}}"#,
        )
        .unwrap();
        let ResolvedJob::Analyze(a) = s.resolve().unwrap() else {
            panic!("wrong kind")
        };
        assert_eq!(a.factor.ordering, Ordering::Rcm);
        assert!(!a.factor.supernodal);
        assert_eq!(a.factor.threads, 1);
        assert_eq!(spec(&s.to_json().to_string()).unwrap(), s);

        let e = spec(r#"{"kind":"analyze","benchmark":"pg1","solver":{"ordering":"best"}}"#)
            .unwrap_err();
        assert_eq!(e.field.as_deref(), Some("solver.ordering"));
        let e =
            spec(r#"{"kind":"analyze","benchmark":"pg1","solver":{"supernodal":3}}"#).unwrap_err();
        assert_eq!(e.field.as_deref(), Some("solver.supernodal"));
        let e = spec(r#"{"kind":"analyze","benchmark":"pg1","solver":{"threads":2}}"#).unwrap_err();
        assert_eq!(e.field.as_deref(), Some("solver.threads"));
        let e = spec(r#"{"kind":"analyze","benchmark":"pg1","solver":{"kernels":"simd"}}"#)
            .unwrap_err();
        assert_eq!(e.field.as_deref(), Some("solver.kernels"));
        let e = spec(r#"{"kind":"analyze","benchmark":"pg1","solver":"amd"}"#).unwrap_err();
        assert_eq!(e.field.as_deref(), Some("solver"));
        // `characterize` has no grid solves to steer; the key is unknown.
        assert!(spec(r#"{"kind":"characterize","solver":{"ordering":"amd"}}"#).is_err());
    }

    #[test]
    fn screening_block_round_trips_and_validates() {
        let s = spec(
            r#"{"kind":"analyze","benchmark":"pg5","screening":{"top_k":100,"stress_threshold":50000000}}"#,
        )
        .unwrap();
        let ResolvedJob::Analyze(a) = s.resolve().unwrap() else {
            panic!("wrong kind")
        };
        assert_eq!(
            a.screening,
            Some(ScreeningSpec {
                top_k: Some(100),
                stress_threshold: Some(5e7),
            })
        );
        assert_eq!(
            s.to_json().to_string(),
            r#"{"kind":"analyze","array":"4x4","pattern":"plus","criterion":"rinf","trials":2000,"seed":1,"threads":1,"grid_trials":200,"benchmark":"pg5","screening":{"top_k":100,"stress_threshold":50000000},"solver":{"ordering":"amd","supernodal":true}}"#
        );
        assert_eq!(spec(&s.to_json().to_string()).unwrap(), s);

        // An empty block is valid: screen and record, select everything.
        let s = spec(r#"{"kind":"analyze","benchmark":"pg1","screening":{}}"#).unwrap();
        let ResolvedJob::Analyze(a) = s.resolve().unwrap() else {
            panic!("wrong kind")
        };
        assert_eq!(a.screening, Some(ScreeningSpec::default()));
        assert!(s.to_json().to_string().contains(r#""screening":{}"#));
        assert_eq!(spec(&s.to_json().to_string()).unwrap(), s);

        // Absent: canonical form omits the key entirely.
        let s = spec(r#"{"kind":"analyze","benchmark":"pg1"}"#).unwrap();
        assert!(!s.to_json().to_string().contains("screening"));

        for (bad, field) in [
            (
                r#"{"kind":"analyze","benchmark":"pg1","screening":7}"#,
                "screening",
            ),
            (
                r#"{"kind":"analyze","benchmark":"pg1","screening":{"top_k":0}}"#,
                "screening.top_k",
            ),
            (
                r#"{"kind":"analyze","benchmark":"pg1","screening":{"top_k":2.5}}"#,
                "screening.top_k",
            ),
            (
                r#"{"kind":"analyze","benchmark":"pg1","screening":{"stress_threshold":-1}}"#,
                "screening.stress_threshold",
            ),
            (
                r#"{"kind":"analyze","benchmark":"pg1","screening":{"mode":"fast"}}"#,
                "screening.mode",
            ),
            (r#"{"kind":"characterize","screening":{}}"#, "screening"),
        ] {
            let e = spec(bad).unwrap_err();
            assert_eq!(e.field.as_deref(), Some(field), "{bad}");
        }
    }

    #[test]
    fn solver_method_round_trips_and_stays_implicit_when_auto() {
        let s = spec(r#"{"kind":"analyze","benchmark":"pg1","solver":{"method":"cg"}}"#).unwrap();
        let ResolvedJob::Analyze(a) = s.resolve().unwrap() else {
            panic!("wrong kind")
        };
        assert_eq!(a.method, Method::Cg);
        assert!(s.to_json().to_string().contains(r#""method":"cg""#));
        assert_eq!(spec(&s.to_json().to_string()).unwrap(), s);

        // `auto` is the default and never materialized.
        let s = spec(r#"{"kind":"analyze","benchmark":"pg1","solver":{"method":"auto"}}"#).unwrap();
        assert!(!s.to_json().to_string().contains("method"));
        let ResolvedJob::Analyze(a) = s.resolve().unwrap() else {
            panic!("wrong kind")
        };
        assert_eq!(a.method, Method::Auto);

        let e =
            spec(r#"{"kind":"analyze","benchmark":"pg1","solver":{"method":"gpu"}}"#).unwrap_err();
        assert_eq!(e.field.as_deref(), Some("solver.method"));
    }

    #[test]
    fn nd_ordering_and_chip_scale_benchmarks_are_accepted() {
        let s = spec(
            r#"{"kind":"analyze","benchmark":"pg1m","screening":{"top_k":64},"solver":{"ordering":"nd"}}"#,
        )
        .unwrap();
        let ResolvedJob::Analyze(a) = s.resolve().unwrap() else {
            panic!("wrong kind")
        };
        assert_eq!(a.factor.ordering, Ordering::Nd);
        assert_eq!(a.deck, DeckSource::Benchmark("pg1m".into()));
        assert_eq!(spec(&s.to_json().to_string()).unwrap(), s);
        assert!(spec(r#"{"kind":"analyze","benchmark":"pg100k"}"#).is_ok());
        assert!(spec(r#"{"kind":"fea","solver":{"ordering":"nd"}}"#).is_ok());
        let e = spec(r#"{"kind":"analyze","benchmark":"pg9"}"#).unwrap_err();
        assert!(e.message.contains("pg100k"), "{}", e.message);
    }

    #[test]
    fn fea_solver_block_accepts_ordering_and_kernels() {
        let s = spec(r#"{"kind":"fea","solver":{"ordering":"natural"}}"#).unwrap();
        let ResolvedJob::Fea(f) = s.resolve().unwrap() else {
            panic!("wrong kind")
        };
        assert_eq!(f.ordering, Ordering::Natural);
        assert_eq!(f.kernels, KernelBackend::Auto);
        assert_eq!(
            s.to_json().to_string(),
            r#"{"kind":"fea","array":"4x4","pattern":"plus","resolution":0.25,"threads":1,"use_cache":true,"solver":{"ordering":"natural"}}"#
        );
        assert_eq!(spec(&s.to_json().to_string()).unwrap(), s);
        // The supernode toggle is not part of the stress-cache key, so an
        // fea spec may not set it.
        let e = spec(r#"{"kind":"fea","solver":{"supernodal":false}}"#).unwrap_err();
        assert_eq!(e.field.as_deref(), Some("solver.supernodal"));
    }

    #[test]
    fn kernels_key_round_trips_and_stays_implicit_when_auto() {
        // An explicit non-default backend is materialized in canonical form.
        let s = spec(r#"{"kind":"fea","solver":{"kernels":"scalar"}}"#).unwrap();
        let ResolvedJob::Fea(f) = s.resolve().unwrap() else {
            panic!("wrong kind")
        };
        assert_eq!(f.kernels, KernelBackend::Scalar);
        assert_eq!(
            s.to_json().to_string(),
            r#"{"kind":"fea","array":"4x4","pattern":"plus","resolution":0.25,"threads":1,"use_cache":true,"solver":{"ordering":"amd","kernels":"scalar"}}"#
        );
        assert_eq!(spec(&s.to_json().to_string()).unwrap(), s);

        // Same for the analyze solver block; `auto` is never emitted.
        let s =
            spec(r#"{"kind":"analyze","benchmark":"pg1","solver":{"kernels":"blocked"}}"#).unwrap();
        let ResolvedJob::Analyze(a) = s.resolve().unwrap() else {
            panic!("wrong kind")
        };
        assert_eq!(a.factor.kernels, KernelBackend::Blocked);
        assert!(s.to_json().to_string().contains(r#""kernels":"blocked""#));
        assert_eq!(spec(&s.to_json().to_string()).unwrap(), s);
        let e = spec(r#"{"kind":"fea","solver":{"kernels":"avx"}}"#).unwrap_err();
        assert_eq!(e.field.as_deref(), Some("solver.kernels"));
    }

    #[test]
    fn fea_round_trips_and_bounds_resolution() {
        let s = spec(r#"{"kind":"fea","array":"1x1","resolution":0.5,"use_cache":false}"#).unwrap();
        assert_eq!(spec(&s.to_json().to_string()).unwrap(), s);
        assert!(spec(r#"{"kind":"fea","resolution":0.001}"#).is_err());
        assert!(spec(r#"{"kind":"fea","resolution":-1}"#).is_err());
    }

    #[test]
    fn strict_validation_rejects_bad_fields() {
        for bad in [
            r#"[1,2]"#,
            r#"{"trials":10}"#,
            r#"{"kind":"mine"}"#,
            r#"{"kind":"characterize","typo":1}"#,
            r#"{"kind":"characterize","array":"2x2"}"#,
            r#"{"kind":"characterize","pattern":"round"}"#,
            r#"{"kind":"characterize","criterion":"best"}"#,
            r#"{"kind":"characterize","trials":0}"#,
            r#"{"kind":"characterize","trials":10000000}"#,
            r#"{"kind":"characterize","trials":2.5}"#,
            r#"{"kind":"characterize","seed":-1}"#,
            r#"{"kind":"characterize","threads":100}"#,
            r#"{"kind":"characterize","target_ci":0}"#,
            r#"{"kind":"analyze","benchmark":"pg1","repair_vias":-0.5}"#,
        ] {
            assert!(spec(bad).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn spec_errors_name_the_offending_field() {
        for (bad, field) in [
            (r#"{"trials":10}"#, Some("kind")),
            (r#"{"kind":"mine"}"#, Some("kind")),
            (r#"{"kind":"characterize","typo":1}"#, Some("typo")),
            (r#"{"kind":"characterize","array":"2x2"}"#, Some("array")),
            (r#"{"kind":"characterize","trials":0}"#, Some("trials")),
            (
                r#"{"kind":"characterize","target_ci":0}"#,
                Some("target_ci"),
            ),
            (r#"{"kind":"analyze","benchmark":"pg9"}"#, Some("benchmark")),
            (r#"{"kind":"analyze"}"#, None),
            (r#"[1,2]"#, None),
        ] {
            let e = spec(bad).unwrap_err();
            assert_eq!(e.field.as_deref(), field, "wrong field for {bad}: {e:?}");
            let rendered = e.to_json().to_string();
            assert!(rendered.starts_with(r#"{"error":"#), "{rendered}");
            assert_eq!(rendered.contains("field"), field.is_some(), "{rendered}");
        }
    }

    #[test]
    fn resolve_covers_all_labels_and_rejects_unknown_ones() {
        let s = spec(
            r#"{"kind":"characterize","array":"8x8","pattern":"tee","criterion":"r2x","threads":4,"target_ci":0.05}"#,
        )
        .unwrap();
        let ResolvedJob::Characterize(mc) = s.resolve().unwrap() else {
            panic!("wrong kind")
        };
        assert_eq!(mc.config.count(), 64);
        assert!(matches!(mc.criterion, FailureCriterion::ResistanceRatio(_)));
        assert_eq!(mc.runtime.threads, 4);
        assert!(mc.runtime.early_stop.is_some());
        assert_eq!(
            (mc.array.as_str(), mc.criterion_label.as_str()),
            ("8x8", "r2x")
        );

        let s = spec(r#"{"kind":"characterize","array":"1x1","pattern":"ell","criterion":"wl"}"#)
            .unwrap();
        let ResolvedJob::Characterize(mc) = s.resolve().unwrap() else {
            panic!("wrong kind")
        };
        assert_eq!(mc.config.count(), 1);
        assert!(matches!(mc.criterion, FailureCriterion::WeakestLink));
        assert!(mc.runtime.early_stop.is_none());

        // A hand-built spec bypasses from_json's label screening; resolve
        // must still name the bad field instead of defaulting.
        let bad = JobSpec::from(JobBody::Characterize(McParams {
            array: "9x9".into(),
            pattern: "plus".into(),
            criterion: "rinf".into(),
            trials: 1,
            seed: 1,
            threads: 1,
            target_ci: None,
            current_density: None,
            variation: None,
        }));
        let e = bad.resolve().unwrap_err();
        assert_eq!(e.field.as_deref(), Some("array"));
    }

    #[test]
    fn current_density_is_optional_and_round_trips() {
        // Absent: canonical form omits the key and resolve falls back to
        // the reference density.
        let s = spec(r#"{"kind":"characterize"}"#).unwrap();
        assert!(!s.to_json().to_string().contains("current_density"));
        let ResolvedJob::Characterize(mc) = s.resolve().unwrap() else {
            panic!("wrong kind")
        };
        assert_eq!(mc.current_density, REFERENCE_CURRENT_DENSITY);

        // Present: the canonical form keeps it and it survives re-parsing.
        let s = spec(r#"{"kind":"characterize","current_density":2e10}"#).unwrap();
        assert_eq!(
            s.to_json().to_string(),
            r#"{"kind":"characterize","array":"4x4","pattern":"plus","criterion":"rinf","trials":2000,"seed":1,"threads":1,"current_density":20000000000}"#
        );
        assert_eq!(spec(&s.to_json().to_string()).unwrap(), s);
        let ResolvedJob::Characterize(mc) = s.resolve().unwrap() else {
            panic!("wrong kind")
        };
        assert_eq!(mc.current_density, 2e10);

        // Analyze accepts it too, and bad values name the field.
        let s = spec(r#"{"kind":"analyze","benchmark":"pg1","current_density":5e9}"#).unwrap();
        assert_eq!(spec(&s.to_json().to_string()).unwrap(), s);
        for bad in [
            r#"{"kind":"characterize","current_density":0}"#,
            r#"{"kind":"characterize","current_density":-1e10}"#,
            r#"{"kind":"characterize","current_density":"high"}"#,
        ] {
            let e = spec(bad).unwrap_err();
            assert_eq!(e.field.as_deref(), Some("current_density"), "{bad}");
        }
        // fea has no current to carry; the key stays unknown there.
        assert!(spec(r#"{"kind":"fea","current_density":1e10}"#).is_err());
    }

    #[test]
    fn schema_version_is_accepted_and_materialized_when_present() {
        // Absent: implicit version 1, canonical bytes unchanged (the
        // byte-exact assertions elsewhere in this module pin that).
        let implicit = spec(r#"{"kind":"characterize"}"#).unwrap();
        assert_eq!(implicit.schema, None);
        assert!(!implicit.to_json().to_string().contains("schema"));

        // Present: accepted, materialized first, round-trips.
        let pinned = spec(r#"{"schema":1,"kind":"characterize"}"#).unwrap();
        assert_eq!(pinned.schema, Some(SCHEMA_VERSION));
        assert_eq!(
            pinned.to_json().to_string(),
            r#"{"schema":1,"kind":"characterize","array":"4x4","pattern":"plus","criterion":"rinf","trials":2000,"seed":1,"threads":1}"#
        );
        assert_eq!(spec(&pinned.to_json().to_string()).unwrap(), pinned);
        // The two forms carry the same body but are distinct documents.
        assert_eq!(pinned.body, implicit.body);
        assert_ne!(pinned, implicit);

        // Every kind takes the key.
        assert!(spec(r#"{"schema":1,"kind":"analyze","benchmark":"pg1"}"#).is_ok());
        assert!(spec(r#"{"schema":1,"kind":"fea"}"#).is_ok());

        // Unknown versions and malformed values are structured errors
        // naming the field and the supported range.
        for bad in [
            r#"{"schema":2,"kind":"characterize"}"#,
            r#"{"schema":0,"kind":"characterize"}"#,
        ] {
            let e = spec(bad).unwrap_err();
            assert_eq!(e.field.as_deref(), Some("schema"), "{bad}");
            assert!(e.message.contains("supported: 1"), "{}", e.message);
        }
        let e = spec(r#"{"schema":"one","kind":"characterize"}"#).unwrap_err();
        assert_eq!(e.field.as_deref(), Some("schema"));
    }

    #[test]
    fn variation_block_round_trips_with_defaults_materialized() {
        // Absent: canonical form omits the block and nothing resolves.
        let s = spec(r#"{"kind":"characterize"}"#).unwrap();
        assert!(!s.to_json().to_string().contains("variation"));
        let ResolvedJob::Characterize(mc) = s.resolve().unwrap() else {
            panic!("wrong kind")
        };
        assert_eq!(mc.variation, None);

        // Present: defaults are materialized in fixed key order.
        let s = spec(r#"{"kind":"characterize","variation":{"edge_current_factor":0.5}}"#).unwrap();
        assert_eq!(
            s.to_json().to_string(),
            r#"{"kind":"characterize","array":"4x4","pattern":"plus","criterion":"rinf","trials":2000,"seed":1,"threads":1,"variation":{"edge_current_factor":0.5,"temperature_sigma_c":0,"linewidth_sigma":0,"variance_analysis":false}}"#
        );
        assert_eq!(spec(&s.to_json().to_string()).unwrap(), s);
        let ResolvedJob::Characterize(mc) = s.resolve().unwrap() else {
            panic!("wrong kind")
        };
        let v = mc.variation.unwrap();
        assert_eq!(v.edge_current_factor, 0.5);
        assert_eq!(v.to_via().edge_current_factor, 0.5);

        // An empty block is meaningful: sub-stream layout, no perturbation.
        let s = spec(r#"{"kind":"characterize","variation":{}}"#).unwrap();
        let ResolvedJob::Characterize(mc) = s.resolve().unwrap() else {
            panic!("wrong kind")
        };
        assert_eq!(mc.variation, Some(VariationSpec::default()));

        // Analyze shares the block; it rides along with push_mc.
        let s = spec(
            r#"{"kind":"analyze","benchmark":"pg1","variation":{"temperature_sigma_c":8,"variance_analysis":true}}"#,
        )
        .unwrap();
        assert_eq!(spec(&s.to_json().to_string()).unwrap(), s);
        let ResolvedJob::Analyze(a) = s.resolve().unwrap() else {
            panic!("wrong kind")
        };
        assert!(a.mc.variation.unwrap().variance_analysis);
    }

    #[test]
    fn variation_block_names_bad_nested_fields() {
        for (bad, field) in [
            (r#"{"kind":"characterize","variation":7}"#, "variation"),
            (
                r#"{"kind":"characterize","variation":{"edge_current_factor":-0.1}}"#,
                "variation.edge_current_factor",
            ),
            (
                r#"{"kind":"characterize","variation":{"temperature_sigma_c":500}}"#,
                "variation.temperature_sigma_c",
            ),
            (
                r#"{"kind":"characterize","variation":{"linewidth_sigma":"wide"}}"#,
                "variation.linewidth_sigma",
            ),
            (
                r#"{"kind":"characterize","variation":{"variance_analysis":1}}"#,
                "variation.variance_analysis",
            ),
            (
                r#"{"kind":"characterize","variation":{"vias":3}}"#,
                "variation.vias",
            ),
        ] {
            let e = spec(bad).unwrap_err();
            assert_eq!(e.field.as_deref(), Some(field), "{bad}");
        }
        // fea has no Monte Carlo; the key stays unknown there.
        assert!(spec(r#"{"kind":"fea","variation":{}}"#).is_err());
    }
}
