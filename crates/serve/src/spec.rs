//! Job specifications: the JSON contract of `POST /v1/jobs`.
//!
//! A spec names one of three analyses — `characterize` (level-1 via-array
//! Monte Carlo), `analyze` (two-level system MC over a benchmark grid or
//! an uploaded SPICE netlist) or `fea` (finite-element stress
//! characterization of one primitive) — plus its technology knobs.
//! Parsing is strict: unknown keys, out-of-range budgets and malformed
//! values are all rejected with a message the daemon returns as a `400`.
//!
//! [`JobSpec::to_json`] renders the *canonical* form with every default
//! materialized; that document is persisted as `spec.json` and is what a
//! restarted daemon re-parses, so a job resumes under exactly the
//! parameters it was accepted with even if the client omitted them.

use std::fmt;

use emgrid_fea::geometry::{IntersectionPattern, ViaArrayGeometry};
use emgrid_runtime::{EarlyStop, RuntimeConfig};
use emgrid_via::{FailureCriterion, ViaArrayConfig};

use crate::json::Json;

/// Hard budget ceilings; a daemon accepts work from the network and must
/// bound it.
const MAX_TRIALS: usize = 1_000_000;
const MAX_THREADS: usize = 64;

/// A validation failure, phrased for the client.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecError(pub String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for SpecError {}

/// Monte Carlo parameters shared by `characterize` and `analyze`.
#[derive(Debug, Clone, PartialEq)]
pub struct McParams {
    /// Array label: `1x1`, `4x4` or `8x8`.
    pub array: String,
    /// Intersection pattern label: `plus`, `tee` or `ell`.
    pub pattern: String,
    /// Failure criterion label: `wl`, `r2x` or `rinf`.
    pub criterion: String,
    /// Level-1 trial budget.
    pub trials: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Worker threads inside the Monte Carlo scheduler.
    pub threads: usize,
    /// Optional early-stop target on the 95% CI half-width of mean ln TTF.
    pub target_ci: Option<f64>,
}

/// Where an `analyze` job's power grid comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum DeckSource {
    /// A built-in synthetic benchmark: `pg1`, `pg2` or `pg5`.
    Benchmark(String),
    /// An uploaded SPICE deck (screened by [`emgrid_spice::ingest`]).
    Netlist(String),
}

/// One accepted unit of work.
#[derive(Debug, Clone, PartialEq)]
pub enum JobSpec {
    /// Level-1 via-array TTF characterization.
    Characterize(McParams),
    /// Two-level system analysis of a power grid.
    Analyze {
        /// Shared MC parameters (level-1 budget in `mc.trials`).
        mc: McParams,
        /// The grid under analysis.
        deck: DeckSource,
        /// Level-2 (grid) trial budget.
        grid_trials: usize,
        /// Retrofit resistance for shorted vias, Ω (the paper's §5.2).
        repair_vias: Option<f64>,
    },
    /// Finite-element stress characterization of one primitive.
    Fea {
        /// Array label: `1x1`, `4x4` or `8x8`.
        array: String,
        /// Intersection pattern label.
        pattern: String,
        /// Mesh resolution, µm.
        resolution: f64,
        /// FEA solver threads.
        threads: usize,
        /// Whether to consult / populate the stress cache.
        use_cache: bool,
    },
}

impl JobSpec {
    /// The job kind label.
    pub fn kind(&self) -> &'static str {
        match self {
            JobSpec::Characterize(_) => "characterize",
            JobSpec::Analyze { .. } => "analyze",
            JobSpec::Fea { .. } => "fea",
        }
    }

    /// Parses and validates a client-submitted document.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] naming the offending field.
    pub fn from_json(doc: &Json) -> Result<JobSpec, SpecError> {
        let Json::Obj(_) = doc else {
            return Err(SpecError("spec must be a JSON object".into()));
        };
        let kind = get_str(doc, "kind")?.ok_or_else(|| SpecError("missing `kind`".into()))?;
        match kind {
            "characterize" => {
                reject_unknown_keys(doc, &MC_KEYS)?;
                Ok(JobSpec::Characterize(mc_params(doc)?))
            }
            "analyze" => {
                const ANALYZE_KEYS: [&str; 11] = [
                    "kind",
                    "array",
                    "pattern",
                    "criterion",
                    "trials",
                    "seed",
                    "threads",
                    "target_ci",
                    "grid_trials",
                    "benchmark",
                    "netlist",
                ];
                let mut keys = ANALYZE_KEYS.to_vec();
                keys.push("repair_vias");
                reject_unknown_keys(doc, &keys)?;
                let mc = mc_params(doc)?;
                let deck = match (get_str(doc, "benchmark")?, get_str(doc, "netlist")?) {
                    (Some(_), Some(_)) => {
                        return Err(SpecError(
                            "give either `benchmark` or `netlist`, not both".into(),
                        ))
                    }
                    (None, None) => {
                        return Err(SpecError("analyze needs `benchmark` or `netlist`".into()))
                    }
                    (Some(b), None) => {
                        if !matches!(b, "pg1" | "pg2" | "pg5") {
                            return Err(SpecError(format!(
                                "unknown benchmark `{b}` (expected pg1, pg2 or pg5)"
                            )));
                        }
                        DeckSource::Benchmark(b.to_owned())
                    }
                    (None, Some(n)) => DeckSource::Netlist(n.to_owned()),
                };
                let grid_trials = get_usize(doc, "grid_trials", 200, 1, MAX_TRIALS)?;
                let repair_vias = get_pos_f64(doc, "repair_vias")?;
                Ok(JobSpec::Analyze {
                    mc,
                    deck,
                    grid_trials,
                    repair_vias,
                })
            }
            "fea" => {
                reject_unknown_keys(
                    doc,
                    &[
                        "kind",
                        "array",
                        "pattern",
                        "resolution",
                        "threads",
                        "use_cache",
                    ],
                )?;
                let array = get_array_label(doc)?;
                let pattern = get_pattern_label(doc)?;
                let resolution = match get_pos_f64(doc, "resolution")? {
                    None => 0.25,
                    Some(r) if (0.05..=5.0).contains(&r) => r,
                    Some(r) => {
                        return Err(SpecError(format!(
                            "resolution {r} out of range [0.05, 5.0] um"
                        )))
                    }
                };
                let threads = get_usize(doc, "threads", 1, 1, MAX_THREADS)?;
                let use_cache = match doc.get("use_cache") {
                    None => true,
                    Some(v) => v
                        .as_bool()
                        .ok_or_else(|| SpecError("`use_cache` must be a boolean".into()))?,
                };
                Ok(JobSpec::Fea {
                    array,
                    pattern,
                    resolution,
                    threads,
                    use_cache,
                })
            }
            other => Err(SpecError(format!(
                "unknown kind `{other}` (expected characterize, analyze or fea)"
            ))),
        }
    }

    /// Renders the canonical form (defaults materialized, fixed key order).
    pub fn to_json(&self) -> Json {
        match self {
            JobSpec::Characterize(mc) => {
                let mut pairs = vec![("kind".to_owned(), Json::s("characterize"))];
                push_mc(&mut pairs, mc);
                Json::Obj(pairs)
            }
            JobSpec::Analyze {
                mc,
                deck,
                grid_trials,
                repair_vias,
            } => {
                let mut pairs = vec![("kind".to_owned(), Json::s("analyze"))];
                push_mc(&mut pairs, mc);
                pairs.push(("grid_trials".into(), Json::n(*grid_trials as f64)));
                match deck {
                    DeckSource::Benchmark(b) => pairs.push(("benchmark".into(), Json::s(b))),
                    DeckSource::Netlist(n) => pairs.push(("netlist".into(), Json::s(n))),
                }
                if let Some(r) = repair_vias {
                    pairs.push(("repair_vias".into(), Json::n(*r)));
                }
                Json::Obj(pairs)
            }
            JobSpec::Fea {
                array,
                pattern,
                resolution,
                threads,
                use_cache,
            } => Json::Obj(vec![
                ("kind".into(), Json::s("fea")),
                ("array".into(), Json::s(array)),
                ("pattern".into(), Json::s(pattern)),
                ("resolution".into(), Json::n(*resolution)),
                ("threads".into(), Json::n(*threads as f64)),
                ("use_cache".into(), Json::Bool(*use_cache)),
            ]),
        }
    }
}

const MC_KEYS: [&str; 8] = [
    "kind",
    "array",
    "pattern",
    "criterion",
    "trials",
    "seed",
    "threads",
    "target_ci",
];

fn push_mc(pairs: &mut Vec<(String, Json)>, mc: &McParams) {
    pairs.push(("array".into(), Json::s(&mc.array)));
    pairs.push(("pattern".into(), Json::s(&mc.pattern)));
    pairs.push(("criterion".into(), Json::s(&mc.criterion)));
    pairs.push(("trials".into(), Json::n(mc.trials as f64)));
    pairs.push(("seed".into(), Json::n(mc.seed as f64)));
    pairs.push(("threads".into(), Json::n(mc.threads as f64)));
    if let Some(ci) = mc.target_ci {
        pairs.push(("target_ci".into(), Json::n(ci)));
    }
}

fn mc_params(doc: &Json) -> Result<McParams, SpecError> {
    Ok(McParams {
        array: get_array_label(doc)?,
        pattern: get_pattern_label(doc)?,
        criterion: {
            let c = get_str(doc, "criterion")?.unwrap_or("rinf");
            if !matches!(c, "wl" | "r2x" | "rinf") {
                return Err(SpecError(format!(
                    "unknown criterion `{c}` (expected wl, r2x or rinf)"
                )));
            }
            c.to_owned()
        },
        trials: get_usize(doc, "trials", 2000, 1, MAX_TRIALS)?,
        seed: get_u64(doc, "seed", 1)?,
        threads: get_usize(doc, "threads", 1, 1, MAX_THREADS)?,
        // Positivity and finiteness are enforced by get_pos_f64.
        target_ci: get_pos_f64(doc, "target_ci")?,
    })
}

fn get_array_label(doc: &Json) -> Result<String, SpecError> {
    let a = get_str(doc, "array")?.unwrap_or("4x4");
    if !matches!(a, "1x1" | "4x4" | "8x8") {
        return Err(SpecError(format!(
            "unknown array `{a}` (expected 1x1, 4x4 or 8x8)"
        )));
    }
    Ok(a.to_owned())
}

fn get_pattern_label(doc: &Json) -> Result<String, SpecError> {
    let p = get_str(doc, "pattern")?.unwrap_or("plus");
    if !matches!(p, "plus" | "tee" | "ell") {
        return Err(SpecError(format!(
            "unknown pattern `{p}` (expected plus, tee or ell)"
        )));
    }
    Ok(p.to_owned())
}

fn get_str<'a>(doc: &'a Json, key: &str) -> Result<Option<&'a str>, SpecError> {
    match doc.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_str()
            .map(Some)
            .ok_or_else(|| SpecError(format!("`{key}` must be a string"))),
    }
}

fn get_usize(
    doc: &Json,
    key: &str,
    default: usize,
    min: usize,
    max: usize,
) -> Result<usize, SpecError> {
    let v = match doc.get(key) {
        None => return Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| SpecError(format!("`{key}` must be a non-negative integer")))?,
    };
    let v = usize::try_from(v).map_err(|_| SpecError(format!("`{key}` too large")))?;
    if v < min || v > max {
        return Err(SpecError(format!(
            "`{key}` = {v} out of range [{min}, {max}]"
        )));
    }
    Ok(v)
}

fn get_u64(doc: &Json, key: &str, default: u64) -> Result<u64, SpecError> {
    match doc.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| SpecError(format!("`{key}` must be a non-negative integer"))),
    }
}

fn get_pos_f64(doc: &Json, key: &str) -> Result<Option<f64>, SpecError> {
    match doc.get(key) {
        None => Ok(None),
        Some(v) => {
            let v = v
                .as_f64()
                .ok_or_else(|| SpecError(format!("`{key}` must be a number")))?;
            if !v.is_finite() || v <= 0.0 {
                return Err(SpecError(format!("`{key}` must be positive")));
            }
            Ok(Some(v))
        }
    }
}

fn reject_unknown_keys(doc: &Json, allowed: &[&str]) -> Result<(), SpecError> {
    let Json::Obj(pairs) = doc else {
        return Ok(());
    };
    for (key, _) in pairs {
        if !allowed.contains(&key.as_str()) {
            return Err(SpecError(format!("unknown key `{key}`")));
        }
    }
    Ok(())
}

/// Resolves an array + pattern label pair into the paper's configuration.
pub fn resolve_array(array: &str, pattern: &str) -> ViaArrayConfig {
    let pattern = resolve_pattern(pattern);
    match array {
        "1x1" => ViaArrayConfig::paper_1x1(pattern),
        "8x8" => ViaArrayConfig::paper_8x8(pattern),
        _ => ViaArrayConfig::paper_4x4(pattern),
    }
}

/// Resolves an array label into the FEA geometry.
pub fn resolve_geometry(array: &str) -> ViaArrayGeometry {
    match array {
        "1x1" => ViaArrayGeometry::paper_1x1(),
        "8x8" => ViaArrayGeometry::paper_8x8(),
        _ => ViaArrayGeometry::paper_4x4(),
    }
}

/// Resolves a pattern label.
pub fn resolve_pattern(pattern: &str) -> IntersectionPattern {
    match pattern {
        "tee" => IntersectionPattern::Tee,
        "ell" => IntersectionPattern::Ell,
        _ => IntersectionPattern::Plus,
    }
}

/// Resolves a criterion label.
pub fn resolve_criterion(criterion: &str) -> FailureCriterion {
    match criterion {
        "wl" => FailureCriterion::WeakestLink,
        "r2x" => FailureCriterion::ResistanceRatio(2.0),
        _ => FailureCriterion::OpenCircuit,
    }
}

/// Builds the scheduler configuration for a spec's thread/CI knobs.
pub fn resolve_runtime(threads: usize, target_ci: Option<f64>) -> RuntimeConfig {
    let mut runtime = RuntimeConfig::threaded(threads);
    if let Some(hw) = target_ci {
        runtime = runtime.with_early_stop(EarlyStop::to_half_width(hw));
    }
    runtime
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn spec(text: &str) -> Result<JobSpec, SpecError> {
        JobSpec::from_json(&json::parse(text).unwrap())
    }

    #[test]
    fn characterize_defaults_are_materialized() {
        let s = spec(r#"{"kind":"characterize"}"#).unwrap();
        let JobSpec::Characterize(mc) = &s else {
            panic!("wrong kind")
        };
        assert_eq!(
            (
                mc.array.as_str(),
                mc.pattern.as_str(),
                mc.criterion.as_str()
            ),
            ("4x4", "plus", "rinf")
        );
        assert_eq!((mc.trials, mc.seed, mc.threads), (2000, 1, 1));
        assert_eq!(
            s.to_json().to_string(),
            r#"{"kind":"characterize","array":"4x4","pattern":"plus","criterion":"rinf","trials":2000,"seed":1,"threads":1}"#
        );
        // The canonical form re-parses to the same spec.
        assert_eq!(spec(&s.to_json().to_string()).unwrap(), s);
    }

    #[test]
    fn analyze_requires_exactly_one_deck_source() {
        assert!(spec(r#"{"kind":"analyze"}"#).is_err());
        assert!(spec(r#"{"kind":"analyze","benchmark":"pg1","netlist":"R1 a 0 1"}"#).is_err());
        assert!(spec(r#"{"kind":"analyze","benchmark":"pg9"}"#).is_err());
        let s = spec(r#"{"kind":"analyze","benchmark":"pg1","grid_trials":50,"repair_vias":0.5}"#)
            .unwrap();
        let JobSpec::Analyze {
            deck,
            grid_trials,
            repair_vias,
            ..
        } = &s
        else {
            panic!("wrong kind")
        };
        assert_eq!(deck, &DeckSource::Benchmark("pg1".into()));
        assert_eq!(*grid_trials, 50);
        assert_eq!(*repair_vias, Some(0.5));
        assert_eq!(spec(&s.to_json().to_string()).unwrap(), s);
    }

    #[test]
    fn fea_round_trips_and_bounds_resolution() {
        let s = spec(r#"{"kind":"fea","array":"1x1","resolution":0.5,"use_cache":false}"#).unwrap();
        assert_eq!(spec(&s.to_json().to_string()).unwrap(), s);
        assert!(spec(r#"{"kind":"fea","resolution":0.001}"#).is_err());
        assert!(spec(r#"{"kind":"fea","resolution":-1}"#).is_err());
    }

    #[test]
    fn strict_validation_rejects_bad_fields() {
        for bad in [
            r#"[1,2]"#,
            r#"{"trials":10}"#,
            r#"{"kind":"mine"}"#,
            r#"{"kind":"characterize","typo":1}"#,
            r#"{"kind":"characterize","array":"2x2"}"#,
            r#"{"kind":"characterize","pattern":"round"}"#,
            r#"{"kind":"characterize","criterion":"best"}"#,
            r#"{"kind":"characterize","trials":0}"#,
            r#"{"kind":"characterize","trials":10000000}"#,
            r#"{"kind":"characterize","trials":2.5}"#,
            r#"{"kind":"characterize","seed":-1}"#,
            r#"{"kind":"characterize","threads":100}"#,
            r#"{"kind":"characterize","target_ci":0}"#,
            r#"{"kind":"analyze","benchmark":"pg1","repair_vias":-0.5}"#,
        ] {
            assert!(spec(bad).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn resolvers_cover_all_labels() {
        assert_eq!(resolve_array("8x8", "tee").count(), 64);
        assert_eq!(resolve_array("1x1", "ell").count(), 1);
        assert!(matches!(
            resolve_criterion("r2x"),
            FailureCriterion::ResistanceRatio(_)
        ));
        assert!(matches!(
            resolve_criterion("wl"),
            FailureCriterion::WeakestLink
        ));
        let rt = resolve_runtime(4, Some(0.05));
        assert_eq!(rt.threads, 4);
        assert!(rt.early_stop.is_some());
    }
}
