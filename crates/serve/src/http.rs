//! A deliberately small HTTP/1.1 server-side protocol layer.
//!
//! `std::net` gives us TCP; this module adds just enough HTTP on top for
//! the daemon's JSON API: request-line + header parsing with hard caps,
//! `Content-Length` bodies bounded by the server's configured maximum,
//! and response serialization.
//!
//! Parsing is incremental: a [`RequestBuffer`] accumulates bytes as they
//! arrive (from a blocking reader or the nonblocking event loop alike) and
//! [`RequestBuffer::try_parse`] peels complete requests off the front,
//! preserving any leftover bytes for the next request on the same
//! connection — the foundation of HTTP/1.1 keep-alive and pipelining.
//! The header-terminator scan resumes where the previous chunk left off,
//! so a head trickled in byte-wise costs O(n), not O(n²).
//!
//! Responses carry an explicit [`Response::close`] flag: protocol-level
//! failures (malformed framing, timeouts, oversized bodies, shed
//! connections) always close because request framing can no longer be
//! trusted, while routed responses — errors included — keep the connection
//! open when the client asked for keep-alive.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

use crate::json::Json;

/// Upper bound on request line + headers, bytes.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, `DELETE`, …).
    pub method: String,
    /// The request target as sent (path plus optional query).
    pub target: String,
    /// Header name/value pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` was given).
    pub body: Vec<u8>,
    /// Whether the client asked to reuse the connection: HTTP/1.1 defaults
    /// to keep-alive unless `Connection: close` was sent; HTTP/1.0 defaults
    /// to close unless `Connection: keep-alive` was sent.
    pub keep_alive: bool,
}

impl Request {
    /// The path component of the target (query string stripped).
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }

    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The bytes on the wire are not valid HTTP.
    BadRequest(String),
    /// The declared body exceeds the server's limit.
    BodyTooLarge {
        /// Declared `Content-Length`.
        declared: usize,
        /// The configured cap.
        limit: usize,
    },
    /// The client did not deliver the full request before the deadline.
    Timeout,
    /// The client closed the connection cleanly between requests (no
    /// buffered bytes) — the normal end of a keep-alive connection, not a
    /// protocol error.
    Closed,
    /// The socket failed mid-read.
    Io(io::Error),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::BadRequest(m) => write!(f, "bad request: {m}"),
            HttpError::BodyTooLarge { declared, limit } => {
                write!(f, "body too large: {declared} bytes (limit {limit})")
            }
            HttpError::Timeout => f.write_str("request read deadline exceeded"),
            HttpError::Closed => f.write_str("connection closed between requests"),
            HttpError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Finds the `\r\n\r\n` head terminator at or after `from`.
fn find_terminator(bytes: &[u8], from: usize) -> Option<usize> {
    bytes
        .get(from..)?
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|pos| pos + from)
}

/// Accumulated inbound bytes for one connection, with incremental request
/// parsing. Bytes beyond the first complete request stay buffered — they
/// are the start of the next pipelined request, not garbage to truncate.
#[derive(Debug, Default)]
pub struct RequestBuffer {
    buf: Vec<u8>,
    /// Resume point for the head-terminator scan: every position before
    /// this index is known not to start `\r\n\r\n`. Without it, each
    /// arriving chunk would rescan the whole accumulated head
    /// (`windows(4).position` from zero) — O(n²) on a 16 KiB header
    /// trickled byte-wise.
    scanned: usize,
    /// Cached terminator position once found, so chunks that merely grow
    /// the body do not re-scan (or re-parse) the head.
    head_end: Option<usize>,
}

impl RequestBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends bytes read from the socket.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Whether any unconsumed bytes are buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Buffered, unconsumed bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Tries to parse one complete request off the front of the buffer.
    /// Returns `Ok(None)` when more bytes are needed. On success the
    /// consumed bytes are drained and any leftover (the next pipelined
    /// request) is preserved.
    ///
    /// # Errors
    ///
    /// [`HttpError::BadRequest`] on malformed framing,
    /// [`HttpError::BodyTooLarge`] when the declared `Content-Length`
    /// exceeds `max_body`. After an error the buffer contents are
    /// unspecified and the connection must be closed.
    pub fn try_parse(&mut self, max_body: usize) -> Result<Option<Request>, HttpError> {
        let split = match self.head_end {
            Some(pos) => pos,
            None => match find_terminator(&self.buf, self.scanned) {
                Some(pos) => {
                    if pos > MAX_HEAD_BYTES {
                        return Err(HttpError::BadRequest("headers too large".into()));
                    }
                    self.head_end = Some(pos);
                    pos
                }
                None => {
                    // The terminator may straddle the next chunk boundary,
                    // so the last three bytes stay unscanned.
                    self.scanned = self.buf.len().saturating_sub(3);
                    if self.buf.len() > MAX_HEAD_BYTES {
                        return Err(HttpError::BadRequest("headers too large".into()));
                    }
                    return Ok(None);
                }
            },
        };
        let head_text = std::str::from_utf8(&self.buf[..split])
            .map_err(|_| HttpError::BadRequest("headers are not UTF-8".into()))?;
        let mut lines = head_text.split("\r\n");
        let request_line = lines
            .next()
            .ok_or_else(|| HttpError::BadRequest("empty request".into()))?;
        let mut parts = request_line.split_whitespace();
        let (Some(method), Some(target), Some(version)) =
            (parts.next(), parts.next(), parts.next())
        else {
            return Err(HttpError::BadRequest("malformed request line".into()));
        };
        if !version.starts_with("HTTP/1.") {
            return Err(HttpError::BadRequest(format!(
                "unsupported version `{version}`"
            )));
        }
        let mut headers = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let Some((name, value)) = line.split_once(':') else {
                return Err(HttpError::BadRequest(format!("malformed header `{line}`")));
            };
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
        }
        let mut request = Request {
            method: method.to_ascii_uppercase(),
            target: target.to_owned(),
            headers,
            body: Vec::new(),
            keep_alive: false,
        };
        request.keep_alive = match request.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => false,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
            _ => version != "HTTP/1.0",
        };
        let declared: usize = match request.header("content-length") {
            None => 0,
            Some(v) => v
                .parse()
                .map_err(|_| HttpError::BadRequest(format!("bad content-length `{v}`")))?,
        };
        if declared > max_body {
            return Err(HttpError::BodyTooLarge {
                declared,
                limit: max_body,
            });
        }
        let body_start = split + 4;
        let total = body_start + declared;
        if self.buf.len() < total {
            return Ok(None);
        }
        request.body = self.buf[body_start..total].to_vec();
        // Leftover bytes are the next pipelined request — keep them.
        self.buf.drain(..total);
        self.scanned = 0;
        self.head_end = None;
        Ok(Some(request))
    }
}

/// One socket read bounded by the request's overall deadline. A per-read
/// timeout alone is not enough: a client trickling one byte per interval
/// would reset it forever (slow-loris), so the remaining wall-clock budget
/// is re-applied before every read.
fn bounded_read(
    stream: &mut TcpStream,
    buf: &mut [u8],
    deadline: Instant,
) -> Result<usize, HttpError> {
    let now = Instant::now();
    if now >= deadline {
        return Err(HttpError::Timeout);
    }
    let _ = stream.set_read_timeout(Some(deadline - now));
    match stream.read(buf) {
        Ok(n) => Ok(n),
        Err(e)
            if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ) =>
        {
            Err(HttpError::Timeout)
        }
        Err(e) => Err(HttpError::Io(e)),
    }
}

/// Reads one request from the stream into `buffer`; the whole request
/// (headers and body) must arrive before `deadline`. Bytes beyond the
/// request stay in `buffer` for the next call — pipelined requests are
/// preserved, not truncated. This is the blocking (thread-per-connection)
/// reader; the event loop drives [`RequestBuffer`] directly.
///
/// # Errors
///
/// [`HttpError::BadRequest`] on malformed framing, [`HttpError::BodyTooLarge`]
/// when `Content-Length` exceeds `max_body`, [`HttpError::Timeout`] when the
/// deadline passes mid-request, [`HttpError::Closed`] when the client hangs
/// up cleanly between requests, [`HttpError::Io`] on socket failures.
pub fn read_request_buffered(
    stream: &mut TcpStream,
    buffer: &mut RequestBuffer,
    max_body: usize,
    deadline: Instant,
) -> Result<Request, HttpError> {
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(request) = buffer.try_parse(max_body)? {
            return Ok(request);
        }
        let n = bounded_read(stream, &mut chunk, deadline)?;
        if n == 0 {
            return if buffer.is_empty() {
                Err(HttpError::Closed)
            } else {
                Err(HttpError::BadRequest(
                    "connection closed mid-request".into(),
                ))
            };
        }
        buffer.extend(&chunk[..n]);
    }
}

/// Reads one request with a fresh buffer (any pipelined leftover is
/// discarded). Kept for single-shot callers and tests; connection loops
/// use [`read_request_buffered`] so leftover bytes survive.
///
/// # Errors
///
/// As [`read_request_buffered`].
pub fn read_request(
    stream: &mut TcpStream,
    max_body: usize,
    deadline: Instant,
) -> Result<Request, HttpError> {
    let mut buffer = RequestBuffer::new();
    read_request_buffered(stream, &mut buffer, max_body, deadline)
}

/// An HTTP response ready to serialize.
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
    /// Whether to announce `Connection: close` and drop the connection
    /// after writing. Constructors default to `true`; the serving layer
    /// flips it for routed responses on keep-alive connections. Protocol
    /// errors (bad framing, timeouts, sheds) always keep it `true`.
    pub close: bool,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, value: &Json) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: value.to_string().into_bytes(),
            close: true,
        }
    }

    /// A JSON response from pre-rendered bytes (served verbatim).
    pub fn json_bytes(status: u16, body: Vec<u8>) -> Response {
        Response {
            status,
            content_type: "application/json",
            body,
            close: true,
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
            close: true,
        }
    }

    /// A JSON error envelope `{"error": …}`.
    pub fn error(status: u16, message: impl Into<String>) -> Response {
        Response::json(status, &Json::Obj(vec![("error".into(), Json::s(message))]))
    }

    /// Serializes head + body into one buffer (what the event loop queues
    /// on a connection's write side).
    pub fn to_bytes(&self) -> Vec<u8> {
        let reason = reason_phrase(self.status);
        let connection = if self.close { "close" } else { "keep-alive" };
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
            self.status,
            reason,
            self.content_type,
            self.body.len(),
            connection,
        );
        let mut out = Vec::with_capacity(head.len() + self.body.len());
        out.extend_from_slice(head.as_bytes());
        out.extend_from_slice(&self.body);
        out
    }

    /// Serializes the response to the stream, honoring [`Response::close`]
    /// in the `Connection` header.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn write_to(&self, stream: &mut TcpStream) -> io::Result<()> {
        stream.write_all(&self.to_bytes())?;
        stream.flush()
    }
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Runs `read_request` against raw bytes pushed through a real socket
    /// pair, mirroring production conditions (chunked arrival included).
    fn read_from_bytes(bytes: &[u8], max_body: usize) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let bytes = bytes.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            // Two writes exercise the header/body boundary handling.
            let mid = bytes.len() / 2;
            s.write_all(&bytes[..mid]).unwrap();
            s.flush().unwrap();
            s.write_all(&bytes[mid..]).unwrap();
            s.flush().unwrap();
        });
        let (mut conn, _) = listener.accept().unwrap();
        let deadline = Instant::now() + std::time::Duration::from_secs(10);
        let out = read_request(&mut conn, max_body, deadline);
        writer.join().unwrap();
        out
    }

    #[test]
    fn parses_a_post_with_body() {
        let raw =
            b"POST /v1/jobs?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 9\r\n\r\n{\"a\":1}\r\n";
        let req = read_from_bytes(raw, 1024).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path(), "/v1/jobs");
        assert_eq!(req.header("HOST"), Some("h"));
        assert_eq!(req.body, b"{\"a\":1}\r\n");
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn enforces_the_body_limit() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\n";
        match read_from_bytes(raw, 10) {
            Err(HttpError::BodyTooLarge { declared, limit }) => {
                assert_eq!((declared, limit), (100, 10));
            }
            other => panic!("expected BodyTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_framing() {
        assert!(matches!(
            read_from_bytes(b"NOT-HTTP\r\n\r\n", 1024),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            read_from_bytes(b"GET / SPDY/3\r\n\r\n", 1024),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            read_from_bytes(b"GET / HTTP/1.1\r\nbroken header\r\n\r\n", 1024),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn connection_intent_follows_version_and_header() {
        let cases: &[(&[u8], bool)] = &[
            (b"GET / HTTP/1.1\r\n\r\n", true),
            (b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n", false),
            (b"GET / HTTP/1.0\r\n\r\n", false),
            (b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", true),
        ];
        for (raw, expect) in cases {
            let req = read_from_bytes(raw, 1024).unwrap();
            assert_eq!(req.keep_alive, *expect, "{:?}", std::str::from_utf8(raw));
        }
    }

    #[test]
    fn pipelined_requests_are_preserved_not_truncated() {
        // Regression: the old reader read `Content-Length` worth of body and
        // then `body.truncate(declared)` silently discarded any bytes of the
        // next pipelined request that had arrived in the same chunk.
        let mut buffer = RequestBuffer::new();
        buffer.extend(
            b"POST /a HTTP/1.1\r\nContent-Length: 3\r\n\r\nabcGET /b HTTP/1.1\r\nHost: h\r\n\r\n",
        );
        let first = buffer.try_parse(1024).unwrap().expect("first request");
        assert_eq!((first.method.as_str(), first.path()), ("POST", "/a"));
        assert_eq!(first.body, b"abc");
        let second = buffer.try_parse(1024).unwrap().expect("second request");
        assert_eq!((second.method.as_str(), second.path()), ("GET", "/b"));
        assert!(buffer.is_empty());
        assert!(buffer.try_parse(1024).unwrap().is_none());
    }

    /// Satellite regression: the head-terminator scan must resume where the
    /// previous chunk stopped. A large header arriving byte-by-byte (the
    /// worst case for the old full-rescan) parses correctly, including a
    /// terminator straddling chunk boundaries.
    #[test]
    fn byte_wise_chunked_arrival_parses_with_a_resumed_scan() {
        let mut head = String::from("POST /big HTTP/1.1\r\nContent-Length: 4\r\n");
        while head.len() < 12 * 1024 {
            head.push_str("X-Pad: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n");
        }
        head.push_str("\r\nbody");
        let raw = head.as_bytes();
        let mut buffer = RequestBuffer::new();
        let mut parsed = None;
        for (i, byte) in raw.iter().enumerate() {
            buffer.extend(std::slice::from_ref(byte));
            if let Some(req) = buffer.try_parse(1024).unwrap() {
                assert_eq!(i, raw.len() - 1, "parsed before the body finished");
                parsed = Some(req);
            }
        }
        let req = parsed.expect("request completed");
        assert_eq!(req.path(), "/big");
        assert_eq!(req.body, b"body");

        // Terminator split across two extends at every offset within it.
        for cut in 1..4 {
            let raw = b"GET /x HTTP/1.1\r\nHost: h\r\n\r\n";
            let split = raw.len() - cut;
            let mut buffer = RequestBuffer::new();
            buffer.extend(&raw[..split]);
            assert!(buffer.try_parse(1024).unwrap().is_none());
            buffer.extend(&raw[split..]);
            let req = buffer.try_parse(1024).unwrap().expect("straddled parse");
            assert_eq!(req.path(), "/x");
        }
    }

    #[test]
    fn oversized_heads_are_rejected_incrementally() {
        let mut buffer = RequestBuffer::new();
        buffer.extend(b"GET / HTTP/1.1\r\n");
        let pad = vec![b'a'; MAX_HEAD_BYTES + 8];
        buffer.extend(&pad);
        assert!(matches!(
            buffer.try_parse(1024),
            Err(HttpError::BadRequest(m)) if m.contains("headers too large")
        ));
    }

    #[test]
    fn a_stalled_client_hits_the_overall_deadline() {
        use std::time::Duration;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            // A partial request line, then silence with the socket held
            // open — the shape of a slow-loris connection.
            s.write_all(b"GET / HTTP/1.1\r\nHost: h").unwrap();
            s.flush().unwrap();
            std::thread::sleep(Duration::from_millis(1500));
        });
        let (mut conn, _) = listener.accept().unwrap();
        let deadline = Instant::now() + Duration::from_millis(250);
        let out = read_request(&mut conn, 1024, deadline);
        assert!(matches!(out, Err(HttpError::Timeout)), "{out:?}");
        writer.join().unwrap();
    }

    #[test]
    fn response_serializes_with_framing() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reader = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            let mut text = String::new();
            s.read_to_string(&mut text).unwrap();
            text
        });
        let (mut conn, _) = listener.accept().unwrap();
        Response::json(200, &Json::Obj(vec![("ok".into(), Json::Bool(true))]))
            .write_to(&mut conn)
            .unwrap();
        drop(conn);
        let text = reader.join().unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 11\r\n"), "{text}");
        assert!(text.contains("Connection: close"), "{text}");
        assert!(text.ends_with("{\"ok\":true}"), "{text}");
    }

    #[test]
    fn keep_alive_responses_announce_it() {
        let mut response = Response::text(200, "ok");
        response.close = false;
        let bytes = response.to_bytes();
        let text = std::str::from_utf8(&bytes).unwrap();
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
    }
}
