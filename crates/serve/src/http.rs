//! A deliberately small HTTP/1.1 server-side protocol layer.
//!
//! `std::net` gives us TCP; this module adds just enough HTTP on top for
//! the daemon's JSON API: request-line + header parsing with hard caps,
//! `Content-Length` bodies bounded by the server's configured maximum,
//! and response serialization. Every response carries
//! `Connection: close` — the daemon optimizes for operational simplicity
//! and auditability, not connection reuse (a job submission is orders of
//! magnitude more expensive than a TCP handshake).

use std::fmt;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

use crate::json::Json;

/// Upper bound on request line + headers, bytes.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, `DELETE`, …).
    pub method: String,
    /// The request target as sent (path plus optional query).
    pub target: String,
    /// Header name/value pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` was given).
    pub body: Vec<u8>,
}

impl Request {
    /// The path component of the target (query string stripped).
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }

    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The bytes on the wire are not valid HTTP.
    BadRequest(String),
    /// The declared body exceeds the server's limit.
    BodyTooLarge {
        /// Declared `Content-Length`.
        declared: usize,
        /// The configured cap.
        limit: usize,
    },
    /// The client did not deliver the full request before the deadline.
    Timeout,
    /// The socket failed mid-read.
    Io(io::Error),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::BadRequest(m) => write!(f, "bad request: {m}"),
            HttpError::BodyTooLarge { declared, limit } => {
                write!(f, "body too large: {declared} bytes (limit {limit})")
            }
            HttpError::Timeout => f.write_str("request read deadline exceeded"),
            HttpError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// One socket read bounded by the request's overall deadline. A per-read
/// timeout alone is not enough: a client trickling one byte per interval
/// would reset it forever (slow-loris), so the remaining wall-clock budget
/// is re-applied before every read.
fn bounded_read(
    stream: &mut TcpStream,
    buf: &mut [u8],
    deadline: Instant,
) -> Result<usize, HttpError> {
    let now = Instant::now();
    if now >= deadline {
        return Err(HttpError::Timeout);
    }
    let _ = stream.set_read_timeout(Some(deadline - now));
    match stream.read(buf) {
        Ok(n) => Ok(n),
        Err(e)
            if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ) =>
        {
            Err(HttpError::Timeout)
        }
        Err(e) => Err(HttpError::Io(e)),
    }
}

/// Reads one request from the stream; the whole request (headers and body)
/// must arrive before `deadline`.
///
/// # Errors
///
/// [`HttpError::BadRequest`] on malformed framing, [`HttpError::BodyTooLarge`]
/// when `Content-Length` exceeds `max_body`, [`HttpError::Timeout`] when the
/// deadline passes mid-request, [`HttpError::Io`] on socket failures
/// (including clients that disappear mid-request).
pub fn read_request(
    stream: &mut TcpStream,
    max_body: usize,
    deadline: Instant,
) -> Result<Request, HttpError> {
    // Accumulate until the blank line; byte-at-a-time would be slow, so
    // read in chunks and search for the terminator.
    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    let split = loop {
        if let Some(pos) = find_terminator(&head) {
            break pos;
        }
        if head.len() > MAX_HEAD_BYTES {
            return Err(HttpError::BadRequest("headers too large".into()));
        }
        let n = bounded_read(stream, &mut buf, deadline)?;
        if n == 0 {
            return Err(HttpError::BadRequest(
                "connection closed mid-headers".into(),
            ));
        }
        head.extend_from_slice(&buf[..n]);
    };
    let (head_bytes, rest) = head.split_at(split);
    let rest = &rest[4..]; // skip \r\n\r\n
    let head_text = std::str::from_utf8(head_bytes)
        .map_err(|_| HttpError::BadRequest("headers are not UTF-8".into()))?;
    let mut lines = head_text.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::BadRequest("empty request".into()))?;
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::BadRequest("malformed request line".into()));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!(
            "unsupported version `{version}`"
        )));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadRequest(format!("malformed header `{line}`")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }
    let mut request = Request {
        method: method.to_ascii_uppercase(),
        target: target.to_owned(),
        headers,
        body: Vec::new(),
    };
    let declared: usize = match request.header("content-length") {
        None => 0,
        Some(v) => v
            .parse()
            .map_err(|_| HttpError::BadRequest(format!("bad content-length `{v}`")))?,
    };
    if declared > max_body {
        return Err(HttpError::BodyTooLarge {
            declared,
            limit: max_body,
        });
    }
    let mut body = rest.to_vec();
    while body.len() < declared {
        let n = bounded_read(stream, &mut buf, deadline)?;
        if n == 0 {
            return Err(HttpError::BadRequest("connection closed mid-body".into()));
        }
        body.extend_from_slice(&buf[..n]);
    }
    body.truncate(declared);
    request.body = body;
    Ok(request)
}

fn find_terminator(bytes: &[u8]) -> Option<usize> {
    bytes.windows(4).position(|w| w == b"\r\n\r\n")
}

/// An HTTP response ready to serialize.
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, value: &Json) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: value.to_string().into_bytes(),
        }
    }

    /// A JSON response from pre-rendered bytes (served verbatim).
    pub fn json_bytes(status: u16, body: Vec<u8>) -> Response {
        Response {
            status,
            content_type: "application/json",
            body,
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
        }
    }

    /// A JSON error envelope `{"error": …}`.
    pub fn error(status: u16, message: impl Into<String>) -> Response {
        Response::json(status, &Json::Obj(vec![("error".into(), Json::s(message))]))
    }

    /// Serializes the response (always `Connection: close`).
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn write_to(&self, stream: &mut TcpStream) -> io::Result<()> {
        let reason = reason_phrase(self.status);
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            reason,
            self.content_type,
            self.body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Runs `read_request` against raw bytes pushed through a real socket
    /// pair, mirroring production conditions (chunked arrival included).
    fn read_from_bytes(bytes: &[u8], max_body: usize) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let bytes = bytes.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            // Two writes exercise the header/body boundary handling.
            let mid = bytes.len() / 2;
            s.write_all(&bytes[..mid]).unwrap();
            s.flush().unwrap();
            s.write_all(&bytes[mid..]).unwrap();
            s.flush().unwrap();
        });
        let (mut conn, _) = listener.accept().unwrap();
        let deadline = Instant::now() + std::time::Duration::from_secs(10);
        let out = read_request(&mut conn, max_body, deadline);
        writer.join().unwrap();
        out
    }

    #[test]
    fn parses_a_post_with_body() {
        let raw =
            b"POST /v1/jobs?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 9\r\n\r\n{\"a\":1}\r\n";
        let req = read_from_bytes(raw, 1024).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path(), "/v1/jobs");
        assert_eq!(req.header("HOST"), Some("h"));
        assert_eq!(req.body, b"{\"a\":1}\r\n");
    }

    #[test]
    fn enforces_the_body_limit() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\n";
        match read_from_bytes(raw, 10) {
            Err(HttpError::BodyTooLarge { declared, limit }) => {
                assert_eq!((declared, limit), (100, 10));
            }
            other => panic!("expected BodyTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_framing() {
        assert!(matches!(
            read_from_bytes(b"NOT-HTTP\r\n\r\n", 1024),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            read_from_bytes(b"GET / SPDY/3\r\n\r\n", 1024),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            read_from_bytes(b"GET / HTTP/1.1\r\nbroken header\r\n\r\n", 1024),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn a_stalled_client_hits_the_overall_deadline() {
        use std::time::Duration;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            // A partial request line, then silence with the socket held
            // open — the shape of a slow-loris connection.
            s.write_all(b"GET / HTTP/1.1\r\nHost: h").unwrap();
            s.flush().unwrap();
            std::thread::sleep(Duration::from_millis(1500));
        });
        let (mut conn, _) = listener.accept().unwrap();
        let deadline = Instant::now() + Duration::from_millis(250);
        let out = read_request(&mut conn, 1024, deadline);
        assert!(matches!(out, Err(HttpError::Timeout)), "{out:?}");
        writer.join().unwrap();
    }

    #[test]
    fn response_serializes_with_framing() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reader = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            let mut text = String::new();
            s.read_to_string(&mut text).unwrap();
            text
        });
        let (mut conn, _) = listener.accept().unwrap();
        Response::json(200, &Json::Obj(vec![("ok".into(), Json::Bool(true))]))
            .write_to(&mut conn)
            .unwrap();
        drop(conn);
        let text = reader.join().unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 11\r\n"), "{text}");
        assert!(text.contains("Connection: close"), "{text}");
        assert!(text.ends_with("{\"ok\":true}"), "{text}");
    }
}
