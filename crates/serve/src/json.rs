//! Minimal JSON document model, parser and deterministic writer.
//!
//! The daemon speaks JSON on every endpoint but the workspace takes no
//! external dependencies, so this module supplies the subset it needs:
//! a [`Json`] tree (objects keep insertion order), a recursive-descent
//! [`parse`] with byte-offset error positions, and a `Display`
//! implementation that renders *deterministically* — same tree, same
//! bytes. Determinism matters because the daemon's acceptance contract is
//! that identical job specs produce byte-identical result documents.
//!
//! Numbers are stored as `f64`. The writer emits integers without a
//! fractional part when the value is exactly integral (ids, trial
//! counts) and otherwise uses Rust's shortest round-trip float formatting,
//! which is a pure function of the bits.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`; must be finite).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved and significant for output.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds a string value.
    pub fn s(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    /// Builds a number value.
    pub fn n(v: f64) -> Json {
        Json::Num(v)
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9.007199254740992e15 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => write_num(f, *n),
            Json::Str(s) => write_string(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_string(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_num(f: &mut fmt::Formatter<'_>, n: f64) -> fmt::Result {
    if !n.is_finite() {
        // JSON has no NaN/Inf; the writer degrades to null rather than
        // emitting an invalid document.
        return f.write_str("null");
    }
    if n.fract() == 0.0 && n.abs() <= 9.007199254740992e15 {
        write!(f, "{}", n as i64)
    } else {
        write!(f, "{n}")
    }
}

fn write_string(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// A parse failure with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns [`JsonError`] with the byte offset of the first problem;
/// trailing non-whitespace input is rejected.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

/// Maximum container nesting. The parser recurses once per level, and the
/// daemon parses request bodies on connection threads with default-sized
/// stacks; without a cap, a small body of nested `[` would overflow the
/// stack and abort the whole process. 128 levels is far beyond any job
/// spec while keeping worst-case recursion trivially shallow.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.nested(Self::object),
            Some(b'[') => self.nested(Self::array),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn nested(
        &mut self,
        parse: fn(&mut Self) -> Result<Json, JsonError>,
    ) -> Result<Json, JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        self.depth += 1;
        let value = parse(self);
        self.depth -= 1;
        value
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => return Err(self.err(format!("bad escape `\\{}`", other as char))),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // byte sequence is valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        let n: f64 = text
            .parse()
            .map_err(|_| self.err(format!("bad number `{text}`")))?;
        if !n.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(Json::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_typical_document() {
        let text = r#"{"kind":"characterize","trials":200,"seed":7,"ratio":0.5,"tags":["a","b"],"none":null,"ok":true}"#;
        let doc = parse(text).unwrap();
        assert_eq!(doc.get("kind").unwrap().as_str(), Some("characterize"));
        assert_eq!(doc.get("trials").unwrap().as_u64(), Some(200));
        assert_eq!(doc.get("ratio").unwrap().as_f64(), Some(0.5));
        assert_eq!(doc.get("ok").unwrap().as_bool(), Some(true));
        // The writer reproduces the same bytes (insertion order preserved).
        assert_eq!(doc.to_string(), text);
    }

    #[test]
    fn writer_is_deterministic_for_floats() {
        let v = Json::Arr(vec![Json::n(0.1 + 0.2), Json::n(3.0), Json::n(-0.0)]);
        let once = v.to_string();
        assert_eq!(once, v.to_string());
        assert!(once.starts_with("[0.30000000000000004,3,"), "{once}");
        // Round-trip preserves bits.
        let back = parse(&once).unwrap();
        assert_eq!(back.to_string(), once);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let original = "line1\nline2\ttab \"quoted\" back\\slash";
        let rendered = Json::s(original).to_string();
        let back = parse(&rendered).unwrap();
        assert_eq!(back.as_str(), Some(original));
        // Unicode escapes, including a surrogate pair.
        let doc = parse(r#""\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(doc.as_str(), Some("é😀"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "\"unterminated",
            "nul",
            "1e999",
            "{} trailing",
            "\"\\q\"",
            "\"\\ud800\"",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_is_rejected_not_a_stack_overflow() {
        // Well inside the cap: parses fine.
        let ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse(&ok).is_ok());
        // One past the cap: a clean error.
        let over = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        let err = parse(&over).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
        // A megabyte of `[` (the attack body) errors instead of aborting
        // the process; objects hit the same cap.
        assert!(parse(&"[".repeat(1 << 20)).is_err());
        assert!(parse(&"{\"k\":".repeat(1 << 20)).is_err());
    }

    #[test]
    fn nested_structures_parse() {
        let doc = parse(r#" { "a" : [ { "b" : [ 1 , 2 ] } ] } "#).unwrap();
        let inner = &doc.get("a").unwrap();
        let Json::Arr(items) = inner else {
            panic!("not an array")
        };
        assert_eq!(items[0].get("b").unwrap().to_string(), "[1,2]");
    }
}
