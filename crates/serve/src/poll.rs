//! A minimal safe wrapper over `poll(2)` — the readiness primitive under
//! the serve event loop and the open-loop load harness.
//!
//! Std-only by design: `libc` is always linked on the platforms we target,
//! so a single `extern "C"` declaration is all the FFI this needs. The
//! wrapper owns the one `unsafe` block; callers deal in [`PollFd`] slices
//! and [`Duration`]s.

#![cfg(unix)]

use std::io;
use std::os::fd::RawFd;
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// Readable data (or a peer close, which also wakes readers).
pub const POLLIN: i16 = 0x001;
/// Writable without blocking.
pub const POLLOUT: i16 = 0x004;
/// Error condition (revents only).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (revents only).
pub const POLLHUP: i16 = 0x010;
/// Invalid fd (revents only).
pub const POLLNVAL: i16 = 0x020;

/// One entry in the poll set, layout-compatible with `struct pollfd`.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct PollFd {
    fd: RawFd,
    events: i16,
    revents: i16,
}

impl PollFd {
    /// Watches `fd` for the given interest mask (`POLLIN` / `POLLOUT`).
    pub fn new(fd: RawFd, events: i16) -> Self {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// The watched descriptor.
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Returned readiness mask from the last [`poll`] call.
    pub fn revents(&self) -> i16 {
        self.revents
    }

    /// Whether the descriptor is readable (or the peer closed / errored —
    /// conditions a read will surface, so readers must run).
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLHUP | POLLERR | POLLNVAL) != 0
    }

    /// Whether the descriptor is writable (or errored — a write will
    /// surface the failure).
    pub fn writable(&self) -> bool {
        self.revents & (POLLOUT | POLLHUP | POLLERR | POLLNVAL) != 0
    }
}

extern "C" {
    fn poll(fds: *mut PollFd, nfds: std::ffi::c_ulong, timeout: std::ffi::c_int)
        -> std::ffi::c_int;
}

/// Blocks until at least one descriptor in `fds` is ready or `timeout`
/// elapses (`None` = wait indefinitely). Returns the number of ready
/// descriptors; `0` means the timeout fired. `EINTR` is retried.
///
/// # Errors
///
/// Propagates `poll(2)` failures other than `EINTR`.
pub fn poll_fds(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
    let timeout_ms: i32 = match timeout {
        None => -1,
        // Round up so a 0.5ms deadline does not become a busy-loop of
        // zero-timeout polls.
        Some(d) => d
            .as_millis()
            .saturating_add(u128::from(d.subsec_nanos() % 1_000_000 != 0))
            .min(i32::MAX as u128) as i32,
    };
    loop {
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as std::ffi::c_ulong, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

/// Cross-thread wakeup for a poll loop: the loop polls the read half for
/// `POLLIN`; any thread calls [`Waker::wake`] to make the next (or current)
/// `poll` return immediately.
pub struct Waker {
    read: UnixStream,
    write: UnixStream,
}

impl Waker {
    /// Creates a connected nonblocking pair.
    ///
    /// # Errors
    ///
    /// Propagates socketpair / fcntl failures.
    pub fn new() -> io::Result<Self> {
        let (read, write) = UnixStream::pair()?;
        read.set_nonblocking(true)?;
        write.set_nonblocking(true)?;
        Ok(Waker { read, write })
    }

    /// The fd to include in the poll set with `POLLIN` interest.
    pub fn poll_fd(&self) -> RawFd {
        use std::os::fd::AsRawFd;
        self.read.as_raw_fd()
    }

    /// Makes the poll loop's next wait return immediately. Best-effort: a
    /// full pipe already guarantees a pending wakeup, so `WouldBlock` is
    /// success.
    pub fn wake(&self) {
        use std::io::Write;
        let _ = (&self.write).write(&[1u8]);
    }

    /// Drains pending wakeup bytes; call after the poll reports the waker
    /// readable, before re-polling.
    pub fn drain(&self) {
        use std::io::Read;
        let mut sink = [0u8; 64];
        while matches!((&self.read).read(&mut sink), Ok(n) if n > 0) {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::Instant;

    #[test]
    fn timeout_fires_when_nothing_is_ready() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut fds = [PollFd::new(listener.as_raw_fd(), POLLIN)];
        let start = Instant::now();
        let n = poll_fds(&mut fds, Some(Duration::from_millis(50))).unwrap();
        assert_eq!(n, 0);
        assert!(start.elapsed() >= Duration::from_millis(45));
        assert!(!fds[0].readable());
    }

    #[test]
    fn readable_socket_is_reported() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        client.write_all(b"x").unwrap();
        let mut fds = [PollFd::new(server.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].readable());
        assert!(!fds[0].writable(), "no POLLOUT interest was registered");
    }

    #[test]
    fn waker_wakes_a_blocked_poll_and_drains() {
        let waker = Waker::new().unwrap();
        let fd = waker.poll_fd();
        let start = Instant::now();
        let handle = std::thread::spawn({
            let waker_fd = fd;
            move || {
                let mut fds = [PollFd::new(waker_fd, POLLIN)];
                poll_fds(&mut fds, Some(Duration::from_secs(10))).unwrap()
            }
        });
        std::thread::sleep(Duration::from_millis(30));
        waker.wake();
        assert_eq!(handle.join().unwrap(), 1);
        assert!(start.elapsed() < Duration::from_secs(5));
        waker.drain();
        let mut fds = [PollFd::new(fd, POLLIN)];
        let n = poll_fds(&mut fds, Some(Duration::from_millis(20))).unwrap();
        assert_eq!(n, 0, "drain consumed the wakeup byte");
    }
}
