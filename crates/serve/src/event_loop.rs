//! The readiness-driven serve backend: one `poll(2)` event loop owning
//! every connection, plus a small dispatcher pool that runs route
//! handlers.
//!
//! # State machine
//!
//! Each connection walks `Reading → (Pending) → Dispatching → Writing`,
//! then either closes or loops back to `Reading` (HTTP/1.1 keep-alive).
//! Oversized bodies take the `Writing → Draining` detour: the 413 goes
//! out first, then up to 1 MiB of the declared body is discarded so the
//! close is a clean FIN rather than an RST that could destroy the
//! response in flight. The event loop never blocks on a socket — reads
//! and writes happen only when `poll` reports readiness, and the
//! deadline/shed/413 semantics of the threaded backend are re-expressed
//! as state-machine timeouts.
//!
//! # Admission control
//!
//! Parsed requests are dispatched over two lanes. Interactive routes
//! (healthz, metrics, status, result, cancel) go to the interactive
//! lane; submit, sweep, and unknown routes go to the bulk lane.
//! Dispatcher 0 serves *only* the interactive lane and the rest prefer
//! it, so a flood of bulk submissions can never starve a liveness probe.
//! A per-client (peer IP) in-flight cap bounds how many handlers one
//! client can occupy at once; requests over the cap wait in a deferred
//! queue — delayed, not rejected.
//!
//! # Invariants kept from the threaded backend
//!
//! * Handler panics are caught in the dispatcher, counted in
//!   `emgrid_http_connection_panics_total`, and close the connection
//!   without a response — no slot leaks, no daemon crash.
//! * Every response written is counted by status class, and every
//!   counted response (plus every shed and panicked request) was first
//!   counted as a request, so `requests_total ≥ responses_total` always.
//! * Shed 503s are written nonblocking and can never stall the accept
//!   path.

#![cfg(unix)]

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{IpAddr, Shutdown, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::http::{HttpError, Request, RequestBuffer, Response};
use crate::metrics::Metrics;
use crate::poll::{poll_fds, PollFd, Waker, POLLIN, POLLOUT};
use crate::server::{route, route_label, Shared};

/// Budget for finishing a response write once it has started.
const WRITE_DEADLINE: Duration = Duration::from_secs(10);
/// Budget for a shed 503 to drain to a slow client.
const SHED_WRITE_DEADLINE: Duration = Duration::from_secs(1);
/// Most bytes of an oversized body discarded before closing (matches the
/// threaded backend's bounded 413 drain).
const MAX_DRAIN_BYTES: usize = 1 << 20;
/// Per-connection read budget per loop iteration, so one firehose client
/// cannot monopolize an iteration.
const READ_BUDGET: usize = 64 * 1024;
/// Most shed writes in flight at once; beyond this the connection is
/// dropped without a response (the request is still counted).
const MAX_PENDING_SHEDS: usize = 1024;

/// Tuning knobs threaded through from `ServeConfig`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct EventLoopOptions {
    /// Dispatcher threads (min 2: one interactive-only, one bulk-capable).
    pub dispatchers: usize,
    /// Per-peer-IP in-flight handler cap (0 = unlimited).
    pub max_in_flight_per_client: usize,
}

/// What happens after the current write buffer finishes.
enum After {
    Close,
    KeepAlive,
    Drain(usize),
}

enum State {
    /// Waiting for (more of) a request; polled for `POLLIN`.
    Reading,
    /// Parsed but deferred by the per-client cap; not polled.
    Pending(Box<Request>),
    /// In a dispatcher's hands; not polled.
    Dispatching,
    /// Response bytes queued; polled for `POLLOUT`.
    Writing {
        out: Vec<u8>,
        pos: usize,
        then: After,
    },
    /// Discarding an oversized body before close; polled for `POLLIN`.
    Draining { left: usize },
}

struct Conn {
    stream: TcpStream,
    ip: IpAddr,
    buf: RequestBuffer,
    state: State,
    /// Current state's deadline. Not enforced while a handler runs
    /// (`Pending`/`Dispatching`) — those states are not time-bounded here,
    /// matching the threaded backend where the deadline covers the read.
    deadline: Instant,
    /// Requests fully served on this connection.
    served: u64,
    /// Wall-clock start of the request in flight (for the route histogram).
    started: Instant,
    /// Route label of the request in flight.
    label: &'static str,
}

/// A shed 503 still draining to its client, written nonblocking so a
/// client that never reads cannot stall accepts (it gets dropped at the
/// 1s deadline instead). Once the 503 is fully written the socket
/// lingers read-side until the client's FIN: the shed never read the
/// request, and closing with unread bytes in the receive buffer turns
/// into an RST that can destroy the 503 in flight.
struct Shed {
    stream: TcpStream,
    out: Vec<u8>,
    pos: usize,
    deadline: Instant,
}

impl Shed {
    fn writing(&self) -> bool {
        self.pos < self.out.len()
    }
}

/// Discards readable bytes until the peer's FIN. Returns `true` when the
/// socket is finished (EOF or error) and can be dropped without an RST.
fn drained(stream: &mut TcpStream) -> bool {
    let mut scratch = [0u8; 4096];
    loop {
        match stream.read(&mut scratch) {
            Ok(0) => return true,
            Ok(_) => continue,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return false,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return true,
        }
    }
}

/// A request handed to the dispatcher pool.
struct Work {
    token: u64,
    ip: IpAddr,
    request: Request,
}

/// A finished (or panicked) dispatch coming back to the event loop.
struct Done {
    token: u64,
    ip: IpAddr,
    keep_alive: bool,
    /// `None` = the handler panicked.
    response: Option<Response>,
}

#[derive(Default)]
struct LaneQueues {
    interactive: VecDeque<Work>,
    bulk: VecDeque<Work>,
    shutdown: bool,
}

/// The two dispatch lanes plus the wakeup used by dispatcher threads.
struct Lanes {
    queues: Mutex<LaneQueues>,
    ready: Condvar,
}

impl Lanes {
    fn push(&self, work: Work, interactive: bool) {
        let mut q = self.queues.lock().unwrap_or_else(|e| e.into_inner());
        if interactive {
            q.interactive.push_back(work);
        } else {
            q.bulk.push_back(work);
        }
        drop(q);
        self.ready.notify_all();
    }

    /// Blocks until work is available for dispatcher `index` (dispatcher 0
    /// only ever takes interactive work) or shutdown is signalled.
    fn take(&self, index: usize) -> Option<Work> {
        let mut q = self.queues.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(work) = q.interactive.pop_front() {
                return Some(work);
            }
            if index != 0 {
                if let Some(work) = q.bulk.pop_front() {
                    return Some(work);
                }
            }
            if q.shutdown {
                return None;
            }
            q = self.ready.wait(q).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn shut_down(&self) {
        self.queues
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .shutdown = true;
        self.ready.notify_all();
    }
}

/// Whether a route label belongs to the interactive lane.
fn is_interactive(label: &str) -> bool {
    matches!(
        label,
        "healthz" | "metrics" | "status" | "result" | "cancel"
    )
}

/// Runs the event loop until `shared.shutting_down` is observed. This is
/// the body of the accept thread under `--io poll`.
pub(crate) fn run(listener: TcpListener, shared: Arc<Shared>, opts: EventLoopOptions) {
    if let Err(e) = listener.set_nonblocking(true) {
        eprintln!("emgrid-serve: cannot set listener nonblocking: {e}");
        return;
    }
    let waker = Arc::new(match Waker::new() {
        Ok(w) => w,
        Err(e) => {
            eprintln!("emgrid-serve: cannot create event-loop waker: {e}");
            return;
        }
    });
    let lanes = Arc::new(Lanes {
        queues: Mutex::new(LaneQueues::default()),
        ready: Condvar::new(),
    });
    let completions: Arc<Mutex<Vec<Done>>> = Arc::new(Mutex::new(Vec::new()));

    let dispatcher_count = opts.dispatchers.max(2);
    let mut dispatchers = Vec::with_capacity(dispatcher_count);
    for index in 0..dispatcher_count {
        let lanes = Arc::clone(&lanes);
        let completions = Arc::clone(&completions);
        let waker = Arc::clone(&waker);
        let shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name(format!("emgrid-dispatch-{index}"))
            .spawn(move || {
                while let Some(work) = lanes.take(index) {
                    let response =
                        catch_unwind(AssertUnwindSafe(|| route(&work.request, &shared))).ok();
                    completions
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push(Done {
                            token: work.token,
                            ip: work.ip,
                            keep_alive: work.request.keep_alive,
                            response,
                        });
                    waker.wake();
                }
            })
            .expect("spawn dispatcher thread");
        dispatchers.push(handle);
    }

    let mut loop_state = LoopState {
        shared: Arc::clone(&shared),
        lanes: Arc::clone(&lanes),
        conns: HashMap::new(),
        sheds: Vec::new(),
        in_flight: HashMap::new(),
        deferred: VecDeque::new(),
        next_token: 0,
        cap: opts.max_in_flight_per_client,
    };
    let mut pollfds: Vec<PollFd> = Vec::new();
    // pollfds[i] maps back to owners[i].
    let mut owners: Vec<Owner> = Vec::new();

    while !shared.shutting_down.load(Ordering::SeqCst) {
        for done in std::mem::take(&mut *completions.lock().unwrap_or_else(|e| e.into_inner())) {
            loop_state.complete(done);
        }
        loop_state.retry_deferred();

        pollfds.clear();
        owners.clear();
        pollfds.push(PollFd::new(listener.as_raw_fd(), POLLIN));
        owners.push(Owner::Listener);
        pollfds.push(PollFd::new(waker.poll_fd(), POLLIN));
        owners.push(Owner::Waker);
        let now = Instant::now();
        let mut next_deadline: Option<Instant> = None;
        let arm = |deadline: Instant, slot: &mut Option<Instant>| {
            *slot = Some(slot.map_or(deadline, |d| d.min(deadline)));
        };
        for (token, conn) in &loop_state.conns {
            let interest = match conn.state {
                State::Reading | State::Draining { .. } => POLLIN,
                State::Writing { .. } => POLLOUT,
                State::Pending(_) | State::Dispatching => continue,
            };
            arm(conn.deadline, &mut next_deadline);
            pollfds.push(PollFd::new(conn.stream.as_raw_fd(), interest));
            owners.push(Owner::Conn(*token));
        }
        for (index, shed) in loop_state.sheds.iter().enumerate() {
            arm(shed.deadline, &mut next_deadline);
            let interest = if shed.writing() { POLLOUT } else { POLLIN };
            pollfds.push(PollFd::new(shed.stream.as_raw_fd(), interest));
            owners.push(Owner::Shed(index));
        }
        let timeout = next_deadline.map(|d| d.saturating_duration_since(now));
        if poll_fds(&mut pollfds, timeout).is_err() {
            // EINVAL and friends would spin; a brief sleep keeps the loop
            // alive without burning a core.
            std::thread::sleep(Duration::from_millis(5));
        }

        let mut ready_conns: Vec<u64> = Vec::new();
        let mut ready_sheds: Vec<usize> = Vec::new();
        let mut accept_ready = false;
        for (fd, owner) in pollfds.iter().zip(&owners) {
            if fd.revents() == 0 {
                continue;
            }
            match owner {
                Owner::Listener => accept_ready = true,
                Owner::Waker => waker.drain(),
                Owner::Conn(token) => ready_conns.push(*token),
                Owner::Shed(index) => ready_sheds.push(*index),
            }
        }

        if accept_ready {
            loop_state.accept_burst(&listener);
        }
        for token in ready_conns {
            loop_state.advance(token);
        }
        // Highest index first so swap_remove cannot move an entry that a
        // later (smaller) index still refers to.
        ready_sheds.sort_unstable_by(|a, b| b.cmp(a));
        for index in ready_sheds {
            loop_state.advance_shed(index);
        }
        loop_state.expire(Instant::now());
        shared
            .active_connections
            .store(loop_state.conns.len(), Ordering::SeqCst);
    }

    lanes.shut_down();
    for handle in dispatchers {
        let _ = handle.join();
    }
    shared.active_connections.store(0, Ordering::SeqCst);
}

enum Owner {
    Listener,
    Waker,
    Conn(u64),
    Shed(usize),
}

struct LoopState {
    shared: Arc<Shared>,
    lanes: Arc<Lanes>,
    conns: HashMap<u64, Conn>,
    sheds: Vec<Shed>,
    /// Dispatched-but-unfinished requests per peer IP.
    in_flight: HashMap<IpAddr, usize>,
    /// Tokens parsed but over their IP's in-flight cap, oldest first.
    deferred: VecDeque<u64>,
    next_token: u64,
    cap: usize,
}

impl LoopState {
    fn accept_burst(&mut self, listener: &TcpListener) {
        loop {
            match listener.accept() {
                Ok((stream, peer)) => {
                    if self.conns.len() >= self.shared.max_connections {
                        self.shed(stream);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let now = Instant::now();
                    let token = self.next_token;
                    self.next_token += 1;
                    self.conns.insert(
                        token,
                        Conn {
                            stream,
                            ip: peer.ip(),
                            buf: RequestBuffer::new(),
                            state: State::Reading,
                            deadline: now + self.shared.request_deadline,
                            served: 0,
                            started: now,
                            label: "other",
                        },
                    );
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(_) => return,
            }
        }
    }

    /// Queues a nonblocking 503 on an over-capacity connection. The shed
    /// is both a request and a response for accounting purposes — the
    /// counters move here, whether or not the bytes ever drain.
    fn shed(&mut self, stream: TcpStream) {
        Metrics::inc(&self.shared.metrics.http_requests);
        let response = Response::error(503, "too many connections");
        self.shared.metrics.count_response(response.status);
        let out = response.to_bytes();
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let mut shed = Shed {
            stream,
            out,
            pos: 0,
            deadline: Instant::now() + SHED_WRITE_DEADLINE,
        };
        if !write_some(&mut shed.stream, &shed.out, &mut shed.pos) {
            return; // socket error: nothing more to do
        }
        if !shed.writing() {
            let _ = shed.stream.shutdown(Shutdown::Write);
            if drained(&mut shed.stream) {
                return;
            }
        }
        if self.sheds.len() < MAX_PENDING_SHEDS {
            self.sheds.push(shed);
        }
    }

    fn advance_shed(&mut self, index: usize) {
        let shed = &mut self.sheds[index];
        if shed.writing() {
            if !write_some(&mut shed.stream, &shed.out, &mut shed.pos) {
                self.sheds.swap_remove(index);
                return;
            }
            if shed.writing() {
                return;
            }
            let _ = shed.stream.shutdown(Shutdown::Write);
        }
        if drained(&mut shed.stream) {
            self.sheds.swap_remove(index);
        }
    }

    /// Drives one connection forward on readiness.
    fn advance(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        match &mut conn.state {
            State::Reading => {
                let mut chunk = [0u8; 4096];
                let mut budget = READ_BUDGET;
                loop {
                    match conn.stream.read(&mut chunk) {
                        Ok(0) => {
                            if conn.buf.is_empty() {
                                self.close(token);
                            } else {
                                self.early_error(
                                    token,
                                    Response::error(400, "connection closed mid-request"),
                                );
                            }
                            return;
                        }
                        Ok(n) => {
                            conn.buf.extend(&chunk[..n]);
                            budget = budget.saturating_sub(n);
                            if budget == 0 {
                                break;
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(_) => {
                            self.close(token);
                            return;
                        }
                    }
                }
                self.try_start_request(token);
            }
            State::Writing { out, pos, .. } => {
                if !write_some(&mut conn.stream, out, pos) {
                    self.close(token);
                    return;
                }
                if *pos >= out.len() {
                    self.finish_write(token);
                }
            }
            State::Draining { left } => {
                let mut sink = [0u8; 4096];
                loop {
                    match conn.stream.read(&mut sink) {
                        Ok(0) => {
                            self.close(token);
                            return;
                        }
                        Ok(n) => {
                            *left = left.saturating_sub(n);
                            if *left == 0 {
                                self.close(token);
                                return;
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(_) => {
                            self.close(token);
                            return;
                        }
                    }
                }
            }
            State::Pending(_) | State::Dispatching => {}
        }
    }

    /// Parses as much as the buffer allows and moves the connection into
    /// dispatch (or deferral) when a full request is present.
    fn try_start_request(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if !matches!(conn.state, State::Reading) {
            return;
        }
        match conn.buf.try_parse(self.shared.max_body) {
            Ok(None) => {}
            Ok(Some(request)) => {
                Metrics::inc(&self.shared.metrics.http_requests);
                if conn.served > 0 {
                    Metrics::inc(&self.shared.metrics.keepalive_reuses);
                }
                conn.started = Instant::now();
                conn.label = route_label(&request);
                let ip = conn.ip;
                let over_cap =
                    self.cap > 0 && self.in_flight.get(&ip).copied().unwrap_or(0) >= self.cap;
                if over_cap {
                    conn.state = State::Pending(Box::new(request));
                    self.deferred.push_back(token);
                } else {
                    conn.state = State::Dispatching;
                    *self.in_flight.entry(ip).or_insert(0) += 1;
                    let label = conn.label;
                    self.lanes
                        .push(Work { token, ip, request }, is_interactive(label));
                }
            }
            Err(HttpError::BodyTooLarge { declared, limit }) => {
                Metrics::inc(&self.shared.metrics.http_requests);
                let response = Response::error(
                    413,
                    format!("body too large: {declared} bytes (limit {limit})"),
                );
                self.shared.metrics.count_response(response.status);
                let drain = declared.min(MAX_DRAIN_BYTES);
                conn.label = "other";
                conn.state = State::Writing {
                    out: response.to_bytes(),
                    pos: 0,
                    then: After::Drain(drain),
                };
                conn.deadline = Instant::now() + WRITE_DEADLINE;
                self.advance(token);
            }
            Err(HttpError::BadRequest(message)) => {
                self.early_error(token, Response::error(400, message));
            }
            // try_parse never returns these.
            Err(HttpError::Timeout) | Err(HttpError::Closed) | Err(HttpError::Io(_)) => {
                self.close(token);
            }
        }
    }

    /// Queues a protocol-level error (400/408) that both counts as a
    /// request and closes the connection after writing.
    fn early_error(&mut self, token: u64, response: Response) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        Metrics::inc(&self.shared.metrics.http_requests);
        self.shared.metrics.count_response(response.status);
        conn.label = "other";
        conn.state = State::Writing {
            out: response.to_bytes(),
            pos: 0,
            then: After::Close,
        };
        conn.deadline = Instant::now() + WRITE_DEADLINE;
        self.advance(token);
    }

    /// Handles a dispatcher result: write the response, or close the
    /// connection if the handler panicked.
    fn complete(&mut self, done: Done) {
        if let Some(count) = self.in_flight.get_mut(&done.ip) {
            *count = count.saturating_sub(1);
            if *count == 0 {
                self.in_flight.remove(&done.ip);
            }
        }
        let Some(conn) = self.conns.get_mut(&done.token) else {
            return;
        };
        let Some(mut response) = done.response else {
            Metrics::inc(&self.shared.metrics.connection_panics);
            self.close(done.token);
            return;
        };
        response.close = !done.keep_alive;
        self.shared.metrics.count_response(response.status);
        let then = if response.close {
            After::Close
        } else {
            After::KeepAlive
        };
        conn.state = State::Writing {
            out: response.to_bytes(),
            pos: 0,
            then,
        };
        conn.deadline = Instant::now() + WRITE_DEADLINE;
        self.advance(done.token);
    }

    /// Runs deferred requests whose client dropped back under the cap.
    fn retry_deferred(&mut self) {
        let mut still_blocked = VecDeque::new();
        while let Some(token) = self.deferred.pop_front() {
            let Some(conn) = self.conns.get_mut(&token) else {
                continue;
            };
            let ip = conn.ip;
            let over_cap =
                self.cap > 0 && self.in_flight.get(&ip).copied().unwrap_or(0) >= self.cap;
            if over_cap {
                still_blocked.push_back(token);
                continue;
            }
            let State::Pending(request) = std::mem::replace(&mut conn.state, State::Dispatching)
            else {
                continue;
            };
            *self.in_flight.entry(ip).or_insert(0) += 1;
            let label = conn.label;
            self.lanes.push(
                Work {
                    token,
                    ip,
                    request: *request,
                },
                is_interactive(label),
            );
        }
        self.deferred = still_blocked;
    }

    /// A response finished writing: close, start draining, or loop back to
    /// keep-alive reading (serving any pipelined request already buffered).
    fn finish_write(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let then = match std::mem::replace(&mut conn.state, State::Reading) {
            State::Writing { then, .. } => then,
            other => {
                conn.state = other;
                return;
            }
        };
        match then {
            After::Close => {
                self.shared
                    .metrics
                    .observe_route(conn.label, conn.started.elapsed());
                self.close(token);
            }
            After::Drain(left) => {
                self.shared
                    .metrics
                    .observe_route(conn.label, conn.started.elapsed());
                if left == 0 {
                    self.close(token);
                } else {
                    conn.state = State::Draining { left };
                    conn.deadline = Instant::now() + WRITE_DEADLINE;
                }
            }
            After::KeepAlive => {
                self.shared
                    .metrics
                    .observe_route(conn.label, conn.started.elapsed());
                conn.served += 1;
                conn.deadline = Instant::now() + self.shared.request_deadline;
                conn.started = Instant::now();
                // Pipelining: the next request may already be buffered.
                self.try_start_request(token);
            }
        }
    }

    /// Enforces state deadlines. A fresh connection that never delivered a
    /// request gets a 408 (slow-loris gets told); an idle keep-alive
    /// connection that already served requests is closed silently (that is
    /// the normal end of its life, not a client error).
    fn expire(&mut self, now: Instant) {
        let expired: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, conn)| {
                !matches!(conn.state, State::Pending(_) | State::Dispatching)
                    && now >= conn.deadline
            })
            .map(|(token, _)| *token)
            .collect();
        for token in expired {
            let Some(conn) = self.conns.get(&token) else {
                continue;
            };
            match conn.state {
                State::Reading if conn.served == 0 || !conn.buf.is_empty() => {
                    self.early_error(
                        token,
                        Response::error(408, "request read deadline exceeded"),
                    );
                }
                _ => self.close(token),
            }
        }
        self.sheds.retain(|shed| now < shed.deadline);
    }

    fn close(&mut self, token: u64) {
        self.conns.remove(&token);
    }
}

/// Writes as much of `out[*pos..]` as the socket accepts right now.
/// Returns `false` on a fatal socket error.
fn write_some(stream: &mut TcpStream, out: &[u8], pos: &mut usize) -> bool {
    while *pos < out.len() {
        match stream.write(&out[*pos..]) {
            Ok(0) => return false,
            Ok(n) => *pos += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
    let _ = stream.flush();
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_zero_never_takes_bulk_work() {
        let lanes = Lanes {
            queues: Mutex::new(LaneQueues::default()),
            ready: Condvar::new(),
        };
        let request = Request {
            method: "POST".into(),
            target: "/v1/jobs".into(),
            headers: vec![],
            body: vec![],
            keep_alive: true,
        };
        lanes.push(
            Work {
                token: 1,
                ip: "127.0.0.1".parse().unwrap(),
                request,
            },
            false,
        );
        lanes.shut_down();
        // Dispatcher 0 is interactive-only: with only bulk work queued it
        // must come back empty rather than take the submit.
        assert!(lanes.take(0).is_none());
        assert!(lanes.take(1).is_some());
    }

    #[test]
    fn interactive_labels_are_the_latency_sensitive_routes() {
        for label in ["healthz", "metrics", "status", "result", "cancel"] {
            assert!(is_interactive(label), "{label}");
        }
        for label in ["submit", "sweep", "other"] {
            assert!(!is_interactive(label), "{label}");
        }
    }
}
