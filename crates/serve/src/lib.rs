//! `emgrid-serve`: a zero-dependency analysis daemon for the EM power-grid
//! toolkit.
//!
//! The crate turns the library pipelines (via-array characterization, full
//! power-grid Monte Carlo, FEA stress characterization) into a long-running
//! service with a small JSON-over-HTTP API, built entirely on `std`:
//!
//! * [`server`] — hand-rolled HTTP/1.1 listener, routing, and lifecycle;
//! * [`spec`] — strict job-spec parsing with a canonical persisted form;
//! * [`runner`] — job execution against the deterministic MC sessions;
//! * [`store`] — crash-safe per-job state directories (atomic renames);
//! * [`json`] — deterministic JSON reader/writer;
//! * [`http`] — minimal request parsing and response writing;
//! * [`metrics`] — Prometheus text exposition counters.
//!
//! Two properties anchor the design. **Determinism:** a job's result
//! document depends only on its spec — never on worker count, queue order,
//! or whether the daemon was restarted mid-job — so identical submissions
//! produce byte-identical results. **Checkpointability:** Monte Carlo jobs
//! persist checkpoints at fixed trial watermarks, and a daemon killed with
//! `kill -9` requeues and resumes unfinished jobs on restart without
//! re-running committed trials.

#[cfg(unix)]
pub(crate) mod event_loop;
pub mod http;
pub mod json;
pub mod metrics;
pub mod poll;
pub mod runner;
pub mod server;
pub mod spec;
pub mod store;

pub use server::{IoBackend, JobsApi, JobsApiError, RouteHook, ServeConfig, Server};
pub use spec::{
    DeckSource, JobBody, JobSpec, McParams, ResolvedAnalyze, ResolvedFea, ResolvedJob, ResolvedMc,
    SolverSpec, SpecError, VariationSpec, SCHEMA_VERSION,
};
pub use store::{DiskJob, JobStore};
