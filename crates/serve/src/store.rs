//! On-disk job state, laid out for crash-safe restarts.
//!
//! Each job owns a directory `<state_dir>/<id>/` containing:
//!
//! | file         | meaning                                              |
//! |--------------|------------------------------------------------------|
//! | `spec.json`  | the accepted job spec (canonical JSON)               |
//! | `checkpoint` | latest MC checkpoint (versioned text format)         |
//! | `result.json`| final result document, served verbatim               |
//! | `error`      | failure message when the job failed                  |
//! | `cancelled`  | marker: a client cancelled the job — never requeue   |
//! | `sweep`      | owning sweep id, when a sweep submitted the job      |
//!
//! Every write goes through the same atomic tmp-file + rename discipline
//! as the FEA [`StressCache`](emgrid_via::StressCache): readers (and a
//! daemon restarted after `kill -9`) see either the previous complete
//! file or the new complete file, never a torn one. Status is *derived*
//! from which files exist, so there is no separate status record to get
//! out of sync.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use emgrid_runtime::JobId;

use crate::json::{self, Json};

/// Monotonic tmp-file disambiguator (several jobs may checkpoint at once).
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// A job's state on disk, as found by a startup scan.
#[derive(Debug)]
pub enum DiskJob {
    /// `result.json` exists: the job finished.
    Done,
    /// `error` exists: the job failed with this message.
    Failed(String),
    /// `cancelled` marker exists: a client cancelled it.
    Cancelled,
    /// Only `spec.json` (and possibly `checkpoint`): the daemon died with
    /// this job unfinished; it must be requeued.
    Unfinished {
        /// The persisted spec document.
        spec: Json,
        /// Whether a checkpoint is available to resume from.
        has_checkpoint: bool,
    },
}

/// Filesystem root for job state.
#[derive(Debug, Clone)]
pub struct JobStore {
    root: PathBuf,
}

impl JobStore {
    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Propagates the `create_dir_all` failure.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<JobStore> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(JobStore { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The directory owned by one job.
    pub fn dir(&self, id: JobId) -> PathBuf {
        self.root.join(id.to_string())
    }

    fn write_atomic(&self, id: JobId, file: &str, bytes: &[u8]) -> io::Result<()> {
        let dir = self.dir(id);
        fs::create_dir_all(&dir)?;
        let tmp = dir.join(format!(
            ".{file}.{}.{}.tmp",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::write(&tmp, bytes)?;
        fs::rename(&tmp, dir.join(file))
    }

    /// Persists the accepted spec (must happen before the job is queued).
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn write_spec(&self, id: JobId, spec: &Json) -> io::Result<()> {
        self.write_atomic(id, "spec.json", spec.to_string().as_bytes())
    }

    /// Persists a checkpoint snapshot.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn write_checkpoint(&self, id: JobId, text: &str) -> io::Result<()> {
        self.write_atomic(id, "checkpoint", text.as_bytes())
    }

    /// Reads the latest checkpoint, if one was ever written.
    pub fn read_checkpoint(&self, id: JobId) -> Option<String> {
        fs::read_to_string(self.dir(id).join("checkpoint")).ok()
    }

    /// Persists the final result document.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn write_result(&self, id: JobId, result: &str) -> io::Result<()> {
        self.write_atomic(id, "result.json", result.as_bytes())
    }

    /// Reads the final result document verbatim.
    pub fn read_result(&self, id: JobId) -> Option<Vec<u8>> {
        fs::read(self.dir(id).join("result.json")).ok()
    }

    /// Persists a failure message.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn write_error(&self, id: JobId, message: &str) -> io::Result<()> {
        self.write_atomic(id, "error", message.as_bytes())
    }

    /// Reads the failure message, if the job failed.
    pub fn read_error(&self, id: JobId) -> Option<String> {
        fs::read_to_string(self.dir(id).join("error")).ok()
    }

    /// Marks the job client-cancelled so a restart will not requeue it.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn mark_cancelled(&self, id: JobId) -> io::Result<()> {
        self.write_atomic(id, "cancelled", b"")
    }

    /// Whether the job carries the client-cancelled marker.
    pub fn is_cancelled(&self, id: JobId) -> bool {
        self.dir(id).join("cancelled").exists()
    }

    /// Records which sweep owns this job, so status documents can point
    /// clients back at `GET /v1/sweeps/:id`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn write_sweep(&self, id: JobId, sweep: &str) -> io::Result<()> {
        self.write_atomic(id, "sweep", sweep.as_bytes())
    }

    /// The owning sweep id, if a sweep submitted this job.
    pub fn read_sweep(&self, id: JobId) -> Option<String> {
        fs::read_to_string(self.dir(id).join("sweep")).ok()
    }

    /// Whether the job has any state on disk at all.
    pub fn exists(&self, id: JobId) -> bool {
        self.dir(id).join("spec.json").exists()
    }

    /// Classifies one job's on-disk state ([`None`] if it has no spec).
    pub fn load(&self, id: JobId) -> Option<DiskJob> {
        let dir = self.dir(id);
        let spec_text = fs::read_to_string(dir.join("spec.json")).ok()?;
        if dir.join("result.json").exists() {
            return Some(DiskJob::Done);
        }
        if let Some(message) = self.read_error(id) {
            return Some(DiskJob::Failed(message));
        }
        if self.is_cancelled(id) {
            return Some(DiskJob::Cancelled);
        }
        // A torn spec cannot happen (atomic rename), but a spec written by
        // a newer incompatible version could fail to parse; surface that
        // as a failed job rather than refusing to start.
        match json::parse(&spec_text) {
            Ok(spec) => Some(DiskJob::Unfinished {
                spec,
                has_checkpoint: dir.join("checkpoint").exists(),
            }),
            Err(e) => Some(DiskJob::Failed(format!("unreadable spec: {e}"))),
        }
    }

    /// Scans the store, returning every job id found (sorted ascending)
    /// with its classified state. Non-numeric directory entries and stray
    /// tmp files are ignored.
    pub fn scan(&self) -> Vec<(JobId, DiskJob)> {
        let Ok(entries) = fs::read_dir(&self.root) else {
            return Vec::new();
        };
        let mut ids: Vec<JobId> = entries
            .flatten()
            .filter_map(|e| e.file_name().to_str().and_then(|n| n.parse().ok()))
            .collect();
        ids.sort_unstable();
        ids.into_iter()
            .filter_map(|id| self.load(id).map(|state| (id, state)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> JobStore {
        let root = std::env::temp_dir().join(format!(
            "emgrid-store-{tag}-{}-{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&root);
        JobStore::open(root).unwrap()
    }

    #[test]
    fn lifecycle_files_drive_the_derived_state() {
        let store = temp_store("lifecycle");
        let spec = Json::Obj(vec![("kind".into(), Json::s("characterize"))]);
        store.write_spec(7, &spec).unwrap();
        assert!(matches!(
            store.load(7),
            Some(DiskJob::Unfinished {
                has_checkpoint: false,
                ..
            })
        ));

        store
            .write_checkpoint(7, "emgrid-via-checkpoint-v1\n")
            .unwrap();
        assert!(matches!(
            store.load(7),
            Some(DiskJob::Unfinished {
                has_checkpoint: true,
                ..
            })
        ));
        assert_eq!(
            store.read_checkpoint(7).as_deref(),
            Some("emgrid-via-checkpoint-v1\n")
        );

        store.write_result(7, "{\"ok\":true}").unwrap();
        assert!(matches!(store.load(7), Some(DiskJob::Done)));
        assert_eq!(store.read_result(7).unwrap(), b"{\"ok\":true}");

        // Unknown ids have no state.
        assert!(store.load(99).is_none());
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn failed_and_cancelled_states_are_terminal() {
        let store = temp_store("terminal");
        let spec = Json::Obj(vec![]);
        store.write_spec(1, &spec).unwrap();
        store.write_error(1, "boom").unwrap();
        assert!(matches!(store.load(1), Some(DiskJob::Failed(m)) if m == "boom"));

        store.write_spec(2, &spec).unwrap();
        store.mark_cancelled(2).unwrap();
        assert!(matches!(store.load(2), Some(DiskJob::Cancelled)));
        assert!(store.is_cancelled(2));
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn sweep_marker_round_trips_without_affecting_state() {
        let store = temp_store("sweep");
        let spec = Json::Obj(vec![]);
        store.write_spec(5, &spec).unwrap();
        assert_eq!(store.read_sweep(5), None);
        store.write_sweep(5, "a1b2c3d4e5f60718").unwrap();
        assert_eq!(store.read_sweep(5).as_deref(), Some("a1b2c3d4e5f60718"));
        // The marker is metadata: the derived lifecycle state is unchanged.
        assert!(matches!(store.load(5), Some(DiskJob::Unfinished { .. })));
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn scan_sorts_ids_and_skips_junk() {
        let store = temp_store("scan");
        let spec = Json::Obj(vec![]);
        for id in [10u64, 2, 33] {
            store.write_spec(id, &spec).unwrap();
        }
        fs::create_dir_all(store.root().join("not-a-job")).unwrap();
        fs::write(store.root().join(".orphan.tmp"), b"x").unwrap();
        let ids: Vec<JobId> = store.scan().into_iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![2, 10, 33]);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn writes_leave_no_tmp_droppings() {
        let store = temp_store("tmp");
        store.write_spec(1, &Json::Obj(vec![])).unwrap();
        store.write_checkpoint(1, "x").unwrap();
        store.write_result(1, "{}").unwrap();
        let names: Vec<String> = fs::read_dir(store.dir(1))
            .unwrap()
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert!(
            names.iter().all(|n| !n.ends_with(".tmp")),
            "tmp files left behind: {names:?}"
        );
        let _ = fs::remove_dir_all(store.root());
    }
}
