//! The daemon: TCP accept loop, routing, and the job-engine wiring.
//!
//! # Endpoints
//!
//! | method & path            | purpose                                    |
//! |--------------------------|--------------------------------------------|
//! | `POST /v1/jobs`          | submit a job spec; `202` with its id       |
//! | `GET /v1/jobs/:id`       | status: queued/running/checkpointed/…      |
//! | `GET /v1/jobs/:id/result`| the result document, byte-for-byte         |
//! | `DELETE /v1/jobs/:id`    | cancel (running jobs checkpoint first)     |
//! | `GET /healthz`           | liveness probe                             |
//! | `GET /metrics`           | Prometheus text exposition                 |
//!
//! # Restart semantics
//!
//! All authoritative job state lives in the [`JobStore`]; on startup the
//! daemon scans it and requeues every unfinished job under its original
//! id. A job with a checkpoint resumes from its watermark instead of
//! restarting trial zero, and because the whole pipeline is deterministic
//! the post-restart result is byte-identical to an uninterrupted run —
//! `kill -9` costs at most `checkpoint_every` trials of progress.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use emgrid_runtime::{JobEngine, JobId, JobOutcome, JobStatus, SubmitError};
use emgrid_spice::ingest::{ingest, IngestError, IngestLimits, IngestOptions};

use crate::http::{read_request_buffered, HttpError, Request, RequestBuffer, Response};
use crate::json::{self, Json};
use crate::metrics::Metrics;
use crate::runner::{run_job, PhaseLog, RunEnv};
use crate::spec::{DeckSource, JobBody, JobSpec};
use crate::store::{DiskJob, JobStore};

/// A pluggable handler consulted for requests no built-in route claims
/// (see [`Server::set_route_hook`]). Returning `None` falls through to
/// the daemon's `404`.
pub type RouteHook = Arc<dyn Fn(&Request) -> Option<Response> + Send + Sync>;

/// Which connection I/O layer drives the daemon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoBackend {
    /// Thread-per-connection with blocking reads — the legacy backend,
    /// kept during the transition and for non-Unix targets.
    Threads,
    /// A single `poll(2)` readiness event loop plus a dispatcher pool
    /// (see [`crate::event_loop`]): nonblocking accepts/reads/writes,
    /// keep-alive + pipelining, and admission control.
    Poll,
}

impl Default for IoBackend {
    fn default() -> Self {
        if cfg!(unix) {
            IoBackend::Poll
        } else {
            IoBackend::Threads
        }
    }
}

impl std::str::FromStr for IoBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "threads" => Ok(IoBackend::Threads),
            "poll" => Ok(IoBackend::Poll),
            other => Err(format!("unknown io backend `{other}` (threads|poll)")),
        }
    }
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Job-engine worker threads.
    pub workers: usize,
    /// Bounded queue depth; submissions beyond it get `503`.
    pub queue_depth: usize,
    /// Trials between Monte Carlo checkpoints (0 disables).
    pub checkpoint_every: usize,
    /// Root directory for per-job state.
    pub state_dir: PathBuf,
    /// Stress-cache directory for `fea` jobs (`None` = crate default).
    pub cache_dir: Option<PathBuf>,
    /// Largest accepted request body, bytes.
    pub max_body_bytes: usize,
    /// Largest accepted inline netlist, lines. The ingest default caps a
    /// deck at 400k lines — far below a chip-scale benchgen grid, whose
    /// decks run to millions of cards — so screening-scale deployments
    /// raise this (`--max-netlist-lines`) instead of getting the deck
    /// rejected at the door.
    pub max_netlist_lines: usize,
    /// Concurrent connection threads; connections beyond the cap are shed
    /// with an immediate `503` instead of spawning.
    pub max_connections: usize,
    /// Total time a client gets to deliver one request (the per-read
    /// timeout inside the request reader is re-derived from this).
    pub request_deadline: Duration,
    /// Enables `POST /debug/panic`, a route whose handler panics — used by
    /// regression tests and the CI smoke job (via the hidden
    /// `--debug-panic-route` serve flag) to prove that panicking connection
    /// threads cannot leak `active_connections` slots. Off by default.
    pub debug_panic_route: bool,
    /// Which I/O layer drives connections (`--io {threads,poll}`).
    pub io: IoBackend,
    /// Dispatcher threads for the poll backend (min 2; thread 0 is
    /// reserved for interactive routes).
    pub dispatchers: usize,
    /// Per-peer-IP in-flight request cap for the poll backend (0 =
    /// unlimited). Requests over the cap are deferred, not rejected, so
    /// one aggressive client cannot occupy every dispatcher.
    pub max_in_flight_per_client: usize,
    /// Total budget graceful shutdown spends waiting for outstanding jobs
    /// — shared across all of them, not per job, so N stuck jobs cost one
    /// grace period rather than N.
    pub shutdown_grace: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_depth: 64,
            checkpoint_every: 64,
            state_dir: PathBuf::from("results").join("jobs"),
            cache_dir: None,
            max_body_bytes: 8 * 1024 * 1024,
            max_netlist_lines: IngestLimits::default().max_lines,
            max_connections: 256,
            request_deadline: Duration::from_secs(30),
            debug_panic_route: false,
            io: IoBackend::default(),
            dispatchers: 2,
            max_in_flight_per_client: 64,
            shutdown_grace: Duration::from_secs(600),
        }
    }
}

pub(crate) struct Shared {
    pub(crate) engine: JobEngine<String>,
    pub(crate) store: JobStore,
    pub(crate) metrics: Metrics,
    pub(crate) phases: PhaseLog,
    pub(crate) checkpoint_every: usize,
    pub(crate) cache_dir: Option<PathBuf>,
    pub(crate) max_body: usize,
    pub(crate) max_netlist_lines: usize,
    pub(crate) max_connections: usize,
    pub(crate) request_deadline: Duration,
    pub(crate) debug_panic_route: bool,
    pub(crate) next_id: AtomicU64,
    pub(crate) shutting_down: AtomicBool,
    /// Extension routes (e.g. `/v1/sweeps` from `emgrid-batch`), consulted
    /// only after every built-in route has declined the request.
    pub(crate) route_hook: RwLock<Option<RouteHook>>,
    /// Live connections (threads alive on the threads backend; open
    /// event-loop connections on the poll backend), for load shedding.
    pub(crate) active_connections: Arc<AtomicUsize>,
    /// Ids submitted or requeued by this process that may still be live,
    /// for shutdown (terminal ids are pruned as new work arrives).
    pub(crate) known: Mutex<Vec<JobId>>,
}

/// A running daemon instance.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    shutdown_grace: Duration,
}

impl Server {
    /// Binds, requeues unfinished jobs from the state directory, and
    /// starts accepting connections.
    ///
    /// # Errors
    ///
    /// Propagates bind and state-directory failures.
    pub fn start(config: ServeConfig) -> std::io::Result<Server> {
        let store = JobStore::open(&config.state_dir)?;
        // Classify on-disk jobs *before* sizing the engine: at kill time up
        // to workers + queue_depth unfinished jobs can exist (running jobs
        // hold no queue slot), and an operator may restart with a smaller
        // --queue-depth. The startup queue must fit every unfinished job or
        // requeueing would fail on every boot until the state dir is pruned.
        let mut unfinished = Vec::new();
        let mut max_id = 0;
        for (id, state) in store.scan() {
            max_id = max_id.max(id);
            match state {
                DiskJob::Unfinished {
                    spec,
                    has_checkpoint,
                } => match JobSpec::from_json(&spec) {
                    Ok(spec) => unfinished.push((id, spec, has_checkpoint)),
                    Err(e) => {
                        let _ = store.write_error(id, &format!("unreadable spec: {e}"));
                    }
                },
                DiskJob::Done | DiskJob::Failed(_) | DiskJob::Cancelled => {}
            }
        }
        let queue_depth = config.queue_depth.max(unfinished.len());
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            engine: JobEngine::new(config.workers, queue_depth),
            store,
            metrics: Metrics::default(),
            phases: PhaseLog::default(),
            checkpoint_every: config.checkpoint_every,
            cache_dir: config.cache_dir,
            max_body: config.max_body_bytes,
            max_netlist_lines: config.max_netlist_lines,
            max_connections: config.max_connections.max(1),
            request_deadline: config.request_deadline,
            debug_panic_route: config.debug_panic_route,
            next_id: AtomicU64::new(max_id + 1),
            shutting_down: AtomicBool::new(false),
            route_hook: RwLock::new(None),
            active_connections: Arc::new(AtomicUsize::new(0)),
            known: Mutex::new(Vec::new()),
        });
        for (id, spec, has_checkpoint) in unfinished {
            if has_checkpoint {
                Metrics::inc(&shared.metrics.jobs_resumed);
            }
            if let Err(e) = enqueue(&shared, id, spec) {
                // The queue was sized to fit, so this cannot happen — but a
                // startup must never turn one bad job into a crash loop. The
                // job stays unfinished on disk for the next restart.
                eprintln!("emgrid-serve: cannot requeue job {id}: {e}");
            }
        }

        let accept_shared = Arc::clone(&shared);
        #[cfg(unix)]
        let io = config.io;
        #[cfg(not(unix))]
        let io = IoBackend::Threads;
        let dispatchers = config.dispatchers;
        let max_in_flight_per_client = config.max_in_flight_per_client;
        let accept = std::thread::Builder::new()
            .name("emgrid-accept".into())
            .spawn(move || match io {
                IoBackend::Threads => accept_loop(listener, accept_shared),
                #[cfg(unix)]
                IoBackend::Poll => crate::event_loop::run(
                    listener,
                    accept_shared,
                    crate::event_loop::EventLoopOptions {
                        dispatchers,
                        max_in_flight_per_client,
                    },
                ),
                #[cfg(not(unix))]
                IoBackend::Poll => unreachable!("poll backend is unix-only"),
            })
            .expect("spawn accept thread");
        Ok(Server {
            shared,
            addr,
            accept: Some(accept),
            shutdown_grace: config.shutdown_grace,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The root of the job state directory.
    pub fn state_dir(&self) -> PathBuf {
        self.shared.store.root().to_path_buf()
    }

    /// Blocks the calling thread until the accept loop exits — i.e. until
    /// the process is killed or another thread initiates shutdown. This is
    /// how `emgrid serve` runs as a foreground daemon.
    pub fn wait(mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }

    /// Installs the extension-route handler consulted for requests no
    /// built-in route claims (e.g. `/v1/sweeps` from `emgrid-batch`).
    pub fn set_route_hook(&self, hook: RouteHook) {
        *self
            .shared
            .route_hook
            .write()
            .unwrap_or_else(|e| e.into_inner()) = Some(hook);
    }

    /// A handle for submitting jobs programmatically (used by the sweep
    /// engine), sharing this daemon's id space, store, and job engine.
    pub fn jobs_api(&self) -> JobsApi {
        JobsApi {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Graceful shutdown: stop accepting, let queued and running jobs
    /// finish, then stop the workers.
    pub fn shutdown(mut self) {
        self.stop(false);
    }

    /// Fast shutdown: stop accepting and cancel outstanding jobs. Running
    /// Monte Carlo jobs commit a final checkpoint on the way out, so a
    /// later restart resumes them without losing committed trials.
    pub fn shutdown_now(mut self) {
        self.stop(true);
    }

    fn stop(&mut self, cancel_jobs: bool) {
        if self.shared.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the accept loop so it observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        // A poisoned lock only means some connection thread panicked while
        // holding it; the id list carries no invariant worth dying over.
        let ids: Vec<JobId> = self
            .shared
            .known
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        if cancel_jobs {
            for id in &ids {
                self.shared.engine.cancel(*id);
            }
        }
        wait_all_terminal(&self.shared.engine, &ids, self.shutdown_grace);
        self.shared.engine.begin_shutdown();
    }
}

/// Waits for every id to reach a terminal state under ONE shared grace
/// deadline. The old per-job `wait_terminal(id, 600s)` loop meant N stuck
/// jobs stalled shutdown for N×600s; here the budget is global, and once
/// it is spent the remaining ids still get a zero-timeout status check
/// (already-terminal jobs never block).
fn wait_all_terminal(engine: &JobEngine<String>, ids: &[JobId], grace: Duration) {
    let deadline = Instant::now() + grace;
    for id in ids {
        let left = deadline.saturating_duration_since(Instant::now());
        let _ = engine.wait_terminal(*id, left);
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop(true);
    }
}

/// Why [`JobsApi::submit`] or [`JobsApi::resubmit`] rejected a job.
#[derive(Debug)]
pub enum JobsApiError {
    /// The engine's bounded queue is full; retry after jobs drain.
    QueueFull,
    /// The daemon is shutting down; no new work is accepted.
    ShuttingDown,
    /// The spec could not be persisted (jobs must never run spec-less).
    Persist(std::io::Error),
}

impl std::fmt::Display for JobsApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobsApiError::QueueFull => write!(f, "job queue full"),
            JobsApiError::ShuttingDown => write!(f, "daemon shutting down"),
            JobsApiError::Persist(e) => write!(f, "cannot persist job spec: {e}"),
        }
    }
}

impl std::error::Error for JobsApiError {}

/// Programmatic job submission sharing the daemon's id space, store, and
/// engine — how the sweep engine fans jobs out without going through
/// HTTP. Cloning is cheap (one `Arc`).
#[derive(Clone)]
pub struct JobsApi {
    shared: Arc<Shared>,
}

impl JobsApi {
    /// Allocates the next job id (never reused within this process).
    pub fn allocate_id(&self) -> JobId {
        self.shared.next_id.fetch_add(1, Ordering::SeqCst)
    }

    /// Ensures future [`allocate_id`](Self::allocate_id) calls return ids
    /// strictly above `floor` — called by the sweep engine after reading
    /// a manifest so resumed sweeps never collide with their own jobs.
    pub fn reserve_above(&self, floor: JobId) {
        self.shared.next_id.fetch_max(floor + 1, Ordering::SeqCst);
    }

    /// Persists `spec` under `id` and queues it.
    ///
    /// The caller owns `id` exclusively (the engine panics on duplicate
    /// live ids, so callers must confirm via the store/engine that the id
    /// is unknown before submitting).
    ///
    /// # Errors
    ///
    /// [`JobsApiError::Persist`] if the spec cannot be written,
    /// [`JobsApiError::QueueFull`] / [`JobsApiError::ShuttingDown`] from
    /// the engine. On engine rejection the persisted spec is left on disk
    /// so a later retry (or a daemon restart) can still run the job.
    pub fn submit(&self, id: JobId, spec: &JobSpec) -> Result<(), JobsApiError> {
        self.shared
            .store
            .write_spec(id, &spec.to_json())
            .map_err(JobsApiError::Persist)?;
        self.resubmit(id, spec.clone())
    }

    /// Queues a job whose spec is already on disk under `id`.
    ///
    /// # Errors
    ///
    /// [`JobsApiError::QueueFull`] / [`JobsApiError::ShuttingDown`].
    pub fn resubmit(&self, id: JobId, spec: JobSpec) -> Result<(), JobsApiError> {
        enqueue(&self.shared, id, spec).map_err(|e| match e {
            SubmitError::QueueFull => JobsApiError::QueueFull,
            SubmitError::ShuttingDown => JobsApiError::ShuttingDown,
        })
    }

    /// The engine's view of a job (`None` once evicted or never known).
    pub fn engine_status(&self, id: JobId) -> Option<JobStatus> {
        self.shared.engine.status(id)
    }

    /// The daemon's job store (authoritative terminal state).
    pub fn store(&self) -> JobStore {
        self.shared.store.clone()
    }

    /// Whether the daemon has begun shutting down.
    pub fn shutting_down(&self) -> bool {
        self.shared.shutting_down.load(Ordering::SeqCst)
    }
}

/// Queues a job closure under `id`.
fn enqueue(shared: &Arc<Shared>, id: JobId, spec: JobSpec) -> Result<(), SubmitError> {
    let job_shared = Arc::clone(shared);
    let submitted = Instant::now();
    shared.engine.submit_with_id(id, move |ctx| {
        job_shared
            .metrics
            .queue_wait
            .observe_duration(submitted.elapsed());
        let started = Instant::now();
        let env = RunEnv {
            store: &job_shared.store,
            metrics: &job_shared.metrics,
            checkpoint_every: job_shared.checkpoint_every,
            cache_dir: job_shared.cache_dir.as_deref(),
            max_netlist_bytes: job_shared.max_body,
            max_netlist_lines: job_shared.max_netlist_lines,
            phases: Some(&job_shared.phases),
        };
        let outcome = run_job(&spec, ctx, &env);
        job_shared
            .metrics
            .job_duration
            .observe_duration(started.elapsed());
        // Persist the terminal state before the engine observes it, so a
        // `done` status always has its result on disk.
        match &outcome {
            JobOutcome::Done(result) => {
                let _ = job_shared.store.write_result(ctx.id, result);
                Metrics::inc(&job_shared.metrics.jobs_done);
            }
            JobOutcome::Failed(message) => {
                let _ = job_shared.store.write_error(ctx.id, message);
                Metrics::inc(&job_shared.metrics.jobs_failed);
            }
            JobOutcome::Cancelled => {
                Metrics::inc(&job_shared.metrics.jobs_cancelled);
            }
        }
        outcome
    })?;
    Metrics::inc(&shared.metrics.jobs_submitted);
    // Recover from poisoning: a plain id vec has no invariant a panicked
    // thread could have broken, and dying here would turn one crashed
    // connection into a daemon that rejects every later submission.
    let mut known = shared.known.lock().unwrap_or_else(|e| e.into_inner());
    // Terminal ids no longer need shutdown handling; pruning here keeps
    // the list proportional to live work, not to total jobs ever run.
    known.retain(|kid| {
        shared
            .engine
            .status(*kid)
            .is_some_and(|status| !status.is_terminal())
    });
    known.push(id);
    Ok(())
}

/// Owns one `active_connections` slot. The decrement lives in `Drop` so
/// it runs on every exit path out of the connection thread — normal
/// return, spawn failure, *and* unwinding from a panic. Before this
/// guard, each panicking handler leaked its slot permanently; after
/// `max_connections` panics the daemon would shed all traffic with 503s
/// forever.
struct ConnectionSlot {
    shared: Arc<Shared>,
}

impl Drop for ConnectionSlot {
    fn drop(&mut self) {
        self.shared
            .active_connections
            .fetch_sub(1, Ordering::SeqCst);
        if std::thread::panicking() {
            Metrics::inc(&self.shared.metrics.connection_panics);
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        match listener.accept() {
            Ok((mut stream, _)) => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                let active = &shared.active_connections;
                if active.fetch_add(1, Ordering::SeqCst) >= shared.max_connections {
                    active.fetch_sub(1, Ordering::SeqCst);
                    // The shed is both a request and a response for
                    // accounting, and the write is a single nonblocking
                    // best-effort attempt: a client that never reads its
                    // socket must not be able to stall the accept thread
                    // (the old 1s blocking write let a handful of slow
                    // clients freeze *all* accepts).
                    Metrics::inc(&shared.metrics.http_requests);
                    let response = Response::error(503, "too many connections");
                    shared.metrics.count_response(response.status);
                    if stream.set_nonblocking(true).is_ok() {
                        use std::io::{Read as _, Write as _};
                        let _ = stream.write(&response.to_bytes());
                        // Best-effort RST avoidance: FIN our side, then
                        // discard whatever request bytes already arrived
                        // so the close is clean and the 503 survives.
                        let _ = stream.shutdown(std::net::Shutdown::Write);
                        let mut scratch = [0u8; 4096];
                        while matches!(stream.read(&mut scratch), Ok(1..)) {}
                    }
                    continue;
                }
                let slot = ConnectionSlot {
                    shared: Arc::clone(&shared),
                };
                let conn_shared = Arc::clone(&shared);
                // If the spawn itself fails, the closure is dropped
                // unstarted and the slot guard inside releases the slot.
                let _ = std::thread::Builder::new()
                    .name("emgrid-conn".into())
                    .spawn(move || {
                        let _slot = slot;
                        handle_connection(stream, conn_shared);
                    });
            }
            Err(_) => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

/// The latency-histogram label for a parsed request.
pub(crate) fn route_label(request: &Request) -> &'static str {
    let segments: Vec<&str> = request
        .path()
        .split('/')
        .filter(|s| !s.is_empty())
        .collect();
    match segments.as_slice() {
        ["healthz"] => "healthz",
        ["metrics"] => "metrics",
        ["v1", "jobs"] => "submit",
        ["v1", "jobs", _] if request.method == "DELETE" => "cancel",
        ["v1", "jobs", _] => "status",
        ["v1", "jobs", _, "result"] => "result",
        ["v1", "sweeps", ..] => "sweep",
        _ => "other",
    }
}

/// Counts and writes one response; every response the daemon produces
/// (routed or early-error) goes through here so the
/// `emgrid_http_responses_total` family sees them all.
fn send(stream: &mut TcpStream, response: &Response, metrics: &Metrics) {
    metrics.count_response(response.status);
    let _ = response.write_to(stream);
}

fn handle_connection(mut stream: TcpStream, shared: Arc<Shared>) {
    // A client that stops reading must not pin the thread on writes either.
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let mut buffer = RequestBuffer::new();
    let mut served = 0u64;
    // The keep-alive loop: each iteration reads and serves one request,
    // with leftover pipelined bytes carried across iterations in `buffer`.
    loop {
        let started = Instant::now();
        let deadline = started + shared.request_deadline;
        let (label, response) =
            match read_request_buffered(&mut stream, &mut buffer, shared.max_body, deadline) {
                Ok(request) => {
                    Metrics::inc(&shared.metrics.http_requests);
                    if served > 0 {
                        Metrics::inc(&shared.metrics.keepalive_reuses);
                    }
                    let mut response = route(&request, &shared);
                    // Routed responses — errors included — honor the client's
                    // keep-alive intent; only protocol-level failures below
                    // force a close.
                    response.close = !request.keep_alive;
                    (route_label(&request), response)
                }
                Err(HttpError::BodyTooLarge { declared, limit }) => {
                    Metrics::inc(&shared.metrics.http_requests);
                    let response = Response::error(
                        413,
                        format!("body too large: {declared} bytes (limit {limit})"),
                    );
                    send(&mut stream, &response, &shared.metrics);
                    // Drain (bounded) what the client already sent so the close
                    // is a FIN, not an RST that could destroy the 413 in flight.
                    let mut sink = [0u8; 4096];
                    let mut left = declared.min(1 << 20);
                    while left > 0 && Instant::now() < deadline {
                        match std::io::Read::read(&mut stream, &mut sink) {
                            Ok(0) | Err(_) => break,
                            Ok(n) => left = left.saturating_sub(n),
                        }
                    }
                    shared.metrics.observe_route("other", started.elapsed());
                    return;
                }
                Err(HttpError::Timeout) => {
                    // An idle keep-alive connection that already served a
                    // request just went quiet — the normal end of its life,
                    // not a client error worth a 408.
                    if served > 0 && buffer.is_empty() {
                        return;
                    }
                    Metrics::inc(&shared.metrics.http_requests);
                    (
                        "other",
                        Response::error(408, "request read deadline exceeded"),
                    )
                }
                Err(HttpError::BadRequest(message)) => {
                    Metrics::inc(&shared.metrics.http_requests);
                    ("other", Response::error(400, message))
                }
                Err(HttpError::Closed) | Err(HttpError::Io(_)) => return,
            };
        let close = response.close;
        send(&mut stream, &response, &shared.metrics);
        shared.metrics.observe_route(label, started.elapsed());
        if close {
            return;
        }
        served += 1;
    }
}

pub(crate) fn route(request: &Request, shared: &Arc<Shared>) -> Response {
    let segments: Vec<&str> = request
        .path()
        .split('/')
        .filter(|s| !s.is_empty())
        .collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => Response::json(
            200,
            &Json::Obj(vec![
                ("status".into(), Json::s("ok")),
                ("version".into(), Json::s(env!("CARGO_PKG_VERSION"))),
            ]),
        ),
        ("GET", ["metrics"]) => Response::text(
            200,
            shared.metrics.render(
                shared.engine.queue_len(),
                shared.engine.running(),
                shared.active_connections.load(Ordering::SeqCst),
            ),
        ),
        ("POST", ["debug", "panic"]) if shared.debug_panic_route => {
            panic!("induced panic (debug route)")
        }
        ("POST", ["v1", "jobs"]) => submit(request, shared),
        ("GET", ["v1", "jobs", id]) => match id.parse() {
            Ok(id) => status(id, shared),
            Err(_) => Response::error(404, "job ids are integers"),
        },
        ("GET", ["v1", "jobs", id, "result"]) => match id.parse() {
            Ok(id) => result(id, shared),
            Err(_) => Response::error(404, "job ids are integers"),
        },
        ("DELETE", ["v1", "jobs", id]) => match id.parse() {
            Ok(id) => cancel(id, shared),
            Err(_) => Response::error(404, "job ids are integers"),
        },
        (_, ["healthz" | "metrics"]) | (_, ["v1", "jobs", ..]) => {
            Response::error(405, "method not allowed")
        }
        _ => {
            // A poisoned hook lock means a handler panicked mid-request;
            // the Arc inside carries no state a panic could corrupt.
            let hook = shared
                .route_hook
                .read()
                .unwrap_or_else(|e| e.into_inner())
                .clone();
            match hook.and_then(|hook| hook(request)) {
                Some(response) => response,
                None => Response::error(404, "no such route"),
            }
        }
    }
}

fn submit(request: &Request, shared: &Arc<Shared>) -> Response {
    let Ok(body) = std::str::from_utf8(&request.body) else {
        return Response::error(400, "body must be UTF-8 JSON");
    };
    let doc = match json::parse(body) {
        Ok(doc) => doc,
        Err(e) => return Response::error(400, e.to_string()),
    };
    let spec = match JobSpec::from_json(&doc) {
        Ok(spec) => spec,
        // Structured body: {"error": ..., "field": ...} so clients can
        // point at the offending spec field without parsing prose.
        Err(e) => return Response::json(400, &e.to_json()),
    };
    // Uploaded netlists are screened at the door: a deck that cannot pass
    // ingest would only fail later inside a worker, wasting queue space.
    if let JobBody::Analyze {
        deck: DeckSource::Netlist(text),
        repair_vias,
        ..
    } = &spec.body
    {
        let options = IngestOptions {
            limits: IngestLimits {
                max_bytes: shared.max_body,
                max_lines: shared.max_netlist_lines,
            },
            repair_vias: *repair_vias,
        };
        if let Err(e) = ingest(text, &options) {
            let kind = match &e {
                IngestError::TooLarge { .. } | IngestError::TooManyLines { .. } => "limit",
                IngestError::Parse(_) => "parse",
                IngestError::Lint(_) => "lint",
            };
            return Response::json(
                400,
                &Json::Obj(vec![
                    ("error".into(), Json::s(e.to_string())),
                    ("kind".into(), Json::s(kind)),
                ]),
            );
        }
    }

    let id = shared.next_id.fetch_add(1, Ordering::SeqCst);
    if shared.store.write_spec(id, &spec.to_json()).is_err() {
        return Response::error(503, "cannot persist job spec");
    }
    match enqueue(shared, id, spec) {
        Ok(()) => Response::json(
            202,
            &Json::Obj(vec![
                ("id".into(), Json::n(id as f64)),
                ("status".into(), Json::s("queued")),
            ]),
        ),
        Err(e) => {
            // Remove the persisted spec so a restart does not resurrect a
            // job the client was told we rejected.
            let _ = std::fs::remove_dir_all(shared.store.dir(id));
            Response::error(503, e.to_string())
        }
    }
}

fn status(id: JobId, shared: &Arc<Shared>) -> Response {
    if let Some(snapshot) = shared.engine.snapshot(id) {
        let mut pairs = vec![
            ("id".into(), Json::n(id as f64)),
            ("status".into(), Json::s(snapshot.status.to_string())),
            ("checkpoints".into(), Json::n(snapshot.checkpoints as f64)),
        ];
        if let Some(error) = snapshot.error {
            pairs.push(("error".into(), Json::s(error)));
        }
        if let Some(sweep) = shared.store.read_sweep(id) {
            pairs.push(("sweep".into(), Json::s(sweep)));
        }
        // Phase wall times are status-doc-only telemetry: result docs must
        // stay byte-identical however long each stage took.
        let phases = shared.phases.phases(id);
        if !phases.is_empty() {
            pairs.push((
                "phases".into(),
                Json::Obj(
                    phases
                        .into_iter()
                        .map(|(name, seconds)| (format!("{name}_seconds"), Json::n(seconds)))
                        .collect(),
                ),
            ));
        }
        return Response::json(200, &Json::Obj(pairs));
    }
    // Jobs from a previous daemon process live only on disk.
    match shared.store.load(id) {
        Some(disk) => {
            let (status, error) = match disk {
                DiskJob::Done => (JobStatus::Done, None),
                DiskJob::Failed(message) => (JobStatus::Failed, Some(message)),
                DiskJob::Cancelled => (JobStatus::Cancelled, None),
                DiskJob::Unfinished { .. } => (JobStatus::Queued, None),
            };
            let mut pairs = vec![
                ("id".into(), Json::n(id as f64)),
                ("status".into(), Json::s(status.to_string())),
            ];
            if let Some(error) = error {
                pairs.push(("error".into(), Json::s(error)));
            }
            if let Some(sweep) = shared.store.read_sweep(id) {
                pairs.push(("sweep".into(), Json::s(sweep)));
            }
            Response::json(200, &Json::Obj(pairs))
        }
        None => Response::error(404, "no such job"),
    }
}

fn result(id: JobId, shared: &Arc<Shared>) -> Response {
    if let Some(bytes) = shared.store.read_result(id) {
        return Response::json_bytes(200, bytes);
    }
    if let Some(message) = shared.store.read_error(id) {
        return Response::error(409, format!("job failed: {message}"));
    }
    if shared.engine.snapshot(id).is_some() || shared.store.exists(id) {
        return Response::error(409, "job not finished");
    }
    Response::error(404, "no such job")
}

fn cancel(id: JobId, shared: &Arc<Shared>) -> Response {
    let known = shared.engine.snapshot(id).is_some() || shared.store.exists(id);
    if !known {
        return Response::error(404, "no such job");
    }
    // The marker keeps a restart from requeueing the job; the engine
    // cancel interrupts it if it is queued or running right now.
    let _ = shared.store.mark_cancelled(id);
    shared.engine.cancel(id);
    Response::json(
        200,
        &Json::Obj(vec![
            ("id".into(), Json::n(id as f64)),
            ("status".into(), Json::s("cancelling")),
        ]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};

    /// A connection thread that panics while holding `shared.known` must
    /// not take the daemon down with it: later lockers recover the
    /// poisoned mutex with `into_inner` and keep serving.
    #[test]
    fn poisoned_known_lock_is_recovered_not_fatal() {
        let state_dir = std::env::temp_dir().join(format!("emgrid-poison-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&state_dir);
        let server = Server::start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            state_dir: state_dir.clone(),
            workers: 1,
            ..ServeConfig::default()
        })
        .unwrap();

        // Poison the lock the way a panicking connection thread would.
        let shared = Arc::clone(&server.shared);
        let _ = std::thread::spawn(move || {
            let _guard = shared.known.lock().unwrap();
            panic!("poison the known-ids lock");
        })
        .join();
        assert!(server.shared.known.lock().is_err(), "lock is poisoned");

        // Submission still locks `known` (to record the id for shutdown)
        // and must succeed despite the poison.
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let body = r#"{"kind":"characterize","array":"1x1","trials":8,"seed":1}"#;
        let request = format!(
            "POST /v1/jobs HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(request.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 202"), "{response}");

        // Shutdown reads the same lock and must drain the job, not panic.
        server.shutdown();
        let _ = std::fs::remove_dir_all(state_dir);
    }

    /// Satellite regression: graceful shutdown used to call
    /// `wait_terminal(id, 600s)` once *per* job, so N stuck jobs stalled
    /// shutdown for N×600s. The grace budget must be shared: with one
    /// worker pinned by a slow job and several more queued behind it, the
    /// total wait is bounded by one grace period — not jobs × grace.
    #[test]
    fn shutdown_grace_is_shared_across_jobs_not_per_job() {
        use emgrid_runtime::JobEngine;

        let engine: JobEngine<String> = JobEngine::new(1, 16);
        let mut ids = Vec::new();
        for i in 0..5u64 {
            let id = engine
                .submit(move |ctx| {
                    // Ignore cancellation: these jobs model "stuck" work
                    // that outlives any reasonable shutdown patience.
                    let _ = ctx;
                    std::thread::sleep(Duration::from_millis(400));
                    JobOutcome::Done(format!("slow-{i}"))
                })
                .unwrap();
            ids.push(id);
        }

        let grace = Duration::from_millis(150);
        let start = Instant::now();
        wait_all_terminal(&engine, &ids, grace);
        let elapsed = start.elapsed();
        // Per-job waiting would cost ~5 × grace (and with the old 600s
        // constant, ~50 minutes). A single shared deadline returns within
        // one grace period plus the zero-timeout status checks.
        assert!(
            elapsed < grace * 3,
            "shared grace deadline exceeded: waited {elapsed:?} for 5 jobs with grace {grace:?}"
        );
    }
}
