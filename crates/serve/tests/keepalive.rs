//! HTTP/1.1 keep-alive and pipelining conformance, admission-control
//! behavior, and the accept-path regression tests — run against BOTH I/O
//! backends (legacy thread-per-connection and the poll event loop), since
//! the wire contract must not depend on `--io`.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use emgrid_serve::{IoBackend, ServeConfig, Server};

const BACKENDS: &[IoBackend] = &[IoBackend::Threads, IoBackend::Poll];

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("emgrid-keepalive-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(tag: &str, io: IoBackend) -> ServeConfig {
    ServeConfig {
        state_dir: temp_dir(&format!("{tag}-{io:?}")),
        io,
        ..ServeConfig::default()
    }
}

/// A client-side response reader with carryover: pipelined responses can
/// arrive back-to-back in one TCP segment, so bytes past the current
/// response's `Content-Length` belong to the *next* one and are kept.
struct ResponseReader {
    stream: TcpStream,
    pending: Vec<u8>,
}

impl ResponseReader {
    fn new(stream: TcpStream) -> Self {
        ResponseReader {
            stream,
            pending: Vec::new(),
        }
    }

    fn write_all(&mut self, bytes: &[u8]) {
        self.stream.write_all(bytes).expect("write request");
    }

    /// Reads exactly one HTTP/1.1 response (head + `Content-Length`
    /// body). Returns `(status, head, body)`.
    fn read_one(&mut self) -> (u16, String, String) {
        let mut chunk = [0u8; 1024];
        let head_end = loop {
            if let Some(pos) = self.pending.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            let n = self.stream.read(&mut chunk).expect("read response head");
            assert!(n > 0, "connection closed mid-head: {:?}", self.pending);
            self.pending.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8(self.pending[..head_end].to_vec()).unwrap();
        let status: u16 = head.split_whitespace().nth(1).unwrap().parse().unwrap();
        let declared: usize = head
            .lines()
            .find_map(|l| {
                l.to_ascii_lowercase()
                    .strip_prefix("content-length:")
                    .map(str::trim)
                    .map(String::from)
            })
            .and_then(|v| v.parse().ok())
            .expect("response declares Content-Length");
        let total = head_end + 4 + declared;
        while self.pending.len() < total {
            let n = self.stream.read(&mut chunk).expect("read response body");
            assert!(n > 0, "connection closed mid-body");
            self.pending.extend_from_slice(&chunk[..n]);
        }
        let body = String::from_utf8(self.pending[head_end + 4..total].to_vec()).unwrap();
        self.pending.drain(..total);
        (status, head, body)
    }

    /// Asserts the server closes without sending anything further.
    fn expect_clean_close(mut self) {
        assert!(self.pending.is_empty(), "unread bytes: {:?}", self.pending);
        let mut rest = Vec::new();
        self.stream.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty(), "bytes after close: {rest:?}");
    }
}

fn shutdown_and_clean(server: Server) {
    let root = server.state_dir();
    server.shutdown_now();
    let _ = std::fs::remove_dir_all(root);
}

/// Two pipelined POSTs written in a single segment must produce two
/// in-order, correctly framed responses on the same connection — and the
/// first request's leftover bytes (the entire second request arrived in
/// the same read) must be preserved, not truncated with the body.
#[test]
fn pipelined_posts_get_in_order_responses_with_correct_framing() {
    for &io in BACKENDS {
        let server = Server::start(config("pipeline", io)).unwrap();
        let addr = server.local_addr();

        let spec_a = r#"{"kind":"characterize","array":"1x1","trials":8,"seed":1}"#;
        let spec_b = r#"{"kind":"characterize","array":"1x1","trials":8,"seed":2}"#;
        let mut wire = String::new();
        for spec in [spec_a, spec_b] {
            wire.push_str(&format!(
                "POST /v1/jobs HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{spec}",
                spec.len()
            ));
        }
        let mut client = ResponseReader::new(TcpStream::connect(addr).unwrap());
        client.write_all(wire.as_bytes());

        let (status_a, head_a, body_a) = client.read_one();
        let (status_b, head_b, body_b) = client.read_one();
        assert_eq!(
            (status_a, status_b),
            (202, 202),
            "{body_a}\n{body_b}\n[{io:?}]"
        );
        for head in [&head_a, &head_b] {
            assert!(
                head.to_ascii_lowercase().contains("connection: keep-alive"),
                "pipelined responses must not close the connection [{io:?}]: {head}"
            );
        }
        // In-order: the first response answers the first submit. Job ids
        // are allocated in submission order, so id(a) < id(b).
        let id = |body: &str| -> u64 {
            body.split("\"id\":")
                .nth(1)
                .and_then(|rest| {
                    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
                    digits.parse().ok()
                })
                .unwrap_or_else(|| panic!("no id in {body}"))
        };
        assert!(
            id(&body_a) < id(&body_b),
            "responses out of order [{io:?}]: {body_a} vs {body_b}"
        );
        shutdown_and_clean(server);
    }
}

/// A routed 400 (bad JSON in a submit) must NOT kill the connection:
/// protocol framing was intact, so keep-alive survives and a healthz on
/// the same socket still answers.
#[test]
fn connection_reuse_survives_a_routed_400() {
    for &io in BACKENDS {
        let server = Server::start(config("reuse-400", io)).unwrap();
        let addr = server.local_addr();

        let bad = "{this is not json";
        let mut client = ResponseReader::new(TcpStream::connect(addr).unwrap());
        client.write_all(
            format!(
                "POST /v1/jobs HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{bad}",
                bad.len()
            )
            .as_bytes(),
        );
        let (status, head, _) = client.read_one();
        assert_eq!(status, 400, "[{io:?}]");
        assert!(
            head.to_ascii_lowercase().contains("connection: keep-alive"),
            "routed 400 must honor keep-alive [{io:?}]: {head}"
        );

        client.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
        let (status, _, body) = client.read_one();
        assert_eq!(status, 200, "reuse after 400 failed [{io:?}]: {body}");

        // A third request with `Connection: close` ends the session.
        client.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
        let (status, head, _) = client.read_one();
        assert_eq!(status, 200);
        assert!(head.to_ascii_lowercase().contains("connection: close"));
        client.expect_clean_close();
        shutdown_and_clean(server);
    }
}

/// Keep-alive reuse is visible in `/metrics`, and a request whose body is
/// followed by leftover bytes of the *next* request keeps those bytes:
/// submit (with body) + status GET pipelined in one segment, then a third
/// request written separately.
#[test]
fn leftover_bytes_carry_over_after_a_body() {
    for &io in BACKENDS {
        let server = Server::start(config("leftover", io)).unwrap();
        let addr = server.local_addr();

        let spec = r#"{"kind":"characterize","array":"1x1","trials":8,"seed":7}"#;
        // The GET rides in the same TCP segment as the POST body — the
        // old reader truncated it away with `body.truncate(declared)`.
        let wire = format!(
            "POST /v1/jobs HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{spec}GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n",
            spec.len()
        );
        let mut client = ResponseReader::new(TcpStream::connect(addr).unwrap());
        client.write_all(wire.as_bytes());
        let (status, _, body) = client.read_one();
        assert_eq!(status, 202, "[{io:?}] {body}");
        let (status, _, body) = client.read_one();
        assert_eq!(status, 200, "leftover GET was lost [{io:?}]: {body}");
        assert!(body.contains("\"status\":\"ok\""), "{body}");

        // Reuse shows up on the scoreboard.
        client.write_all(b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
        let (status, _, metrics) = client.read_one();
        assert_eq!(status, 200);
        let reuses: u64 = metrics
            .lines()
            .find_map(|l| l.strip_prefix("emgrid_http_keepalive_reuses_total "))
            .and_then(|v| v.trim().parse().ok())
            .expect("keepalive reuse counter in scrape");
        assert!(reuses >= 2, "expected >=2 reuses, saw {reuses} [{io:?}]");
        shutdown_and_clean(server);
    }
}

/// The value of a counter series in a scrape (label-free exact match).
fn scrape_value(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or_else(|| panic!("no `{name}` in scrape"))
}

/// One `Connection: close` request on a fresh socket, surfacing
/// transport errors instead of panicking — a connection shed without its
/// request being read can be reset (RST) by the server's close, which is
/// retryable, not fatal.
fn try_request_close(addr: SocketAddr, method: &str, path: &str) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(
        format!(
            "{method} {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: 0\r\n\r\n"
        )
        .as_bytes(),
    )?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::other(format!("malformed response: {raw:?}")))?;
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    Ok((status, body))
}

/// Satellite regressions, both backends:
///
/// 1. Shed 503s are written nonblocking — a storm of shed connections
///    whose clients never read their sockets must not stall the accept
///    path (the old code did a blocking write with a 1s timeout *on the
///    accept thread*, so N slow clients could freeze accepts for N
///    seconds).
/// 2. Shed connections count as requests, so
///    `requests_total ≥ responses_total` holds even under a shed storm
///    (sheds used to increment only the response side).
#[test]
fn shed_storm_of_unread_sockets_does_not_stall_accepts_and_keeps_counters_sane() {
    for &io in BACKENDS {
        let mut cfg = config("shed-storm", io);
        cfg.max_connections = 1;
        cfg.request_deadline = Duration::from_secs(30);
        let server = Server::start(cfg).unwrap();
        let addr = server.local_addr();

        // Occupy the single slot with an idle connection.
        let slot_holder = TcpStream::connect(addr).unwrap();
        // Make sure the server has accepted it before the storm begins.
        std::thread::sleep(Duration::from_millis(100));

        // Open a storm of connections that are shed; none of them ever
        // reads its 503. With the old blocking shed-write this is worth
        // up to `storm × 1s` of accept-thread stall.
        let storm = 30u64;
        let started = Instant::now();
        let mut unread: Vec<TcpStream> = Vec::new();
        for _ in 0..storm {
            unread.push(TcpStream::connect(addr).unwrap());
        }
        // Every storm connection received its 503 (peek observes without
        // consuming — the sockets stay "unread" from the server's view)
        // in far less than the old worst case of storm × 1s of blocking
        // shed writes on the accept thread.
        for sock in &unread {
            sock.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let mut probe = [0u8; 16];
            let n = sock.peek(&mut probe).expect("shed 503 never arrived");
            assert!(n > 0, "empty shed response [{io:?}]");
            assert!(probe.starts_with(b"HTTP/1.1 503"), "[{io:?}]");
        }
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "accept path stalled by unread shed sockets [{io:?}]"
        );

        // Free the slot, then scrape (while the slot was held, scrapes
        // themselves would be shed).
        drop(slot_holder);
        drop(unread);
        let deadline = Instant::now() + Duration::from_secs(10);
        let metrics = loop {
            // A still-shed probe can be RST by the server's close (the 503
            // is written without reading our request); treat transport
            // errors like a non-200 and retry.
            if let Ok((200, m)) = try_request_close(addr, "GET", "/metrics") {
                break m;
            }
            assert!(Instant::now() < deadline, "slot never freed [{io:?}]");
            std::thread::sleep(Duration::from_millis(20));
        };
        let requests = scrape_value(&metrics, "emgrid_http_requests_total");
        let responses: u64 = ["2xx", "3xx", "4xx", "5xx"]
            .iter()
            .map(|class| {
                metrics
                    .lines()
                    .find_map(|l| {
                        l.strip_prefix(&format!(
                            "emgrid_http_responses_total{{status_class=\"{class}\"}} "
                        ))
                    })
                    .and_then(|v| v.trim().parse::<u64>().ok())
                    .unwrap_or(0)
            })
            .sum();
        assert!(
            requests >= responses,
            "responses ({responses}) exceed requests ({requests}) [{io:?}]:\n{metrics}"
        );
        assert!(
            requests >= storm,
            "sheds not counted as requests [{io:?}]: {requests} < {storm}"
        );
        shutdown_and_clean(server);
    }
}

/// The determinism contract now spans I/O backends: the same spec run
/// through the threads backend and the poll backend must produce
/// byte-identical result documents.
#[test]
fn results_are_byte_identical_across_io_backends() {
    let spec = r#"{"kind":"characterize","array":"4x4","pattern":"plus","criterion":"rinf","trials":48,"seed":11,"threads":2}"#;
    let mut results = Vec::new();
    for &io in BACKENDS {
        let server = Server::start(config("xbackend", io)).unwrap();
        let addr = server.local_addr();
        let mut client = ResponseReader::new(TcpStream::connect(addr).unwrap());
        client.write_all(
            format!(
                "POST /v1/jobs HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{spec}",
                spec.len()
            )
            .as_bytes(),
        );
        let (status, _, body) = client.read_one();
        assert_eq!(status, 202, "{body}");
        let id: u64 = body
            .split("\"id\":")
            .nth(1)
            .map(|rest| {
                rest.chars()
                    .take_while(char::is_ascii_digit)
                    .collect::<String>()
            })
            .and_then(|d| d.parse().ok())
            .unwrap();

        // Poll to terminal state and fetch the result — all on the SAME
        // keep-alive connection, which also soak-tests reuse.
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            client.write_all(format!("GET /v1/jobs/{id} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes());
            let (status, _, body) = client.read_one();
            assert_eq!(status, 200, "{body}");
            if body.contains("\"status\":\"done\"") {
                break;
            }
            assert!(
                !body.contains("failed") && !body.contains("cancelled"),
                "job died [{io:?}]: {body}"
            );
            assert!(Instant::now() < deadline, "job stuck [{io:?}]");
            std::thread::sleep(Duration::from_millis(5));
        }
        client.write_all(
            format!("GET /v1/jobs/{id}/result HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
                .as_bytes(),
        );
        let (status, _, body) = client.read_one();
        assert_eq!(status, 200, "{body}");
        results.push(body);
        shutdown_and_clean(server);
    }
    assert_eq!(
        results[0], results[1],
        "I/O backend leaked into result bytes"
    );
}
