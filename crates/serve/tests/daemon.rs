//! End-to-end daemon tests over real TCP sockets.
//!
//! These drive `emgrid-serve` exactly the way an operator's scripts would:
//! raw HTTP/1.1 requests against an ephemeral port. The two load-bearing
//! properties of the ISSUE are asserted here — identical specs produce
//! byte-identical result documents even under concurrent service load, and
//! a daemon killed mid-job resumes from its checkpoint after restart with
//! a result byte-identical to an uninterrupted run.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use emgrid_serve::json::{self, Json};
use emgrid_serve::{ServeConfig, Server};

/// A scratch state directory unique to one test.
fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("emgrid-daemon-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(tag: &str) -> ServeConfig {
    ServeConfig {
        state_dir: temp_dir(tag),
        ..ServeConfig::default()
    }
}

/// One HTTP exchange; returns `(status, body)`.
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to daemon");
    // `Connection: close` so `read_to_string` sees EOF — the daemon keeps
    // HTTP/1.1 connections alive by default; keep-alive behavior has its
    // own test suite (tests/keepalive.rs).
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    // The server may answer (and close) before the body is fully written —
    // e.g. a 413 — so body write errors are not failures.
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed response: {raw}"));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, body)
}

fn submit(addr: SocketAddr, spec: &str) -> u64 {
    let (status, body) = request(addr, "POST", "/v1/jobs", spec);
    assert_eq!(status, 202, "submit failed: {body}");
    json::parse(&body)
        .unwrap()
        .get("id")
        .and_then(Json::as_u64)
        .expect("submit response carries an id")
}

/// Polls `GET /v1/jobs/:id` until the status is terminal; returns the last
/// status document.
fn wait_done(addr: SocketAddr, id: u64) -> Json {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, body) = request(addr, "GET", &format!("/v1/jobs/{id}"), "");
        assert_eq!(status, 200, "{body}");
        let doc = json::parse(&body).unwrap();
        let state = doc.get("status").and_then(Json::as_str).unwrap().to_owned();
        if matches!(state.as_str(), "done" | "failed" | "cancelled") {
            return doc;
        }
        assert!(Instant::now() < deadline, "job {id} stuck in `{state}`");
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn result_bytes(addr: SocketAddr, id: u64) -> String {
    let (status, body) = request(addr, "GET", &format!("/v1/jobs/{id}/result"), "");
    assert_eq!(status, 200, "{body}");
    body
}

#[test]
fn health_metrics_and_error_routes() {
    let server = Server::start(config("routes")).unwrap();
    let addr = server.local_addr();

    let (status, body) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"status\":\"ok\""), "{body}");

    let (status, body) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(body.contains("emgrid_jobs_submitted_total 0"), "{body}");
    assert!(body.contains("emgrid_jobs_queued 0"), "{body}");

    assert_eq!(request(addr, "PUT", "/healthz", "").0, 405);
    assert_eq!(request(addr, "GET", "/nowhere", "").0, 404);
    assert_eq!(request(addr, "GET", "/v1/jobs/999", "").0, 404);
    assert_eq!(request(addr, "GET", "/v1/jobs/999/result", "").0, 404);
    assert_eq!(request(addr, "DELETE", "/v1/jobs/999", "").0, 404);
    assert_eq!(request(addr, "GET", "/v1/jobs/banana", "").0, 404);

    // Malformed and invalid submissions are 400s with an explanation.
    assert_eq!(request(addr, "POST", "/v1/jobs", "{not json").0, 400);
    let (status, body) = request(addr, "POST", "/v1/jobs", r#"{"kind":"mine"}"#);
    assert_eq!(status, 400);
    assert!(body.contains("unknown kind"), "{body}");
    let (status, body) = request(
        addr,
        "POST",
        "/v1/jobs",
        r#"{"kind":"characterize","typo":1}"#,
    );
    assert_eq!(status, 400);
    assert!(body.contains("unknown key"), "{body}");

    let root = server.state_dir();
    server.shutdown();
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn identical_specs_yield_byte_identical_results_under_load() {
    let server = Server::start(config("determinism")).unwrap();
    let addr = server.local_addr();
    let spec = r#"{"kind":"characterize","array":"4x4","pattern":"tee","criterion":"rinf","trials":160,"seed":42,"threads":2}"#;

    // Submitted back-to-back, the two copies run concurrently on the two
    // workers; queue order and scheduling must not leak into the results.
    let a = submit(addr, spec);
    let b = submit(addr, spec);
    assert_ne!(a, b);
    wait_done(addr, a);
    wait_done(addr, b);
    let bytes_a = result_bytes(addr, a);
    let bytes_b = result_bytes(addr, b);
    assert_eq!(bytes_a, bytes_b, "service load leaked into the result");
    assert!(bytes_a.contains("\"kind\":\"characterize\""), "{bytes_a}");
    assert!(bytes_a.contains("ttf_median_years"), "{bytes_a}");

    let root = server.state_dir();
    server.shutdown();
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn killed_daemon_resumes_checkpointed_jobs_to_the_same_bytes() {
    // A small synthetic grid, uploaded inline so the test also covers the
    // netlist path; JSON escaping is handled by the crate's own writer.
    let deck = emgrid_spice::writer::write_string(
        &emgrid_spice::GridSpec::custom("daemon-test", 10, 10).generate(),
    );
    let spec = Json::Obj(vec![
        ("kind".into(), Json::s("analyze")),
        ("netlist".into(), Json::s(&deck)),
        ("trials".into(), Json::n(120.0)),
        ("seed".into(), Json::n(7.0)),
        ("grid_trials".into(), Json::n(240.0)),
    ])
    .to_string();
    let spec = spec.as_str();

    // Reference: the same job on an undisturbed daemon.
    let reference_server = Server::start(config("resume-ref")).unwrap();
    let ref_addr = reference_server.local_addr();
    let ref_id = submit(ref_addr, spec);
    let doc = wait_done(ref_addr, ref_id);
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("done"));
    let reference = result_bytes(ref_addr, ref_id);
    let ref_root = reference_server.state_dir();
    reference_server.shutdown();

    // Victim: small checkpoint cadence, killed as soon as a checkpoint
    // lands (or the job finishes first — the restart path is exercised
    // either way, and determinism must hold in both).
    let state_dir = temp_dir("resume-victim");
    let victim_config = ServeConfig {
        state_dir: state_dir.clone(),
        workers: 1,
        checkpoint_every: 8,
        ..ServeConfig::default()
    };
    let victim = Server::start(victim_config.clone()).unwrap();
    let victim_addr = victim.local_addr();
    let id = submit(victim_addr, spec);
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut saw_checkpoint = false;
    loop {
        let (_, body) = request(victim_addr, "GET", &format!("/v1/jobs/{id}"), "");
        let doc = json::parse(&body).unwrap();
        let checkpoints = doc.get("checkpoints").and_then(Json::as_u64).unwrap_or(0);
        let state = doc.get("status").and_then(Json::as_str).unwrap_or("");
        if checkpoints >= 1 {
            saw_checkpoint = true;
            break;
        }
        if matches!(state, "done" | "failed" | "cancelled") {
            break;
        }
        assert!(Instant::now() < deadline, "job never progressed");
        std::thread::yield_now();
    }
    victim.shutdown_now();

    // Restart over the same state directory: the job requeues under its
    // original id and resumes from the checkpoint watermark.
    let revived = Server::start(victim_config).unwrap();
    let revived_addr = revived.local_addr();
    let doc = wait_done(revived_addr, id);
    assert_eq!(
        doc.get("status").and_then(Json::as_str),
        Some("done"),
        "{doc}"
    );
    assert_eq!(
        result_bytes(revived_addr, id),
        reference,
        "restart changed the result bytes"
    );
    if saw_checkpoint {
        let (_, metrics) = request(revived_addr, "GET", "/metrics", "");
        assert!(metrics.contains("emgrid_jobs_resumed_total 1"), "{metrics}");
    }
    revived.shutdown();
    let _ = std::fs::remove_dir_all(state_dir);
    let _ = std::fs::remove_dir_all(ref_root);
}

#[test]
fn restart_requeues_more_unfinished_jobs_than_the_queue_depth() {
    // A crashed daemon can leave more unfinished jobs on disk than the
    // configured queue depth (running jobs hold no queue slot, and the
    // operator may restart with a smaller --queue-depth). Startup must
    // absorb them all instead of panicking into a permanent crash loop.
    let state_dir = temp_dir("requeue-overflow");
    let store = emgrid_serve::JobStore::open(&state_dir).unwrap();
    let spec = json::parse(
        r#"{"kind":"characterize","array":"1x1","pattern":"plus","criterion":"rinf","trials":8,"seed":1,"threads":1}"#,
    )
    .unwrap();
    for id in 1..=5u64 {
        store.write_spec(id, &spec).unwrap();
    }

    let server = Server::start(ServeConfig {
        state_dir: state_dir.clone(),
        workers: 1,
        queue_depth: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();
    for id in 1..=5u64 {
        let doc = wait_done(addr, id);
        assert_eq!(
            doc.get("status").and_then(Json::as_str),
            Some("done"),
            "{doc}"
        );
    }
    // The door is still open for fresh submissions after the requeue.
    let fresh = submit(
        addr,
        r#"{"kind":"characterize","array":"1x1","trials":8,"seed":2}"#,
    );
    assert!(fresh > 5, "id counter not seeded past disk ids");
    wait_done(addr, fresh);
    server.shutdown();
    let _ = std::fs::remove_dir_all(state_dir);
}

#[test]
fn cancelled_jobs_stay_cancelled_across_restart() {
    let state_dir = temp_dir("cancel");
    let base = ServeConfig {
        state_dir: state_dir.clone(),
        workers: 1,
        checkpoint_every: 16,
        ..ServeConfig::default()
    };
    let server = Server::start(base.clone()).unwrap();
    let addr = server.local_addr();

    // A large budget so the cancel lands while the job is queued or mid-run.
    let id = submit(
        addr,
        r#"{"kind":"characterize","trials":500000,"seed":3,"threads":1}"#,
    );
    let (status, body) = request(addr, "DELETE", &format!("/v1/jobs/{id}"), "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("cancelling"), "{body}");
    let doc = wait_done(addr, id);
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("cancelled"));
    server.shutdown();

    // The client-cancelled marker must survive the restart: the job is not
    // requeued and reports `cancelled` from disk.
    let revived = Server::start(base).unwrap();
    let revived_addr = revived.local_addr();
    let (status, body) = request(revived_addr, "GET", &format!("/v1/jobs/{id}"), "");
    assert_eq!(status, 200);
    assert!(body.contains("\"status\":\"cancelled\""), "{body}");
    let (status, _) = request(revived_addr, "GET", &format!("/v1/jobs/{id}/result"), "");
    assert_eq!(status, 409, "a cancelled job has no result");
    let (_, metrics) = request(revived_addr, "GET", "/metrics", "");
    assert!(
        metrics.contains("emgrid_jobs_submitted_total 0"),
        "{metrics}"
    );
    revived.shutdown();
    let _ = std::fs::remove_dir_all(state_dir);
}

#[test]
fn uploaded_netlists_are_screened_and_bodies_are_bounded() {
    let mut cfg = config("ingest");
    cfg.max_body_bytes = 512;
    let server = Server::start(cfg).unwrap();
    let addr = server.local_addr();

    // A deck with a floating node fails lint at the door, not in a worker.
    let bad = r#"{"kind":"analyze","netlist":"R1 a b 1.0\nV1 a 0 1.0\nR2 c d 2.0\n.end","grid_trials":10}"#;
    let (status, body) = request(addr, "POST", "/v1/jobs", bad);
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("\"kind\":\"lint\""), "{body}");

    // Oversized bodies bounce with 413 before any parsing happens.
    let huge = format!(
        r#"{{"kind":"analyze","netlist":"{}","grid_trials":10}}"#,
        "x".repeat(2000)
    );
    let (status, body) = request(addr, "POST", "/v1/jobs", &huge);
    assert_eq!(status, 413, "{body}");

    let root = server.state_dir();
    server.shutdown();
    let _ = std::fs::remove_dir_all(root);
}

/// Filters the default panic hook so the induced connection panics below
/// don't spam test output; every other panic still prints normally.
fn silence_induced_panics() {
    static QUIET: std::sync::Once = std::sync::Once::new();
    QUIET.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let message = payload
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| payload.downcast_ref::<String>().map(String::as_str));
            if message.is_some_and(|m| m.contains("induced panic (debug route)")) {
                return;
            }
            previous(info);
        }));
    });
}

/// The value of a plain (unlabelled) counter in a `/metrics` scrape.
fn scrape_counter(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or_else(|| panic!("no `{name}` series in scrape:\n{metrics}"))
}

#[test]
fn panicking_connections_do_not_leak_slots() {
    // Regression for the connection-slot leak: handle_connection used to
    // decrement `active_connections` only on the normal return path, so
    // 256 panics bricked the daemon into shedding every future request.
    // Induce more panics than the connection cap and prove the daemon is
    // still fully alive afterwards.
    silence_induced_panics();
    let mut cfg = config("panic-flood");
    cfg.debug_panic_route = true;
    let server = Server::start(cfg).unwrap();
    let addr = server.local_addr();

    let floods = 300usize;
    for _ in 0..floods {
        // The handler panics before writing anything, so the client just
        // sees the connection close; there is no response to parse.
        let mut stream = TcpStream::connect(addr).expect("connect");
        let _ =
            stream.write_all(b"POST /debug/panic HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n");
        let mut sink = String::new();
        let _ = stream.read_to_string(&mut sink);
    }

    // Past the old 256-slot ceiling the daemon must still answer, not 503.
    let (status, body) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "daemon bricked after panic flood: {body}");

    // Every panic was observed by the drop guard. The last unwinding
    // threads may still be mid-drop, so poll briefly for the full count.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (_, metrics) = request(addr, "GET", "/metrics", "");
        if scrape_counter(&metrics, "emgrid_http_connection_panics_total") >= floods as u64 {
            break;
        }
        assert!(Instant::now() < deadline, "panic counter stuck:\n{metrics}");
        std::thread::sleep(Duration::from_millis(10));
    }

    let root = server.state_dir();
    server.shutdown();
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn sheds_and_slow_requests_show_up_in_response_counters() {
    // Shed 503s and request-deadline 408s used to be written straight to
    // the socket without touching any counter, so overload was invisible
    // in `/metrics`. Both must now land in the responses-by-class family.
    let mut cfg = config("shed-counts");
    cfg.max_connections = 2;
    cfg.request_deadline = Duration::from_millis(900);
    let server = Server::start(cfg).unwrap();
    let addr = server.local_addr();

    // Two idle connections occupy both slots (their eventual fate is a
    // 408 when the request deadline lapses with no bytes on the wire).
    let idle_a = TcpStream::connect(addr).unwrap();
    let idle_b = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(150));

    // With both slots held, the accept loop sheds the next connection.
    let (status, body) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 503, "expected a shed: {body}");

    // The idle connections time out with a 408 once the deadline lapses.
    for mut idle in [idle_a, idle_b] {
        let mut raw = String::new();
        idle.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 408"), "{raw}");
    }

    // Slots are free again, and both failure modes are on the scoreboard.
    let (status, metrics) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(
        metrics.contains("emgrid_http_responses_total{status_class=\"5xx\"} 1"),
        "{metrics}"
    );
    assert!(
        metrics.contains("emgrid_http_responses_total{status_class=\"4xx\"} 2"),
        "{metrics}"
    );

    let root = server.state_dir();
    server.shutdown();
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn scrape_has_histograms_and_status_docs_carry_phases() {
    let server = Server::start(config("obs")).unwrap();
    let addr = server.local_addr();
    let id = submit(
        addr,
        r#"{"kind":"characterize","array":"1x1","trials":32,"seed":9}"#,
    );
    let doc = wait_done(addr, id);
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("done"));

    // Per-job phase timings are operator telemetry: they belong in the
    // status document and must never reach the (byte-stable) result doc.
    let phases = doc.get("phases").expect("status doc carries phases");
    assert!(
        phases.get("mc_seconds").and_then(Json::as_f64).is_some(),
        "{doc}"
    );
    assert!(!result_bytes(addr, id).contains("phases"));

    let (_, metrics) = request(addr, "GET", "/metrics", "");
    for family in [
        "emgrid_http_request_duration_seconds",
        "emgrid_job_queue_wait_seconds",
        "emgrid_job_duration_seconds",
    ] {
        assert!(
            metrics.contains(&format!("# TYPE {family} histogram")),
            "{metrics}"
        );
    }
    assert!(
        scrape_counter(&metrics, "emgrid_job_duration_seconds_count") >= 1,
        "{metrics}"
    );
    // Process-global registry instruments ride along in the same scrape.
    // Their values are process-wide (other tests contribute), so only
    // presence is asserted.
    assert!(metrics.contains("emgrid_mc_trials_total"), "{metrics}");
    assert!(metrics.contains("emgrid_mc_runs_total"), "{metrics}");

    let root = server.state_dir();
    server.shutdown();
    let _ = std::fs::remove_dir_all(root);
}
