//! Direct-vs-iterative method selection for SPD solves.
//!
//! Small and medium meshes favor the supernodal LDLᵀ factorization (one
//! factor, many cheap triangular solves); chip-scale grids favor IC(0)-
//! preconditioned CG, whose memory stays linear in `nnz` where a direct
//! factor's fill does not. [`Method`] names the choice the way
//! [`crate::ldl::Ordering`] names orderings — `auto`, `direct` or `cg` —
//! and [`Method::resolve`] turns `Auto` into a concrete engine from the
//! matrix dimension alone, so every knob surface (CLI, job specs, screen
//! options) can thread one label through to [`solve_spd`].

use crate::cg::{conjugate_gradient, CgOptions, Preconditioner};
use crate::csr::CsrMatrix;
use crate::error::SparseError;
use crate::ldl::{FactorOptions, LdlFactor};

/// Above this many unknowns `Auto` switches from the direct factorization
/// to IC(0)-CG. The crossover is memory-driven: a dissected power-grid
/// factor holds roughly `30–60·n` nonzeros, so by 200k unknowns the factor
/// alone outweighs the matrix by an order of magnitude while IC(0)-CG
/// keeps working in `O(nnz)`.
pub const AUTO_DIRECT_LIMIT: usize = 200_000;

/// Which linear-solve engine runs under a screening or analysis pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Method {
    /// Pick [`Method::Direct`] or [`Method::Cg`] from the problem size at
    /// run time (the default; canonical spec forms keep it implicit).
    #[default]
    Auto,
    /// Supernodal LDLᵀ via [`LdlFactor::factor_with`].
    Direct,
    /// IC(0)-preconditioned conjugate gradients.
    Cg,
}

impl Method {
    /// Parses a CLI/spec label (`auto`, `direct`, `cg`).
    pub fn parse(s: &str) -> Option<Method> {
        match s {
            "auto" => Some(Method::Auto),
            "direct" => Some(Method::Direct),
            "cg" => Some(Method::Cg),
            _ => None,
        }
    }

    /// The canonical lower-case label (inverse of [`Method::parse`]).
    pub fn label(&self) -> &'static str {
        match self {
            Method::Auto => "auto",
            Method::Direct => "direct",
            Method::Cg => "cg",
        }
    }

    /// The concrete engine for an `n`-unknown system: `Auto` resolves by
    /// [`AUTO_DIRECT_LIMIT`]; explicit choices pass through.
    pub fn resolve(&self, n: usize) -> Method {
        match self {
            Method::Auto if n > AUTO_DIRECT_LIMIT => Method::Cg,
            Method::Auto => Method::Direct,
            explicit => *explicit,
        }
    }
}

/// Solves the SPD system `A x = b` with the engine `method` resolves to.
///
/// The direct path factors with `factor` and runs one triangular solve;
/// the CG path runs IC(0)-preconditioned CG under `cg` (the caller's
/// preconditioner choice is overridden to IC(0) only when left at the
/// default Jacobi, which is never the right choice at the sizes that
/// resolve to CG).
///
/// # Errors
///
/// Propagates [`SparseError`] from either engine (shape mismatches,
/// non-SPD pivots, CG non-convergence).
pub fn solve_spd(
    a: &CsrMatrix,
    b: &[f64],
    method: Method,
    factor: &FactorOptions,
    cg: &CgOptions,
) -> Result<Vec<f64>, SparseError> {
    match method.resolve(a.rows()) {
        Method::Direct => Ok(LdlFactor::factor_with(a, factor)?.solve(b)),
        Method::Cg => {
            let mut options = cg.clone();
            if options.preconditioner == Preconditioner::Jacobi {
                options.preconditioner = Preconditioner::IncompleteCholesky;
            }
            Ok(conjugate_gradient(a, b, None, &options)?.x)
        }
        Method::Auto => unreachable!("resolve never returns Auto"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::TripletMatrix;

    fn laplacian(nx: usize, ny: usize) -> CsrMatrix {
        let id = |x: usize, y: usize| y * nx + x;
        let mut t = TripletMatrix::new(nx * ny, nx * ny);
        for y in 0..ny {
            for x in 0..nx {
                t.push(id(x, y), id(x, y), 4.0 + 0.01);
                if x + 1 < nx {
                    t.push_sym(id(x, y), id(x + 1, y), -1.0);
                }
                if y + 1 < ny {
                    t.push_sym(id(x, y), id(x, y + 1), -1.0);
                }
            }
        }
        t.to_csr()
    }

    #[test]
    fn labels_round_trip() {
        for m in [Method::Auto, Method::Direct, Method::Cg] {
            assert_eq!(Method::parse(m.label()), Some(m));
        }
        assert_eq!(Method::parse("gpu"), None);
        assert_eq!(Method::default(), Method::Auto);
    }

    #[test]
    fn auto_resolves_by_problem_size() {
        assert_eq!(Method::Auto.resolve(10), Method::Direct);
        assert_eq!(Method::Auto.resolve(AUTO_DIRECT_LIMIT), Method::Direct);
        assert_eq!(Method::Auto.resolve(AUTO_DIRECT_LIMIT + 1), Method::Cg);
        // Explicit picks are never overridden.
        assert_eq!(Method::Direct.resolve(usize::MAX), Method::Direct);
        assert_eq!(Method::Cg.resolve(1), Method::Cg);
    }

    #[test]
    fn both_engines_agree_through_solve_spd() {
        let a = laplacian(14, 13);
        let b: Vec<f64> = (0..14 * 13).map(|i| ((i * 7) % 9) as f64 - 4.0).collect();
        let factor = FactorOptions::default();
        let cg = CgOptions {
            tolerance: 1e-12,
            ..CgOptions::default()
        };
        let direct = solve_spd(&a, &b, Method::Direct, &factor, &cg).unwrap();
        let iterative = solve_spd(&a, &b, Method::Cg, &factor, &cg).unwrap();
        let auto = solve_spd(&a, &b, Method::Auto, &factor, &cg).unwrap();
        assert_eq!(auto, direct, "auto at this size must take the direct path");
        let norm: f64 = direct.iter().map(|v| v * v).sum::<f64>().sqrt();
        let gap: f64 = direct
            .iter()
            .zip(&iterative)
            .map(|(u, v)| (u - v) * (u - v))
            .sum::<f64>()
            .sqrt();
        assert!(gap / norm < 1e-8, "relative gap {}", gap / norm);
    }
}
