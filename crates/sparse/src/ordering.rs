//! Fill-reducing orderings and permutations.
//!
//! Power-grid conductance matrices and finite-element stiffness matrices are
//! mesh-structured; reverse Cuthill–McKee keeps their Cholesky factors banded
//! and is a good, simple default ordering for such graphs.

use crate::csr::CsrMatrix;
use crate::error::SparseError;

/// A permutation of `0..n`.
///
/// `perm[new] = old`: position `new` of the permuted object holds element
/// `old` of the original (the convention used by
/// [`CsrMatrix::permute_symmetric`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    map: Vec<usize>,
}

impl Permutation {
    /// Validates and wraps a permutation vector.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::IndexOutOfBounds`] if `map` is not a bijection
    /// on `0..map.len()`.
    pub fn new(map: Vec<usize>) -> Result<Self, SparseError> {
        let n = map.len();
        let mut seen = vec![false; n];
        for &v in &map {
            if v >= n || seen[v] {
                return Err(SparseError::IndexOutOfBounds { index: v, bound: n });
            }
            seen[v] = true;
        }
        Ok(Permutation { map })
    }

    /// The identity permutation on `0..n`.
    pub fn identity(n: usize) -> Self {
        Permutation {
            map: (0..n).collect(),
        }
    }

    /// Length of the permutation.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the permutation is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Maps a new index to the old index it draws from.
    ///
    /// # Panics
    ///
    /// Panics if `new` is out of bounds.
    pub fn map(&self, new: usize) -> usize {
        self.map[new]
    }

    /// Returns the inverse permutation (old index -> new index).
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0usize; self.map.len()];
        for (new, &old) in self.map.iter().enumerate() {
            inv[old] = new;
        }
        Permutation { map: inv }
    }

    /// Gathers `x` into permuted order: `out[new] = x[perm[new]]`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.len()`.
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.map.len());
        self.map.iter().map(|&old| x[old]).collect()
    }

    /// Scatters `x` back to original order: `out[perm[new]] = x[new]`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.len()`.
    pub fn apply_inverse(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.map.len());
        let mut out = vec![0.0; x.len()];
        for (new, &old) in self.map.iter().enumerate() {
            out[old] = x[new];
        }
        out
    }

    /// Exposes the raw `new -> old` map.
    pub fn as_slice(&self) -> &[usize] {
        &self.map
    }
}

/// Symmetrized adjacency lists (pattern of `a | aᵀ`, self-loops dropped,
/// each list sorted and deduplicated) — the graph view every ordering here
/// works on.
fn symmetric_adjacency(a: &CsrMatrix) -> Vec<Vec<u32>> {
    let n = a.rows();
    let t = a.transpose();
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for r in 0..n {
        for (c, _) in a.row(r) {
            if c != r {
                adj[r].push(c as u32);
            }
        }
        for (c, _) in t.row(r) {
            if c != r {
                adj[r].push(c as u32);
            }
        }
    }
    for l in &mut adj {
        l.sort_unstable();
        l.dedup();
    }
    adj
}

/// Computes a reverse Cuthill–McKee ordering of a symmetric sparsity pattern.
///
/// The input is interpreted as an undirected graph (pattern of `a | aᵀ`);
/// values are ignored. Returns a [`Permutation`] suitable for
/// [`CsrMatrix::permute_symmetric`] that tends to concentrate entries near the
/// diagonal and so limits Cholesky fill on mesh-like graphs.
///
/// Disconnected graphs are handled by restarting from the unvisited vertex of
/// minimum degree.
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn reverse_cuthill_mckee(a: &CsrMatrix) -> Permutation {
    assert_eq!(a.rows(), a.cols(), "RCM needs a square matrix");
    let n = a.rows();
    let adj = symmetric_adjacency(a);
    let degree: Vec<usize> = adj.iter().map(|l| l.len()).collect();

    let mut order = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    // Seed each component from its unvisited vertex of minimum degree
    // (peripheral-ish), until every vertex is ordered.
    while let Some(seed) = (0..n).filter(|&v| !visited[v]).min_by_key(|&v| degree[v]) {
        visited[seed] = true;
        queue.push_back(seed);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            let mut nbrs: Vec<u32> = adj[v]
                .iter()
                .copied()
                .filter(|&u| !visited[u as usize])
                .collect();
            nbrs.sort_unstable_by_key(|&u| degree[u as usize]);
            for u in nbrs {
                visited[u as usize] = true;
                queue.push_back(u as usize);
            }
        }
    }
    order.reverse();
    Permutation { map: order }
}

/// Computes an approximate-minimum-degree (AMD) fill-reducing ordering of a
/// symmetric sparsity pattern.
///
/// The input is interpreted as an undirected graph (pattern of `a | aᵀ`);
/// values are ignored. This is the Amestoy–Davis–Duff algorithm on the
/// quotient graph: eliminating a pivot `p` replaces it and its adjacent
/// elements by one new element with boundary `Lp`, and the external degree of
/// each boundary variable `v` is then *approximated* as
/// `|A_v| + |Lp \ v| + Σ_e |Le \ Lp|`, where every `|Le \ Lp|` is obtained
/// for all affected elements in a single sweep over their boundaries. That
/// bound is what makes AMD near-linear — recomputing exact degrees by set
/// union is quadratic on finite-element graphs. Elements whose boundary falls
/// entirely inside `Lp` are absorbed, and boundary variables with identical
/// quotient-graph adjacency are merged into supervariables (bucketed by an
/// order-independent checksum, then compared exactly), which is what keeps
/// boundaries short on mesh-structured matrices.
///
/// Determinism: pivots come off a heap keyed `(degree, vertex index)` with
/// smallest-index tie-breaks, supervariable classes merge toward their
/// smallest member index, and no randomized container is involved anywhere,
/// so the returned permutation is a pure function of the sparsity pattern —
/// never of thread count.
///
/// Returns a [`Permutation`] in the `perm[new] = old` convention of
/// [`CsrMatrix::permute_symmetric`].
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn amd(a: &CsrMatrix) -> Permutation {
    assert_eq!(a.rows(), a.cols(), "AMD needs a square matrix");
    let n = a.rows();
    // Symmetrized adjacency without self-loops, as in RCM.
    let mut adj = symmetric_adjacency(a);

    const NONE: u32 = u32::MAX;
    // Quotient-graph state. An eliminated pivot p becomes element p with
    // boundary `bound[p]`; `elems[v]` lists the elements adjacent to variable
    // v; `adj[v]` keeps only original edges not yet covered by an element.
    // Lists may hold stale ids (eliminated, merged, or absorbed); every scan
    // filters on the state arrays instead of eagerly rewriting other lists.
    let mut elems: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut bound: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut eliminated = vec![false; n];
    let mut absorbed_elem = vec![false; n];
    // Supervariables: `merged_into[v] != NONE` means v was found
    // indistinguishable from a lower-indexed variable and rides along with it
    // from here on; `size[v]` counts the members of a principal variable,
    // which sit on an intrusive chain so elimination emits them together.
    let mut merged_into = vec![NONE; n];
    let mut size = vec![1u32; n];
    let mut chain_next = vec![NONE; n];
    let mut chain_tail: Vec<u32> = (0..n as u32).collect();

    let mut degree: Vec<usize> = adj.iter().map(|l| l.len()).collect();
    let mut stamp = vec![0u64; n]; // variable visitation stamps (Lp membership)
    let mut estamp = vec![0u64; n]; // element visitation stamps (w sweep)
    let mut w = vec![0usize; n]; // |Le \ Lp| per element, valid for one pivot
    let mut cur = 0u64;
    let mut live = n; // vertices not yet eliminated

    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut heap: BinaryHeap<Reverse<(usize, u32)>> =
        (0..n).map(|v| Reverse((degree[v], v as u32))).collect();
    let mut order = Vec::with_capacity(n);
    let mut lp: Vec<u32> = Vec::new();
    let mut touched: Vec<u32> = Vec::new();
    let mut buckets: Vec<(u32, u32)> = Vec::new();

    while let Some(Reverse((d, p))) = heap.pop() {
        let p = p as usize;
        // Lazy deletion: skip stale entries and variables merged away.
        if eliminated[p] || merged_into[p] != NONE || d != degree[p] {
            continue;
        }

        // Form the new element's boundary Lp: the pivot's remaining variable
        // neighbors plus the boundaries of its adjacent elements, which the
        // new element absorbs (their boundaries are subsets of Lp ∪ {p}).
        cur += 1;
        stamp[p] = cur;
        lp.clear();
        for &v in &adj[p] {
            let v = v as usize;
            if !eliminated[v] && merged_into[v] == NONE && stamp[v] != cur {
                stamp[v] = cur;
                lp.push(v as u32);
            }
        }
        for &e in &elems[p] {
            let e = e as usize;
            if absorbed_elem[e] {
                continue;
            }
            for &v in &bound[e] {
                let v = v as usize;
                if !eliminated[v] && merged_into[v] == NONE && stamp[v] != cur {
                    stamp[v] = cur;
                    lp.push(v as u32);
                }
            }
            absorbed_elem[e] = true;
            bound[e] = Vec::new();
        }
        eliminated[p] = true;
        live -= size[p] as usize;
        adj[p] = Vec::new();
        elems[p] = Vec::new();
        // Emit the pivot and every variable merged into it, in merge order.
        let mut m = p as u32;
        while m != NONE {
            order.push(m as usize);
            m = chain_next[m as usize];
        }
        let lp_total: usize = lp.iter().map(|&v| size[v as usize] as usize).sum();

        // One sweep computes w[e] = |Le \ Lp| for every element adjacent to
        // a boundary variable — the approximation that gives AMD its "A".
        // Each such boundary is scanned once per pivot (compacting stale ids
        // in passing), then discounted by the sizes of its Lp members.
        touched.clear();
        for &v in &lp {
            let v = v as usize;
            for &e in &elems[v] {
                let e = e as usize;
                if absorbed_elem[e] {
                    continue;
                }
                if estamp[e] != cur {
                    estamp[e] = cur;
                    touched.push(e as u32);
                    let mut total = 0usize;
                    bound[e].retain(|&u| {
                        let u = u as usize;
                        if eliminated[u] || merged_into[u] != NONE {
                            return false;
                        }
                        total += size[u] as usize;
                        true
                    });
                    w[e] = total;
                }
                w[e] -= size[v] as usize;
            }
        }
        // Aggressive absorption: an element with no boundary outside Lp is
        // made redundant by the new one.
        for &e in &touched {
            if w[e as usize] == 0 {
                absorbed_elem[e as usize] = true;
                bound[e as usize] = Vec::new();
            }
        }

        // Prune each boundary variable's lists — edges inside Lp are now
        // covered by element p, absorbed elements drop out — and attach p.
        for &v in &lp {
            let v = v as usize;
            adj[v].retain(|&u| {
                let u = u as usize;
                !eliminated[u] && merged_into[u] == NONE && stamp[u] != cur
            });
            elems[v].retain(|&e| !absorbed_elem[e as usize]);
            elems[v].push(p as u32);
            elems[v].sort_unstable();
        }
        bound[p] = lp.clone();

        // Supervariable detection: bucket boundary variables by an order-
        // independent checksum of their quotient adjacency, compare
        // equal-checksum candidates exactly (both lists are sorted), and
        // merge duplicates into the smallest member index.
        buckets.clear();
        for &v in &lp {
            let v = v as usize;
            let mut h = 0u32;
            for &u in &adj[v] {
                h = h.wrapping_add(u);
            }
            for &e in &elems[v] {
                h = h.wrapping_add(e);
            }
            buckets.push((h, v as u32));
        }
        buckets.sort_unstable();
        let mut i = 0;
        while i < buckets.len() {
            let mut j = i + 1;
            while j < buckets.len() && buckets[j].0 == buckets[i].0 {
                j += 1;
            }
            for x in i..j {
                let u = buckets[x].1 as usize;
                if merged_into[u] != NONE {
                    continue;
                }
                for y in (x + 1)..j {
                    let v = buckets[y].1 as usize;
                    if merged_into[v] != NONE {
                        continue;
                    }
                    if adj[u] == adj[v] && elems[u] == elems[v] {
                        merged_into[v] = u as u32;
                        size[u] += size[v];
                        chain_next[chain_tail[u] as usize] = v as u32;
                        chain_tail[u] = chain_tail[v];
                        adj[v] = Vec::new();
                        elems[v] = Vec::new();
                    }
                }
            }
            i = j;
        }

        // Approximate external degrees for the surviving boundary variables.
        for &v in &lp {
            let v = v as usize;
            if merged_into[v] != NONE {
                continue;
            }
            let a_ext: usize = adj[v].iter().map(|&u| size[u as usize] as usize).sum();
            let e_ext: usize = elems[v]
                .iter()
                .filter(|&&e| e as usize != p)
                .map(|&e| w[e as usize])
                .sum();
            let dv = (a_ext + (lp_total - size[v] as usize) + e_ext).min(live - size[v] as usize);
            degree[v] = dv;
            heap.push(Reverse((dv, v as u32)));
        }
    }
    debug_assert_eq!(order.len(), n);
    Permutation { map: order }
}

/// Pieces at or below this size stop recursing and are ordered locally by
/// minimum degree; dissecting further would only add separator overhead.
const ND_BASE: usize = 64;

/// Computes a nested-dissection fill-reducing ordering of a symmetric
/// sparsity pattern.
///
/// The input is interpreted as an undirected graph (pattern of `a | aᵀ`);
/// values are ignored. This is George-style level-set dissection: each
/// piece runs a BFS from a pseudo-peripheral vertex, splits its level
/// structure at the median level, takes as vertex separator the median-
/// level vertices with a neighbor on the far side, orders the two halves
/// recursively and the separator *last*. On planar-ish meshes (power
/// grids, FEA stiffness graphs) separators have size `O(√n)`, which bounds
/// Cholesky fill by `O(n log n)` — the asymptotics that matter once grids
/// reach millions of nodes. Pieces of at most [`ND_BASE`] vertices are
/// ordered by [`amd`] on the extracted subgraph.
///
/// Determinism: BFS frontiers expand in sorted adjacency order, ties in
/// the peripheral search break toward the smallest vertex index, and the
/// separator is emitted in ascending index order, so the permutation is a
/// pure function of the sparsity pattern.
///
/// Returns a [`Permutation`] in the `perm[new] = old` convention of
/// [`CsrMatrix::permute_symmetric`].
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn nested_dissection(a: &CsrMatrix) -> Permutation {
    assert_eq!(
        a.rows(),
        a.cols(),
        "nested dissection needs a square matrix"
    );
    let n = a.rows();
    let adj = symmetric_adjacency(a);

    let mut map = vec![0usize; n];
    // Membership stamps: `piece_stamp[v] == cur` means v belongs to the
    // piece being processed; `level[v]` is only valid under the same stamp.
    // `visit_stamp` marks BFS visitation (two sweeps per piece, so it gets
    // its own counter).
    let mut piece_stamp = vec![0u64; n];
    let mut visit_stamp = vec![0u64; n];
    let mut level = vec![0u32; n];
    let mut cur = 0u64;
    let mut vcur = 0u64;
    // Work list of (vertices, output offset); a piece owns the output
    // positions `[offset, offset + len)`.
    let mut stack: Vec<(Vec<u32>, usize)> = Vec::new();
    if n > 0 {
        stack.push(((0..n as u32).collect(), 0));
    }

    while let Some((verts, offset)) = stack.pop() {
        if verts.len() <= ND_BASE {
            order_base_case(&adj, &verts, &mut map[offset..offset + verts.len()]);
            continue;
        }
        cur += 1;
        for &v in &verts {
            piece_stamp[v as usize] = cur;
        }

        // BFS 1: from the piece's minimum-degree vertex to a farthest
        // vertex (pseudo-peripheral); BFS 2 from there gives the level
        // structure actually split. Both expand sorted adjacency, so the
        // levels are deterministic.
        let start = *verts
            .iter()
            .min_by_key(|&&v| (adj[v as usize].len(), v))
            .expect("piece is non-empty");
        vcur += 1;
        let (reached, _) = bfs_levels(
            &adj,
            start,
            cur,
            &piece_stamp,
            vcur,
            &mut visit_stamp,
            &mut level,
        );
        if reached.len() < verts.len() {
            // Disconnected piece: peel the reached component off and keep
            // the rest as its own piece. Both are strictly smaller.
            let mut in_reached = vec![false; n];
            for &v in &reached {
                in_reached[v as usize] = true;
            }
            let rest: Vec<u32> = verts
                .iter()
                .copied()
                .filter(|&v| !in_reached[v as usize])
                .collect();
            let split = reached.len();
            stack.push((reached, offset));
            stack.push((rest, offset + split));
            continue;
        }
        let far = *reached.last().expect("component is non-empty");
        vcur += 1;
        let (ordered, depth) = bfs_levels(
            &adj,
            far,
            cur,
            &piece_stamp,
            vcur,
            &mut visit_stamp,
            &mut level,
        );

        // Split at the level where the cumulative count first reaches half
        // the piece; the separator is the median-level vertices adjacent to
        // the far side.
        if depth < 2 {
            // Complete-graph-like piece: no useful separator exists.
            order_base_case(&adj, &verts, &mut map[offset..offset + verts.len()]);
            continue;
        }
        let mut counts = vec![0usize; depth as usize + 1];
        for &v in &ordered {
            counts[level[v as usize] as usize] += 1;
        }
        let mut split_level = 0u32;
        let mut seen = 0usize;
        for (l, &c) in counts.iter().enumerate() {
            seen += c;
            if seen * 2 >= ordered.len() {
                split_level = (l as u32).min(depth - 1);
                break;
            }
        }

        let mut low: Vec<u32> = Vec::new();
        let mut high: Vec<u32> = Vec::new();
        let mut sep: Vec<u32> = Vec::new();
        for &v in &ordered {
            let lv = level[v as usize];
            if lv < split_level {
                low.push(v);
            } else if lv > split_level {
                high.push(v);
            } else if adj[v as usize]
                .iter()
                .any(|&u| piece_stamp[u as usize] == cur && level[u as usize] == lv + 1)
            {
                sep.push(v);
            } else {
                low.push(v);
            }
        }
        if low.is_empty() || high.is_empty() {
            order_base_case(&adj, &verts, &mut map[offset..offset + verts.len()]);
            continue;
        }
        // Layout: low half, high half, separator last (it is the piece's
        // elimination frontier, so it must come after both halves).
        sep.sort_unstable();
        let sep_at = offset + low.len() + high.len();
        for (i, &v) in sep.iter().enumerate() {
            map[sep_at + i] = v as usize;
        }
        let high_at = offset + low.len();
        stack.push((low, offset));
        stack.push((high, high_at));
    }

    debug_assert_eq!(
        {
            let mut seen = map.clone();
            seen.sort_unstable();
            seen
        },
        (0..n).collect::<Vec<_>>()
    );
    Permutation { map }
}

/// BFS over one piece from `start`, writing levels under `stamp` into
/// `level` and returning the reached vertices in visitation order plus the
/// maximum level.
#[allow(clippy::too_many_arguments)]
fn bfs_levels(
    adj: &[Vec<u32>],
    start: u32,
    stamp: u64,
    piece_stamp: &[u64],
    vstamp: u64,
    visit_stamp: &mut [u64],
    level: &mut [u32],
) -> (Vec<u32>, u32) {
    let mut reached = vec![start];
    visit_stamp[start as usize] = vstamp;
    level[start as usize] = 0;
    let mut head = 0;
    let mut depth = 0;
    while head < reached.len() {
        let v = reached[head];
        head += 1;
        for &u in &adj[v as usize] {
            let u = u as usize;
            if piece_stamp[u] == stamp && visit_stamp[u] != vstamp {
                visit_stamp[u] = vstamp;
                level[u] = level[v as usize] + 1;
                depth = depth.max(level[u]);
                reached.push(u as u32);
            }
        }
    }
    (reached, depth)
}

/// Orders a small piece by [`amd`] on the extracted subgraph, writing the
/// resulting original-vertex ids into `out` (`out[i]` = old id in position
/// `offset + i` of the global ordering).
fn order_base_case(adj: &[Vec<u32>], verts: &[u32], out: &mut [usize]) {
    use crate::coo::TripletMatrix;
    debug_assert_eq!(verts.len(), out.len());
    let mut local = std::collections::HashMap::with_capacity(verts.len());
    for (i, &v) in verts.iter().enumerate() {
        local.insert(v, i);
    }
    let mut t = TripletMatrix::new(verts.len(), verts.len());
    for (i, &v) in verts.iter().enumerate() {
        t.push(i, i, 1.0);
        for &u in &adj[v as usize] {
            if let Some(&j) = local.get(&u) {
                t.push(i, j, -1.0);
            }
        }
    }
    let p = amd(&t.to_csr());
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = verts[p.map(i)] as usize;
    }
}

/// Bandwidth of a square sparse matrix: `max |i - j|` over stored entries.
///
/// # Panics
///
/// Panics if the matrix is not square.
pub fn bandwidth(a: &CsrMatrix) -> usize {
    assert_eq!(a.rows(), a.cols());
    let mut bw = 0usize;
    for r in 0..a.rows() {
        for (c, _) in a.row(r) {
            bw = bw.max(r.abs_diff(c));
        }
    }
    bw
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::TripletMatrix;
    use proptest::prelude::*;

    fn path_graph(n: usize) -> CsrMatrix {
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, 2.0);
            if i + 1 < n {
                t.push_sym(i, i + 1, -1.0);
            }
        }
        t.to_csr()
    }

    fn grid_graph(nx: usize, ny: usize) -> CsrMatrix {
        let id = |x: usize, y: usize| y * nx + x;
        let mut t = TripletMatrix::new(nx * ny, nx * ny);
        for y in 0..ny {
            for x in 0..nx {
                t.push(id(x, y), id(x, y), 4.0);
                if x + 1 < nx {
                    t.push_sym(id(x, y), id(x + 1, y), -1.0);
                }
                if y + 1 < ny {
                    t.push_sym(id(x, y), id(x, y + 1), -1.0);
                }
            }
        }
        t.to_csr()
    }

    #[test]
    fn permutation_rejects_non_bijection() {
        assert!(Permutation::new(vec![0, 0, 1]).is_err());
        assert!(Permutation::new(vec![0, 3]).is_err());
        assert!(Permutation::new(vec![1, 0, 2]).is_ok());
    }

    #[test]
    fn inverse_composes_to_identity() {
        let p = Permutation::new(vec![2, 0, 3, 1]).unwrap();
        let inv = p.inverse();
        for i in 0..4 {
            assert_eq!(inv.map(p.map(i)), i);
        }
    }

    #[test]
    fn apply_then_apply_inverse_round_trips() {
        let p = Permutation::new(vec![2, 0, 3, 1]).unwrap();
        let x = vec![10.0, 20.0, 30.0, 40.0];
        assert_eq!(p.apply_inverse(&p.apply(&x)), x);
    }

    #[test]
    fn rcm_keeps_path_bandwidth_one() {
        let m = path_graph(20);
        let p = reverse_cuthill_mckee(&m);
        let pm = m.permute_symmetric(&p);
        assert_eq!(bandwidth(&pm), 1);
    }

    #[test]
    fn rcm_shrinks_grid_bandwidth_vs_shuffled() {
        let m = grid_graph(8, 8);
        // Shuffle with a fixed "random" permutation to create bad ordering.
        let mut map: Vec<usize> = (0..64).collect();
        map.reverse();
        map.swap(0, 31);
        map.swap(7, 55);
        let shuffled = m.permute_symmetric(&Permutation::new(map).unwrap());
        let p = reverse_cuthill_mckee(&shuffled);
        let pm = shuffled.permute_symmetric(&p);
        assert!(bandwidth(&pm) <= bandwidth(&shuffled));
        assert!(bandwidth(&pm) <= 16, "bandwidth {}", bandwidth(&pm));
    }

    #[test]
    fn rcm_handles_disconnected_graph() {
        // Two disjoint paths.
        let mut t = TripletMatrix::new(6, 6);
        for i in 0..2 {
            t.push_sym(i, i + 1, -1.0);
        }
        for i in 3..5 {
            t.push_sym(i, i + 1, -1.0);
        }
        for i in 0..6 {
            t.push(i, i, 2.0);
        }
        let p = reverse_cuthill_mckee(&t.to_csr());
        // Must be a valid permutation covering all 6 vertices.
        assert_eq!(p.len(), 6);
        let mut seen = p.as_slice().to_vec();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn amd_is_a_permutation_and_deterministic() {
        let m = grid_graph(9, 7);
        let p1 = amd(&m);
        let p2 = amd(&m);
        assert_eq!(p1, p2, "AMD must be deterministic on identical input");
        let mut seen = p1.as_slice().to_vec();
        seen.sort_unstable();
        assert_eq!(seen, (0..63).collect::<Vec<_>>());
    }

    #[test]
    fn amd_beats_rcm_fill_on_grid() {
        use crate::ldl::{FactorOptions, LdlFactor, Ordering};
        let m = grid_graph(24, 24);
        let fill = |ordering| {
            LdlFactor::factor_with(
                &m,
                &FactorOptions {
                    ordering,
                    supernodal: false,
                    ..FactorOptions::default()
                },
            )
            .unwrap()
            .l_nnz()
        };
        let rcm_fill = fill(Ordering::Rcm);
        let amd_fill = fill(Ordering::Amd);
        assert!(
            amd_fill <= rcm_fill,
            "amd fill {amd_fill} vs rcm fill {rcm_fill}"
        );
    }

    #[test]
    fn amd_handles_disconnected_and_diagonal_graphs() {
        // Pure diagonal: any order is fine, must still be a permutation.
        let mut t = TripletMatrix::new(4, 4);
        for i in 0..4 {
            t.push(i, i, 1.0);
        }
        let p = amd(&t.to_csr());
        let mut seen = p.as_slice().to_vec();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);

        // Two disjoint paths.
        let mut t = TripletMatrix::new(6, 6);
        for i in 0..2 {
            t.push_sym(i, i + 1, -1.0);
        }
        for i in 3..5 {
            t.push_sym(i, i + 1, -1.0);
        }
        for i in 0..6 {
            t.push(i, i, 2.0);
        }
        let p = amd(&t.to_csr());
        let mut seen = p.as_slice().to_vec();
        seen.sort_unstable();
        assert_eq!(seen, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn nested_dissection_is_a_permutation_and_deterministic() {
        let m = grid_graph(17, 23);
        let p1 = nested_dissection(&m);
        let p2 = nested_dissection(&m);
        assert_eq!(p1, p2, "ND must be deterministic on identical input");
        let mut seen = p1.as_slice().to_vec();
        seen.sort_unstable();
        assert_eq!(seen, (0..17 * 23).collect::<Vec<_>>());
    }

    #[test]
    fn nested_dissection_fill_is_competitive_on_grids() {
        use crate::ldl::{FactorOptions, LdlFactor, Ordering};
        let m = grid_graph(32, 32);
        let fill = |ordering| {
            LdlFactor::factor_with(
                &m,
                &FactorOptions {
                    ordering,
                    supernodal: false,
                    ..FactorOptions::default()
                },
            )
            .unwrap()
            .l_nnz()
        };
        let natural_fill = fill(Ordering::Natural);
        let nd_fill = fill(Ordering::Nd);
        assert!(
            nd_fill < natural_fill,
            "nd fill {nd_fill} vs natural fill {natural_fill}"
        );
        // On a 32×32 grid ND should land in the same regime as RCM/AMD,
        // not degenerate toward natural-order fill.
        let rcm_fill = fill(Ordering::Rcm);
        assert!(
            nd_fill <= rcm_fill * 3 / 2,
            "nd fill {nd_fill} vs rcm fill {rcm_fill}"
        );
    }

    #[test]
    fn nested_dissection_handles_disconnected_and_tiny_graphs() {
        // Pure diagonal.
        let mut t = TripletMatrix::new(4, 4);
        for i in 0..4 {
            t.push(i, i, 1.0);
        }
        let p = nested_dissection(&t.to_csr());
        let mut seen = p.as_slice().to_vec();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);

        // Two disjoint grids, each above the base-case size.
        let nx = 12usize;
        let block = nx * nx;
        let mut t = TripletMatrix::new(2 * block, 2 * block);
        for b in 0..2 {
            let id = |x: usize, y: usize| b * block + y * nx + x;
            for y in 0..nx {
                for x in 0..nx {
                    t.push(id(x, y), id(x, y), 4.0);
                    if x + 1 < nx {
                        t.push_sym(id(x, y), id(x + 1, y), -1.0);
                    }
                    if y + 1 < nx {
                        t.push_sym(id(x, y), id(x, y + 1), -1.0);
                    }
                }
            }
        }
        let p = nested_dissection(&t.to_csr());
        let mut seen = p.as_slice().to_vec();
        seen.sort_unstable();
        assert_eq!(seen, (0..2 * block).collect::<Vec<_>>());

        // Empty matrix.
        let p = nested_dissection(&TripletMatrix::new(0, 0).to_csr());
        assert!(p.is_empty());
    }

    proptest! {
        #[test]
        fn nested_dissection_is_always_a_permutation(
            edges in proptest::collection::vec((0u32..90, 0u32..90), 0..300)
        ) {
            // 90 vertices beats ND_BASE, so dissection paths actually run.
            let mut t = TripletMatrix::new(90, 90);
            for i in 0..90 {
                t.push(i, i, 1.0);
            }
            for (a, b) in edges {
                t.push(a as usize, b as usize, -1.0);
            }
            let p = nested_dissection(&t.to_csr());
            let mut seen = p.as_slice().to_vec();
            seen.sort_unstable();
            prop_assert_eq!(seen, (0..90).collect::<Vec<_>>());
        }

        #[test]
        fn amd_is_always_a_permutation(
            edges in proptest::collection::vec((0u32..12, 0u32..12), 0..40)
        ) {
            let mut t = TripletMatrix::new(12, 12);
            for i in 0..12 {
                t.push(i, i, 1.0);
            }
            for (a, b) in edges {
                t.push(a as usize, b as usize, -1.0);
            }
            let p = amd(&t.to_csr());
            let mut seen = p.as_slice().to_vec();
            seen.sort_unstable();
            prop_assert_eq!(seen, (0..12).collect::<Vec<_>>());
        }

        #[test]
        fn rcm_is_always_a_permutation(
            edges in proptest::collection::vec((0u32..12, 0u32..12), 0..40)
        ) {
            let mut t = TripletMatrix::new(12, 12);
            for i in 0..12 {
                t.push(i, i, 1.0);
            }
            for (a, b) in edges {
                t.push(a as usize, b as usize, -1.0);
            }
            let p = reverse_cuthill_mckee(&t.to_csr());
            let mut seen = p.as_slice().to_vec();
            seen.sort_unstable();
            prop_assert_eq!(seen, (0..12).collect::<Vec<_>>());
        }
    }
}
