//! Fill-reducing orderings and permutations.
//!
//! Power-grid conductance matrices and finite-element stiffness matrices are
//! mesh-structured; reverse Cuthill–McKee keeps their Cholesky factors banded
//! and is a good, simple default ordering for such graphs.

use crate::csr::CsrMatrix;
use crate::error::SparseError;

/// A permutation of `0..n`.
///
/// `perm[new] = old`: position `new` of the permuted object holds element
/// `old` of the original (the convention used by
/// [`CsrMatrix::permute_symmetric`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    map: Vec<usize>,
}

impl Permutation {
    /// Validates and wraps a permutation vector.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::IndexOutOfBounds`] if `map` is not a bijection
    /// on `0..map.len()`.
    pub fn new(map: Vec<usize>) -> Result<Self, SparseError> {
        let n = map.len();
        let mut seen = vec![false; n];
        for &v in &map {
            if v >= n || seen[v] {
                return Err(SparseError::IndexOutOfBounds { index: v, bound: n });
            }
            seen[v] = true;
        }
        Ok(Permutation { map })
    }

    /// The identity permutation on `0..n`.
    pub fn identity(n: usize) -> Self {
        Permutation {
            map: (0..n).collect(),
        }
    }

    /// Length of the permutation.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the permutation is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Maps a new index to the old index it draws from.
    ///
    /// # Panics
    ///
    /// Panics if `new` is out of bounds.
    pub fn map(&self, new: usize) -> usize {
        self.map[new]
    }

    /// Returns the inverse permutation (old index -> new index).
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0usize; self.map.len()];
        for (new, &old) in self.map.iter().enumerate() {
            inv[old] = new;
        }
        Permutation { map: inv }
    }

    /// Gathers `x` into permuted order: `out[new] = x[perm[new]]`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.len()`.
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.map.len());
        self.map.iter().map(|&old| x[old]).collect()
    }

    /// Scatters `x` back to original order: `out[perm[new]] = x[new]`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.len()`.
    pub fn apply_inverse(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.map.len());
        let mut out = vec![0.0; x.len()];
        for (new, &old) in self.map.iter().enumerate() {
            out[old] = x[new];
        }
        out
    }

    /// Exposes the raw `new -> old` map.
    pub fn as_slice(&self) -> &[usize] {
        &self.map
    }
}

/// Computes a reverse Cuthill–McKee ordering of a symmetric sparsity pattern.
///
/// The input is interpreted as an undirected graph (pattern of `a | aᵀ`);
/// values are ignored. Returns a [`Permutation`] suitable for
/// [`CsrMatrix::permute_symmetric`] that tends to concentrate entries near the
/// diagonal and so limits Cholesky fill on mesh-like graphs.
///
/// Disconnected graphs are handled by restarting from the unvisited vertex of
/// minimum degree.
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn reverse_cuthill_mckee(a: &CsrMatrix) -> Permutation {
    assert_eq!(a.rows(), a.cols(), "RCM needs a square matrix");
    let n = a.rows();
    // Build symmetrized adjacency (exclude self-loops).
    let t = a.transpose();
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for r in 0..n {
        for (c, _) in a.row(r) {
            if c != r {
                adj[r].push(c as u32);
            }
        }
        for (c, _) in t.row(r) {
            if c != r {
                adj[r].push(c as u32);
            }
        }
    }
    for l in &mut adj {
        l.sort_unstable();
        l.dedup();
    }
    let degree: Vec<usize> = adj.iter().map(|l| l.len()).collect();

    let mut order = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    // Seed each component from its unvisited vertex of minimum degree
    // (peripheral-ish), until every vertex is ordered.
    while let Some(seed) = (0..n).filter(|&v| !visited[v]).min_by_key(|&v| degree[v]) {
        visited[seed] = true;
        queue.push_back(seed);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            let mut nbrs: Vec<u32> = adj[v]
                .iter()
                .copied()
                .filter(|&u| !visited[u as usize])
                .collect();
            nbrs.sort_unstable_by_key(|&u| degree[u as usize]);
            for u in nbrs {
                visited[u as usize] = true;
                queue.push_back(u as usize);
            }
        }
    }
    order.reverse();
    Permutation { map: order }
}

/// Bandwidth of a square sparse matrix: `max |i - j|` over stored entries.
///
/// # Panics
///
/// Panics if the matrix is not square.
pub fn bandwidth(a: &CsrMatrix) -> usize {
    assert_eq!(a.rows(), a.cols());
    let mut bw = 0usize;
    for r in 0..a.rows() {
        for (c, _) in a.row(r) {
            bw = bw.max(r.abs_diff(c));
        }
    }
    bw
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::TripletMatrix;
    use proptest::prelude::*;

    fn path_graph(n: usize) -> CsrMatrix {
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, 2.0);
            if i + 1 < n {
                t.push_sym(i, i + 1, -1.0);
            }
        }
        t.to_csr()
    }

    fn grid_graph(nx: usize, ny: usize) -> CsrMatrix {
        let id = |x: usize, y: usize| y * nx + x;
        let mut t = TripletMatrix::new(nx * ny, nx * ny);
        for y in 0..ny {
            for x in 0..nx {
                t.push(id(x, y), id(x, y), 4.0);
                if x + 1 < nx {
                    t.push_sym(id(x, y), id(x + 1, y), -1.0);
                }
                if y + 1 < ny {
                    t.push_sym(id(x, y), id(x, y + 1), -1.0);
                }
            }
        }
        t.to_csr()
    }

    #[test]
    fn permutation_rejects_non_bijection() {
        assert!(Permutation::new(vec![0, 0, 1]).is_err());
        assert!(Permutation::new(vec![0, 3]).is_err());
        assert!(Permutation::new(vec![1, 0, 2]).is_ok());
    }

    #[test]
    fn inverse_composes_to_identity() {
        let p = Permutation::new(vec![2, 0, 3, 1]).unwrap();
        let inv = p.inverse();
        for i in 0..4 {
            assert_eq!(inv.map(p.map(i)), i);
        }
    }

    #[test]
    fn apply_then_apply_inverse_round_trips() {
        let p = Permutation::new(vec![2, 0, 3, 1]).unwrap();
        let x = vec![10.0, 20.0, 30.0, 40.0];
        assert_eq!(p.apply_inverse(&p.apply(&x)), x);
    }

    #[test]
    fn rcm_keeps_path_bandwidth_one() {
        let m = path_graph(20);
        let p = reverse_cuthill_mckee(&m);
        let pm = m.permute_symmetric(&p);
        assert_eq!(bandwidth(&pm), 1);
    }

    #[test]
    fn rcm_shrinks_grid_bandwidth_vs_shuffled() {
        let m = grid_graph(8, 8);
        // Shuffle with a fixed "random" permutation to create bad ordering.
        let mut map: Vec<usize> = (0..64).collect();
        map.reverse();
        map.swap(0, 31);
        map.swap(7, 55);
        let shuffled = m.permute_symmetric(&Permutation::new(map).unwrap());
        let p = reverse_cuthill_mckee(&shuffled);
        let pm = shuffled.permute_symmetric(&p);
        assert!(bandwidth(&pm) <= bandwidth(&shuffled));
        assert!(bandwidth(&pm) <= 16, "bandwidth {}", bandwidth(&pm));
    }

    #[test]
    fn rcm_handles_disconnected_graph() {
        // Two disjoint paths.
        let mut t = TripletMatrix::new(6, 6);
        for i in 0..2 {
            t.push_sym(i, i + 1, -1.0);
        }
        for i in 3..5 {
            t.push_sym(i, i + 1, -1.0);
        }
        for i in 0..6 {
            t.push(i, i, 2.0);
        }
        let p = reverse_cuthill_mckee(&t.to_csr());
        // Must be a valid permutation covering all 6 vertices.
        assert_eq!(p.len(), 6);
        let mut seen = p.as_slice().to_vec();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
    }

    proptest! {
        #[test]
        fn rcm_is_always_a_permutation(
            edges in proptest::collection::vec((0u32..12, 0u32..12), 0..40)
        ) {
            let mut t = TripletMatrix::new(12, 12);
            for i in 0..12 {
                t.push(i, i, 1.0);
            }
            for (a, b) in edges {
                t.push(a as usize, b as usize, -1.0);
            }
            let p = reverse_cuthill_mckee(&t.to_csr());
            let mut seen = p.as_slice().to_vec();
            seen.sort_unstable();
            prop_assert_eq!(seen, (0..12).collect::<Vec<_>>());
        }
    }
}
