//! Sparse LDLᵀ (Cholesky-type) factorization for SPD matrices.
//!
//! This is an up-looking factorization in the style of Davis' `LDL` package:
//! a symbolic pass computes the elimination tree and column counts, then a
//! numeric pass computes one row of `L` at a time using the tree to find each
//! row's sparsity pattern. Combined with a reverse Cuthill–McKee ordering
//! ([`crate::ordering::reverse_cuthill_mckee`]) this comfortably factors the
//! mesh-structured conductance and stiffness matrices this workspace produces.

use crate::csr::CsrMatrix;
use crate::error::SparseError;
use crate::ordering::{reverse_cuthill_mckee, Permutation};

/// A factorization `P A Pᵀ = L D Lᵀ` of a sparse SPD matrix.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), emgrid_sparse::SparseError> {
/// use emgrid_sparse::{TripletMatrix, LdlFactor};
///
/// // 1-D Laplacian with Dirichlet ends: tridiag(-1, 2, -1).
/// let n = 10;
/// let mut t = TripletMatrix::new(n, n);
/// for i in 0..n {
///     t.push(i, i, 2.0);
///     if i + 1 < n {
///         t.push_sym(i, i + 1, -1.0);
///     }
/// }
/// let a = t.to_csr();
/// let f = LdlFactor::factor_rcm(&a)?;
/// let b = vec![1.0; n];
/// let x = f.solve(&b);
/// assert!(a.residual_norm(&x, &b) < 1e-10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LdlFactor {
    n: usize,
    /// Column pointers of L (strictly lower triangular part), CSC.
    col_ptr: Vec<usize>,
    /// Row indices of L.
    row_idx: Vec<u32>,
    /// Values of L.
    values: Vec<f64>,
    /// Diagonal matrix D.
    diag: Vec<f64>,
    /// Fill-reducing permutation applied to the matrix (new -> old).
    perm: Permutation,
}

impl LdlFactor {
    /// Factors `a` in its natural ordering.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::NotSquare`] for non-square input and
    /// [`SparseError::NotPositiveDefinite`] if a pivot is non-positive.
    pub fn factor(a: &CsrMatrix) -> Result<Self, SparseError> {
        Self::factor_permuted(a, Permutation::identity(a.rows()))
    }

    /// Factors `a` after applying a reverse Cuthill–McKee ordering.
    ///
    /// This is the recommended entry point for mesh-structured matrices.
    ///
    /// # Errors
    ///
    /// Same conditions as [`LdlFactor::factor`].
    pub fn factor_rcm(a: &CsrMatrix) -> Result<Self, SparseError> {
        let perm = reverse_cuthill_mckee(a);
        Self::factor_permuted(a, perm)
    }

    /// Factors `P A Pᵀ` for a caller-supplied permutation `P`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::NotSquare`], [`SparseError::DimensionMismatch`]
    /// if `perm.len() != a.rows()`, or [`SparseError::NotPositiveDefinite`].
    pub fn factor_permuted(a: &CsrMatrix, perm: Permutation) -> Result<Self, SparseError> {
        if a.rows() != a.cols() {
            return Err(SparseError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        if perm.len() != a.rows() {
            return Err(SparseError::DimensionMismatch {
                expected: a.rows(),
                found: perm.len(),
            });
        }
        let pa = if perm.as_slice().iter().enumerate().all(|(i, &v)| i == v) {
            a.clone()
        } else {
            a.permute_symmetric(&perm)
        };
        let n = pa.rows();

        // Symbolic: elimination tree and column counts.
        // For row k we walk the tree from every i < k with A(k, i) != 0.
        let none = usize::MAX;
        let mut parent = vec![none; n];
        let mut flag = vec![none; n];
        let mut lnz = vec![0usize; n];
        for k in 0..n {
            flag[k] = k;
            for (i, _) in pa.row(k) {
                if i >= k {
                    break;
                }
                let mut j = i;
                while flag[j] != k {
                    if parent[j] == none {
                        parent[j] = k;
                    }
                    lnz[j] += 1;
                    flag[j] = k;
                    j = parent[j];
                }
            }
        }
        let mut col_ptr = vec![0usize; n + 1];
        for k in 0..n {
            col_ptr[k + 1] = col_ptr[k] + lnz[k];
        }
        let nnz = col_ptr[n];
        let mut row_idx = vec![0u32; nnz];
        let mut values = vec![0.0f64; nnz];
        let mut diag = vec![0.0f64; n];

        // Numeric, up-looking: compute row k of L against columns < k.
        let mut y = vec![0.0f64; n];
        let mut pattern = vec![0usize; n];
        let mut stack = vec![0usize; n];
        let mut next = col_ptr[..n].to_vec(); // next free slot in each column
        let mut flag = vec![none; n];
        for k in 0..n {
            let mut top = n;
            flag[k] = k;
            let mut dk = 0.0;
            for (i, v) in pa.row(k) {
                match i.cmp(&k) {
                    std::cmp::Ordering::Less => {
                        y[i] += v;
                        let mut len = 0usize;
                        let mut j = i;
                        while flag[j] != k {
                            pattern[len] = j;
                            len += 1;
                            flag[j] = k;
                            j = parent[j];
                        }
                        while len > 0 {
                            len -= 1;
                            top -= 1;
                            stack[top] = pattern[len];
                        }
                    }
                    std::cmp::Ordering::Equal => dk = v,
                    std::cmp::Ordering::Greater => break,
                }
            }
            // Sparse triangular solve over the pattern (in etree order).
            for &i in &stack[top..n] {
                let yi = y[i];
                y[i] = 0.0;
                for p in col_ptr[i]..next[i] {
                    y[row_idx[p] as usize] -= values[p] * yi;
                }
                let di = diag[i];
                let lki = yi / di;
                dk -= lki * yi;
                row_idx[next[i]] = k as u32;
                values[next[i]] = lki;
                next[i] += 1;
            }
            if dk <= 0.0 || !dk.is_finite() {
                return Err(SparseError::NotPositiveDefinite {
                    column: k,
                    pivot: dk,
                });
            }
            diag[k] = dk;
        }

        Ok(LdlFactor {
            n,
            col_ptr,
            row_idx,
            values,
            diag,
            perm,
        })
    }

    /// Dimension of the factored matrix.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the factored matrix is empty (0 x 0).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of off-diagonal nonzeros in `L`.
    pub fn l_nnz(&self) -> usize {
        self.values.len()
    }

    /// The fill-reducing permutation used (new -> old).
    pub fn permutation(&self) -> &Permutation {
        &self.perm
    }

    /// Solves `A x = b`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the matrix dimension.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n, "rhs length mismatch");
        let mut x = self.perm.apply(b);
        self.solve_permuted_in_place(&mut x);
        self.perm.apply_inverse(&x)
    }

    /// Solves in the permuted coordinate system, in place (no allocations
    /// beyond the caller's buffer). `x` holds `P b` on entry and `P x` on
    /// exit. Prefer [`LdlFactor::solve`] unless you are batching solves.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the matrix dimension.
    pub fn solve_permuted_in_place(&self, x: &mut [f64]) {
        assert_eq!(x.len(), self.n, "rhs length mismatch");
        // Forward: L z = b.
        for j in 0..self.n {
            let xj = x[j];
            if xj != 0.0 {
                for p in self.col_ptr[j]..self.col_ptr[j + 1] {
                    x[self.row_idx[p] as usize] -= self.values[p] * xj;
                }
            }
        }
        // Diagonal: w = D^{-1} z.
        for j in 0..self.n {
            x[j] /= self.diag[j];
        }
        // Backward: Lᵀ x = w.
        for j in (0..self.n).rev() {
            let mut acc = x[j];
            for p in self.col_ptr[j]..self.col_ptr[j + 1] {
                acc -= self.values[p] * x[self.row_idx[p] as usize];
            }
            x[j] = acc;
        }
    }

    /// Solves for several right-hand sides, reusing internal machinery.
    ///
    /// # Panics
    ///
    /// Panics if any right-hand side has the wrong length.
    pub fn solve_many(&self, rhs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        rhs.iter().map(|b| self.solve(b)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::TripletMatrix;
    use proptest::prelude::*;

    fn laplacian_1d(n: usize) -> CsrMatrix {
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, 2.0);
            if i + 1 < n {
                t.push_sym(i, i + 1, -1.0);
            }
        }
        t.to_csr()
    }

    fn laplacian_2d(nx: usize, ny: usize) -> CsrMatrix {
        let id = |x: usize, y: usize| y * nx + x;
        let mut t = TripletMatrix::new(nx * ny, nx * ny);
        for y in 0..ny {
            for x in 0..nx {
                t.push(id(x, y), id(x, y), 4.0 + 0.01);
                if x + 1 < nx {
                    t.push_sym(id(x, y), id(x + 1, y), -1.0);
                }
                if y + 1 < ny {
                    t.push_sym(id(x, y), id(x, y + 1), -1.0);
                }
            }
        }
        t.to_csr()
    }

    #[test]
    fn solves_tridiagonal_exactly() {
        let a = laplacian_1d(50);
        let f = LdlFactor::factor(&a).unwrap();
        let b: Vec<f64> = (0..50).map(|i| (i as f64).sin()).collect();
        let x = f.solve(&b);
        assert!(a.residual_norm(&x, &b) < 1e-10);
    }

    #[test]
    fn rcm_factor_matches_natural_factor_solution() {
        let a = laplacian_2d(7, 9);
        let b: Vec<f64> = (0..63).map(|i| (i % 5) as f64 - 2.0).collect();
        let x1 = LdlFactor::factor(&a).unwrap().solve(&b);
        let x2 = LdlFactor::factor_rcm(&a).unwrap().solve(&b);
        for (u, v) in x1.iter().zip(&x2) {
            assert!((u - v).abs() < 1e-9);
        }
    }

    #[test]
    fn detects_indefinite_matrix() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push_sym(0, 1, 2.0);
        t.push(1, 1, 1.0); // eigenvalues 3, -1
        let err = LdlFactor::factor(&t.to_csr()).unwrap_err();
        assert!(matches!(err, SparseError::NotPositiveDefinite { .. }));
    }

    #[test]
    fn rejects_non_square() {
        let t = TripletMatrix::new(2, 3);
        let err = LdlFactor::factor(&t.to_csr()).unwrap_err();
        assert!(matches!(err, SparseError::NotSquare { .. }));
    }

    #[test]
    fn identity_factor_solves_trivially() {
        let a = CsrMatrix::identity(5);
        let f = LdlFactor::factor(&a).unwrap();
        let b = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(f.solve(&b), b);
        assert_eq!(f.l_nnz(), 0);
    }

    #[test]
    fn diagonal_matrix_divides() {
        let mut t = TripletMatrix::new(3, 3);
        t.push(0, 0, 2.0);
        t.push(1, 1, 4.0);
        t.push(2, 2, 8.0);
        let f = LdlFactor::factor(&t.to_csr()).unwrap();
        let x = f.solve(&[2.0, 4.0, 8.0]);
        assert_eq!(x, vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn dense_spd_block_matches_dense_solver() {
        // Small dense SPD matrix: A = M Mᵀ + I.
        let m = [[1.0, 2.0, 0.5], [0.0, 1.5, -1.0], [2.0, 0.3, 1.0]];
        let mut t = TripletMatrix::new(3, 3);
        for i in 0..3 {
            for j in 0..3 {
                let mut v = 0.0;
                for (k, _) in m.iter().enumerate() {
                    v += m[i][k] * m[j][k];
                }
                if i == j {
                    v += 1.0;
                }
                t.push(i, j, v);
            }
        }
        let a = t.to_csr();
        let b = vec![1.0, -2.0, 0.5];
        let xs = LdlFactor::factor(&a).unwrap().solve(&b);
        let xd = a.to_dense().solve(&b).unwrap();
        for (u, v) in xs.iter().zip(&xd) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn factor_solve_residual_small_on_random_spd(
            diag_boost in 0.1f64..5.0,
            edges in proptest::collection::vec((0u32..15, 0u32..15, 0.01f64..1.0), 1..60),
            b in proptest::collection::vec(-10.0f64..10.0, 15),
        ) {
            // Build a weighted graph Laplacian + boost*I: always SPD.
            let n = 15;
            let mut t = TripletMatrix::new(n, n);
            let mut diag = vec![diag_boost; n];
            for (a_, b_, w) in edges {
                let (i, j) = (a_ as usize, b_ as usize);
                if i != j {
                    t.push_sym(i, j, -w);
                    diag[i] += w;
                    diag[j] += w;
                }
            }
            for (i, d) in diag.iter().enumerate() {
                t.push(i, i, *d);
            }
            let a = t.to_csr();
            let f = LdlFactor::factor_rcm(&a).unwrap();
            let x = f.solve(&b);
            prop_assert!(a.residual_norm(&x, &b) < 1e-8);
        }
    }
}
