//! Sparse LDLᵀ (Cholesky-type) factorization for SPD matrices.
//!
//! Two numeric engines share one entry point, [`LdlFactor::factor_with`]:
//!
//! * a scalar up-looking factorization in the style of Davis' `LDL` package —
//!   a symbolic pass computes the elimination tree and column counts, then a
//!   numeric pass computes one row of `L` at a time using the tree to find
//!   each row's sparsity pattern; and
//! * a blocked supernodal factorization ([`crate::supernodal`]) that groups
//!   columns with nested patterns into dense panels and applies
//!   cache-contiguous update kernels — the default, and the faster choice on
//!   the mesh-structured conductance and stiffness matrices this workspace
//!   produces.
//!
//! [`FactorOptions`] selects the fill-reducing ordering (natural, reverse
//! Cuthill–McKee, or minimum degree via [`crate::ordering::amd`]), the numeric
//! engine, and the worker-thread count for the triangular solves. Whatever the
//! combination, results are deterministic: the ordering and supernode
//! partition are pure functions of the sparsity pattern, and the parallel
//! solve folds per-subtree contributions in a fixed order, so bits never
//! depend on thread count.

use emgrid_runtime::{obs, parallel_map_chunks};

use crate::csr::CsrMatrix;
use crate::error::SparseError;
use crate::ordering::{amd, nested_dissection, reverse_cuthill_mckee, Permutation};
use crate::panel::{self, KernelBackend, PanelKernels};
use crate::supernodal::{self, SolvePlan, Symbolic, TOP};

/// Fill-reducing ordering applied before factorization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Ordering {
    /// Factor the matrix as given.
    Natural,
    /// Reverse Cuthill–McKee: bandwidth-reducing, good on path-like meshes.
    Rcm,
    /// Minimum degree (the AMD family): the lowest fill on 2-D/3-D meshes
    /// and the default.
    #[default]
    Amd,
    /// Nested dissection: level-set bisection with vertex separators
    /// ordered last. Asymptotically the right ordering for chip-scale
    /// grids (`O(n log n)` fill on planar meshes), at a higher ordering
    /// cost than AMD.
    Nd,
}

impl Ordering {
    /// Parses a CLI/spec label (`natural`, `rcm`, `amd`, `nd`).
    pub fn parse(s: &str) -> Option<Ordering> {
        match s {
            "natural" => Some(Ordering::Natural),
            "rcm" => Some(Ordering::Rcm),
            "amd" => Some(Ordering::Amd),
            "nd" => Some(Ordering::Nd),
            _ => None,
        }
    }

    /// The canonical lower-case label (inverse of [`Ordering::parse`]).
    pub fn label(&self) -> &'static str {
        match self {
            Ordering::Natural => "natural",
            Ordering::Rcm => "rcm",
            Ordering::Amd => "amd",
            Ordering::Nd => "nd",
        }
    }
}

/// Configuration for [`LdlFactor::factor_with`].
///
/// The default — AMD ordering, supernodal numeric, one thread — is the right
/// choice for one-shot solves of mesh-structured systems. Callers batching
/// many solves against one factor set `threads`; callers factoring tiny
/// systems in a hot loop (where ordering quality is irrelevant and setup cost
/// is not) pick `Rcm` or `Natural` with `supernodal: false`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FactorOptions {
    /// Fill-reducing ordering.
    pub ordering: Ordering,
    /// Use the blocked supernodal numeric engine instead of the scalar
    /// up-looking one. Both produce the same factor layout; the supernodal
    /// engine is faster on matrices with meaningful fill.
    pub supernodal: bool,
    /// Worker threads for the triangular solves ([`LdlFactor::solve`] uses
    /// independent elimination-tree subtrees, [`LdlFactor::solve_many`]
    /// blocks of right-hand sides). Never changes results, only wall time.
    pub threads: usize,
    /// Dense-panel microkernel backend for the supernodal factor and the
    /// blocked solves ([`crate::panel`]). Every backend produces identical
    /// bytes, so this — like `threads` — only moves wall time.
    pub kernels: KernelBackend,
    /// Right-hand sides per panel in [`LdlFactor::solve_many`]. Panels of
    /// this width share one forward/diagonal/backward sweep; the default
    /// (8) matches the blocked backend's row-unroll width. Re-blocking
    /// never changes solution bits.
    pub rhs_panel: usize,
    /// Cap on supernode width in the supernodal engine. Wider panels
    /// amortize better but waste work on patterns that only almost match;
    /// the default (48) keeps the dense diagonal block (48×48 f64 ≈ 18 KiB)
    /// comfortably in L1/L2. Changes the supernode partition — and thus
    /// panel shapes — but never the factor's CSC layout or values.
    pub max_supernode_width: usize,
}

/// Default [`FactorOptions::rhs_panel`].
pub const DEFAULT_RHS_PANEL: usize = 8;

/// Default [`FactorOptions::max_supernode_width`].
pub const DEFAULT_MAX_SUPERNODE_WIDTH: usize = 48;

impl Default for FactorOptions {
    fn default() -> Self {
        FactorOptions {
            ordering: Ordering::Amd,
            supernodal: true,
            threads: 1,
            kernels: KernelBackend::Auto,
            rhs_panel: DEFAULT_RHS_PANEL,
            max_supernode_width: DEFAULT_MAX_SUPERNODE_WIDTH,
        }
    }
}

impl FactorOptions {
    /// Returns the options with a different ordering.
    pub fn with_ordering(mut self, ordering: Ordering) -> Self {
        self.ordering = ordering;
        self
    }

    /// Returns the options with a different solve-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Returns the options with a different microkernel backend.
    pub fn with_kernels(mut self, kernels: KernelBackend) -> Self {
        self.kernels = kernels;
        self
    }

    /// The scalar RCM configuration the workspace used before the supernodal
    /// engine existed: bit-identical to the historical scalar-RCM path, so
    /// hot loops whose sample streams must not move pin themselves to it
    /// (including pinning the reference kernel backend, although backends
    /// are bit-identical anyway).
    pub fn scalar_rcm() -> Self {
        FactorOptions {
            ordering: Ordering::Rcm,
            supernodal: false,
            threads: 1,
            kernels: KernelBackend::Scalar,
            rhs_panel: DEFAULT_RHS_PANEL,
            max_supernode_width: DEFAULT_MAX_SUPERNODE_WIDTH,
        }
    }
}

/// A factorization `P A Pᵀ = L D Lᵀ` of a sparse SPD matrix.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), emgrid_sparse::SparseError> {
/// use emgrid_sparse::{FactorOptions, TripletMatrix, LdlFactor};
///
/// // 1-D Laplacian with Dirichlet ends: tridiag(-1, 2, -1).
/// let n = 10;
/// let mut t = TripletMatrix::new(n, n);
/// for i in 0..n {
///     t.push(i, i, 2.0);
///     if i + 1 < n {
///         t.push_sym(i, i + 1, -1.0);
///     }
/// }
/// let a = t.to_csr();
/// let f = LdlFactor::factor_with(&a, &FactorOptions::default())?;
/// let b = vec![1.0; n];
/// let x = f.solve(&b);
/// assert!(a.residual_norm(&x, &b) < 1e-10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LdlFactor {
    n: usize,
    /// Column pointers of L (strictly lower triangular part), CSC.
    col_ptr: Vec<usize>,
    /// Row indices of L.
    row_idx: Vec<u32>,
    /// Values of L.
    values: Vec<f64>,
    /// Diagonal matrix D.
    diag: Vec<f64>,
    /// Fill-reducing permutation applied to the matrix (new -> old).
    perm: Permutation,
    /// Supernode column boundaries, when the supernodal engine ran.
    sn_ptr: Vec<usize>,
    /// Structural subtree plan for the parallel solve (large systems only).
    plan: Option<SolvePlan>,
    /// Worker threads for the solve sweeps.
    threads: usize,
    /// Microkernel backend for the blocked solve sweeps.
    kernels: KernelBackend,
    /// Right-hand sides per [`LdlFactor::solve_many`] panel.
    rhs_panel: usize,
}

impl LdlFactor {
    /// Factors `a` under the given [`FactorOptions`]. This is the single
    /// entry point for every ordering, numeric engine, and microkernel
    /// backend combination.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::NotSquare`] for non-square input and
    /// [`SparseError::NotPositiveDefinite`] if a pivot is non-positive (the
    /// reported column index is in the permuted ordering).
    pub fn factor_with(a: &CsrMatrix, opts: &FactorOptions) -> Result<Self, SparseError> {
        if a.rows() != a.cols() {
            return Err(SparseError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let perm = {
            let _span = obs::span("order");
            match opts.ordering {
                Ordering::Natural => Permutation::identity(a.rows()),
                Ordering::Rcm => reverse_cuthill_mckee(a),
                Ordering::Amd => amd(a),
                Ordering::Nd => nested_dissection(a),
            }
        };
        Self::factor_impl(a, perm, opts)
    }

    fn factor_impl(
        a: &CsrMatrix,
        perm: Permutation,
        opts: &FactorOptions,
    ) -> Result<Self, SparseError> {
        if perm.len() != a.rows() {
            return Err(SparseError::DimensionMismatch {
                expected: a.rows(),
                found: perm.len(),
            });
        }
        let pa = if perm.as_slice().iter().enumerate().all(|(i, &v)| i == v) {
            a.clone()
        } else {
            a.permute_symmetric(&perm)
        };

        let sym = {
            let _span = obs::span("symbolic");
            supernodal::analyze(&pa, opts.supernodal, opts.max_supernode_width)
        };
        let n = sym.n();
        let (row_idx, values, diag) = {
            let _span = obs::span("numeric");
            if opts.supernodal {
                // Dispatch once to a concrete backend so the panel kernels
                // monomorphize (and inline) instead of going through the
                // vtable on every dense update.
                match opts.kernels.resolve() {
                    KernelBackend::Scalar => supernodal::factor_numeric(&pa, &sym, &panel::SCALAR)?,
                    _ => supernodal::factor_numeric(&pa, &sym, &panel::BLOCKED)?,
                }
            } else {
                Self::factor_numeric_scalar(&pa, &sym)?
            }
        };
        let plan = supernodal::build_solve_plan(&sym.parent);
        let Symbolic {
            col_ptr, sn_ptr, ..
        } = sym;
        Ok(LdlFactor {
            n,
            col_ptr,
            row_idx,
            values,
            diag,
            perm,
            sn_ptr,
            plan,
            threads: opts.threads.max(1),
            kernels: opts.kernels,
            rhs_panel: opts.rhs_panel.max(1),
        })
    }

    /// Scalar up-looking numeric phase: compute row k of L against columns
    /// `< k`, using the elimination tree to enumerate each row's pattern.
    fn factor_numeric_scalar(
        pa: &CsrMatrix,
        sym: &Symbolic,
    ) -> Result<supernodal::NumericFactor, SparseError> {
        let n = sym.n();
        let none = usize::MAX;
        let col_ptr = &sym.col_ptr;
        let parent = &sym.parent;
        let nnz = col_ptr[n];
        let mut row_idx = vec![0u32; nnz];
        let mut values = vec![0.0f64; nnz];
        let mut diag = vec![0.0f64; n];

        let mut y = vec![0.0f64; n];
        let mut pattern = vec![0usize; n];
        let mut stack = vec![0usize; n];
        let mut next = col_ptr[..n].to_vec(); // next free slot in each column
        let mut flag = vec![none; n];
        for k in 0..n {
            let mut top = n;
            flag[k] = k;
            let mut dk = 0.0;
            for (i, v) in pa.row(k) {
                match i.cmp(&k) {
                    std::cmp::Ordering::Less => {
                        y[i] += v;
                        let mut len = 0usize;
                        let mut j = i;
                        while flag[j] != k {
                            pattern[len] = j;
                            len += 1;
                            flag[j] = k;
                            j = parent[j];
                        }
                        while len > 0 {
                            len -= 1;
                            top -= 1;
                            stack[top] = pattern[len];
                        }
                    }
                    std::cmp::Ordering::Equal => dk = v,
                    std::cmp::Ordering::Greater => break,
                }
            }
            // Sparse triangular solve over the pattern (in etree order).
            for &i in &stack[top..n] {
                let yi = y[i];
                y[i] = 0.0;
                for p in col_ptr[i]..next[i] {
                    y[row_idx[p] as usize] -= values[p] * yi;
                }
                let di = diag[i];
                let lki = yi / di;
                dk -= lki * yi;
                row_idx[next[i]] = k as u32;
                values[next[i]] = lki;
                next[i] += 1;
            }
            if dk <= 0.0 || !dk.is_finite() {
                return Err(SparseError::NotPositiveDefinite {
                    column: k,
                    pivot: dk,
                });
            }
            diag[k] = dk;
        }
        Ok((row_idx, values, diag))
    }

    /// Dimension of the factored matrix.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the factored matrix is empty (0 x 0).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of off-diagonal nonzeros in `L` (the fill-in measure reported
    /// by the ordering ablation bench).
    pub fn l_nnz(&self) -> usize {
        self.values.len()
    }

    /// The fill-reducing permutation used (new -> old).
    pub fn permutation(&self) -> &Permutation {
        &self.perm
    }

    /// Supernode column boundaries of the permuted factor, when the
    /// supernodal engine ran: supernode `s` spans columns
    /// `sn[s]..sn[s + 1]`. Empty for scalar factors. The partition is a pure
    /// function of the matrix pattern and ordering — never of thread count.
    pub fn supernode_ptr(&self) -> &[usize] {
        &self.sn_ptr
    }

    /// Solves `A x = b`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the matrix dimension.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n, "rhs length mismatch");
        let _span = obs::span("solve");
        let mut x = self.perm.apply(b);
        match &self.plan {
            Some(plan) => self.solve_planned(&mut x, plan),
            None => self.solve_permuted_in_place(&mut x),
        }
        self.perm.apply_inverse(&x)
    }

    /// Solves in the permuted coordinate system, in place (no allocations
    /// beyond the caller's buffer). `x` holds `P b` on entry and `P x` on
    /// exit. Prefer [`LdlFactor::solve`] unless you are batching solves.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the matrix dimension.
    pub fn solve_permuted_in_place(&self, x: &mut [f64]) {
        assert_eq!(x.len(), self.n, "rhs length mismatch");
        // Forward: L z = b.
        for j in 0..self.n {
            let xj = x[j];
            if xj != 0.0 {
                for p in self.col_ptr[j]..self.col_ptr[j + 1] {
                    x[self.row_idx[p] as usize] -= self.values[p] * xj;
                }
            }
        }
        // Diagonal: w = D^{-1} z.
        for j in 0..self.n {
            x[j] /= self.diag[j];
        }
        // Backward: Lᵀ x = w.
        for j in (0..self.n).rev() {
            let mut acc = x[j];
            for p in self.col_ptr[j]..self.col_ptr[j + 1] {
                acc -= self.values[p] * x[self.row_idx[p] as usize];
            }
            x[j] = acc;
        }
    }

    /// Parallel triangular sweeps over independent elimination-tree
    /// subtrees. Every entry of `x` is produced by exactly one deterministic
    /// expression and cross-subtree contributions fold in subtree order, so
    /// the result is bit-identical for any thread count — and because the
    /// plan itself is structural, a factor of a given matrix always takes
    /// this same path regardless of how many workers execute it.
    fn solve_planned(&self, x: &mut [f64], plan: &SolvePlan) {
        let nsub = plan.subtree_count();
        let top_len = plan.top_cols.len();

        // Forward within subtrees: each returns its own solution values plus
        // a dense vector of contributions to the shared top separator.
        let xr: &[f64] = x;
        let parts: Vec<(Vec<f64>, Vec<f64>)> =
            parallel_map_chunks(nsub, 1, self.threads, |c, _| {
                let cols = plan.sub_cols(c);
                let mut loc = vec![0.0f64; cols.len()];
                let mut topadd = vec![0.0f64; top_len];
                for (li, &j) in cols.iter().enumerate() {
                    let j = j as usize;
                    let zj = xr[j] + loc[li];
                    loc[li] = zj;
                    if zj != 0.0 {
                        for p in self.col_ptr[j]..self.col_ptr[j + 1] {
                            let r = self.row_idx[p] as usize;
                            let v = self.values[p] * zj;
                            if plan.home[r] == c as u32 {
                                loc[plan.slot[r] as usize] -= v;
                            } else {
                                // Rows of a column are etree ancestors, so a
                                // foreign row is necessarily in the top.
                                topadd[plan.slot[r] as usize] -= v;
                            }
                        }
                    }
                }
                (loc, topadd)
            });
        for (c, (loc, topadd)) in parts.iter().enumerate() {
            for (li, &j) in plan.sub_cols(c).iter().enumerate() {
                x[j as usize] = loc[li];
            }
            for (t, &j) in plan.top_cols.iter().enumerate() {
                x[j as usize] += topadd[t];
            }
        }
        // Forward over the top separator (its columns only reach other top
        // columns: the top is ancestor-closed).
        for &j in &plan.top_cols {
            let j = j as usize;
            let zj = x[j];
            if zj != 0.0 {
                for p in self.col_ptr[j]..self.col_ptr[j + 1] {
                    x[self.row_idx[p] as usize] -= self.values[p] * zj;
                }
            }
        }
        // Diagonal.
        for j in 0..self.n {
            x[j] /= self.diag[j];
        }
        // Backward over the top separator first...
        for &j in plan.top_cols.iter().rev() {
            let j = j as usize;
            let mut acc = x[j];
            for p in self.col_ptr[j]..self.col_ptr[j + 1] {
                acc -= self.values[p] * x[self.row_idx[p] as usize];
            }
            x[j] = acc;
        }
        // ...then independently within each subtree, reading only finalized
        // top entries and the subtree's own (descending) results.
        let xr: &[f64] = x;
        let parts: Vec<Vec<f64>> = parallel_map_chunks(nsub, 1, self.threads, |c, _| {
            let cols = plan.sub_cols(c);
            let mut loc: Vec<f64> = cols.iter().map(|&j| xr[j as usize]).collect();
            for li in (0..cols.len()).rev() {
                let j = cols[li] as usize;
                let mut acc = loc[li];
                for p in self.col_ptr[j]..self.col_ptr[j + 1] {
                    let r = self.row_idx[p] as usize;
                    let xv = if plan.home[r] == c as u32 {
                        loc[plan.slot[r] as usize]
                    } else {
                        debug_assert_eq!(plan.home[r], TOP);
                        xr[r]
                    };
                    acc -= self.values[p] * xv;
                }
                loc[li] = acc;
            }
            loc
        });
        for (c, loc) in parts.iter().enumerate() {
            for (li, &j) in plan.sub_cols(c).iter().enumerate() {
                x[j as usize] = loc[li];
            }
        }
    }

    /// Solves for several right-hand sides with a blocked kernel: panels of
    /// up to [`FactorOptions::rhs_panel`] vectors share one
    /// forward/diagonal/backward sweep (one pass over the factor per panel
    /// instead of one per vector), and panels run on the configured worker
    /// threads. Each solution is bit-identical to a scalar sweep of the
    /// same factor for any thread count, panel width, or kernel backend.
    ///
    /// # Panics
    ///
    /// Panics if any right-hand side has the wrong length.
    pub fn solve_many(&self, rhs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        if rhs.is_empty() {
            return Vec::new();
        }
        let _span = obs::span("solve");
        let blocks: Vec<Vec<Vec<f64>>> =
            parallel_map_chunks(rhs.len(), self.rhs_panel, self.threads, |_, range| {
                self.solve_block(&rhs[range])
            });
        blocks.into_iter().flatten().collect()
    }

    /// One blocked sweep over `k <= rhs_panel` right-hand sides held in a
    /// row-major `n x k` panel. The k columns are independent, so the row
    /// operations route through the microkernel backend, which may
    /// vectorize across them.
    fn solve_block(&self, rhs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        // One concrete dispatch per panel; the per-nonzero row kernels then
        // inline instead of paying a virtual call each.
        match self.kernels.resolve() {
            KernelBackend::Scalar => self.solve_block_with(&panel::SCALAR, rhs),
            _ => self.solve_block_with(&panel::BLOCKED, rhs),
        }
    }

    fn solve_block_with<K: PanelKernels + ?Sized>(
        &self,
        kern: &K,
        rhs: &[Vec<f64>],
    ) -> Vec<Vec<f64>> {
        let k = rhs.len();
        let n = self.n;
        let mut panel = vec![0.0f64; n * k];
        for (c, b) in rhs.iter().enumerate() {
            assert_eq!(b.len(), n, "rhs length mismatch");
            for new in 0..n {
                panel[new * k + c] = b[self.perm.map(new)];
            }
        }
        // Forward: row j of the panel updates strictly-later rows.
        for j in 0..n {
            let (head, tail) = panel.split_at_mut((j + 1) * k);
            let xj = &head[j * k..];
            for p in self.col_ptr[j]..self.col_ptr[j + 1] {
                let r = self.row_idx[p] as usize;
                let row = &mut tail[(r - j - 1) * k..(r - j) * k];
                kern.row_update(row, xj, self.values[p]);
            }
        }
        // Diagonal.
        for j in 0..n {
            kern.row_div(&mut panel[j * k..(j + 1) * k], self.diag[j]);
        }
        // Backward: row j accumulates from strictly-later rows.
        for j in (0..n).rev() {
            let (head, tail) = panel.split_at_mut((j + 1) * k);
            let xj = &mut head[j * k..];
            for p in self.col_ptr[j]..self.col_ptr[j + 1] {
                let r = self.row_idx[p] as usize;
                let row = &tail[(r - j - 1) * k..(r - j) * k];
                kern.row_update(xj, row, self.values[p]);
            }
        }
        // Unpermute each column.
        (0..k)
            .map(|c| {
                let mut out = vec![0.0f64; n];
                for new in 0..n {
                    out[self.perm.map(new)] = panel[new * k + c];
                }
                out
            })
            .collect()
    }

    /// The raw CSC parts of the permuted factor: `(col_ptr, row_idx,
    /// values, diag)`. Exposed for byte-level determinism checks (the
    /// backend bit-identity suites compare these arrays directly) and
    /// diagnostics.
    pub fn factor_parts(&self) -> (&[usize], &[u32], &[f64], &[f64]) {
        (&self.col_ptr, &self.row_idx, &self.values, &self.diag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::TripletMatrix;
    use proptest::prelude::*;

    fn laplacian_1d(n: usize) -> CsrMatrix {
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, 2.0);
            if i + 1 < n {
                t.push_sym(i, i + 1, -1.0);
            }
        }
        t.to_csr()
    }

    fn laplacian_2d(nx: usize, ny: usize) -> CsrMatrix {
        let id = |x: usize, y: usize| y * nx + x;
        let mut t = TripletMatrix::new(nx * ny, nx * ny);
        for y in 0..ny {
            for x in 0..nx {
                t.push(id(x, y), id(x, y), 4.0 + 0.01);
                if x + 1 < nx {
                    t.push_sym(id(x, y), id(x + 1, y), -1.0);
                }
                if y + 1 < ny {
                    t.push_sym(id(x, y), id(x, y + 1), -1.0);
                }
            }
        }
        t.to_csr()
    }

    fn opts(ordering: Ordering, supernodal: bool) -> FactorOptions {
        FactorOptions {
            ordering,
            supernodal,
            ..FactorOptions::default()
        }
    }

    #[test]
    fn solves_tridiagonal_exactly() {
        let a = laplacian_1d(50);
        let f = LdlFactor::factor_with(&a, &opts(Ordering::Natural, false)).unwrap();
        let b: Vec<f64> = (0..50).map(|i| (i as f64).sin()).collect();
        let x = f.solve(&b);
        assert!(a.residual_norm(&x, &b) < 1e-10);
    }

    #[test]
    fn all_orderings_and_engines_solve_the_same_system() {
        let a = laplacian_2d(7, 9);
        let b: Vec<f64> = (0..63).map(|i| (i % 5) as f64 - 2.0).collect();
        let reference = LdlFactor::factor_with(&a, &opts(Ordering::Natural, false))
            .unwrap()
            .solve(&b);
        for ordering in [
            Ordering::Natural,
            Ordering::Rcm,
            Ordering::Amd,
            Ordering::Nd,
        ] {
            for supernodal in [false, true] {
                let x = LdlFactor::factor_with(&a, &opts(ordering, supernodal))
                    .unwrap()
                    .solve(&b);
                for (u, v) in reference.iter().zip(&x) {
                    assert!(
                        (u - v).abs() < 1e-9,
                        "{ordering:?} supernodal={supernodal}: {u} vs {v}"
                    );
                }
            }
        }
    }

    #[test]
    fn supernodal_factor_matches_scalar_layout_and_values() {
        // Both engines must emit the same CSC structure; values agree to
        // rounding (the update orders differ).
        let a = laplacian_2d(12, 11);
        for ordering in [Ordering::Rcm, Ordering::Amd, Ordering::Nd] {
            let s = LdlFactor::factor_with(&a, &opts(ordering, false)).unwrap();
            let p = LdlFactor::factor_with(&a, &opts(ordering, true)).unwrap();
            assert_eq!(s.col_ptr, p.col_ptr);
            assert_eq!(s.row_idx, p.row_idx);
            for (u, v) in s.values.iter().zip(&p.values) {
                assert!((u - v).abs() < 1e-12, "{u} vs {v}");
            }
            for (u, v) in s.diag.iter().zip(&p.diag) {
                assert!((u - v).abs() < 1e-12, "{u} vs {v}");
            }
            assert!(!p.supernode_ptr().is_empty());
            assert!(s.supernode_ptr().is_empty());
        }
    }

    #[test]
    fn factor_is_bit_identical_across_thread_counts() {
        // The ordering, supernode partition, factor bits, and solve bits must
        // not depend on the solve-thread count. Size pushes past the parallel
        // plan threshold so the planned path is actually exercised.
        let a = laplacian_2d(80, 70);
        let b: Vec<f64> = (0..80 * 70).map(|i| ((i * 37) % 11) as f64 - 5.0).collect();
        let f1 = LdlFactor::factor_with(&a, &FactorOptions::default().with_threads(1)).unwrap();
        let f8 = LdlFactor::factor_with(&a, &FactorOptions::default().with_threads(8)).unwrap();
        assert_eq!(f1.permutation().as_slice(), f8.permutation().as_slice());
        assert_eq!(f1.supernode_ptr(), f8.supernode_ptr());
        assert_eq!(f1.values, f8.values);
        assert!(f1.plan.is_some(), "plan should trigger at this size");
        let x1 = f1.solve(&b);
        let x8 = f8.solve(&b);
        assert_eq!(x1, x8, "planned solve must be bit-identical across threads");
        assert!(a.residual_norm(&x1, &b) < 1e-8);
    }

    #[test]
    fn solve_many_matches_individual_solves_bitwise() {
        let a = laplacian_2d(9, 8);
        let f = LdlFactor::factor_with(&a, &FactorOptions::default().with_threads(4)).unwrap();
        let rhs: Vec<Vec<f64>> = (0..19)
            .map(|s| (0..72).map(|i| ((i + s * 7) % 13) as f64 - 6.0).collect())
            .collect();
        let batched = f.solve_many(&rhs);
        assert_eq!(batched.len(), rhs.len());
        for (b, x) in rhs.iter().zip(&batched) {
            assert!(a.residual_norm(x, b) < 1e-9);
        }
        // Blocked panels are bit-stable against re-blocking: a panel of one.
        let single = f.solve_block(std::slice::from_ref(&rhs[3]));
        assert_eq!(single[0], batched[3]);
    }

    #[test]
    fn kernel_backends_factor_and_solve_bit_identically() {
        let a = laplacian_2d(40, 33);
        let b: Vec<f64> = (0..40 * 33).map(|i| ((i * 37) % 11) as f64 - 5.0).collect();
        let factor =
            |k| LdlFactor::factor_with(&a, &FactorOptions::default().with_kernels(k)).unwrap();
        let fs = factor(KernelBackend::Scalar);
        let fb = factor(KernelBackend::Blocked);
        assert_eq!(fs.col_ptr, fb.col_ptr);
        assert_eq!(fs.row_idx, fb.row_idx);
        assert_eq!(fs.values, fb.values, "factor values must be bit-identical");
        assert_eq!(fs.diag, fb.diag);
        assert_eq!(fs.solve(&b), fb.solve(&b));
        // Auto must resolve to one of the two, not a third behavior.
        let fa = factor(KernelBackend::Auto);
        assert_eq!(fa.values, fb.values);
    }

    #[test]
    fn rhs_panel_and_width_cap_tunables_are_honored() {
        let a = laplacian_2d(14, 13);
        let rhs: Vec<Vec<f64>> = (0..11)
            .map(|s| (0..182).map(|i| ((i + s * 5) % 9) as f64 - 4.0).collect())
            .collect();
        let base = LdlFactor::factor_with(&a, &FactorOptions::default()).unwrap();
        // Any panel width re-blocking keeps solve_many bit-identical.
        for rhs_panel in [1, 3, 8, 64] {
            let f = LdlFactor::factor_with(
                &a,
                &FactorOptions {
                    rhs_panel,
                    ..FactorOptions::default()
                },
            )
            .unwrap();
            assert_eq!(
                f.solve_many(&rhs),
                base.solve_many(&rhs),
                "panel={rhs_panel}"
            );
        }
        // A width cap of 1 forces single-column supernodes. The partition
        // (and hence FP grouping) changes, so values agree to rounding, not
        // bitwise — but the CSC layout is identical and, for a fixed cap,
        // backends still agree bitwise.
        let narrow_opts = FactorOptions {
            max_supernode_width: 1,
            ..FactorOptions::default()
        };
        let narrow = LdlFactor::factor_with(&a, &narrow_opts).unwrap();
        assert!(narrow.supernode_ptr().windows(2).all(|w| w[1] - w[0] == 1));
        assert!(base.supernode_ptr().windows(2).any(|w| w[1] - w[0] > 1));
        assert_eq!(narrow.col_ptr, base.col_ptr);
        assert_eq!(narrow.row_idx, base.row_idx);
        for (u, v) in narrow.values.iter().zip(&base.values) {
            assert!((u - v).abs() < 1e-12, "{u} vs {v}");
        }
        let narrow_scalar =
            LdlFactor::factor_with(&a, &narrow_opts.with_kernels(KernelBackend::Scalar)).unwrap();
        assert_eq!(narrow.values, narrow_scalar.values);
    }

    #[test]
    fn detects_indefinite_matrix() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push_sym(0, 1, 2.0);
        t.push(1, 1, 1.0); // eigenvalues 3, -1
        for supernodal in [false, true] {
            let err = LdlFactor::factor_with(&t.to_csr(), &opts(Ordering::Natural, supernodal))
                .unwrap_err();
            assert!(matches!(err, SparseError::NotPositiveDefinite { .. }));
        }
    }

    #[test]
    fn rejects_non_square() {
        let t = TripletMatrix::new(2, 3);
        let err = LdlFactor::factor_with(&t.to_csr(), &FactorOptions::default()).unwrap_err();
        assert!(matches!(err, SparseError::NotSquare { .. }));
    }

    #[test]
    fn identity_factor_solves_trivially() {
        for supernodal in [false, true] {
            let a = CsrMatrix::identity(5);
            let f = LdlFactor::factor_with(&a, &opts(Ordering::Amd, supernodal)).unwrap();
            let b = vec![1.0, 2.0, 3.0, 4.0, 5.0];
            assert_eq!(f.solve(&b), b);
            assert_eq!(f.l_nnz(), 0);
        }
    }

    #[test]
    fn empty_matrix_factors() {
        let a = CsrMatrix::identity(0);
        let f = LdlFactor::factor_with(&a, &FactorOptions::default()).unwrap();
        assert!(f.is_empty());
        assert!(f.solve(&[]).is_empty());
    }

    #[test]
    fn diagonal_matrix_divides() {
        let mut t = TripletMatrix::new(3, 3);
        t.push(0, 0, 2.0);
        t.push(1, 1, 4.0);
        t.push(2, 2, 8.0);
        let f = LdlFactor::factor_with(&t.to_csr(), &FactorOptions::default()).unwrap();
        let x = f.solve(&[2.0, 4.0, 8.0]);
        assert_eq!(x, vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn dense_spd_block_matches_dense_solver() {
        // Small dense SPD matrix: A = M Mᵀ + I.
        let m = [[1.0, 2.0, 0.5], [0.0, 1.5, -1.0], [2.0, 0.3, 1.0]];
        let mut t = TripletMatrix::new(3, 3);
        for i in 0..3 {
            for j in 0..3 {
                let mut v = 0.0;
                for (k, _) in m.iter().enumerate() {
                    v += m[i][k] * m[j][k];
                }
                if i == j {
                    v += 1.0;
                }
                t.push(i, j, v);
            }
        }
        let a = t.to_csr();
        let b = vec![1.0, -2.0, 0.5];
        let xd = a.to_dense().solve(&b).unwrap();
        for supernodal in [false, true] {
            let xs = LdlFactor::factor_with(&a, &opts(Ordering::Natural, supernodal))
                .unwrap()
                .solve(&b);
            for (u, v) in xs.iter().zip(&xd) {
                assert!((u - v).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn ordering_parse_round_trips() {
        for o in [
            Ordering::Natural,
            Ordering::Rcm,
            Ordering::Amd,
            Ordering::Nd,
        ] {
            assert_eq!(Ordering::parse(o.label()), Some(o));
        }
        assert_eq!(Ordering::parse("metis"), None);
        assert_eq!(Ordering::default(), Ordering::Amd);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn factor_solve_residual_small_on_random_spd(
            diag_boost in 0.1f64..5.0,
            edges in proptest::collection::vec((0u32..15, 0u32..15, 0.01f64..1.0), 1..60),
            b in proptest::collection::vec(-10.0f64..10.0, 15),
        ) {
            // Build a weighted graph Laplacian + boost*I: always SPD.
            let n = 15;
            let mut t = TripletMatrix::new(n, n);
            let mut diag = vec![diag_boost; n];
            for (a_, b_, w) in edges {
                let (i, j) = (a_ as usize, b_ as usize);
                if i != j {
                    t.push_sym(i, j, -w);
                    diag[i] += w;
                    diag[j] += w;
                }
            }
            for (i, d) in diag.iter().enumerate() {
                t.push(i, i, *d);
            }
            let a = t.to_csr();
            let f = LdlFactor::factor_with(&a, &FactorOptions::default()).unwrap();
            let x = f.solve(&b);
            prop_assert!(a.residual_norm(&x, &b) < 1e-8);
        }

        #[test]
        fn three_orderings_agree_on_random_spd(
            diag_boost in 0.5f64..5.0,
            edges in proptest::collection::vec((0u32..20, 0u32..20, 0.01f64..1.0), 1..80),
            b in proptest::collection::vec(-10.0f64..10.0, 20),
        ) {
            // The satellite guarantee: natural, RCM, and AMD factors of the
            // same SPD system agree to <= 1e-10 relative error.
            let n = 20;
            let mut t = TripletMatrix::new(n, n);
            let mut diag = vec![diag_boost; n];
            for (a_, b_, w) in edges {
                let (i, j) = (a_ as usize, b_ as usize);
                if i != j {
                    t.push_sym(i, j, -w);
                    diag[i] += w;
                    diag[j] += w;
                }
            }
            for (i, d) in diag.iter().enumerate() {
                t.push(i, i, *d);
            }
            let a = t.to_csr();
            let norm = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>().sqrt();
            let solutions: Vec<Vec<f64>> = [
                Ordering::Natural,
                Ordering::Rcm,
                Ordering::Amd,
                Ordering::Nd,
            ]
                .iter()
                .map(|&o| {
                    LdlFactor::factor_with(&a, &FactorOptions::default().with_ordering(o))
                        .unwrap()
                        .solve(&b)
                })
                .collect();
            let scale = norm(&solutions[0]).max(1e-30);
            for other in &solutions[1..] {
                let diff: Vec<f64> = solutions[0]
                    .iter()
                    .zip(other)
                    .map(|(u, v)| u - v)
                    .collect();
                prop_assert!(norm(&diff) / scale <= 1e-10,
                    "relative gap {}", norm(&diff) / scale);
            }
        }

        #[test]
        fn kernel_backends_are_byte_identical_on_random_spd(
            diag_boost in 0.1f64..5.0,
            edges in proptest::collection::vec((0u32..24, 0u32..24, 0.01f64..1.0), 1..120),
            rhs in proptest::collection::vec(
                proptest::collection::vec(-10.0f64..10.0, 24), 1..6),
        ) {
            // The tentpole guarantee: scalar and blocked microkernels give
            // byte-for-byte the same factor CSC arrays and solve_many
            // panels on arbitrary SPD systems.
            let n = 24;
            let mut t = TripletMatrix::new(n, n);
            let mut diag = vec![diag_boost; n];
            for (a_, b_, w) in edges {
                let (i, j) = (a_ as usize, b_ as usize);
                if i != j {
                    t.push_sym(i, j, -w);
                    diag[i] += w;
                    diag[j] += w;
                }
            }
            for (i, d) in diag.iter().enumerate() {
                t.push(i, i, *d);
            }
            let a = t.to_csr();
            let factor = |k: KernelBackend| {
                LdlFactor::factor_with(&a, &FactorOptions::default().with_kernels(k)).unwrap()
            };
            let fs = factor(KernelBackend::Scalar);
            let fb = factor(KernelBackend::Blocked);
            let (cp_s, ri_s, va_s, di_s) = fs.factor_parts();
            let (cp_b, ri_b, va_b, di_b) = fb.factor_parts();
            prop_assert_eq!(cp_s, cp_b);
            prop_assert_eq!(ri_s, ri_b);
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            prop_assert_eq!(bits(va_s), bits(va_b));
            prop_assert_eq!(bits(di_s), bits(di_b));
            let xs = fs.solve_many(&rhs);
            let xb = fb.solve_many(&rhs);
            for (u, v) in xs.iter().zip(&xb) {
                prop_assert_eq!(bits(u), bits(v));
            }
        }
    }
}
