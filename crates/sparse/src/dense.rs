//! Small dense matrices with LU factorization.
//!
//! These kernels back the 24x24 element stiffness matrices of the
//! finite-element engine and the small "capacitance" systems of the
//! Sherman–Morrison–Woodbury update. They are deliberately simple,
//! row-major, and allocation-friendly rather than tuned for large sizes.

use crate::error::SparseError;

/// A dense row-major matrix of `f64`.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), emgrid_sparse::SparseError> {
/// use emgrid_sparse::DenseMatrix;
///
/// let a = DenseMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
/// let x = a.solve(&[3.0, 5.0])?;
/// assert!((x[0] - 0.8).abs() < 1e-12);
/// assert!((x[1] - 1.4).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for r in rows {
            assert_eq!(r.len(), ncols, "inconsistent row lengths");
            data.extend_from_slice(r);
        }
        DenseMatrix {
            rows: nrows,
            cols: ncols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the underlying row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Matrix-vector product `y = A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for i in 0..self.rows {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            y[i] = acc;
        }
        y
    }

    /// Matrix-matrix product `A B`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut out = DenseMatrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self.data[i * self.cols + k];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.data[i * other.cols + j] += aik * other.data[k * other.cols + j];
                }
            }
        }
        out
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Adds `alpha * other` to `self` in place.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn axpy(&mut self, alpha: f64, other: &DenseMatrix) {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Solves `A x = b` by LU factorization with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::NotSquare`] for non-square matrices,
    /// [`SparseError::DimensionMismatch`] if `b` has the wrong length, and
    /// [`SparseError::Singular`] when a pivot is (numerically) zero.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, SparseError> {
        let lu = LuFactor::factor(self)?;
        lu.solve(b)
    }

    /// Solves `A X = B` column-by-column for a dense right-hand side.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DenseMatrix::solve`].
    pub fn solve_matrix(&self, b: &DenseMatrix) -> Result<DenseMatrix, SparseError> {
        let lu = LuFactor::factor(self)?;
        let mut out = DenseMatrix::zeros(b.rows, b.cols);
        let mut col = vec![0.0; b.rows];
        for j in 0..b.cols {
            for i in 0..b.rows {
                col[i] = b[(i, j)];
            }
            let x = lu.solve(&col)?;
            for i in 0..b.rows {
                out[(i, j)] = x[i];
            }
        }
        Ok(out)
    }

    /// Maximum absolute entry, or 0 for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, v| m.max(v.abs()))
    }
}

impl std::ops::Index<(usize, usize)> for DenseMatrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DenseMatrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

/// LU factorization with partial pivoting of a square [`DenseMatrix`].
#[derive(Debug, Clone)]
pub struct LuFactor {
    n: usize,
    /// Packed L (unit diagonal, below) and U (on/above diagonal).
    lu: Vec<f64>,
    /// Row permutation: `perm[i]` is the original row stored at position `i`.
    perm: Vec<usize>,
}

impl LuFactor {
    /// Factors `a`, consuming nothing; `a` is copied internally.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::NotSquare`] or [`SparseError::Singular`].
    pub fn factor(a: &DenseMatrix) -> Result<Self, SparseError> {
        if a.rows != a.cols {
            return Err(SparseError::NotSquare {
                rows: a.rows,
                cols: a.cols,
            });
        }
        let n = a.rows;
        let mut lu = a.data.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        for k in 0..n {
            // Partial pivoting: find the largest entry in column k at/below k.
            let mut p = k;
            let mut pmax = lu[k * n + k].abs();
            for i in (k + 1)..n {
                let v = lu[i * n + k].abs();
                if v > pmax {
                    pmax = v;
                    p = i;
                }
            }
            if pmax < f64::EPSILON * 16.0 * (n as f64).max(1.0) {
                return Err(SparseError::Singular { column: k });
            }
            if p != k {
                for j in 0..n {
                    lu.swap(k * n + j, p * n + j);
                }
                perm.swap(k, p);
            }
            let pivot = lu[k * n + k];
            for i in (k + 1)..n {
                let factor = lu[i * n + k] / pivot;
                lu[i * n + k] = factor;
                for j in (k + 1)..n {
                    lu[i * n + j] -= factor * lu[k * n + j];
                }
            }
        }
        Ok(LuFactor { n, lu, perm })
    }

    /// Solves `A x = b` using the stored factors.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if `b.len() != n`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, SparseError> {
        let n = self.n;
        if b.len() != n {
            return Err(SparseError::DimensionMismatch {
                expected: n,
                found: b.len(),
            });
        }
        // Apply permutation, then forward/backward substitution.
        let mut x: Vec<f64> = self.perm.iter().map(|&i| b[i]).collect();
        for i in 1..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= self.lu[i * n + j] * x[j];
            }
            x[i] = acc;
        }
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= self.lu[i * n + j] * x[j];
            }
            x[i] = acc / self.lu[i * n + i];
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identity_solve_returns_rhs() {
        let a = DenseMatrix::identity(4);
        let b = vec![1.0, -2.0, 3.5, 0.0];
        let x = a.solve(&b).unwrap();
        assert_eq!(x, b);
    }

    #[test]
    fn known_2x2_solution() {
        let a = DenseMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x = a.solve(&[3.0, 5.0]).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_reported() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let err = a.solve(&[1.0, 1.0]).unwrap_err();
        assert!(matches!(err, SparseError::Singular { .. }));
    }

    #[test]
    fn non_square_rejected() {
        let a = DenseMatrix::zeros(2, 3);
        let err = a.solve(&[1.0, 1.0]).unwrap_err();
        assert!(matches!(err, SparseError::NotSquare { rows: 2, cols: 3 }));
    }

    #[test]
    fn rhs_length_checked() {
        let a = DenseMatrix::identity(3);
        let err = a.solve(&[1.0]).unwrap_err();
        assert!(matches!(
            err,
            SparseError::DimensionMismatch {
                expected: 3,
                found: 1
            }
        ));
    }

    #[test]
    fn matmul_against_hand_computation() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = DenseMatrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn transpose_involution() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn solve_matrix_matches_columnwise_solve() {
        let a = DenseMatrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let b = DenseMatrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let inv = a.solve_matrix(&b).unwrap();
        let prod = a.matmul(&inv);
        for i in 0..2 {
            for j in 0..2 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((prod[(i, j)] - expect).abs() < 1e-12);
            }
        }
    }

    fn diagonally_dominant(n: usize) -> impl Strategy<Value = DenseMatrix> {
        proptest::collection::vec(-1.0f64..1.0, n * n).prop_map(move |vals| {
            let mut m = DenseMatrix::zeros(n, n);
            for i in 0..n {
                let mut rowsum = 0.0;
                for j in 0..n {
                    let v = vals[i * n + j];
                    m[(i, j)] = v;
                    rowsum += v.abs();
                }
                m[(i, i)] = rowsum + 1.0;
            }
            m
        })
    }

    proptest! {
        #[test]
        fn lu_solve_residual_small(
            a in diagonally_dominant(6),
            b in proptest::collection::vec(-10.0f64..10.0, 6),
        ) {
            let x = a.solve(&b).unwrap();
            let ax = a.matvec(&x);
            for (ai, bi) in ax.iter().zip(&b) {
                prop_assert!((ai - bi).abs() < 1e-8);
            }
        }

        #[test]
        fn matvec_linear_in_x(
            a in diagonally_dominant(5),
            x in proptest::collection::vec(-5.0f64..5.0, 5),
            alpha in -3.0f64..3.0,
        ) {
            let scaled: Vec<f64> = x.iter().map(|v| alpha * v).collect();
            let left = a.matvec(&scaled);
            let right: Vec<f64> = a.matvec(&x).iter().map(|v| alpha * v).collect();
            for (l, r) in left.iter().zip(&right) {
                prop_assert!((l - r).abs() < 1e-9);
            }
        }
    }
}
