//! Pluggable dense-panel microkernels for the supernodal factorization,
//! the blocked triangular solves, and the CG/IC(0) vector primitives.
//!
//! Every hot dense loop in the sparse crate — the GEMM-like descendant
//! update of the supernodal factor, the dense panel LDLᵀ, the triangular
//! panel solve, the multi-RHS forward/backward row sweeps, and the
//! `kernels::{dot,axpy,xpby}` chunk bodies — funnels through one trait,
//! [`PanelKernels`]. Two backends implement it:
//!
//! * [`ScalarKernels`]: the reference loops, extracted verbatim from the
//!   historical `supernodal.rs` / `ldl.rs` / `kernels.rs` code paths.
//! * [`BlockedKernels`]: explicit register blocking with fixed-width
//!   unrolled inner loops. The unrolling vectorizes across *independent*
//!   quantities — separate descendant columns fused into one sweep,
//!   separate right-hand-side columns of a row — and never across the
//!   terms of one floating-point sum.
//!
//! # Why every backend is bit-for-bit identical
//!
//! The determinism contract of the whole workspace (factor bytes and solve
//! bits never depend on thread count) extends to backends: **every backend
//! must produce exactly the same `f64` bit patterns**. The blocked backend
//! achieves that structurally, not by luck:
//!
//! * Each output element receives the *same ordered sequence of arithmetic
//!   operations* as the scalar loops. Fusing four rank-1 updates into one
//!   sweep emits four separate `+=` statements per element — the adds stay
//!   in ascending descendant order and are never reassociated into a wider
//!   sum (and rustc without `fast-math` never reorders them either).
//! * Zero-skip tests (`lqk != 0.0`) are evaluated on the same values in the
//!   same order, so both backends skip exactly the same terms.
//! * Reductions ([`PanelKernels::dot_chunk`]) are the one place where lane
//!   splitting *would* reassociate a sum, so the blocked backend keeps the
//!   scalar chunk-serial summation order verbatim. This is a contract:
//!   a backend must not introduce multiple accumulators here.
//! * Divisions stay divisions (`x / d` is never rewritten `x * (1.0 / d)`).
//!
//! A future accelerated backend (GPU panels in the style of `gat-gpu`
//! split-kernel designs, or `std::simd` once stable) slots in as a third
//! implementation of the same trait; if it cannot honor bit-identity it
//! must be opt-in via [`KernelBackend`] rather than `Auto`.

/// Selects a [`PanelKernels`] implementation.
///
/// `Auto` resolves to the fastest bit-identical backend (currently
/// [`BlockedKernels`]); `Scalar` pins the reference loops. Because all
/// backends produce identical bytes, the choice never affects results,
/// caches, or golden files — only wall time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelBackend {
    /// The fastest available bit-identical backend (currently `Blocked`).
    #[default]
    Auto,
    /// Reference scalar loops.
    Scalar,
    /// Register-blocked, fixed-width-unrolled loops.
    Blocked,
}

impl KernelBackend {
    /// Parses a CLI/spec label (`auto`, `scalar`, `blocked`).
    pub fn parse(s: &str) -> Option<KernelBackend> {
        match s {
            "auto" => Some(KernelBackend::Auto),
            "scalar" => Some(KernelBackend::Scalar),
            "blocked" => Some(KernelBackend::Blocked),
            _ => None,
        }
    }

    /// The canonical lower-case label (inverse of [`KernelBackend::parse`]).
    pub fn label(&self) -> &'static str {
        match self {
            KernelBackend::Auto => "auto",
            KernelBackend::Scalar => "scalar",
            KernelBackend::Blocked => "blocked",
        }
    }

    /// Resolves `Auto` to the concrete backend it stands for.
    pub fn resolve(self) -> KernelBackend {
        match self {
            KernelBackend::Auto => KernelBackend::Blocked,
            other => other,
        }
    }

    /// The backend implementation.
    pub fn instance(self) -> &'static dyn PanelKernels {
        match self.resolve() {
            KernelBackend::Scalar => &SCALAR,
            _ => &BLOCKED,
        }
    }
}

/// Dense-panel microkernel backend.
///
/// Implementations must be bit-for-bit identical to [`ScalarKernels`] on
/// every method: each output element must receive the same ordered sequence
/// of IEEE-754 operations (see the module docs for what that allows).
pub trait PanelKernels: Sync {
    /// The backend's canonical label, for logs and bench ids.
    fn label(&self) -> &'static str;

    /// Accumulates the descendant outer-product contribution into the
    /// packed `update` buffer (`act` columns × `len` rows, column-major,
    /// lower-trapezoidal: column `q` uses rows `q..len`).
    ///
    /// Each entry of `tails` is `(start, dk)`: the descendant column's
    /// active row tail is `values[start..start + len]` and `dk` its `D`
    /// entry. For column `q` of the buffer the scaled multiplier is
    /// `lqk = values[start + q] * dk`, and zero multipliers are skipped.
    /// Per element, terms accumulate in `tails` order.
    fn rank_update(
        &self,
        update: &mut [f64],
        len: usize,
        act: usize,
        values: &[f64],
        tails: &[(usize, f64)],
    );

    /// Dense LDLᵀ of the `w × w` diagonal block of a column-major `m × w`
    /// frontal panel (rows `w..m` are untouched). Writes pivots into
    /// `diag[..w]` and leaves the unit-lower factor (off-diagonal entries
    /// divided by their pivot) in the block.
    ///
    /// # Errors
    ///
    /// Returns `(q, pivot)` on the first non-positive or non-finite pivot.
    fn panel_ldl(
        &self,
        front: &mut [f64],
        m: usize,
        w: usize,
        diag: &mut [f64],
    ) -> Result<(), (usize, f64)>;

    /// Triangular solve of the rectangular part (rows `w..m`) of the panel
    /// against the unit-lower diagonal block produced by
    /// [`PanelKernels::panel_ldl`] (whose pivots are in `diag[..w]`).
    fn panel_trsolve(&self, front: &mut [f64], m: usize, w: usize, diag: &[f64]);

    /// Multi-RHS row update `dst[c] -= v * src[c]`, used by the blocked
    /// forward/backward solve sweeps and the IC(0) panel apply. The columns
    /// are independent right-hand sides — free to vectorize across.
    fn row_update(&self, dst: &mut [f64], src: &[f64], v: f64);

    /// Multi-RHS row scaling `dst[c] /= d`.
    fn row_div(&self, dst: &mut [f64], d: f64);

    /// Dot product of one reduction chunk. **Must** sum the products
    /// serially in index order — this is the one kernel where lane
    /// splitting would reassociate a floating-point sum.
    fn dot_chunk(&self, a: &[f64], b: &[f64]) -> f64;

    /// `y[i] += alpha * x[i]` over one chunk.
    fn axpy_chunk(&self, alpha: f64, x: &[f64], y: &mut [f64]);

    /// `p[i] = z[i] + beta * p[i]` over one chunk (the CG direction
    /// update).
    fn xpby_chunk(&self, z: &[f64], beta: f64, p: &mut [f64]);
}

/// The reference backend: the exact loops the supernodal factor, blocked
/// solves, and CG kernels ran before the microkernel seam existed.
pub struct ScalarKernels;

/// The reference backend instance.
pub static SCALAR: ScalarKernels = ScalarKernels;

impl PanelKernels for ScalarKernels {
    fn label(&self) -> &'static str {
        "scalar"
    }

    fn rank_update(
        &self,
        update: &mut [f64],
        len: usize,
        act: usize,
        values: &[f64],
        tails: &[(usize, f64)],
    ) {
        for &(start, dk) in tails {
            let tail = &values[start..start + len];
            for q in 0..act {
                let lqk = tail[q] * dk;
                if lqk != 0.0 {
                    let ucol = &mut update[q * len..(q + 1) * len];
                    for t in q..len {
                        ucol[t] += tail[t] * lqk;
                    }
                }
            }
        }
    }

    fn panel_ldl(
        &self,
        front: &mut [f64],
        m: usize,
        w: usize,
        diag: &mut [f64],
    ) -> Result<(), (usize, f64)> {
        // Right-looking: pivot column q immediately updates columns u > q.
        for q in 0..w {
            let colq = q * m;
            let dq = front[colq + q];
            if dq <= 0.0 || !dq.is_finite() {
                return Err((q, dq));
            }
            diag[q] = dq;
            for t in (q + 1)..w {
                front[colq + t] /= dq;
            }
            for u in (q + 1)..w {
                let luq = front[colq + u];
                if luq != 0.0 {
                    let alpha = luq * dq;
                    let colu = u * m;
                    for t in u..w {
                        front[colu + t] -= front[colq + t] * alpha;
                    }
                }
            }
        }
        Ok(())
    }

    fn panel_trsolve(&self, front: &mut [f64], m: usize, w: usize, diag: &[f64]) {
        for q in 0..w {
            let colq = q * m;
            let dq = diag[q];
            for t in w..m {
                front[colq + t] /= dq;
            }
            for u in (q + 1)..w {
                let luq = front[colq + u];
                if luq != 0.0 {
                    let alpha = luq * dq;
                    let colu = u * m;
                    for t in w..m {
                        front[colu + t] -= front[colq + t] * alpha;
                    }
                }
            }
        }
    }

    #[inline]
    fn row_update(&self, dst: &mut [f64], src: &[f64], v: f64) {
        for (rc, &xc) in dst.iter_mut().zip(src) {
            *rc -= v * xc;
        }
    }

    #[inline]
    fn row_div(&self, dst: &mut [f64], d: f64) {
        for x in dst.iter_mut() {
            *x /= d;
        }
    }

    #[inline]
    fn dot_chunk(&self, a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    #[inline]
    fn axpy_chunk(&self, alpha: f64, x: &[f64], y: &mut [f64]) {
        for (yi, &xi) in y.iter_mut().zip(x) {
            *yi += alpha * xi;
        }
    }

    #[inline]
    fn xpby_chunk(&self, z: &[f64], beta: f64, p: &mut [f64]) {
        for (pi, &zi) in p.iter_mut().zip(z) {
            *pi = zi + beta * *pi;
        }
    }
}

/// Rank-1 sources fused into one sweep by the blocked backend. Eight
/// column-major panel sources keep a group under the L1 footprint of one
/// destination column while still fitting the broadcast coefficients in
/// vector registers on every 64-bit target.
const LANES: usize = 8;

/// Fixed unroll width for multi-RHS row operations: matches the default
/// `solve_many` panel width, so a full panel is one unrolled body.
const ROW_LANES: usize = 8;

/// `ucol[t] += src[s + t] * a` (or `-=` when `SUB`) for each of the `N`
/// lanes `(s, a)`, rows `lo..hi`, in one sweep.
///
/// The per-element updates are separate statements in lane order — never
/// one reassociated sum — so the result is bit-identical to applying the
/// lanes one sweep at a time. Each lane's source is pre-sliced to the
/// `lo..hi` window, whose length provably equals the destination's, so the
/// unrolled inner body carries no bounds checks and vectorizes across the
/// (independent) rows.
#[inline]
fn fused_sweep<const N: usize, const SUB: bool>(
    ucol: &mut [f64],
    src: &[f64],
    lanes: &[(usize, f64)],
    lo: usize,
    hi: usize,
) {
    let u = &mut ucol[lo..hi];
    let mut cols: [&[f64]; N] = [&[]; N];
    let mut coef = [0.0f64; N];
    for i in 0..N {
        let (s, a) = lanes[i];
        cols[i] = &src[s + lo..s + hi];
        coef[i] = a;
    }
    for (t, u) in u.iter_mut().enumerate() {
        for i in 0..N {
            if SUB {
                *u -= cols[i][t] * coef[i];
            } else {
                *u += cols[i][t] * coef[i];
            }
        }
    }
}

/// Width-dispatched [`fused_sweep`]: one monomorphized body per lane count.
#[inline]
fn fused<const SUB: bool>(
    ucol: &mut [f64],
    src: &[f64],
    lanes: &[(usize, f64)],
    lo: usize,
    hi: usize,
) {
    match lanes.len() {
        1 => fused_sweep::<1, SUB>(ucol, src, lanes, lo, hi),
        2 => fused_sweep::<2, SUB>(ucol, src, lanes, lo, hi),
        3 => fused_sweep::<3, SUB>(ucol, src, lanes, lo, hi),
        4 => fused_sweep::<4, SUB>(ucol, src, lanes, lo, hi),
        5 => fused_sweep::<5, SUB>(ucol, src, lanes, lo, hi),
        6 => fused_sweep::<6, SUB>(ucol, src, lanes, lo, hi),
        7 => fused_sweep::<7, SUB>(ucol, src, lanes, lo, hi),
        8 => fused_sweep::<8, SUB>(ucol, src, lanes, lo, hi),
        _ => unreachable!("lane groups are 1..=LANES wide"),
    }
}

/// `ucol[t] += src[s + t] * a` for each lane `(s, a)`, rows `lo..hi`.
#[inline]
fn fused_add(ucol: &mut [f64], src: &[f64], lanes: &[(usize, f64)], lo: usize, hi: usize) {
    fused::<false>(ucol, src, lanes, lo, hi);
}

/// `ucol[t] -= src[s + t] * a` for each lane `(s, a)`, rows `lo..hi`.
#[inline]
fn fused_sub(ucol: &mut [f64], src: &[f64], lanes: &[(usize, f64)], lo: usize, hi: usize) {
    fused::<true>(ucol, src, lanes, lo, hi);
}

/// The register-blocked backend.
///
/// The panel kernels regroup the scalar loops into fused [`LANES`]-wide
/// sweeps — the rank update takes descendant columns in ascending groups
/// and sweeps every destination column against the group (keeping the
/// group's source tails L1-resident), while the in-panel factor and
/// triangular solve collect each output column's contributions
/// left-looking — always in the scalar backend's order, skipping the
/// same zero multipliers, so every element's operation sequence is
/// untouched. Row and vector kernels unroll by [`ROW_LANES`] across
/// independent elements.
pub struct BlockedKernels;

/// The register-blocked backend instance.
pub static BLOCKED: BlockedKernels = BlockedKernels;

impl PanelKernels for BlockedKernels {
    fn label(&self) -> &'static str {
        "blocked"
    }

    fn rank_update(
        &self,
        update: &mut [f64],
        len: usize,
        act: usize,
        values: &[f64],
        tails: &[(usize, f64)],
    ) {
        // Tail-group-outer: take the descendant columns in fixed groups of
        // LANES (ascending) and sweep every buffer column against the group
        // before moving on. The group's source tails stay L1-resident
        // across all `act` destinations, so the buffer — not the descendant
        // panel — is the only stream that revisits L2, and it does so
        // `ceil(width / LANES)` times instead of `width` times.
        //
        // Per element, terms still accumulate in ascending-tail order (the
        // group boundaries only partition that order), so the result is
        // bit-identical to the scalar descendant-outer loop.
        let mut lanes = [(0usize, 0.0f64); LANES];
        for group in tails.chunks(LANES) {
            for q in 0..act {
                let ucol = &mut update[q * len..(q + 1) * len];
                let mut nl = 0;
                for &(start, dk) in group {
                    let lqk = values[start + q] * dk;
                    if lqk != 0.0 {
                        lanes[nl] = (start, lqk);
                        nl += 1;
                    }
                }
                if nl > 0 {
                    fused_add(ucol, values, &lanes[..nl], q, len);
                }
            }
        }
    }

    fn panel_ldl(
        &self,
        front: &mut [f64],
        m: usize,
        w: usize,
        diag: &mut [f64],
    ) -> Result<(), (usize, f64)> {
        // Left-looking: column u absorbs the pending updates from all
        // finalized columns q < u (ascending, fused LANES at a time), then
        // pivots. Element-for-element the same sequence as the scalar
        // right-looking sweep, which also applies q's update before u's
        // pivot for every q < u.
        let mut lanes = [(0usize, 0.0f64); LANES];
        for u in 0..w {
            let (left, rest) = front.split_at_mut(u * m);
            let ucol = &mut rest[..m];
            let mut nl = 0;
            for q in 0..u {
                let luq = left[q * m + u];
                if luq != 0.0 {
                    lanes[nl] = (q * m, luq * diag[q]);
                    nl += 1;
                    if nl == LANES {
                        fused_sub(ucol, left, &lanes, u, w);
                        nl = 0;
                    }
                }
            }
            if nl > 0 {
                fused_sub(ucol, left, &lanes[..nl], u, w);
            }
            let du = ucol[u];
            if du <= 0.0 || !du.is_finite() {
                return Err((u, du));
            }
            diag[u] = du;
            for t in (u + 1)..w {
                ucol[t] /= du;
            }
        }
        Ok(())
    }

    fn panel_trsolve(&self, front: &mut [f64], m: usize, w: usize, diag: &[f64]) {
        let mut lanes = [(0usize, 0.0f64); LANES];
        for u in 0..w {
            let (left, rest) = front.split_at_mut(u * m);
            let ucol = &mut rest[..m];
            let mut nl = 0;
            for q in 0..u {
                let luq = left[q * m + u];
                if luq != 0.0 {
                    lanes[nl] = (q * m, luq * diag[q]);
                    nl += 1;
                    if nl == LANES {
                        fused_sub(ucol, left, &lanes, w, m);
                        nl = 0;
                    }
                }
            }
            if nl > 0 {
                fused_sub(ucol, left, &lanes[..nl], w, m);
            }
            let du = diag[u];
            for t in w..m {
                ucol[t] /= du;
            }
        }
    }

    #[inline]
    fn row_update(&self, dst: &mut [f64], src: &[f64], v: f64) {
        // Columns are independent right-hand sides: unroll freely.
        let mut d = dst.chunks_exact_mut(ROW_LANES);
        let s = src.chunks_exact(ROW_LANES);
        let s_rem = s.remainder();
        for (dc, sc) in d.by_ref().zip(s) {
            dc[0] -= v * sc[0];
            dc[1] -= v * sc[1];
            dc[2] -= v * sc[2];
            dc[3] -= v * sc[3];
            dc[4] -= v * sc[4];
            dc[5] -= v * sc[5];
            dc[6] -= v * sc[6];
            dc[7] -= v * sc[7];
        }
        for (rc, &xc) in d.into_remainder().iter_mut().zip(s_rem) {
            *rc -= v * xc;
        }
    }

    #[inline]
    fn row_div(&self, dst: &mut [f64], d: f64) {
        let mut it = dst.chunks_exact_mut(ROW_LANES);
        for dc in it.by_ref() {
            dc[0] /= d;
            dc[1] /= d;
            dc[2] /= d;
            dc[3] /= d;
            dc[4] /= d;
            dc[5] /= d;
            dc[6] /= d;
            dc[7] /= d;
        }
        for x in it.into_remainder() {
            *x /= d;
        }
    }

    #[inline]
    fn dot_chunk(&self, a: &[f64], b: &[f64]) -> f64 {
        // Reduction-order contract: a dot is one serial sum. Splitting it
        // into lanes would reassociate the addition, so the blocked backend
        // intentionally runs the scalar body.
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    #[inline]
    fn axpy_chunk(&self, alpha: f64, x: &[f64], y: &mut [f64]) {
        let mut yc = y.chunks_exact_mut(ROW_LANES);
        let xc = x.chunks_exact(ROW_LANES);
        let x_rem = xc.remainder();
        for (yb, xb) in yc.by_ref().zip(xc) {
            yb[0] += alpha * xb[0];
            yb[1] += alpha * xb[1];
            yb[2] += alpha * xb[2];
            yb[3] += alpha * xb[3];
            yb[4] += alpha * xb[4];
            yb[5] += alpha * xb[5];
            yb[6] += alpha * xb[6];
            yb[7] += alpha * xb[7];
        }
        for (yi, &xi) in yc.into_remainder().iter_mut().zip(x_rem) {
            *yi += alpha * xi;
        }
    }

    #[inline]
    fn xpby_chunk(&self, z: &[f64], beta: f64, p: &mut [f64]) {
        let mut pc = p.chunks_exact_mut(ROW_LANES);
        let zc = z.chunks_exact(ROW_LANES);
        let z_rem = zc.remainder();
        for (pb, zb) in pc.by_ref().zip(zc) {
            pb[0] = zb[0] + beta * pb[0];
            pb[1] = zb[1] + beta * pb[1];
            pb[2] = zb[2] + beta * pb[2];
            pb[3] = zb[3] + beta * pb[3];
            pb[4] = zb[4] + beta * pb[4];
            pb[5] = zb[5] + beta * pb[5];
            pb[6] = zb[6] + beta * pb[6];
            pb[7] = zb[7] + beta * pb[7];
        }
        for (pi, &zi) in pc.into_remainder().iter_mut().zip(z_rem) {
            *pi = zi + beta * *pi;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random f64 stream (no external RNG deps).
    struct Lcg(u64);

    impl Lcg {
        fn next_f64(&mut self) -> f64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((self.0 >> 11) as f64) / ((1u64 << 53) as f64) * 4.0 - 2.0
        }
    }

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn backend_parse_round_trips() {
        for k in [
            KernelBackend::Auto,
            KernelBackend::Scalar,
            KernelBackend::Blocked,
        ] {
            assert_eq!(KernelBackend::parse(k.label()), Some(k));
        }
        assert_eq!(KernelBackend::parse("simd"), None);
        assert_eq!(KernelBackend::default(), KernelBackend::Auto);
        assert_eq!(KernelBackend::Auto.resolve(), KernelBackend::Blocked);
        assert_eq!(KernelBackend::Auto.instance().label(), "blocked");
        assert_eq!(KernelBackend::Scalar.instance().label(), "scalar");
    }

    #[test]
    fn rank_update_backends_are_bit_identical() {
        let mut rng = Lcg(7);
        // Sweep over shapes around the lane width, with zero multipliers
        // injected so the zero-skip paths are exercised.
        for &(len, act, ncols) in &[(1, 1, 1), (5, 3, 2), (16, 7, 4), (23, 9, 11), (40, 12, 17)] {
            let mut values: Vec<f64> = (0..ncols * len).map(|_| rng.next_f64()).collect();
            for v in values.iter_mut().step_by(5) {
                *v = 0.0;
            }
            let tails: Vec<(usize, f64)> = (0..ncols)
                .map(|c| (c * len, if c % 4 == 3 { 0.0 } else { rng.next_f64() }))
                .collect();
            let mut a = vec![0.25f64; act * len];
            let mut b = a.clone();
            SCALAR.rank_update(&mut a, len, act, &values, &tails);
            BLOCKED.rank_update(&mut b, len, act, &values, &tails);
            assert_eq!(bits(&a), bits(&b), "len={len} act={act} ncols={ncols}");
        }
    }

    /// Builds a column-major m × w SPD-ish frontal panel: diagonally
    /// dominant in the w × w head, random rectangle below.
    fn random_front(rng: &mut Lcg, m: usize, w: usize) -> Vec<f64> {
        let mut front = vec![0.0f64; m * w];
        for q in 0..w {
            for t in q..m {
                front[q * m + t] = if t == q {
                    8.0 + rng.next_f64().abs() * (w as f64)
                } else if (t + q) % 6 == 0 {
                    0.0 // exercise the zero-skip path
                } else {
                    rng.next_f64()
                };
            }
        }
        front
    }

    #[test]
    fn panel_factor_backends_are_bit_identical() {
        let mut rng = Lcg(42);
        for &(m, w) in &[(1, 1), (4, 3), (9, 9), (17, 5), (30, 13), (61, 48)] {
            let reference = random_front(&mut rng, m, w);
            let mut fa = reference.clone();
            let mut fb = reference.clone();
            let mut da = vec![0.0f64; w];
            let mut db = vec![0.0f64; w];
            SCALAR.panel_ldl(&mut fa, m, w, &mut da).unwrap();
            BLOCKED.panel_ldl(&mut fb, m, w, &mut db).unwrap();
            assert_eq!(bits(&da), bits(&db), "m={m} w={w} diag");
            assert_eq!(bits(&fa), bits(&fb), "m={m} w={w} after ldl");
            SCALAR.panel_trsolve(&mut fa, m, w, &da);
            BLOCKED.panel_trsolve(&mut fb, m, w, &db);
            assert_eq!(bits(&fa), bits(&fb), "m={m} w={w} after trsolve");
        }
    }

    #[test]
    fn panel_ldl_backends_report_the_same_pivot_failure() {
        // A panel whose third pivot goes negative must fail identically.
        let m = 6;
        let w = 4;
        let mut rng = Lcg(3);
        let mut front = random_front(&mut rng, m, w);
        front[2 * m + 2] = -5.0;
        let mut da = vec![0.0f64; w];
        let mut db = vec![0.0f64; w];
        let ea = SCALAR
            .panel_ldl(&mut front.clone(), m, w, &mut da)
            .unwrap_err();
        let eb = BLOCKED.panel_ldl(&mut front, m, w, &mut db).unwrap_err();
        assert_eq!(ea.0, eb.0);
        assert_eq!(ea.1.to_bits(), eb.1.to_bits());
    }

    #[test]
    fn row_and_vector_kernels_are_bit_identical() {
        let mut rng = Lcg(99);
        for n in [0, 1, 7, 8, 9, 16, 41] {
            let src: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
            let base: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
            let v = rng.next_f64();

            let mut a = base.clone();
            let mut b = base.clone();
            SCALAR.row_update(&mut a, &src, v);
            BLOCKED.row_update(&mut b, &src, v);
            assert_eq!(bits(&a), bits(&b), "row_update n={n}");

            let mut a = base.clone();
            let mut b = base.clone();
            SCALAR.row_div(&mut a, v);
            BLOCKED.row_div(&mut b, v);
            assert_eq!(bits(&a), bits(&b), "row_div n={n}");

            assert_eq!(
                SCALAR.dot_chunk(&src, &base).to_bits(),
                BLOCKED.dot_chunk(&src, &base).to_bits(),
                "dot_chunk n={n}"
            );

            let mut a = base.clone();
            let mut b = base.clone();
            SCALAR.axpy_chunk(v, &src, &mut a);
            BLOCKED.axpy_chunk(v, &src, &mut b);
            assert_eq!(bits(&a), bits(&b), "axpy_chunk n={n}");

            let mut a = base.clone();
            let mut b = base.clone();
            SCALAR.xpby_chunk(&src, v, &mut a);
            BLOCKED.xpby_chunk(&src, v, &mut b);
            assert_eq!(bits(&a), bits(&b), "xpby_chunk n={n}");
        }
    }
}
