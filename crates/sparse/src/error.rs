//! Error type shared by the linear algebra kernels.

use std::error::Error;
use std::fmt;

/// Errors reported by the factorization and iterative solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum SparseError {
    /// A matrix was not square where a square matrix is required.
    NotSquare {
        /// Number of rows of the offending matrix.
        rows: usize,
        /// Number of columns of the offending matrix.
        cols: usize,
    },
    /// Dimensions of two operands disagree.
    DimensionMismatch {
        /// Expected dimension.
        expected: usize,
        /// Dimension actually supplied.
        found: usize,
    },
    /// A pivot became non-positive during an SPD factorization, i.e. the
    /// matrix is not (numerically) positive definite.
    NotPositiveDefinite {
        /// Index of the failing pivot column.
        column: usize,
        /// Value of the failing pivot.
        pivot: f64,
    },
    /// An iterative solver did not reach the requested tolerance.
    NotConverged {
        /// Number of iterations performed.
        iterations: usize,
        /// Relative residual at the final iterate.
        residual: f64,
    },
    /// A dense LU factorization hit an (almost) singular pivot.
    Singular {
        /// Pivot column at which singularity was detected.
        column: usize,
    },
    /// An index was out of bounds for the matrix dimensions.
    IndexOutOfBounds {
        /// Offending index.
        index: usize,
        /// Dimension the index was checked against.
        bound: usize,
    },
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::NotSquare { rows, cols } => {
                write!(f, "matrix is not square ({rows}x{cols})")
            }
            SparseError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch (expected {expected}, found {found})")
            }
            SparseError::NotPositiveDefinite { column, pivot } => {
                write!(
                    f,
                    "matrix is not positive definite (pivot {pivot:e} at column {column})"
                )
            }
            SparseError::NotConverged {
                iterations,
                residual,
            } => {
                write!(
                    f,
                    "iterative solver stalled after {iterations} iterations (residual {residual:e})"
                )
            }
            SparseError::Singular { column } => {
                write!(f, "matrix is singular (column {column})")
            }
            SparseError::IndexOutOfBounds { index, bound } => {
                write!(f, "index {index} out of bounds for dimension {bound}")
            }
        }
    }
}

impl Error for SparseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_specific() {
        let e = SparseError::NotSquare { rows: 3, cols: 4 };
        assert_eq!(e.to_string(), "matrix is not square (3x4)");
        let e = SparseError::NotConverged {
            iterations: 10,
            residual: 1e-3,
        };
        assert!(e.to_string().contains("10 iterations"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SparseError>();
    }
}
