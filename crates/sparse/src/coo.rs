//! Coordinate-format (triplet) matrix builder.
//!
//! Assembly codes — the finite-element engine and the MNA stamper — produce
//! entries in arbitrary order with duplicates; [`TripletMatrix`] collects them
//! and converts to compressed sparse row storage, summing duplicates, which is
//! exactly the assembly semantics both producers need.

use crate::csr::CsrMatrix;

/// A growable coordinate-format sparse matrix.
///
/// Duplicate `(row, col)` entries are allowed and are **summed** when the
/// matrix is converted with [`TripletMatrix::to_csr`].
///
/// # Example
///
/// ```
/// use emgrid_sparse::TripletMatrix;
///
/// let mut t = TripletMatrix::new(2, 2);
/// t.push(0, 0, 1.0);
/// t.push(0, 0, 2.0); // duplicates are summed
/// t.push(1, 1, 5.0);
/// let m = t.to_csr();
/// assert_eq!(m.get(0, 0), 3.0);
/// assert_eq!(m.nnz(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TripletMatrix {
    rows: usize,
    cols: usize,
    entries: Vec<(u32, u32, f64)>,
}

impl TripletMatrix {
    /// Creates an empty `rows x cols` builder.
    pub fn new(rows: usize, cols: usize) -> Self {
        TripletMatrix {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Creates an empty builder with capacity for `cap` entries.
    pub fn with_capacity(rows: usize, cols: usize, cap: usize) -> Self {
        TripletMatrix {
            rows,
            cols,
            entries: Vec::with_capacity(cap),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of raw (pre-deduplication) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries have been pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Appends an entry; duplicates are summed at conversion time.
    ///
    /// Entries that are exactly zero are kept (they may still shape the
    /// sparsity pattern, which symbolic factorization relies on).
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.rows, "row {row} out of bounds ({})", self.rows);
        assert!(col < self.cols, "col {col} out of bounds ({})", self.cols);
        self.entries.push((row as u32, col as u32, value));
    }

    /// Appends a symmetric pair `(row, col, v)` and `(col, row, v)`; when
    /// `row == col` the entry is pushed once.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    pub fn push_sym(&mut self, row: usize, col: usize, value: f64) {
        self.push(row, col, value);
        if row != col {
            self.push(col, row, value);
        }
    }

    /// Converts to compressed sparse row format, summing duplicates.
    pub fn to_csr(&self) -> CsrMatrix {
        CsrMatrix::from_triplets(self.rows, self.cols, &self.entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicates_are_summed() {
        let mut t = TripletMatrix::new(3, 3);
        t.push(1, 2, 1.5);
        t.push(1, 2, 2.5);
        t.push(0, 0, 1.0);
        let m = t.to_csr();
        assert_eq!(m.get(1, 2), 4.0);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn push_sym_mirrors_off_diagonals_only() {
        let mut t = TripletMatrix::new(2, 2);
        t.push_sym(0, 1, 3.0);
        t.push_sym(1, 1, 7.0);
        let m = t.to_csr();
        assert_eq!(m.get(0, 1), 3.0);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.get(1, 1), 7.0);
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    #[should_panic(expected = "row 5 out of bounds")]
    fn out_of_bounds_row_panics() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(5, 0, 1.0);
    }

    #[test]
    fn empty_builder_yields_empty_matrix() {
        let t = TripletMatrix::new(4, 4);
        assert!(t.is_empty());
        let m = t.to_csr();
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.rows(), 4);
    }
}
