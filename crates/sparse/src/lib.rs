//! Sparse and dense linear algebra substrate for the `emgrid` workspace.
//!
//! The published analysis flow needs three numerical kernels that the paper
//! takes for granted:
//!
//! * a **direct sparse solver** for the symmetric positive definite (SPD)
//!   systems produced by modified nodal analysis of power grids and by the
//!   finite-element assembly of the Cu dual-damascene stack
//!   ([`ldl::LdlFactor`]),
//! * an **iterative solver** for the larger finite-element systems
//!   ([`cg::conjugate_gradient`]),
//! * an **incremental solver** that updates a factored system after a
//!   low-rank modification — each electromigration failure event changes a
//!   single conductance, which is a rank-1 update handled by the
//!   Sherman–Morrison–Woodbury identity ([`smw::IncrementalSolver`]).
//!
//! Everything is built from scratch on plain `Vec`-based storage: a triplet
//! builder ([`coo::TripletMatrix`]), compressed sparse row storage
//! ([`csr::CsrMatrix`]), fill-reducing orderings (reverse Cuthill–McKee and
//! minimum degree, [`ordering`]), a blocked supernodal numeric engine behind
//! [`ldl::LdlFactor::factor_with`] and small dense kernels
//! ([`dense::DenseMatrix`]) used for element matrices and Woodbury
//! capacitance systems.
//!
//! # Example
//!
//! Solve a tiny SPD system with the direct factorization:
//!
//! ```
//! # fn main() -> Result<(), emgrid_sparse::SparseError> {
//! use emgrid_sparse::{FactorOptions, TripletMatrix, LdlFactor};
//!
//! let mut a = TripletMatrix::new(2, 2);
//! a.push(0, 0, 4.0);
//! a.push(0, 1, 1.0);
//! a.push(1, 0, 1.0);
//! a.push(1, 1, 3.0);
//! let a = a.to_csr();
//!
//! let factor = LdlFactor::factor_with(&a, &FactorOptions::default())?;
//! let x = factor.solve(&[1.0, 2.0]);
//! let r = a.residual_norm(&x, &[1.0, 2.0]);
//! assert!(r < 1e-12);
//! # Ok(())
//! # }
//! ```

// Indexed loops over multiple parallel arrays are the clearest form for
// these numerical kernels; silence clippy's iterator suggestion crate-wide.
#![allow(clippy::needless_range_loop)]

pub mod cg;
pub mod coo;
pub mod csr;
pub mod dense;
pub mod error;
pub mod ic0;
pub mod kernels;
pub mod ldl;
pub mod method;
pub mod ordering;
pub mod panel;
pub mod smw;
pub(crate) mod supernodal;

pub use cg::{conjugate_gradient, CgOptions, CgOutcome, Preconditioner};
pub use coo::TripletMatrix;
pub use csr::CsrMatrix;
pub use dense::DenseMatrix;
pub use error::SparseError;
pub use ic0::Ic0;
pub use ldl::{FactorOptions, LdlFactor, Ordering};
pub use method::{solve_spd, Method};
pub use ordering::{amd, nested_dissection, reverse_cuthill_mckee, Permutation};
pub use panel::{KernelBackend, PanelKernels};
pub use smw::IncrementalSolver;
