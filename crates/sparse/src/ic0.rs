//! Zero-fill incomplete Cholesky factorization (IC(0)).
//!
//! A preconditioner for [`crate::cg::conjugate_gradient`]: the Cholesky
//! algorithm restricted to the sparsity pattern of the lower triangle of
//! `A`. On the thermoelastic stiffness matrices of the FEA engine it cuts
//! CG iteration counts several-fold relative to the Jacobi (diagonal)
//! preconditioner (see the `sparse_solvers` bench).
//!
//! IC(0) can break down on general SPD matrices (a pivot can go
//! non-positive inside the truncated pattern); the standard remedy applied
//! here is a retried **shifted** factorization of `A + α·diag(A)` with
//! geometrically increasing `α`.

use crate::csr::CsrMatrix;
use crate::error::SparseError;
use crate::panel::{PanelKernels, SCALAR};

/// A zero-fill incomplete Cholesky factor `L` with `A ≈ L Lᵀ`.
#[derive(Debug, Clone)]
pub struct Ic0 {
    n: usize,
    /// Lower-triangular factor in CSR (row-major, columns `<= row`).
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
    /// The same factor transposed (upper-triangular CSR) for the backward
    /// solve.
    t_row_ptr: Vec<usize>,
    t_col_idx: Vec<u32>,
    t_values: Vec<f64>,
    /// Diagonal shift that was needed (0 when the plain factorization
    /// succeeded).
    shift: f64,
}

impl Ic0 {
    /// Factors the lower-triangular pattern of `a`, retrying with diagonal
    /// shifts `α ∈ {0, 1e-3, 1e-2, …}` on breakdown.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::NotSquare`] for non-square input and
    /// [`SparseError::NotPositiveDefinite`] if even a strongly shifted
    /// factorization breaks down (the matrix is far from SPD).
    pub fn factor(a: &CsrMatrix) -> Result<Self, SparseError> {
        if a.rows() != a.cols() {
            return Err(SparseError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let mut shift = 0.0f64;
        for attempt in 0..8 {
            match Self::try_factor(a, shift) {
                Ok(f) => return Ok(f),
                Err(e) if attempt == 7 => return Err(e),
                Err(_) => {
                    shift = if shift == 0.0 { 1e-3 } else { shift * 10.0 };
                }
            }
        }
        unreachable!("loop returns on the final attempt");
    }

    fn try_factor(a: &CsrMatrix, shift: f64) -> Result<Self, SparseError> {
        let n = a.rows();
        // Extract the lower-triangular pattern (columns <= row).
        let mut row_ptr = vec![0usize; n + 1];
        let mut col_idx: Vec<u32> = Vec::new();
        let mut values: Vec<f64> = Vec::new();
        for i in 0..n {
            for (j, v) in a.row(i) {
                if j <= i {
                    let v = if j == i { v * (1.0 + shift) } else { v };
                    col_idx.push(j as u32);
                    values.push(v);
                }
            }
            row_ptr[i + 1] = col_idx.len();
        }

        // Up-looking IC(0): process rows in order; for entry (i, j) subtract
        // the dot product of the already-computed prefixes of rows i and j.
        for i in 0..n {
            let (ri_start, ri_end) = (row_ptr[i], row_ptr[i + 1]);
            for idx in ri_start..ri_end {
                let j = col_idx[idx] as usize;
                let (rj_start, rj_end) = (row_ptr[j], row_ptr[j + 1]);
                // dot(L[i, :j], L[j, :j]) over the stored patterns.
                let mut dot = 0.0;
                let mut p = ri_start;
                let mut q = rj_start;
                while p < idx && q + 1 < rj_end {
                    let cp = col_idx[p];
                    let cq = col_idx[q];
                    match cp.cmp(&cq) {
                        std::cmp::Ordering::Less => p += 1,
                        std::cmp::Ordering::Greater => q += 1,
                        std::cmp::Ordering::Equal => {
                            dot += values[p] * values[q];
                            p += 1;
                            q += 1;
                        }
                    }
                }
                if j < i {
                    // Off-diagonal: L_ij = (a_ij - dot) / L_jj.
                    let ljj = values[rj_end - 1];
                    values[idx] = (values[idx] - dot) / ljj;
                } else {
                    // Diagonal: L_ii = sqrt(a_ii - dot).
                    let d = values[idx] - dot;
                    if d <= 0.0 || !d.is_finite() {
                        return Err(SparseError::NotPositiveDefinite {
                            column: i,
                            pivot: d,
                        });
                    }
                    values[idx] = d.sqrt();
                }
            }
            // The diagonal must be the last stored entry of the row; a
            // missing diagonal means the pattern cannot support IC(0).
            if ri_end == ri_start || col_idx[ri_end - 1] as usize != i {
                return Err(SparseError::NotPositiveDefinite {
                    column: i,
                    pivot: 0.0,
                });
            }
        }

        // Transpose for the backward sweep.
        let mut t_counts = vec![0usize; n + 1];
        for &c in &col_idx {
            t_counts[c as usize + 1] += 1;
        }
        for i in 0..n {
            t_counts[i + 1] += t_counts[i];
        }
        let t_row_ptr = t_counts.clone();
        let mut t_col_idx = vec![0u32; col_idx.len()];
        let mut t_values = vec![0.0f64; values.len()];
        let mut next = t_counts;
        for i in 0..n {
            for idx in row_ptr[i]..row_ptr[i + 1] {
                let c = col_idx[idx] as usize;
                let slot = next[c];
                t_col_idx[slot] = i as u32;
                t_values[slot] = values[idx];
                next[c] += 1;
            }
        }

        Ok(Ic0 {
            n,
            row_ptr,
            col_idx,
            values,
            t_row_ptr,
            t_col_idx,
            t_values,
            shift,
        })
    }

    /// Dimension of the factored matrix.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the factored matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The diagonal shift the factorization needed (0 when none).
    pub fn shift(&self) -> f64 {
        self.shift
    }

    /// Applies the preconditioner: solves `L Lᵀ z = r`.
    ///
    /// # Panics
    ///
    /// Panics if `r.len()` differs from the matrix dimension.
    pub fn apply(&self, r: &[f64]) -> Vec<f64> {
        self.apply_with(r, &SCALAR)
    }

    /// [`Ic0::apply`] with an explicit microkernel backend. Backends are
    /// bit-identical ([`crate::panel`]), so the result never depends on the
    /// choice.
    ///
    /// # Panics
    ///
    /// Panics if `r.len()` differs from the matrix dimension.
    pub fn apply_with<K: PanelKernels + ?Sized>(&self, r: &[f64], kernels: &K) -> Vec<f64> {
        assert_eq!(r.len(), self.n, "rhs length mismatch");
        let mut z = r.to_vec();
        self.apply_panel(&mut z, 1, kernels);
        z
    }

    /// Applies the preconditioner to several residuals at once via the
    /// blocked multi-RHS panel path: one pass over the factor per batch
    /// instead of one per vector. Each column of the result is
    /// bit-identical to a separate [`Ic0::apply`] of that vector.
    ///
    /// # Panics
    ///
    /// Panics if any vector's length differs from the matrix dimension.
    pub fn apply_many<K: PanelKernels + ?Sized>(
        &self,
        rhs: &[Vec<f64>],
        kernels: &K,
    ) -> Vec<Vec<f64>> {
        let k = rhs.len();
        if k == 0 {
            return Vec::new();
        }
        let mut panel = vec![0.0f64; self.n * k];
        for (c, r) in rhs.iter().enumerate() {
            assert_eq!(r.len(), self.n, "rhs length mismatch");
            for i in 0..self.n {
                panel[i * k + c] = r[i];
            }
        }
        self.apply_panel(&mut panel, k, kernels);
        (0..k)
            .map(|c| (0..self.n).map(|i| panel[i * k + c]).collect())
            .collect()
    }

    /// Triangular sweeps over a row-major `n × k` panel: each of the `k`
    /// columns is an independent right-hand side, so the row operations
    /// route through the microkernel backend, which may vectorize across
    /// them. With `k == 1` this runs exactly the historical scalar sweep's
    /// operation sequence.
    fn apply_panel<K: PanelKernels + ?Sized>(&self, panel: &mut [f64], k: usize, kernels: &K) {
        debug_assert_eq!(panel.len(), self.n * k);
        debug_assert!(k > 0);
        // Forward: L y = r (CSR rows, diagonal last). Row i reads only
        // finalized rows c < i.
        for i in 0..self.n {
            let (start, end) = (self.row_ptr[i], self.row_ptr[i + 1]);
            let (head, rest) = panel.split_at_mut(i * k);
            let row = &mut rest[..k];
            for idx in start..end - 1 {
                let c = self.col_idx[idx] as usize;
                kernels.row_update(row, &head[c * k..(c + 1) * k], self.values[idx]);
            }
            kernels.row_div(row, self.values[end - 1]);
        }
        // Backward: Lᵀ z = y (transposed CSR rows are the columns of L; the
        // diagonal is the first stored entry of each transposed row). Row i
        // reads only finalized rows c > i.
        for i in (0..self.n).rev() {
            let (start, end) = (self.t_row_ptr[i], self.t_row_ptr[i + 1]);
            let (head, tail) = panel.split_at_mut((i + 1) * k);
            let row = &mut head[i * k..];
            for idx in start + 1..end {
                let c = self.t_col_idx[idx] as usize;
                let src = &tail[(c - i - 1) * k..(c - i) * k];
                kernels.row_update(row, src, self.t_values[idx]);
            }
            kernels.row_div(row, self.t_values[start]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::TripletMatrix;

    fn laplacian_2d(nx: usize, ny: usize) -> CsrMatrix {
        let id = |x: usize, y: usize| y * nx + x;
        let mut t = TripletMatrix::new(nx * ny, nx * ny);
        for y in 0..ny {
            for x in 0..nx {
                t.push(id(x, y), id(x, y), 4.01);
                if x + 1 < nx {
                    t.push_sym(id(x, y), id(x + 1, y), -1.0);
                }
                if y + 1 < ny {
                    t.push_sym(id(x, y), id(x, y + 1), -1.0);
                }
            }
        }
        t.to_csr()
    }

    #[test]
    fn tridiagonal_ic0_is_exact() {
        // A tridiagonal SPD matrix has no fill: IC(0) equals the exact
        // Cholesky factor, so apply() is an exact solve.
        let n = 30;
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, 2.5);
            if i + 1 < n {
                t.push_sym(i, i + 1, -1.0);
            }
        }
        let a = t.to_csr();
        let f = Ic0::factor(&a).unwrap();
        assert_eq!(f.shift(), 0.0);
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let x = f.apply(&b);
        assert!(a.residual_norm(&x, &b) < 1e-10);
    }

    #[test]
    fn apply_is_spd_like() {
        // z = M⁻¹ r should satisfy rᵀ z > 0 for r ≠ 0 (M SPD).
        let a = laplacian_2d(7, 7);
        let f = Ic0::factor(&a).unwrap();
        for s in 0..5 {
            let r: Vec<f64> = (0..49)
                .map(|i| ((i * 31 + s * 7) % 11) as f64 - 5.0)
                .collect();
            let z = f.apply(&r);
            let dot: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
            assert!(dot > 0.0);
        }
    }

    #[test]
    fn one_application_beats_a_jacobi_sweep() {
        // A single application of IC(0) is a better approximate solve than
        // a Jacobi sweep (the decisive comparison — iteration counts — is
        // asserted in the CG tests).
        let a = laplacian_2d(10, 10);
        let f = Ic0::factor(&a).unwrap();
        let b = vec![1.0; 100];
        let z = f.apply(&b);
        let res_ic = a.residual_norm(&z, &b);
        let jac: Vec<f64> = b.iter().map(|v| v / 4.01).collect();
        let res_jac = a.residual_norm(&jac, &b);
        assert!(res_ic < res_jac, "ic {res_ic} vs jacobi {res_jac}");
    }

    #[test]
    fn panel_apply_matches_single_apply_bitwise_across_backends() {
        use crate::panel::BLOCKED;
        let a = laplacian_2d(9, 11);
        let f = Ic0::factor(&a).unwrap();
        let rhs: Vec<Vec<f64>> = (0..5)
            .map(|s| {
                (0..99)
                    .map(|i| ((i * 29 + s * 13) % 17) as f64 * 0.5 - 4.0)
                    .collect()
            })
            .collect();
        let singles: Vec<Vec<f64>> = rhs.iter().map(|r| f.apply(r)).collect();
        for kernels in [&SCALAR as &dyn PanelKernels, &BLOCKED] {
            for (r, expect) in rhs.iter().zip(&singles) {
                assert_eq!(&f.apply_with(r, kernels), expect, "{}", kernels.label());
            }
            let batched = f.apply_many(&rhs, kernels);
            assert_eq!(batched, singles, "{}", kernels.label());
        }
        assert!(f.apply_many(&[], &SCALAR).is_empty());
    }

    #[test]
    fn non_square_rejected() {
        let t = TripletMatrix::new(2, 3);
        assert!(matches!(
            Ic0::factor(&t.to_csr()),
            Err(SparseError::NotSquare { .. })
        ));
    }

    #[test]
    fn indefinite_matrix_gets_shifted_or_rejected() {
        // A matrix needing a shift: strongly non-diagonally-dominant SPD-ish
        // pattern that breaks plain IC(0) may still factor with a shift;
        // a clearly indefinite matrix must error.
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push_sym(0, 1, 2.0);
        t.push(1, 1, 1.0);
        // Eigenvalues 3, -1: not SPD. Large shifts eventually "fix" the
        // factorization (it becomes diagonally dominant), which is fine for
        // a preconditioner; just assert we get *something* usable or a
        // clean error.
        match Ic0::factor(&t.to_csr()) {
            Ok(f) => assert!(f.shift() > 0.0),
            Err(e) => assert!(matches!(e, SparseError::NotPositiveDefinite { .. })),
        }
    }
}
