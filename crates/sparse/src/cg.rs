//! Preconditioned conjugate gradient solver.
//!
//! The finite-element systems produced when characterizing via-array stress
//! can reach hundreds of thousands of unknowns; a Jacobi-preconditioned CG
//! keeps memory linear in the number of nonzeros where a direct factorization
//! would fill in.

use crate::csr::CsrMatrix;
use crate::error::SparseError;
use crate::ic0::Ic0;
use crate::kernels::{axpy_with, dot_with, norm_with, xpby_with, VEC_CHUNK};
use crate::panel::{self, KernelBackend};
use emgrid_runtime::{obs, parallel_fill};
use std::time::{Duration, Instant};

/// Preconditioner selection for [`conjugate_gradient`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preconditioner {
    /// No preconditioning.
    Identity,
    /// Diagonal (Jacobi) scaling — cheap, helps badly scaled systems.
    Jacobi,
    /// Zero-fill incomplete Cholesky ([`Ic0`]) — costs one structured
    /// factorization up front, typically cuts iteration counts several-fold
    /// on FEM/grid matrices.
    IncompleteCholesky,
}

/// Options controlling [`conjugate_gradient`].
#[derive(Debug, Clone, PartialEq)]
pub struct CgOptions {
    /// Relative residual target `||b - Ax|| / ||b||`.
    pub tolerance: f64,
    /// Hard iteration cap.
    pub max_iterations: usize,
    /// Preconditioner (default: Jacobi).
    pub preconditioner: Preconditioner,
    /// Worker threads for the SpMV / dot / axpy kernels (default 1).
    ///
    /// The kernels run identical fixed-chunk arithmetic at every thread
    /// count, so the solve — iterates, iteration count and residual — is
    /// **bit-identical** whatever value is used.
    pub threads: usize,
    /// Microkernel backend for the dot/axpy/xpby chunk bodies and the
    /// IC(0) preconditioner's multi-RHS row operations
    /// ([`crate::panel`]). Backends are bit-identical, so this — like
    /// `threads` — only moves wall time.
    pub kernels: KernelBackend,
}

impl Default for CgOptions {
    fn default() -> Self {
        CgOptions {
            tolerance: 1e-10,
            max_iterations: 10_000,
            preconditioner: Preconditioner::Jacobi,
            threads: 1,
            kernels: KernelBackend::Auto,
        }
    }
}

/// Convergence report returned by [`conjugate_gradient`].
#[derive(Debug, Clone, PartialEq)]
pub struct CgOutcome {
    /// The solution vector.
    pub x: Vec<f64>,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Final relative residual.
    pub residual: f64,
    /// Wall time spent building the preconditioner (the IC(0)
    /// factorization for [`Preconditioner::IncompleteCholesky`]; near
    /// zero for the diagonal choices).
    pub precond_time: Duration,
}

/// Solves the SPD system `A x = b` by (Jacobi-)preconditioned CG.
///
/// `x0` provides a warm start; pass `None` to start from zero.
///
/// # Errors
///
/// Returns [`SparseError::NotSquare`] or [`SparseError::DimensionMismatch`]
/// on malformed input and [`SparseError::NotConverged`] if the tolerance is
/// not met within `max_iterations` (the partial solution is discarded; use a
/// looser tolerance or the direct solver in that case).
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), emgrid_sparse::SparseError> {
/// use emgrid_sparse::{TripletMatrix, conjugate_gradient, CgOptions};
///
/// let mut t = TripletMatrix::new(3, 3);
/// for i in 0..3 {
///     t.push(i, i, 2.0);
/// }
/// let a = t.to_csr();
/// let out = conjugate_gradient(&a, &[2.0, 4.0, 6.0], None, &CgOptions::default())?;
/// assert!((out.x[2] - 3.0).abs() < 1e-8);
/// # Ok(())
/// # }
/// ```
pub fn conjugate_gradient(
    a: &CsrMatrix,
    b: &[f64],
    x0: Option<&[f64]>,
    options: &CgOptions,
) -> Result<CgOutcome, SparseError> {
    if a.rows() != a.cols() {
        return Err(SparseError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    if b.len() != n {
        return Err(SparseError::DimensionMismatch {
            expected: n,
            found: b.len(),
        });
    }
    let threads = options.threads.max(1);
    let kern = options.kernels.instance();
    let _cg_span = obs::span("cg");
    let bnorm = norm_with(b, threads, kern);
    if bnorm == 0.0 {
        return Ok(CgOutcome {
            x: vec![0.0; n],
            iterations: 0,
            residual: 0.0,
            precond_time: Duration::ZERO,
        });
    }

    enum Prec {
        Diagonal(Vec<f64>),
        Ic(Box<Ic0>),
    }
    let precond_span = obs::span("precondition");
    let precond_start = Instant::now();
    let prec = match options.preconditioner {
        Preconditioner::Identity => Prec::Diagonal(vec![1.0; n]),
        Preconditioner::Jacobi => Prec::Diagonal(
            (0..n)
                .map(|i| {
                    let d = a.get(i, i);
                    if d > 0.0 {
                        1.0 / d
                    } else {
                        1.0
                    }
                })
                .collect(),
        ),
        Preconditioner::IncompleteCholesky => Prec::Ic(Box::new(Ic0::factor(a)?)),
    };
    let precond_time = precond_start.elapsed();
    drop(precond_span);
    let apply_prec = |r: &[f64]| -> Vec<f64> {
        match &prec {
            Prec::Diagonal(d) => {
                let mut z = vec![0.0; r.len()];
                parallel_fill(&mut z, VEC_CHUNK, threads, |i, zi| *zi = r[i] * d[i]);
                z
            }
            // Triangular solves are inherently sequential across rows, but
            // the row bodies route through the microkernel backend —
            // dispatched concretely here so they inline per nonzero.
            Prec::Ic(f) => match options.kernels.resolve() {
                KernelBackend::Scalar => f.apply_with(r, &panel::SCALAR),
                _ => f.apply_with(r, &panel::BLOCKED),
            },
        }
    };

    let mut x = match x0 {
        Some(x0) => {
            if x0.len() != n {
                return Err(SparseError::DimensionMismatch {
                    expected: n,
                    found: x0.len(),
                });
            }
            x0.to_vec()
        }
        None => vec![0.0; n],
    };
    let mut r = vec![0.0; n];
    a.par_matvec_into(&x, &mut r, threads);
    parallel_fill(&mut r, VEC_CHUNK, threads, |i, ri| *ri = b[i] - *ri);
    let mut z: Vec<f64> = apply_prec(&r);
    let mut p = z.clone();
    let mut rz = dot_with(&r, &z, threads, kern);
    let mut ap = vec![0.0; n];

    let mut residual = norm_with(&r, threads, kern) / bnorm;
    if residual <= options.tolerance {
        return Ok(CgOutcome {
            x,
            iterations: 0,
            residual,
            precond_time,
        });
    }

    let _iterate_span = obs::span("iterate");
    for it in 1..=options.max_iterations {
        a.par_matvec_into(&p, &mut ap, threads);
        let pap = dot_with(&p, &ap, threads, kern);
        if pap <= 0.0 || !pap.is_finite() {
            return Err(SparseError::NotPositiveDefinite {
                column: it,
                pivot: pap,
            });
        }
        let alpha = rz / pap;
        axpy_with(alpha, &p, &mut x, threads, kern);
        axpy_with(-alpha, &ap, &mut r, threads, kern);
        residual = norm_with(&r, threads, kern) / bnorm;
        if residual <= options.tolerance {
            return Ok(CgOutcome {
                x,
                iterations: it,
                residual,
                precond_time,
            });
        }
        z = apply_prec(&r);
        let rz_new = dot_with(&r, &z, threads, kern);
        let beta = rz_new / rz;
        rz = rz_new;
        xpby_with(&z, beta, &mut p, threads, kern);
    }
    Err(SparseError::NotConverged {
        iterations: options.max_iterations,
        residual,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::TripletMatrix;
    use crate::ldl::{FactorOptions, LdlFactor};
    use proptest::prelude::*;

    fn laplacian_2d(nx: usize, ny: usize) -> CsrMatrix {
        let id = |x: usize, y: usize| y * nx + x;
        let mut t = TripletMatrix::new(nx * ny, nx * ny);
        for y in 0..ny {
            for x in 0..nx {
                t.push(id(x, y), id(x, y), 4.01);
                if x + 1 < nx {
                    t.push_sym(id(x, y), id(x + 1, y), -1.0);
                }
                if y + 1 < ny {
                    t.push_sym(id(x, y), id(x, y + 1), -1.0);
                }
            }
        }
        t.to_csr()
    }

    #[test]
    fn matches_direct_solver_on_mesh() {
        let a = laplacian_2d(12, 12);
        let b: Vec<f64> = (0..144).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
        let direct = LdlFactor::factor_with(&a, &FactorOptions::default())
            .unwrap()
            .solve(&b);
        let cg = conjugate_gradient(&a, &b, None, &CgOptions::default()).unwrap();
        for (u, v) in cg.x.iter().zip(&direct) {
            assert!((u - v).abs() < 1e-6);
        }
    }

    #[test]
    fn zero_rhs_short_circuits() {
        let a = laplacian_2d(3, 3);
        let out = conjugate_gradient(&a, &[0.0; 9], None, &CgOptions::default()).unwrap();
        assert_eq!(out.iterations, 0);
        assert!(out.x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn warm_start_from_solution_converges_instantly() {
        let a = laplacian_2d(5, 5);
        let b = vec![1.0; 25];
        let exact = LdlFactor::factor_with(&a, &FactorOptions::default())
            .unwrap()
            .solve(&b);
        let out = conjugate_gradient(&a, &b, Some(&exact), &CgOptions::default()).unwrap();
        assert_eq!(out.iterations, 0);
    }

    #[test]
    fn iteration_cap_is_reported() {
        let a = laplacian_2d(10, 10);
        let b = vec![1.0; 100];
        let opts = CgOptions {
            tolerance: 1e-14,
            max_iterations: 2,
            preconditioner: Preconditioner::Identity,
            ..CgOptions::default()
        };
        let err = conjugate_gradient(&a, &b, None, &opts).unwrap_err();
        assert!(matches!(
            err,
            SparseError::NotConverged { iterations: 2, .. }
        ));
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let a = laplacian_2d(3, 3);
        let err = conjugate_gradient(&a, &[1.0; 5], None, &CgOptions::default()).unwrap_err();
        assert!(matches!(err, SparseError::DimensionMismatch { .. }));
    }

    #[test]
    fn jacobi_preconditioner_accelerates_ill_scaled_systems() {
        // Badly scaled diagonal: Jacobi should fix conditioning entirely.
        let n = 60;
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, 10f64.powi((i % 7) as i32));
        }
        let a = t.to_csr();
        let b = vec![1.0; n];
        let with = conjugate_gradient(
            &a,
            &b,
            None,
            &CgOptions {
                preconditioner: Preconditioner::Jacobi,
                ..CgOptions::default()
            },
        )
        .unwrap();
        assert!(with.iterations <= 2, "jacobi its = {}", with.iterations);
    }

    #[test]
    fn incomplete_cholesky_cuts_iterations() {
        let a = laplacian_2d(24, 24);
        let b: Vec<f64> = (0..576).map(|i| ((i * 13) % 7) as f64 - 3.0).collect();
        let run = |p: Preconditioner| {
            conjugate_gradient(
                &a,
                &b,
                None,
                &CgOptions {
                    preconditioner: p,
                    ..CgOptions::default()
                },
            )
            .unwrap()
        };
        let jacobi = run(Preconditioner::Jacobi);
        let ic = run(Preconditioner::IncompleteCholesky);
        assert!(
            ic.iterations * 2 < jacobi.iterations,
            "ic {} vs jacobi {} iterations",
            ic.iterations,
            jacobi.iterations
        );
        // Both converge to the same solution.
        for (u, v) in ic.x.iter().zip(&jacobi.x) {
            assert!((u - v).abs() < 1e-6);
        }
    }

    #[test]
    fn solve_is_bit_identical_across_thread_counts() {
        let a = laplacian_2d(20, 20);
        let b: Vec<f64> = (0..400).map(|i| ((i * 11) % 17) as f64 - 8.0).collect();
        let run = |threads| {
            conjugate_gradient(
                &a,
                &b,
                None,
                &CgOptions {
                    threads,
                    ..CgOptions::default()
                },
            )
            .unwrap()
        };
        let seq = run(1);
        for threads in [2, 8] {
            let par = run(threads);
            assert_eq!(par.iterations, seq.iterations, "threads = {threads}");
            assert_eq!(
                par.residual.to_bits(),
                seq.residual.to_bits(),
                "threads = {threads}"
            );
            assert_eq!(par.x, seq.x, "threads = {threads}");
        }
    }

    #[test]
    fn solve_is_bit_identical_across_kernel_backends() {
        // The full CG pipeline — dots, axpys, SpMV, and the IC(0) panel
        // apply — must give the same iterates whatever backend runs it.
        let a = laplacian_2d(20, 20);
        let b: Vec<f64> = (0..400).map(|i| ((i * 11) % 17) as f64 - 8.0).collect();
        let run = |kernels| {
            conjugate_gradient(
                &a,
                &b,
                None,
                &CgOptions {
                    kernels,
                    preconditioner: Preconditioner::IncompleteCholesky,
                    ..CgOptions::default()
                },
            )
            .unwrap()
        };
        let scalar = run(KernelBackend::Scalar);
        for kernels in [KernelBackend::Blocked, KernelBackend::Auto] {
            let other = run(kernels);
            assert_eq!(other.iterations, scalar.iterations, "{kernels:?}");
            assert_eq!(
                other.residual.to_bits(),
                scalar.residual.to_bits(),
                "{kernels:?}"
            );
            assert_eq!(other.x, scalar.x, "{kernels:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn cg_residual_below_tolerance(
            b in proptest::collection::vec(-5.0f64..5.0, 36),
        ) {
            let a = laplacian_2d(6, 6);
            let out = conjugate_gradient(&a, &b, None, &CgOptions::default()).unwrap();
            prop_assert!(a.residual_norm(&out.x, &b) / (1e-30 + b.iter().map(|v| v*v).sum::<f64>().sqrt()) < 1e-8);
        }

        #[test]
        fn cg_iterates_byte_identical_across_backends_on_random_spd(
            diag_boost in 0.1f64..5.0,
            edges in proptest::collection::vec((0u32..18, 0u32..18, 0.01f64..1.0), 1..70),
            b in proptest::collection::vec(-5.0f64..5.0, 18),
        ) {
            // Weighted graph Laplacian + boost*I: always SPD.
            let n = 18;
            let mut t = TripletMatrix::new(n, n);
            let mut diag = vec![diag_boost; n];
            for (a_, b_, w) in edges {
                let (i, j) = (a_ as usize, b_ as usize);
                if i != j {
                    t.push_sym(i, j, -w);
                    diag[i] += w;
                    diag[j] += w;
                }
            }
            for (i, d) in diag.iter().enumerate() {
                t.push(i, i, *d);
            }
            let a = t.to_csr();
            let run = |kernels| {
                conjugate_gradient(&a, &b, None, &CgOptions {
                    kernels,
                    preconditioner: Preconditioner::IncompleteCholesky,
                    tolerance: 1e-9,
                    ..CgOptions::default()
                })
                .unwrap()
            };
            let s = run(KernelBackend::Scalar);
            let bl = run(KernelBackend::Blocked);
            prop_assert_eq!(s.iterations, bl.iterations);
            prop_assert_eq!(s.residual.to_bits(), bl.residual.to_bits());
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            prop_assert_eq!(bits(&s.x), bits(&bl.x));
        }
    }
}
