//! Deterministic, optionally-threaded vector kernels for the iterative
//! solvers: chunked dot/norm reductions and element-wise updates.
//!
//! All kernels run the **same fixed-chunk arithmetic** whether `threads` is
//! 1 or 64: reductions sum each `VEC_CHUNK`-sized block serially and fold
//! the block partials in chunk order (via
//! [`emgrid_runtime::parallel_reduce`]), and element-wise updates write each
//! entry exactly once. Results are therefore bit-identical for any thread
//! count — the invariance the CG solver's determinism contract rests on.
//!
//! Each kernel has a `*_with` variant taking a [`PanelKernels`] backend,
//! which supplies the chunk body ([`PanelKernels::dot_chunk`] and friends).
//! Backends are bit-identical to each other too (see [`crate::panel`]), so
//! the variant — like `threads` — only moves wall time. The plain
//! functions run the scalar reference backend.

use emgrid_runtime::{parallel_chunks_mut, parallel_reduce};

use crate::panel::{PanelKernels, SCALAR};

/// Fixed reduction block for vector kernels. Small enough to parallelize
/// FEM-sized vectors (1e5–1e6 entries → dozens to hundreds of chunks),
/// large enough that chunk bookkeeping is noise.
pub const VEC_CHUNK: usize = 4096;

/// Fixed row-block size for threaded CSR mat-vec products.
pub const ROW_CHUNK: usize = 512;

/// Chunked dot product `aᵀ b`, bit-identical for any `threads`.
pub fn dot(a: &[f64], b: &[f64], threads: usize) -> f64 {
    dot_with(a, b, threads, &SCALAR)
}

/// [`dot`] with an explicit microkernel backend.
pub fn dot_with(a: &[f64], b: &[f64], threads: usize, kernels: &dyn PanelKernels) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    parallel_reduce(
        a.len(),
        VEC_CHUNK,
        threads,
        |_, r| kernels.dot_chunk(&a[r.clone()], &b[r]),
        |acc: f64, part| acc + part,
    )
    .unwrap_or(0.0)
}

/// Chunked Euclidean norm `||a||`, bit-identical for any `threads`.
pub fn norm(a: &[f64], threads: usize) -> f64 {
    dot(a, a, threads).sqrt()
}

/// [`norm`] with an explicit microkernel backend.
pub fn norm_with(a: &[f64], threads: usize, kernels: &dyn PanelKernels) -> f64 {
    dot_with(a, a, threads, kernels).sqrt()
}

/// `y[i] += alpha * x[i]` over fixed chunks.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64], threads: usize) {
    axpy_with(alpha, x, y, threads, &SCALAR);
}

/// [`axpy`] with an explicit microkernel backend.
pub fn axpy_with(alpha: f64, x: &[f64], y: &mut [f64], threads: usize, kernels: &dyn PanelKernels) {
    debug_assert_eq!(x.len(), y.len());
    parallel_chunks_mut(y, VEC_CHUNK, threads, |start, yc| {
        kernels.axpy_chunk(alpha, &x[start..start + yc.len()], yc);
    });
}

/// `p[i] = z[i] + beta * p[i]` (the CG direction update) over fixed chunks.
pub fn xpby(z: &[f64], beta: f64, p: &mut [f64], threads: usize) {
    xpby_with(z, beta, p, threads, &SCALAR);
}

/// [`xpby`] with an explicit microkernel backend.
pub fn xpby_with(z: &[f64], beta: f64, p: &mut [f64], threads: usize, kernels: &dyn PanelKernels) {
    debug_assert_eq!(z.len(), p.len());
    parallel_chunks_mut(p, VEC_CHUNK, threads, |start, pc| {
        kernels.xpby_chunk(&z[start..start + pc.len()], beta, pc);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::panel::BLOCKED;

    fn vec_a(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| ((i * 31 + 7) % 97) as f64 * 0.125 - 6.0)
            .collect()
    }

    fn vec_b(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| ((i * 17 + 3) % 89) as f64 * 0.25 - 11.0)
            .collect()
    }

    #[test]
    fn dot_is_thread_count_invariant() {
        let a = vec_a(50_000);
        let b = vec_b(50_000);
        let seq = dot(&a, &b, 1);
        for threads in [2, 3, 8] {
            assert_eq!(seq.to_bits(), dot(&a, &b, threads).to_bits());
        }
    }

    #[test]
    fn axpy_matches_serial_loop_bitwise() {
        let x = vec_a(20_000);
        let mut expect = vec_b(20_000);
        for (e, xi) in expect.iter_mut().zip(&x) {
            *e += 0.37 * xi;
        }
        for threads in [1, 2, 8] {
            let mut y = vec_b(20_000);
            axpy(0.37, &x, &mut y, threads);
            assert_eq!(y, expect, "threads = {threads}");
        }
    }

    #[test]
    fn xpby_matches_serial_loop_bitwise() {
        let z = vec_a(20_000);
        let mut expect = vec_b(20_000);
        for (e, zi) in expect.iter_mut().zip(&z) {
            *e = zi - 0.81 * *e;
        }
        for threads in [1, 2, 8] {
            let mut p = vec_b(20_000);
            xpby(&z, -0.81, &mut p, threads);
            assert_eq!(p, expect, "threads = {threads}");
        }
    }

    #[test]
    fn backend_variants_match_reference_bitwise() {
        // Sizes straddle VEC_CHUNK so both the chunked and the short paths
        // run, and the blocked unroll sees full blocks plus remainders.
        for n in [17, 4096, 9001] {
            let a = vec_a(n);
            let b = vec_b(n);
            for threads in [1, 4] {
                assert_eq!(
                    dot(&a, &b, threads).to_bits(),
                    dot_with(&a, &b, threads, &BLOCKED).to_bits(),
                    "dot n={n} threads={threads}"
                );
                assert_eq!(
                    norm(&a, threads).to_bits(),
                    norm_with(&a, threads, &BLOCKED).to_bits(),
                    "norm n={n} threads={threads}"
                );
                let mut y1 = vec_b(n);
                let mut y2 = vec_b(n);
                axpy(0.37, &a, &mut y1, threads);
                axpy_with(0.37, &a, &mut y2, threads, &BLOCKED);
                assert_eq!(y1, y2, "axpy n={n} threads={threads}");
                let mut p1 = vec_b(n);
                let mut p2 = vec_b(n);
                xpby(&a, -0.81, &mut p1, threads);
                xpby_with(&a, -0.81, &mut p2, threads, &BLOCKED);
                assert_eq!(p1, p2, "xpby n={n} threads={threads}");
            }
        }
    }

    #[test]
    fn empty_vectors_are_harmless() {
        assert_eq!(dot(&[], &[], 4), 0.0);
        assert_eq!(norm(&[], 4), 0.0);
        let mut y: Vec<f64> = vec![];
        axpy(1.0, &[], &mut y, 4);
        xpby(&[], 1.0, &mut y, 4);
    }
}
