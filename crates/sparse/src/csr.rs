//! Compressed sparse row matrices.

use crate::dense::DenseMatrix;
use crate::ordering::Permutation;

/// An immutable sparse matrix in compressed sparse row (CSR) format.
///
/// Column indices within each row are strictly increasing and duplicate
/// entries have been summed. For symmetric matrices, CSR of the full matrix
/// doubles as compressed sparse column storage of the transpose, which the
/// factorization code exploits.
///
/// # Example
///
/// ```
/// use emgrid_sparse::{TripletMatrix, CsrMatrix};
///
/// let mut t = TripletMatrix::new(2, 3);
/// t.push(0, 2, 1.0);
/// t.push(1, 0, -4.0);
/// let m: CsrMatrix = t.to_csr();
/// assert_eq!(m.matvec(&[1.0, 0.0, 2.0]), vec![2.0, -4.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from (row, col, value) triplets, summing duplicates.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(u32, u32, f64)]) -> Self {
        // Count entries per row (including duplicates for now).
        let mut counts = vec![0usize; rows + 1];
        for &(r, c, _) in triplets {
            assert!((r as usize) < rows && (c as usize) < cols);
            counts[r as usize + 1] += 1;
        }
        for i in 0..rows {
            counts[i + 1] += counts[i];
        }
        // Scatter into row buckets.
        let mut col_idx = vec![0u32; triplets.len()];
        let mut values = vec![0.0f64; triplets.len()];
        let mut next = counts.clone();
        for &(r, c, v) in triplets {
            let slot = next[r as usize];
            col_idx[slot] = c;
            values[slot] = v;
            next[r as usize] += 1;
        }
        // Sort each row by column and sum duplicates in place.
        let mut row_ptr = vec![0usize; rows + 1];
        let mut write = 0usize;
        for r in 0..rows {
            let (start, end) = (counts[r], counts[r + 1]);
            let mut row: Vec<(u32, f64)> = col_idx[start..end]
                .iter()
                .copied()
                .zip(values[start..end].iter().copied())
                .collect();
            row.sort_unstable_by_key(|&(c, _)| c);
            let row_start = write;
            for (c, v) in row {
                if write > row_start && col_idx[write - 1] == c {
                    values[write - 1] += v;
                } else {
                    col_idx[write] = c;
                    values[write] = v;
                    write += 1;
                }
            }
            row_ptr[r + 1] = write;
        }
        col_idx.truncate(write);
        values.truncate(write);
        CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Creates an `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            rows: n,
            cols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n as u32).collect(),
            values: vec![1.0; n],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Row pointer array (`rows + 1` entries).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column indices, row by row.
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// Stored values, row by row.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the stored values (pattern is fixed).
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Returns the stored entry at `(row, col)`, or `0.0` if not stored.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols);
        let start = self.row_ptr[row];
        let end = self.row_ptr[row + 1];
        match self.col_idx[start..end].binary_search(&(col as u32)) {
            Ok(k) => self.values[start + k],
            Err(_) => 0.0,
        }
    }

    /// Iterates over the `(col, value)` pairs of one row.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn row(&self, row: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let start = self.row_ptr[row];
        let end = self.row_ptr[row + 1];
        self.col_idx[start..end]
            .iter()
            .zip(&self.values[start..end])
            .map(|(&c, &v)| (c as usize, v))
    }

    /// Matrix-vector product `y = A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.rows];
        self.matvec_into(x, &mut y);
        y
    }

    /// Matrix-vector product into a caller-provided buffer (no allocation).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()` or `y.len() != self.rows()`.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        assert_eq!(y.len(), self.rows, "matvec output dimension mismatch");
        for r in 0..self.rows {
            let start = self.row_ptr[r];
            let end = self.row_ptr[r + 1];
            let mut acc = 0.0;
            for k in start..end {
                acc += self.values[k] * x[self.col_idx[k] as usize];
            }
            y[r] = acc;
        }
    }

    /// `y = A x` across `threads` worker threads, parallelized over fixed
    /// [`crate::kernels::ROW_CHUNK`]-row blocks.
    ///
    /// Each output entry is one row's serial inner product regardless of
    /// scheduling, so the result is **bit-identical** to [`matvec_into`]
    /// (and to itself at any other thread count).
    ///
    /// [`matvec_into`]: CsrMatrix::matvec_into
    pub fn par_matvec_into(&self, x: &[f64], y: &mut [f64], threads: usize) {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        assert_eq!(y.len(), self.rows, "matvec output dimension mismatch");
        emgrid_runtime::parallel_fill(y, crate::kernels::ROW_CHUNK, threads, |r, yr| {
            let start = self.row_ptr[r];
            let end = self.row_ptr[r + 1];
            let mut acc = 0.0;
            for k in start..end {
                acc += self.values[k] * x[self.col_idx[k] as usize];
            }
            *yr = acc;
        });
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.col_idx {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.cols {
            counts[i + 1] += counts[i];
        }
        let row_ptr = counts.clone();
        let mut col_idx = vec![0u32; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut next = counts;
        for r in 0..self.rows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[k] as usize;
                let slot = next[c];
                col_idx[slot] = r as u32;
                values[slot] = self.values[k];
                next[c] += 1;
            }
        }
        CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Whether the matrix equals its transpose up to `tol` (absolute).
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        let t = self.transpose();
        if t.row_ptr != self.row_ptr || t.col_idx != self.col_idx {
            // Patterns differ; fall back to value comparison through `get`.
            for r in 0..self.rows {
                for (c, v) in self.row(r) {
                    if (v - self.get(c, r)).abs() > tol {
                        return false;
                    }
                }
            }
            return true;
        }
        self.values
            .iter()
            .zip(&t.values)
            .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Symmetric permutation `P A Pᵀ` for a square matrix.
    ///
    /// Entry `(i, j)` of the result equals entry `(perm[i], perm[j])` of
    /// `self`, i.e. `perm` maps *new* indices to *old* indices.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or the permutation length differs.
    pub fn permute_symmetric(&self, perm: &Permutation) -> CsrMatrix {
        assert_eq!(self.rows, self.cols, "permute_symmetric needs square");
        assert_eq!(perm.len(), self.rows);
        let inv = perm.inverse();
        let mut triplets = Vec::with_capacity(self.nnz());
        for r in 0..self.rows {
            let new_r = inv.map(r);
            for (c, v) in self.row(r) {
                triplets.push((new_r as u32, inv.map(c) as u32, v));
            }
        }
        CsrMatrix::from_triplets(self.rows, self.cols, &triplets)
    }

    /// Converts to a dense matrix (test/debug helper; O(rows*cols) memory).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                d[(r, c)] += v;
            }
        }
        d
    }

    /// Euclidean norm of the residual `b - A x`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn residual_norm(&self, x: &[f64], b: &[f64]) -> f64 {
        assert_eq!(b.len(), self.rows);
        let ax = self.matvec(x);
        ax.iter()
            .zip(b)
            .map(|(a, bi)| (bi - a) * (bi - a))
            .sum::<f64>()
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::TripletMatrix;
    use proptest::prelude::*;

    fn sample() -> CsrMatrix {
        let mut t = TripletMatrix::new(3, 3);
        t.push(0, 0, 2.0);
        t.push(0, 2, 1.0);
        t.push(1, 1, 3.0);
        t.push(2, 0, 1.0);
        t.push(2, 2, 4.0);
        t.to_csr()
    }

    #[test]
    fn matvec_matches_dense() {
        let m = sample();
        let x = vec![1.0, 2.0, 3.0];
        assert_eq!(m.matvec(&x), m.to_dense().matvec(&x));
    }

    #[test]
    fn par_matvec_is_bitwise_equal_to_serial() {
        // Big enough to span several ROW_CHUNK blocks.
        let n = 3000;
        let mut t = crate::coo::TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, 2.0 + (i % 5) as f64 * 0.3);
            if i + 1 < n {
                t.push(i, i + 1, -0.7);
                t.push(i + 1, i, -0.7);
            }
        }
        let m = t.to_csr();
        let x: Vec<f64> = (0..n)
            .map(|i| ((i * 13) % 101) as f64 * 0.01 - 0.5)
            .collect();
        let mut serial = vec![0.0; n];
        m.matvec_into(&x, &mut serial);
        for threads in [1, 2, 8] {
            let mut par = vec![0.0; n];
            m.par_matvec_into(&x, &mut par, threads);
            assert_eq!(par, serial, "threads = {threads}");
        }
    }

    #[test]
    fn get_returns_zero_for_missing() {
        let m = sample();
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.get(0, 2), 1.0);
    }

    #[test]
    fn transpose_twice_is_identity_op() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn symmetric_detection() {
        let m = sample();
        assert!(m.is_symmetric(1e-15)); // sample is symmetric
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 1, 1.0);
        assert!(!t.to_csr().is_symmetric(1e-15));
    }

    #[test]
    fn identity_matvec_is_noop() {
        let m = CsrMatrix::identity(5);
        let x = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(m.matvec(&x), x);
    }

    #[test]
    fn permute_symmetric_reverses() {
        let m = sample();
        let perm = Permutation::new(vec![2, 1, 0]).unwrap();
        let p = m.permute_symmetric(&perm);
        // New (0,0) should be old (2,2) = 4.0
        assert_eq!(p.get(0, 0), 4.0);
        assert_eq!(p.get(2, 2), 2.0);
        assert_eq!(p.get(0, 2), 1.0);
        // Permuting back recovers the original.
        assert_eq!(p.permute_symmetric(&perm.inverse()), m);
    }

    #[test]
    fn row_iteration_is_sorted() {
        let mut t = TripletMatrix::new(1, 5);
        t.push(0, 4, 1.0);
        t.push(0, 1, 2.0);
        t.push(0, 3, 3.0);
        let m = t.to_csr();
        let cols: Vec<usize> = m.row(0).map(|(c, _)| c).collect();
        assert_eq!(cols, vec![1, 3, 4]);
    }

    prop_compose! {
        fn triplet_list(n: usize, max_len: usize)
            (entries in proptest::collection::vec(
                (0..n as u32, 0..n as u32, -10.0f64..10.0), 0..max_len))
            -> Vec<(u32, u32, f64)> { entries }
    }

    proptest! {
        #[test]
        fn csr_matvec_matches_dense_reference(
            entries in triplet_list(8, 40),
            x in proptest::collection::vec(-5.0f64..5.0, 8),
        ) {
            let m = CsrMatrix::from_triplets(8, 8, &entries);
            let dense = m.to_dense();
            let ys = m.matvec(&x);
            let yd = dense.matvec(&x);
            for (a, b) in ys.iter().zip(&yd) {
                prop_assert!((a - b).abs() < 1e-9);
            }
        }

        #[test]
        fn transpose_matvec_identity(
            entries in triplet_list(6, 30),
            x in proptest::collection::vec(-5.0f64..5.0, 6),
            y in proptest::collection::vec(-5.0f64..5.0, 6),
        ) {
            // y' (A x) == x' (A' y)
            let m = CsrMatrix::from_triplets(6, 6, &entries);
            let t = m.transpose();
            let ax = m.matvec(&x);
            let aty = t.matvec(&y);
            let lhs: f64 = y.iter().zip(&ax).map(|(a, b)| a * b).sum();
            let rhs: f64 = x.iter().zip(&aty).map(|(a, b)| a * b).sum();
            prop_assert!((lhs - rhs).abs() < 1e-8);
        }

        #[test]
        fn nnz_never_exceeds_input_len(entries in triplet_list(8, 60)) {
            let m = CsrMatrix::from_triplets(8, 8, &entries);
            prop_assert!(m.nnz() <= entries.len());
        }
    }
}
