//! Incremental re-solve after low-rank updates (Sherman–Morrison–Woodbury).
//!
//! During the power-grid Monte Carlo (Algorithm 1 of the paper), every
//! electromigration failure event changes the resistance of one via array —
//! a rank-1 change `c · u uᵀ` of the conductance matrix, where `u = e_i - e_j`
//! for an internal edge. Re-factoring the full grid after each failure is
//! wasteful; this module keeps the base factorization and accumulates the
//! Woodbury correction
//!
//! `(A + U C Uᵀ)⁻¹ b = A⁻¹ b − Z (C⁻¹ + Uᵀ Z)⁻¹ Uᵀ A⁻¹ b`, with `Z = A⁻¹ U`.
//!
//! Each update costs one base solve plus a small dense factorization; each
//! subsequent system solve costs one base solve plus `O(n·k)` work, where `k`
//! is the number of accumulated updates. The `smw_ablation` bench compares
//! this against full refactorization.

use crate::csr::CsrMatrix;
use crate::dense::{DenseMatrix, LuFactor};
use crate::error::SparseError;
use crate::ldl::{FactorOptions, LdlFactor};

/// A sparse update vector: a short list of `(index, coefficient)` pairs.
pub type UpdateVector = Vec<(usize, f64)>;

/// A factored SPD system that accepts rank-1 updates without refactoring.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), emgrid_sparse::SparseError> {
/// use emgrid_sparse::{TripletMatrix, IncrementalSolver};
///
/// // Two resistors of conductance 1 from node 0 and 1 to ground, plus a
/// // unit conductance between them.
/// let mut t = TripletMatrix::new(2, 2);
/// t.push(0, 0, 2.0);
/// t.push(1, 1, 2.0);
/// t.push_sym(0, 1, -1.0);
/// let a = t.to_csr();
/// let mut solver = IncrementalSolver::new(&a)?;
///
/// // Cut the internal conductance (edge 0-1 fails): A += (-1)·u uᵀ.
/// solver.update_edge(0, 1, -1.0)?;
/// let x = solver.solve(&[1.0, 0.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-10); // node 0 now isolated from node 1
/// assert!(x[1].abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalSolver {
    a: CsrMatrix,
    base: LdlFactor,
    /// Factorization configuration reused by [`IncrementalSolver::rebase`].
    opts: FactorOptions,
    n: usize,
    /// Sparse update vectors u_k.
    us: Vec<UpdateVector>,
    /// Scalars c_k in `A + Σ c_k u_k u_kᵀ`.
    cs: Vec<f64>,
    /// Columns of `Z = A⁻¹ U`.
    z: Vec<Vec<f64>>,
    /// LU of the capacitance matrix `S = C⁻¹ + Uᵀ Z`.
    s_lu: Option<LuFactor>,
}

impl IncrementalSolver {
    /// Factors the base matrix with the default [`FactorOptions`] and starts
    /// with no updates.
    ///
    /// # Errors
    ///
    /// Propagates factorization failures from [`LdlFactor::factor_with`].
    pub fn new(a: &CsrMatrix) -> Result<Self, SparseError> {
        Self::with_options(a, &FactorOptions::default())
    }

    /// [`IncrementalSolver::new`] with explicit factorization options; the
    /// same options are reused on every [`IncrementalSolver::rebase`].
    ///
    /// # Errors
    ///
    /// Propagates factorization failures from [`LdlFactor::factor_with`].
    pub fn with_options(a: &CsrMatrix, opts: &FactorOptions) -> Result<Self, SparseError> {
        let base = LdlFactor::factor_with(a, opts)?;
        Ok(IncrementalSolver {
            a: a.clone(),
            n: a.rows(),
            base,
            opts: *opts,
            us: Vec::new(),
            cs: Vec::new(),
            z: Vec::new(),
            s_lu: None,
        })
    }

    /// Dimension of the system.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the system is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of accumulated rank-1 updates since the last (re)base.
    pub fn rank(&self) -> usize {
        self.us.len()
    }

    /// Adds the rank-1 update `c · u uᵀ` where `u` is given sparsely.
    ///
    /// Coefficients `c > 0` add conductance; `c < 0` removes it (a failure).
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::IndexOutOfBounds`] for bad indices, and
    /// [`SparseError::Singular`] if the updated system is singular (e.g. the
    /// update disconnects part of the grid from every voltage source).
    /// On error the update is rolled back and the solver stays usable.
    pub fn update(&mut self, u: UpdateVector, c: f64) -> Result<(), SparseError> {
        for &(i, _) in &u {
            if i >= self.n {
                return Err(SparseError::IndexOutOfBounds {
                    index: i,
                    bound: self.n,
                });
            }
        }
        // z_k = A⁻¹ u_k.
        let mut dense_u = vec![0.0; self.n];
        for &(i, v) in &u {
            dense_u[i] += v;
        }
        let zk = self.base.solve(&dense_u);
        self.us.push(u);
        self.cs.push(c);
        self.z.push(zk);
        match self.refresh_capacitance() {
            Ok(()) => Ok(()),
            Err(e) => {
                // Roll back so the solver remains consistent.
                self.us.pop();
                self.cs.pop();
                self.z.pop();
                self.refresh_capacitance().ok();
                Err(e)
            }
        }
    }

    /// Convenience: changes the conductance of the edge `(i, j)` by `delta_g`
    /// (the update `delta_g · (e_i − e_j)(e_i − e_j)ᵀ`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`IncrementalSolver::update`].
    pub fn update_edge(&mut self, i: usize, j: usize, delta_g: f64) -> Result<(), SparseError> {
        self.update(vec![(i, 1.0), (j, -1.0)], delta_g)
    }

    /// Convenience: changes the conductance from node `i` to ground by
    /// `delta_g` (the update `delta_g · e_i e_iᵀ`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`IncrementalSolver::update`].
    pub fn update_ground(&mut self, i: usize, delta_g: f64) -> Result<(), SparseError> {
        self.update(vec![(i, 1.0)], delta_g)
    }

    fn refresh_capacitance(&mut self) -> Result<(), SparseError> {
        let k = self.us.len();
        if k == 0 {
            self.s_lu = None;
            return Ok(());
        }
        let mut s = DenseMatrix::zeros(k, k);
        for (row, u) in self.us.iter().enumerate() {
            for (col, zc) in self.z.iter().enumerate() {
                let mut acc = 0.0;
                for &(i, v) in u {
                    acc += v * zc[i];
                }
                s[(row, col)] = acc;
            }
        }
        for (i, &c) in self.cs.iter().enumerate() {
            if c == 0.0 {
                return Err(SparseError::Singular { column: i });
            }
            s[(i, i)] += 1.0 / c;
        }
        self.s_lu = Some(LuFactor::factor(&s)?);
        Ok(())
    }

    /// Solves the **updated** system `(A + Σ c_k u_k u_kᵀ) x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if `b` has the wrong
    /// length.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, SparseError> {
        if b.len() != self.n {
            return Err(SparseError::DimensionMismatch {
                expected: self.n,
                found: b.len(),
            });
        }
        let y = self.base.solve(b);
        let Some(s_lu) = &self.s_lu else {
            return Ok(y);
        };
        let k = self.us.len();
        // w = Uᵀ y.
        let mut w = vec![0.0; k];
        for (row, u) in self.us.iter().enumerate() {
            w[row] = u.iter().map(|&(i, v)| v * y[i]).sum();
        }
        let t = s_lu.solve(&w)?;
        // x = y − Z t.
        let mut x = y;
        for (col, zc) in self.z.iter().enumerate() {
            let tc = t[col];
            if tc != 0.0 {
                for i in 0..self.n {
                    x[i] -= zc[i] * tc;
                }
            }
        }
        Ok(x)
    }

    /// Folds all accumulated updates into the matrix and refactors from
    /// scratch, resetting the update rank to zero.
    ///
    /// Useful when many failures have accumulated and per-solve `O(n·k)`
    /// overhead starts to dominate.
    ///
    /// # Errors
    ///
    /// Propagates factorization failures (e.g. if the folded matrix is
    /// singular).
    pub fn rebase(&mut self) -> Result<(), SparseError> {
        let mut triplets: Vec<(u32, u32, f64)> = Vec::with_capacity(self.a.nnz() + 4 * self.rank());
        for r in 0..self.n {
            for (c, v) in self.a.row(r) {
                triplets.push((r as u32, c as u32, v));
            }
        }
        for (u, &c) in self.us.iter().zip(&self.cs) {
            for &(i, vi) in u {
                for &(j, vj) in u {
                    triplets.push((i as u32, j as u32, c * vi * vj));
                }
            }
        }
        let folded = CsrMatrix::from_triplets(self.n, self.n, &triplets);
        let base = LdlFactor::factor_with(&folded, &self.opts)?;
        self.a = folded;
        self.base = base;
        self.us.clear();
        self.cs.clear();
        self.z.clear();
        self.s_lu = None;
        Ok(())
    }

    /// The current (updated) matrix, reconstructed explicitly. Intended for
    /// verification and debugging; costs a full matrix rebuild.
    pub fn to_matrix(&self) -> CsrMatrix {
        let mut triplets: Vec<(u32, u32, f64)> = Vec::with_capacity(self.a.nnz() + 4 * self.rank());
        for r in 0..self.n {
            for (c, v) in self.a.row(r) {
                triplets.push((r as u32, c as u32, v));
            }
        }
        for (u, &c) in self.us.iter().zip(&self.cs) {
            for &(i, vi) in u {
                for &(j, vj) in u {
                    triplets.push((i as u32, j as u32, c * vi * vj));
                }
            }
        }
        CsrMatrix::from_triplets(self.n, self.n, &triplets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::TripletMatrix;
    use proptest::prelude::*;

    /// A 1-D resistor chain grounded at both ends through unit conductances.
    fn chain(n: usize) -> CsrMatrix {
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            let mut d = 0.0;
            if i == 0 || i == n - 1 {
                d += 1.0; // to ground
            }
            if i > 0 {
                t.push_sym(i, i - 1, -1.0);
                d += 1.0;
            }
            if i + 1 < n {
                d += 1.0;
            }
            t.push(i, i, d);
        }
        t.to_csr()
    }

    #[test]
    fn no_update_matches_base_solve() {
        let a = chain(8);
        let solver = IncrementalSolver::new(&a).unwrap();
        let b = vec![1.0; 8];
        let x = solver.solve(&b).unwrap();
        assert!(a.residual_norm(&x, &b) < 1e-10);
    }

    #[test]
    fn single_update_matches_refactor() {
        let a = chain(10);
        let mut solver = IncrementalSolver::new(&a).unwrap();
        solver.update_edge(3, 4, -0.9).unwrap();
        let updated = solver.to_matrix();
        let b: Vec<f64> = (0..10).map(|i| i as f64 * 0.1).collect();
        let x_smw = solver.solve(&b).unwrap();
        let x_direct = LdlFactor::factor_with(&updated, &FactorOptions::default())
            .unwrap()
            .solve(&b);
        for (u, v) in x_smw.iter().zip(&x_direct) {
            assert!((u - v).abs() < 1e-9, "{u} vs {v}");
        }
    }

    #[test]
    fn stacked_updates_match_refactor() {
        let a = chain(12);
        let mut solver = IncrementalSolver::new(&a).unwrap();
        solver.update_edge(2, 3, -0.5).unwrap();
        solver.update_edge(7, 8, -0.25).unwrap();
        solver.update_ground(5, 2.0).unwrap();
        solver.update_edge(2, 3, -0.49).unwrap(); // nearly sever
        let b = vec![1.0; 12];
        let x_smw = solver.solve(&b).unwrap();
        let x_direct = LdlFactor::factor_with(&solver.to_matrix(), &FactorOptions::default())
            .unwrap()
            .solve(&b);
        for (u, v) in x_smw.iter().zip(&x_direct) {
            assert!((u - v).abs() < 1e-7, "{u} vs {v}");
        }
    }

    #[test]
    fn rebase_preserves_solution_and_resets_rank() {
        let a = chain(9);
        let mut solver = IncrementalSolver::new(&a).unwrap();
        solver.update_edge(1, 2, -0.7).unwrap();
        solver.update_edge(5, 6, -0.2).unwrap();
        let b = vec![0.5; 9];
        let before = solver.solve(&b).unwrap();
        assert_eq!(solver.rank(), 2);
        solver.rebase().unwrap();
        assert_eq!(solver.rank(), 0);
        let after = solver.solve(&b).unwrap();
        for (u, v) in before.iter().zip(&after) {
            assert!((u - v).abs() < 1e-9);
        }
    }

    #[test]
    fn disconnecting_update_is_rejected_and_rolled_back() {
        // Chain of 3 grounded only at node 0; cutting edge 0-1 floats {1,2}.
        let mut t = TripletMatrix::new(3, 3);
        t.push(0, 0, 2.0); // ground + edge to 1
        t.push_sym(0, 1, -1.0);
        t.push(1, 1, 2.0);
        t.push_sym(1, 2, -1.0);
        t.push(2, 2, 1.0);
        let a = t.to_csr();
        let mut solver = IncrementalSolver::new(&a).unwrap();
        let err = solver.update_edge(0, 1, -1.0);
        assert!(err.is_err());
        assert_eq!(solver.rank(), 0);
        // Solver still answers the base system.
        let b = vec![1.0, 0.0, 0.0];
        let x = solver.solve(&b).unwrap();
        assert!(a.residual_norm(&x, &b) < 1e-10);
    }

    #[test]
    fn zero_coefficient_update_rejected() {
        let a = chain(4);
        let mut solver = IncrementalSolver::new(&a).unwrap();
        let err = solver.update_edge(0, 1, 0.0);
        assert!(matches!(err, Err(SparseError::Singular { .. })));
        assert_eq!(solver.rank(), 0);
    }

    #[test]
    fn smw_and_refactor_agree_under_amd() {
        // Regression guard for the FactorOptions migration: the Woodbury
        // correction must stay consistent with a from-scratch AMD+supernodal
        // refactorization, including across a rebase.
        use crate::ldl::Ordering;
        let a = chain(16);
        let opts = FactorOptions::default().with_ordering(Ordering::Amd);
        let mut solver = IncrementalSolver::with_options(&a, &opts).unwrap();
        solver.update_edge(4, 5, -0.7).unwrap();
        solver.update_edge(10, 11, -0.3).unwrap();
        let b: Vec<f64> = (0..16).map(|i| (i as f64 * 0.37).cos()).collect();
        let x_smw = solver.solve(&b).unwrap();
        let x_direct = LdlFactor::factor_with(&solver.to_matrix(), &opts)
            .unwrap()
            .solve(&b);
        for (u, v) in x_smw.iter().zip(&x_direct) {
            assert!((u - v).abs() < 1e-8, "{u} vs {v}");
        }
        solver.rebase().unwrap();
        solver.update_edge(7, 8, -0.5).unwrap();
        let x_smw = solver.solve(&b).unwrap();
        let x_direct = LdlFactor::factor_with(&solver.to_matrix(), &opts)
            .unwrap()
            .solve(&b);
        for (u, v) in x_smw.iter().zip(&x_direct) {
            assert!((u - v).abs() < 1e-8, "{u} vs {v}");
        }
    }

    #[test]
    fn out_of_bounds_index_rejected() {
        let a = chain(4);
        let mut solver = IncrementalSolver::new(&a).unwrap();
        let err = solver.update(vec![(9, 1.0)], 1.0);
        assert!(matches!(err, Err(SparseError::IndexOutOfBounds { .. })));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn smw_equals_refactor_for_random_cut_sequences(
            cuts in proptest::collection::vec((0usize..13, 0.05f64..0.95), 1..6),
            b in proptest::collection::vec(-2.0f64..2.0, 14),
        ) {
            let a = chain(14);
            let mut solver = IncrementalSolver::new(&a).unwrap();
            let mut remaining = [1.0f64; 13];
            for (edge, frac) in cuts {
                // Reduce edge (edge, edge+1) conductance by `frac` of what is
                // left, never fully severing so the system stays SPD.
                let cut = frac * 0.9 * remaining[edge];
                remaining[edge] -= cut;
                solver.update_edge(edge, edge + 1, -cut).unwrap();
            }
            let x_smw = solver.solve(&b).unwrap();
            let x_direct = LdlFactor::factor_with(&solver.to_matrix(), &FactorOptions::default())
                .unwrap()
                .solve(&b);
            for (u, v) in x_smw.iter().zip(&x_direct) {
                prop_assert!((u - v).abs() < 1e-6);
            }
        }
    }
}
