//! Supernodal symbolic analysis and blocked numeric LDLᵀ kernels.
//!
//! The scalar up-looking factorization in [`crate::ldl`] computes one row of
//! `L` at a time, which touches memory a few scalars at a time. This module
//! adds the second-generation path: a symbolic pass over the elimination tree
//! groups columns with nested sparsity patterns into *supernodes*, and the
//! numeric pass then factors each supernode as a small dense panel with
//! blocked, cache-contiguous update kernels (a left-looking supernodal
//! factorization in the style of CHOLMOD).
//!
//! Two properties matter for the rest of the workspace:
//!
//! * **Identical output layout.** The numeric pass writes its result into the
//!   same compressed-column arrays the scalar path produces (same `col_ptr`,
//!   same sorted `row_idx`), so every triangular-solve routine works on either
//!   factor unchanged.
//! * **Determinism.** The supernode partition is a pure function of the
//!   permuted sparsity pattern (a fixed merge rule over the elimination tree),
//!   and the numeric pass is sequential with a fixed descendant-update order —
//!   thread counts never enter; bit-identical results are structural, not
//!   incidental.

use crate::csr::CsrMatrix;
use crate::error::SparseError;
use crate::panel::PanelKernels;

/// Elimination-tree and supernode structure of a permuted matrix, shared by
/// the scalar and supernodal numeric phases.
pub(crate) struct Symbolic {
    /// Elimination tree; `usize::MAX` marks a root.
    pub parent: Vec<usize>,
    /// CSC column pointers of the strictly-lower part of `L` (`n + 1` long).
    pub col_ptr: Vec<usize>,
    /// Supernode column boundaries: supernode `s` spans columns
    /// `sn_ptr[s]..sn_ptr[s + 1]`. Empty when supernodes were not requested.
    pub sn_ptr: Vec<usize>,
    /// Offsets into [`Symbolic::sn_rows`] per supernode (`nsn + 1` long).
    pub sn_rows_ptr: Vec<usize>,
    /// Concatenated, sorted below-supernode row indices per supernode.
    pub sn_rows: Vec<u32>,
}

impl Symbolic {
    pub fn n(&self) -> usize {
        self.parent.len()
    }

    pub fn supernode_count(&self) -> usize {
        self.sn_ptr.len().saturating_sub(1)
    }
}

/// Computes the elimination tree, column counts, and (optionally) the
/// supernode partition with per-supernode row patterns for `pa`, the already
/// permuted matrix. `pa` must be square; values are ignored except for their
/// pattern. `max_width` caps supernode width (see
/// [`crate::ldl::FactorOptions::max_supernode_width`]).
pub(crate) fn analyze(pa: &CsrMatrix, want_supernodes: bool, max_width: usize) -> Symbolic {
    let max_width = max_width.max(1);
    let n = pa.rows();
    let none = usize::MAX;

    // Elimination tree and per-column counts, exactly as the scalar path:
    // for row k, walk the tree upward from every i < k with A(k, i) != 0.
    let mut parent = vec![none; n];
    let mut flag = vec![none; n];
    let mut lnz = vec![0usize; n];
    for k in 0..n {
        flag[k] = k;
        for (i, _) in pa.row(k) {
            if i >= k {
                break;
            }
            let mut j = i;
            while flag[j] != k {
                if parent[j] == none {
                    parent[j] = k;
                }
                lnz[j] += 1;
                flag[j] = k;
                j = parent[j];
            }
        }
    }
    let mut col_ptr = vec![0usize; n + 1];
    for k in 0..n {
        col_ptr[k + 1] = col_ptr[k] + lnz[k];
    }

    if !want_supernodes {
        return Symbolic {
            parent,
            col_ptr,
            sn_ptr: Vec::new(),
            sn_rows_ptr: vec![0],
            sn_rows: Vec::new(),
        };
    }

    // Fundamental supernodes: merge column j into the running supernode when
    // it is the etree parent of j-1 and the two column patterns are nested
    // (count differs by exactly the diagonal position). Both conditions are
    // functions of the pattern only, so the partition is deterministic.
    let mut sn_ptr = vec![0usize];
    for j in 1..n {
        let start = *sn_ptr.last().unwrap();
        let mergeable = parent[j - 1] == j && lnz[j - 1] == lnz[j] + 1 && j - start < max_width;
        if !mergeable {
            sn_ptr.push(j);
        }
    }
    if n > 0 {
        sn_ptr.push(n);
    }
    let nsn = sn_ptr.len() - 1;

    let mut sn_of = vec![0u32; n];
    for s in 0..nsn {
        for j in sn_ptr[s]..sn_ptr[s + 1] {
            sn_of[j] = s as u32;
        }
    }

    // Per-supernode row pattern (rows strictly below the supernode's last
    // column): the union of the supernode's own entries in A and the row
    // tails of its child supernodes in the assembly tree. Processing
    // supernodes in ascending order makes every child available in time.
    let mut sn_rows_ptr = vec![0usize; nsn + 1];
    let mut sn_rows: Vec<u32> = Vec::new();
    let mut children: Vec<Vec<u32>> = vec![Vec::new(); nsn];
    let mut mark = vec![usize::MAX; n];
    for s in 0..nsn {
        let (first, last) = (sn_ptr[s], sn_ptr[s + 1] - 1);
        let base = sn_rows.len();
        for j in first..=last {
            // A is symmetric: row j of the CSR upper part enumerates the
            // below-diagonal entries of column j.
            for (i, _) in pa.row(j) {
                if i > last && mark[i] != s {
                    mark[i] = s;
                    sn_rows.push(i as u32);
                }
            }
        }
        for ci in 0..children[s].len() {
            let d = children[s][ci] as usize;
            for t in sn_rows_ptr[d]..sn_rows_ptr[d + 1] {
                let r = sn_rows[t] as usize;
                if r > last && mark[r] != s {
                    mark[r] = s;
                    sn_rows.push(r as u32);
                }
            }
        }
        sn_rows[base..].sort_unstable();
        sn_rows_ptr[s + 1] = sn_rows.len();
        if let Some(&r0) = sn_rows.get(base) {
            children[sn_of[r0 as usize] as usize].push(s as u32);
        }
        // Sanity: the last column's count must equal the row-tail length.
        debug_assert_eq!(lnz[last], sn_rows.len() - base);
    }

    Symbolic {
        parent,
        col_ptr,
        sn_ptr,
        sn_rows_ptr,
        sn_rows,
    }
}

/// Numeric factor payload `(row_idx, values, diag)` in the scalar CSC layout
/// (rows sorted ascending within each column).
pub(crate) type NumericFactor = (Vec<u32>, Vec<f64>, Vec<f64>);

/// Blocked left-looking supernodal numeric factorization of `pa` under the
/// symbolic structure `sym`. Returns `(row_idx, values, diag)` laid out in the
/// scalar path's CSC format (rows sorted ascending within each column).
///
/// All dense panel arithmetic runs through `kernels`; every backend produces
/// the same factor bytes (see [`crate::panel`]), so the choice is pure wall
/// time.
pub(crate) fn factor_numeric<K: PanelKernels + ?Sized>(
    pa: &CsrMatrix,
    sym: &Symbolic,
    kernels: &K,
) -> Result<NumericFactor, SparseError> {
    let n = sym.n();
    let nsn = sym.supernode_count();
    let nnz = sym.col_ptr[n];
    let mut row_idx = vec![0u32; nnz];
    let mut values = vec![0.0f64; nnz];
    let mut diag = vec![0.0f64; n];

    // Left-looking descendant lists: `head[s]` chains (via `next`) the
    // descendant supernodes whose active row window currently lands in
    // supernode s; `cursor[d]` is the index into d's row list where that
    // window starts. Insertion order is a fixed function of the sequential
    // supernode sweep, so the floating-point update order is deterministic.
    let none = u32::MAX;
    let mut head = vec![none; nsn];
    let mut next = vec![none; nsn];
    let mut cursor = vec![0usize; nsn];

    // Scratch reused across supernodes: the frontal panel F (column-major,
    // m × w), a packed update buffer, the descendant tail list handed to the
    // rank-update kernel, and the global row -> panel-slot map.
    let mut front: Vec<f64> = Vec::new();
    let mut update: Vec<f64> = Vec::new();
    let mut tails: Vec<(usize, f64)> = Vec::new();
    let mut slot = vec![0usize; n];

    for s in 0..nsn {
        let first = sym.sn_ptr[s];
        let last = sym.sn_ptr[s + 1] - 1;
        let w = last - first + 1;
        let rows = &sym.sn_rows[sym.sn_rows_ptr[s]..sym.sn_rows_ptr[s + 1]];
        let m = w + rows.len();

        front.clear();
        front.resize(m * w, 0.0);
        for j in first..=last {
            slot[j] = j - first;
        }
        for (t, &r) in rows.iter().enumerate() {
            slot[r as usize] = w + t;
        }

        // Scatter the supernode's columns of A into the panel.
        for j in first..=last {
            let col = (j - first) * m;
            for (i, v) in pa.row(j) {
                if i >= j {
                    front[col + slot[i]] = v;
                }
            }
        }

        // Apply updates from descendant supernodes whose row window starts
        // here. Each contributes the outer product of its active row block
        // scaled by its D entries; the product is accumulated into a packed
        // buffer with contiguous inner loops, then scattered into the panel.
        let mut d = head[s];
        while d != none {
            let dn = next[d as usize];
            let ds = d as usize;
            let d_first = sym.sn_ptr[ds];
            let d_last = sym.sn_ptr[ds + 1] - 1;
            let d_rows = &sym.sn_rows[sym.sn_rows_ptr[ds]..sym.sn_rows_ptr[ds + 1]];
            let p0 = cursor[ds];
            // Active window: rows of d inside this supernode's column span.
            let p1 = p0
                + d_rows[p0..]
                    .iter()
                    .take_while(|&&r| (r as usize) <= last)
                    .count();
            let act = p1 - p0; // update targets (columns of s)
            let len = d_rows.len() - p0; // full update height
            update.clear();
            update.resize(act * len, 0.0);
            tails.clear();
            for k in d_first..=d_last {
                // The row tail of column k of d sits at the end of its CSC
                // column, after the within-supernode interior entries.
                let base = sym.col_ptr[k] + (d_last - k);
                tails.push((base + p0, diag[k]));
            }
            kernels.rank_update(&mut update, len, act, &values, &tails);
            for q in 0..act {
                let col = slot[d_rows[p0 + q] as usize] * m;
                let ucol = &update[q * len..(q + 1) * len];
                for t in q..len {
                    front[col + slot[d_rows[p0 + t] as usize]] -= ucol[t];
                }
            }
            cursor[ds] = p1;
            if p1 < d_rows.len() {
                let anc = sn_of_row(sym, d_rows[p1] as usize);
                next[ds] = head[anc];
                head[anc] = d;
            }
            d = dn;
        }

        // Dense LDLᵀ of the w × w diagonal block, then the triangular solve
        // of the rectangular part against it.
        kernels
            .panel_ldl(&mut front, m, w, &mut diag[first..=last])
            .map_err(|(q, pivot)| SparseError::NotPositiveDefinite {
                column: first + q,
                pivot,
            })?;
        kernels.panel_trsolve(&mut front, m, w, &diag[first..=last]);

        // Store the panel into the shared CSC layout: interior rows first
        // (ascending), then the sorted row tail.
        for q in 0..w {
            let j = first + q;
            let colq = q * m;
            let mut dst = sym.col_ptr[j];
            for t in (q + 1)..w {
                row_idx[dst] = (first + t) as u32;
                values[dst] = front[colq + t];
                dst += 1;
            }
            for (t, &r) in rows.iter().enumerate() {
                row_idx[dst] = r;
                values[dst] = front[colq + w + t];
                dst += 1;
            }
            debug_assert_eq!(dst, sym.col_ptr[j + 1]);
        }

        if !rows.is_empty() {
            let anc = sn_of_row(sym, rows[0] as usize);
            next[s] = head[anc];
            head[anc] = s as u32;
            cursor[s] = 0;
        }
    }

    Ok((row_idx, values, diag))
}

/// Supernode containing column `j`, by binary search over the partition.
fn sn_of_row(sym: &Symbolic, j: usize) -> usize {
    // partition_point returns the first supernode whose start exceeds j.
    sym.sn_ptr.partition_point(|&start| start <= j) - 1
}

/// A structural plan for solving with the forward/backward sweeps split into
/// independent elimination-tree subtrees plus a shared "top" separator.
///
/// The partition is a pure function of the elimination tree and a fixed
/// threshold — thread counts never enter — and the solve routines fold
/// per-subtree contributions in subtree order, so results are bit-identical
/// for any worker count (the same contract as `runtime::par`).
#[derive(Debug, Clone)]
pub(crate) struct SolvePlan {
    /// Columns of the shared top separator, ascending.
    pub top_cols: Vec<u32>,
    /// Offsets into [`SolvePlan::sub_cols`] per subtree.
    pub sub_ptr: Vec<usize>,
    /// Concatenated subtree columns, ascending within each subtree.
    pub sub_cols: Vec<u32>,
    /// Column -> owning subtree, or `u32::MAX` for the top.
    pub home: Vec<u32>,
    /// Column -> index within its home list (top list for top columns).
    pub slot: Vec<u32>,
}

pub(crate) const TOP: u32 = u32::MAX;

impl SolvePlan {
    pub fn subtree_count(&self) -> usize {
        self.sub_ptr.len() - 1
    }

    pub fn sub_cols(&self, c: usize) -> &[u32] {
        &self.sub_cols[self.sub_ptr[c]..self.sub_ptr[c + 1]]
    }
}

/// Minimum system size before a parallel solve plan is worth building.
const PLAN_MIN_N: usize = 4096;

/// Builds the subtree partition for `parent`, or `None` when the system is
/// too small or the tree does not decompose (for example a single path).
pub(crate) fn build_solve_plan(parent: &[usize]) -> Option<SolvePlan> {
    let n = parent.len();
    if n < PLAN_MIN_N {
        return None;
    }
    let none = usize::MAX;
    // Subtree sizes in one pass: children precede parents.
    let mut size = vec![1usize; n];
    for j in 0..n {
        if parent[j] != none {
            let sz = size[j];
            size[parent[j]] += sz;
        }
    }
    // A column is "top" when its subtree is too large to be one work unit.
    // The threshold aims for roughly 64 subtrees; being ancestor-closed is
    // automatic because size is monotone along root paths.
    let threshold = std::cmp::max(n / 64, 512);
    let is_top: Vec<bool> = size.iter().map(|&s| s > threshold).collect();

    let mut home = vec![TOP; n];
    let mut roots: Vec<usize> = Vec::new();
    // Ascending scan: a subtree root is a non-top column whose parent is top
    // (or absent); children inherit their parent's subtree. Parents have
    // larger indices, so propagate top-down by scanning descending.
    for j in (0..n).rev() {
        if is_top[j] {
            continue;
        }
        let p = parent[j];
        if p == none || is_top[p] {
            home[j] = roots.len() as u32;
            roots.push(j);
        } else {
            home[j] = home[p];
        }
    }
    if roots.len() < 2 {
        return None;
    }
    // Reindex subtrees by ascending root column so the fold order is the
    // natural column order.
    let mut by_root: Vec<usize> = (0..roots.len()).collect();
    by_root.sort_unstable_by_key(|&c| roots[c]);
    let mut renum = vec![0u32; roots.len()];
    for (newc, &oldc) in by_root.iter().enumerate() {
        renum[oldc] = newc as u32;
    }

    let nsub = roots.len();
    let mut counts = vec![0usize; nsub];
    let mut top_count = 0usize;
    for j in 0..n {
        if home[j] == TOP {
            top_count += 1;
        } else {
            home[j] = renum[home[j] as usize];
            counts[home[j] as usize] += 1;
        }
    }
    let mut sub_ptr = vec![0usize; nsub + 1];
    for c in 0..nsub {
        sub_ptr[c + 1] = sub_ptr[c] + counts[c];
    }
    let mut sub_cols = vec![0u32; sub_ptr[nsub]];
    let mut top_cols = Vec::with_capacity(top_count);
    let mut fill = sub_ptr.clone();
    let mut slot = vec![0u32; n];
    for j in 0..n {
        if home[j] == TOP {
            slot[j] = top_cols.len() as u32;
            top_cols.push(j as u32);
        } else {
            let c = home[j] as usize;
            slot[j] = (fill[c] - sub_ptr[c]) as u32;
            sub_cols[fill[c]] = j as u32;
            fill[c] += 1;
        }
    }

    Some(SolvePlan {
        top_cols,
        sub_ptr,
        sub_cols,
        home,
        slot,
    })
}
