//! Isotropic thermoelastic materials and the paper's Table 1 catalog.

use std::fmt;

/// The structural role of a material in the Cu DD stack (the paper's
/// Table 1 "Structure" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MaterialKind {
    /// Silicon substrate.
    Substrate,
    /// Bulk copper metallization.
    Copper,
    /// SiCOH low-k inter-layer dielectric.
    Ild,
    /// Tantalum barrier liner.
    Barrier,
    /// Si₃N₄ capping layer.
    Capping,
}

impl MaterialKind {
    /// All kinds, in Table 1 order.
    pub const ALL: [MaterialKind; 5] = [
        MaterialKind::Substrate,
        MaterialKind::Copper,
        MaterialKind::Ild,
        MaterialKind::Barrier,
        MaterialKind::Capping,
    ];
}

impl fmt::Display for MaterialKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MaterialKind::Substrate => "substrate",
            MaterialKind::Copper => "copper",
            MaterialKind::Ild => "ild",
            MaterialKind::Barrier => "barrier",
            MaterialKind::Capping => "capping",
        };
        f.write_str(s)
    }
}

/// An isotropic, linear thermoelastic material.
///
/// # Example
///
/// ```
/// use emgrid_fea::material::{table1, MaterialKind};
///
/// let cu = table1(MaterialKind::Copper);
/// assert_eq!(cu.name, "Copper");
/// assert!((cu.youngs_modulus - 111.6e9).abs() < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Material {
    /// Human-readable name.
    pub name: &'static str,
    /// Young's modulus `E` in Pa.
    pub youngs_modulus: f64,
    /// Poisson's ratio `ν` (dimensionless).
    pub poisson_ratio: f64,
    /// Coefficient of thermal expansion `α` in 1/K.
    pub cte: f64,
}

impl Material {
    /// First Lamé parameter `λ = Eν / ((1+ν)(1−2ν))`.
    pub fn lame_lambda(&self) -> f64 {
        let e = self.youngs_modulus;
        let nu = self.poisson_ratio;
        e * nu / ((1.0 + nu) * (1.0 - 2.0 * nu))
    }

    /// Shear modulus `μ = E / (2(1+ν))`.
    pub fn shear_modulus(&self) -> f64 {
        self.youngs_modulus / (2.0 * (1.0 + self.poisson_ratio))
    }

    /// Bulk modulus `K = E / (3(1−2ν))`.
    pub fn bulk_modulus(&self) -> f64 {
        self.youngs_modulus / (3.0 * (1.0 - 2.0 * self.poisson_ratio))
    }

    /// The 6×6 isotropic elasticity matrix in Voigt order
    /// `(εxx, εyy, εzz, γxy, γyz, γzx)`, row-major.
    pub fn elasticity_matrix(&self) -> [[f64; 6]; 6] {
        let l = self.lame_lambda();
        let m = self.shear_modulus();
        let d = l + 2.0 * m;
        [
            [d, l, l, 0.0, 0.0, 0.0],
            [l, d, l, 0.0, 0.0, 0.0],
            [l, l, d, 0.0, 0.0, 0.0],
            [0.0, 0.0, 0.0, m, 0.0, 0.0],
            [0.0, 0.0, 0.0, 0.0, m, 0.0],
            [0.0, 0.0, 0.0, 0.0, 0.0, m],
        ]
    }

    /// Thermal strain vector `α ΔT [1,1,1,0,0,0]` for a temperature change
    /// `delta_t` (K).
    pub fn thermal_strain(&self, delta_t: f64) -> [f64; 6] {
        let e = self.cte * delta_t;
        [e, e, e, 0.0, 0.0, 0.0]
    }
}

/// Material properties from Table 1 of the paper.
///
/// | Structure | Material | E (GPa) | ν | α (ppm/°C) |
/// |---|---|---|---|---|
/// | Substrate | Silicon | 162.0 | 0.28 | 3.05 |
/// | Bulk | Copper | 111.6 | 0.34 | 17.7 |
/// | ILD | SiCOH | 16.2 | 0.27 | 12 |
/// | Barrier | Ta | 185.7 | 0.342 | 6.5 |
/// | Capping | Si₃N₄ | 222.8 | 0.27 | 3.2 |
pub fn table1(kind: MaterialKind) -> Material {
    match kind {
        MaterialKind::Substrate => Material {
            name: "Silicon",
            youngs_modulus: 162.0e9,
            poisson_ratio: 0.28,
            cte: 3.05e-6,
        },
        MaterialKind::Copper => Material {
            name: "Copper",
            youngs_modulus: 111.6e9,
            poisson_ratio: 0.34,
            cte: 17.7e-6,
        },
        MaterialKind::Ild => Material {
            name: "SiCOH",
            youngs_modulus: 16.2e9,
            poisson_ratio: 0.27,
            cte: 12.0e-6,
        },
        MaterialKind::Barrier => Material {
            name: "Ta",
            youngs_modulus: 185.7e9,
            poisson_ratio: 0.342,
            cte: 6.5e-6,
        },
        MaterialKind::Capping => Material {
            name: "Si3N4",
            youngs_modulus: 222.8e9,
            poisson_ratio: 0.27,
            cte: 3.2e-6,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_values() {
        let si = table1(MaterialKind::Substrate);
        assert_eq!(si.youngs_modulus, 162.0e9);
        assert_eq!(si.poisson_ratio, 0.28);
        assert_eq!(si.cte, 3.05e-6);
        let ta = table1(MaterialKind::Barrier);
        assert_eq!(ta.name, "Ta");
        assert_eq!(ta.poisson_ratio, 0.342);
    }

    #[test]
    fn copper_expands_more_than_ild() {
        // The paper's §3.2 explanation of pattern-dependent stress hinges on
        // CTE(Cu) > CTE(SiCOH) > CTE(Si3N4).
        let cu = table1(MaterialKind::Copper).cte;
        let ild = table1(MaterialKind::Ild).cte;
        let cap = table1(MaterialKind::Capping).cte;
        assert!(cu > ild);
        assert!(ild > cap);
    }

    #[test]
    fn lame_parameters_are_consistent() {
        let cu = table1(MaterialKind::Copper);
        let l = cu.lame_lambda();
        let m = cu.shear_modulus();
        // E = μ(3λ + 2μ)/(λ + μ).
        let e = m * (3.0 * l + 2.0 * m) / (l + m);
        assert!((e - cu.youngs_modulus).abs() / cu.youngs_modulus < 1e-12);
        // K = λ + 2μ/3.
        assert!((cu.bulk_modulus() - (l + 2.0 * m / 3.0)).abs() / cu.bulk_modulus() < 1e-12);
    }

    #[test]
    fn elasticity_matrix_is_symmetric_positive() {
        for kind in MaterialKind::ALL {
            let d = table1(kind).elasticity_matrix();
            for i in 0..6 {
                for j in 0..6 {
                    assert_eq!(d[i][j], d[j][i]);
                }
                assert!(d[i][i] > 0.0);
            }
        }
    }

    #[test]
    fn thermal_strain_has_no_shear() {
        let cu = table1(MaterialKind::Copper);
        let e = cu.thermal_strain(-220.0);
        assert!(e[0] < 0.0); // contraction on cooling
        assert_eq!(e[0], e[1]);
        assert_eq!(e[1], e[2]);
        assert_eq!(&e[3..], &[0.0, 0.0, 0.0]);
    }
}
