//! End-to-end thermomechanical stress analysis of a characterization
//! primitive: mesh → assemble → solve → stress field.

use std::error::Error;
use std::fmt;
use std::time::{Duration, Instant};

use emgrid_runtime::obs;
use emgrid_sparse::{
    conjugate_gradient, CgOptions, FactorOptions, KernelBackend, LdlFactor, Ordering,
    Preconditioner, SparseError,
};

use crate::assembly::{assemble_with, AssembledSystem};
use crate::geometry::CharacterizationModel;
use crate::stress::StressField;

/// Errors from the finite-element pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum FeaError {
    /// The voxelized model contains no occupied cells.
    EmptyMesh,
    /// The linear solver failed.
    Solver(SparseError),
}

impl fmt::Display for FeaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeaError::EmptyMesh => write!(f, "voxelized model contains no occupied cells"),
            FeaError::Solver(e) => write!(f, "linear solve failed: {e}"),
        }
    }
}

impl Error for FeaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FeaError::Solver(e) => Some(e),
            FeaError::EmptyMesh => None,
        }
    }
}

impl From<SparseError> for FeaError {
    fn from(e: SparseError) -> Self {
        FeaError::Solver(e)
    }
}

/// Linear solver selection for the assembled system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SolveMethod {
    /// Direct LDLᵀ below `direct_limit` unknowns, conjugate gradient above.
    Auto {
        /// Largest system solved directly.
        direct_limit: usize,
    },
    /// Always use the sparse direct factorization.
    Direct,
    /// Always use Jacobi-preconditioned conjugate gradient.
    Iterative {
        /// Relative residual target.
        tolerance: f64,
        /// Iteration cap.
        max_iterations: usize,
    },
}

impl Default for SolveMethod {
    fn default() -> Self {
        SolveMethod::Auto {
            direct_limit: 12_000,
        }
    }
}

/// Telemetry from one finite-element solve, returned by
/// [`ThermalStressAnalysis::run_with_stats`].
#[derive(Debug, Clone, PartialEq)]
pub struct SolveStats {
    /// Free unknowns in the reduced system.
    pub unknowns: usize,
    /// Stored nonzeros in the assembled stiffness matrix.
    pub nonzeros: usize,
    /// Solver actually used: `"direct-ldl"` or `"cg-ic0"`.
    pub solver: &'static str,
    /// CG iterations performed (0 for a direct solve).
    pub iterations: usize,
    /// Final relative residual (0 for a direct solve).
    pub residual: f64,
    /// Wall time of mesh + assembly.
    pub assemble_time: Duration,
    /// Wall time of the linear solve (factorization included).
    pub solve_time: Duration,
    /// Factorization share of the solve: the LDLᵀ factorization for a
    /// direct solve, the IC(0) preconditioner build for CG.
    pub factor_time: Duration,
}

/// A configured thermomechanical stress analysis (the paper's per-primitive
/// ABAQUS run).
///
/// # Example
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct ThermalStressAnalysis {
    model: CharacterizationModel,
    method: SolveMethod,
    ordering: Ordering,
    threads: usize,
    kernels: KernelBackend,
}

impl ThermalStressAnalysis {
    /// Creates an analysis with the default solver selection.
    pub fn new(model: CharacterizationModel) -> Self {
        ThermalStressAnalysis {
            model,
            method: SolveMethod::default(),
            ordering: Ordering::default(),
            threads: 1,
            kernels: KernelBackend::default(),
        }
    }

    /// Overrides the solver selection.
    pub fn with_method(mut self, method: SolveMethod) -> Self {
        self.method = method;
        self
    }

    /// Overrides the fill-reducing ordering used by the direct solver
    /// (ignored by the CG branch). Defaults to [`Ordering::Amd`].
    pub fn with_ordering(mut self, ordering: Ordering) -> Self {
        self.ordering = ordering;
        self
    }

    /// Sets the worker-thread count for assembly and the CG kernels.
    ///
    /// The parallel paths run fixed-chunk deterministic arithmetic, so the
    /// resulting stress field is **bit-identical for any thread count**.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Selects the dense-panel microkernel backend used by both the direct
    /// factorization and the CG/IC(0) kernels. Backends are bit-identical
    /// (the stress field never changes), so this only moves wall time.
    pub fn with_kernels(mut self, kernels: KernelBackend) -> Self {
        self.kernels = kernels;
        self
    }

    /// The model being analyzed.
    pub fn model(&self) -> &CharacterizationModel {
        &self.model
    }

    /// Solves the direct branch shared by [`SolveMethod::Direct`] and the
    /// small-system arm of [`SolveMethod::Auto`], reporting the wall time
    /// of the factorization separately from the triangular solves.
    fn direct_solve(&self, sys: &AssembledSystem) -> Result<(Vec<f64>, Duration), FeaError> {
        let factor_start = Instant::now();
        let opts = FactorOptions::default()
            .with_ordering(self.ordering)
            .with_threads(self.threads)
            .with_kernels(self.kernels);
        let factor = {
            let _span = obs::span("factorize");
            LdlFactor::factor_with(&sys.stiffness, &opts)?
        };
        let factor_time = factor_start.elapsed();
        Ok((factor.solve(&sys.load), factor_time))
    }

    /// Meshes, assembles and solves the thermoelastic problem, returning the
    /// recovered stress field.
    ///
    /// # Errors
    ///
    /// Returns [`FeaError::EmptyMesh`] for degenerate geometry and
    /// [`FeaError::Solver`] if the linear solve fails (singular or
    /// non-converged system).
    pub fn run(&self) -> Result<StressField, FeaError> {
        self.run_with_stats().map(|(field, _)| field)
    }

    /// [`run`](Self::run), additionally returning per-solve telemetry.
    pub fn run_with_stats(&self) -> Result<(StressField, SolveStats), FeaError> {
        let _fea_span = obs::span("fea");
        let assemble_start = Instant::now();
        let assemble_span = obs::span("assemble");
        let mesh = self.model.build_mesh();
        if mesh.occupied_count() == 0 {
            return Err(FeaError::EmptyMesh);
        }
        let bc = self.model.boundary_conditions();
        let sys = assemble_with(&mesh, &bc, self.model.delta_t(), self.threads);
        drop(assemble_span);
        let assemble_time = assemble_start.elapsed();
        let n = sys.dof_map.free_count();
        let nonzeros = sys.stiffness.values().len();

        let cg_opts = |tolerance, max_iterations| CgOptions {
            tolerance,
            max_iterations,
            preconditioner: Preconditioner::IncompleteCholesky,
            threads: self.threads,
            kernels: self.kernels,
        };
        let solve_start = Instant::now();
        let solve_span = obs::span("solve");
        let (solution, solver, iterations, residual, factor_time) = match self.method {
            SolveMethod::Direct => {
                let (x, factor_time) = self.direct_solve(&sys)?;
                (x, "direct-ldl", 0, 0.0, factor_time)
            }
            SolveMethod::Auto { direct_limit } if n <= direct_limit => {
                let (x, factor_time) = self.direct_solve(&sys)?;
                (x, "direct-ldl", 0, 0.0, factor_time)
            }
            SolveMethod::Auto { .. } => {
                let out =
                    conjugate_gradient(&sys.stiffness, &sys.load, None, &cg_opts(1e-7, 40_000))?;
                (
                    out.x,
                    "cg-ic0",
                    out.iterations,
                    out.residual,
                    out.precond_time,
                )
            }
            SolveMethod::Iterative {
                tolerance,
                max_iterations,
            } => {
                let out = conjugate_gradient(
                    &sys.stiffness,
                    &sys.load,
                    None,
                    &cg_opts(tolerance, max_iterations),
                )?;
                (
                    out.x,
                    "cg-ic0",
                    out.iterations,
                    out.residual,
                    out.precond_time,
                )
            }
        };
        drop(solve_span);
        let solve_time = solve_start.elapsed();
        obs::counter(
            "emgrid_fea_solves_total",
            "Finite-element solves completed.",
        )
        .inc();
        obs::histogram(
            "emgrid_fea_solve_seconds",
            "Wall time of one FEA assemble + solve.",
        )
        .observe_duration(assemble_time + solve_time);
        let full = sys.dof_map.expand(&solution);
        let stats = SolveStats {
            unknowns: n,
            nonzeros,
            solver,
            iterations,
            residual,
            assemble_time,
            solve_time,
            factor_time,
        };
        Ok((
            StressField::from_displacements(self.model, mesh, &full),
            stats,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{IntersectionPattern, ViaArrayGeometry};

    /// A small, fast model used across the behavioural tests: 2×2 array,
    /// coarse mesh, shrunken domain.
    fn small_model(pattern: IntersectionPattern) -> CharacterizationModel {
        CharacterizationModel {
            pattern,
            array: ViaArrayGeometry::square(2, 0.5, 1.0),
            wire_width: 2.0,
            margin: 0.5,
            resolution: 0.4,
            ..CharacterizationModel::default()
        }
    }

    #[test]
    fn copper_is_in_tension_after_cooldown() {
        let field = ThermalStressAnalysis::new(small_model(IntersectionPattern::Plus))
            .run()
            .unwrap();
        let peaks = field.per_via_peak_stress();
        assert_eq!(peaks.len(), 4);
        for p in &peaks {
            // Tension of order 10–1000 MPa (CTE mismatch on -220 K).
            assert!(*p > 1e7, "peak {p} Pa not tensile enough");
            assert!(*p < 2e9, "peak {p} Pa unphysically high");
        }
    }

    #[test]
    fn plus_pattern_sees_more_stress_than_ell() {
        // The paper's Fig. 6: Plus > T > L in peak σ_T under the via row.
        let run = |p| {
            ThermalStressAnalysis::new(small_model(p))
                .run()
                .unwrap()
                .per_via_peak_stress()
                .iter()
                .fold(f64::NEG_INFINITY, |m, &v| m.max(v))
        };
        let plus = run(IntersectionPattern::Plus);
        let tee = run(IntersectionPattern::Tee);
        let ell = run(IntersectionPattern::Ell);
        assert!(plus > tee, "plus {plus} vs tee {tee}");
        assert!(tee > ell, "tee {tee} vs ell {ell}");
    }

    #[test]
    fn direct_and_iterative_solvers_agree() {
        let model = small_model(IntersectionPattern::Plus);
        let direct = ThermalStressAnalysis::new(model)
            .with_method(SolveMethod::Direct)
            .run()
            .unwrap();
        let iterative = ThermalStressAnalysis::new(model)
            .with_method(SolveMethod::Iterative {
                tolerance: 1e-10,
                max_iterations: 50_000,
            })
            .run()
            .unwrap();
        let pd = direct.per_via_peak_stress();
        let pi = iterative.per_via_peak_stress();
        for (a, b) in pd.iter().zip(&pi) {
            assert!((a - b).abs() / a.abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn ic0_outperforms_jacobi_on_stiffness_systems() {
        // The motivation for wiring IC(0) into the FEA path: multi-material
        // stiffness matrices are badly conditioned (E spans 16–223 GPa),
        // where the incomplete factorization cuts CG iterations hard.
        use emgrid_sparse::{conjugate_gradient, CgOptions, Preconditioner};

        let model = small_model(IntersectionPattern::Plus);
        let mesh = model.build_mesh();
        let sys = crate::assembly::assemble(&mesh, &model.boundary_conditions(), model.delta_t());
        let run = |p: Preconditioner| {
            conjugate_gradient(
                &sys.stiffness,
                &sys.load,
                None,
                &CgOptions {
                    tolerance: 1e-8,
                    max_iterations: 100_000,
                    preconditioner: p,
                    ..CgOptions::default()
                },
            )
            .unwrap()
            .iterations
        };
        let jacobi = run(Preconditioner::Jacobi);
        let ic = run(Preconditioner::IncompleteCholesky);
        assert!(ic * 3 < jacobi, "ic {ic} vs jacobi {jacobi} iterations");
    }

    #[test]
    fn line_scan_through_via_row_is_nonempty_and_in_range() {
        let field = ThermalStressAnalysis::new(small_model(IntersectionPattern::Plus))
            .run()
            .unwrap();
        let scan = field.via_row_scan(0);
        assert!(!scan.is_empty());
        for s in &scan {
            assert!(s.hydrostatic_mpa.is_finite());
        }
        // Positions are increasing along x.
        for w in scan.windows(2) {
            assert!(w[1].position > w[0].position);
        }
    }
}
