//! Global assembly: DOF numbering, boundary conditions, stiffness and
//! thermal-load assembly.

use std::collections::HashMap;

use emgrid_sparse::{CsrMatrix, TripletMatrix};

use crate::element::{hex_element, ElementMatrices};
use crate::mesh::HexMesh;

/// Kinematic condition applied to one face of the bounding box.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaceBc {
    /// Traction-free (natural) boundary.
    Free,
    /// Symmetry / continuation plane: the displacement component normal to
    /// the face is zero, tangential components are free. Used where the
    /// structure continues periodically (the paper's Plus-shaped pattern is
    /// "surrounded by Plus-shaped structures on all four sides").
    Sliding,
    /// All displacement components are zero. Used at the bottom of the
    /// (effectively rigid, hundreds-of-microns) silicon substrate.
    Fixed,
}

/// Boundary conditions on the six faces of the mesh bounding box.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundaryConditions {
    /// Face at minimum x.
    pub x_min: FaceBc,
    /// Face at maximum x.
    pub x_max: FaceBc,
    /// Face at minimum y.
    pub y_min: FaceBc,
    /// Face at maximum y.
    pub y_max: FaceBc,
    /// Face at minimum z.
    pub z_min: FaceBc,
    /// Face at maximum z.
    pub z_max: FaceBc,
}

impl BoundaryConditions {
    /// The default interconnect-stack conditions: substrate bottom fixed,
    /// top surface free, all lateral faces sliding (periodic continuation).
    pub fn confined_stack() -> Self {
        BoundaryConditions {
            x_min: FaceBc::Sliding,
            x_max: FaceBc::Sliding,
            y_min: FaceBc::Sliding,
            y_max: FaceBc::Sliding,
            z_min: FaceBc::Fixed,
            z_max: FaceBc::Free,
        }
    }
}

impl Default for BoundaryConditions {
    fn default() -> Self {
        BoundaryConditions::confined_stack()
    }
}

/// Maps node displacement components to equation numbers.
///
/// `dof(node, axis)` is `Some(eq)` for a free DOF and `None` for a DOF that
/// is either constrained to zero by a boundary condition or belongs to a
/// node not attached to any occupied cell.
#[derive(Debug, Clone)]
pub struct DofMap {
    map: Vec<Option<u32>>,
    free: usize,
}

impl DofMap {
    /// Builds the DOF map for a mesh under the given boundary conditions.
    pub fn build(mesh: &HexMesh, bc: &BoundaryConditions) -> Self {
        let nn = mesh.node_count();
        let mut active = vec![false; nn];
        for (i, j, k, _) in mesh.occupied_cells() {
            for n in mesh.cell_nodes(i, j, k) {
                active[n] = true;
            }
        }
        let (npx, npy, npz) = (mesh.xs().len(), mesh.ys().len(), mesh.zs().len());
        let mut map = vec![None; 3 * nn];
        let mut free = 0u32;
        for k in 0..npz {
            for j in 0..npy {
                for i in 0..npx {
                    let n = mesh.node_index(i, j, k);
                    if !active[n] {
                        continue;
                    }
                    let mut constrained = [false; 3];
                    let mut apply = |face: FaceBc, axis: usize| match face {
                        FaceBc::Free => {}
                        FaceBc::Sliding => constrained[axis] = true,
                        FaceBc::Fixed => constrained = [true; 3],
                    };
                    if i == 0 {
                        apply(bc.x_min, 0);
                    }
                    if i == npx - 1 {
                        apply(bc.x_max, 0);
                    }
                    if j == 0 {
                        apply(bc.y_min, 1);
                    }
                    if j == npy - 1 {
                        apply(bc.y_max, 1);
                    }
                    if k == 0 {
                        apply(bc.z_min, 2);
                    }
                    if k == npz - 1 {
                        apply(bc.z_max, 2);
                    }
                    for (axis, &c) in constrained.iter().enumerate() {
                        if !c {
                            map[3 * n + axis] = Some(free);
                            free += 1;
                        }
                    }
                }
            }
        }
        DofMap {
            map,
            free: free as usize,
        }
    }

    /// Number of free equations.
    pub fn free_count(&self) -> usize {
        self.free
    }

    /// Equation number for `(node, axis)` or `None` if constrained/inactive.
    pub fn dof(&self, node: usize, axis: usize) -> Option<usize> {
        self.map[3 * node + axis].map(|v| v as usize)
    }

    /// Expands a solution vector over free DOFs to a full `3 * node_count`
    /// displacement vector with zeros at constrained DOFs.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.free_count()`.
    pub fn expand(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.free, "solution length mismatch");
        self.map
            .iter()
            .map(|d| d.map_or(0.0, |eq| x[eq as usize]))
            .collect()
    }
}

/// The assembled linear system of the thermoelastic problem.
#[derive(Debug, Clone)]
pub struct AssembledSystem {
    /// Reduced stiffness matrix over free DOFs (SPD).
    pub stiffness: CsrMatrix,
    /// Reduced thermal load vector.
    pub load: Vec<f64>,
    /// DOF numbering used for reduction.
    pub dof_map: DofMap,
}

/// Cells scattered per work chunk by [`assemble_with`]. Large enough that
/// the per-chunk element cache gets real reuse, small enough to load-balance
/// the few-thousand-cell meshes typical at figure resolutions.
const CELL_CHUNK: usize = 128;

/// Assembles the stiffness matrix and thermal load for a uniform
/// temperature change `delta_t` (K) from the anneal/stress-free state.
///
/// Identical elements (same size and material — the common case on a graded
/// tensor grid) share one element-matrix computation via a cache.
///
/// Equivalent to [`assemble_with`] at one thread.
pub fn assemble(mesh: &HexMesh, bc: &BoundaryConditions, delta_t: f64) -> AssembledSystem {
    assemble_with(mesh, bc, delta_t, 1)
}

/// [`assemble`] across `threads` worker threads.
///
/// The element-scatter loop is split into fixed [`CELL_CHUNK`]-cell chunks;
/// each chunk computes its element matrices (with a chunk-local cache for
/// identical elements) and buffers its stiffness triplets and load
/// contributions locally. Buffers are then merged **in chunk order** on the
/// calling thread, reproducing the exact serial scatter sequence — both the
/// triplet order fed to the CSR builder and the floating-point order of
/// load-vector accumulation — so the assembled system is **bit-identical
/// for any thread count**.
pub fn assemble_with(
    mesh: &HexMesh,
    bc: &BoundaryConditions,
    delta_t: f64,
    threads: usize,
) -> AssembledSystem {
    let dof_map = DofMap::build(mesh, bc);
    let n = dof_map.free_count();
    let cells: Vec<(usize, usize, usize, u8)> = mesh.occupied_cells().collect();

    let chunks =
        emgrid_runtime::parallel_map_chunks(cells.len(), CELL_CHUNK, threads, |_, range| {
            let mut triplets: Vec<(usize, usize, f64)> = Vec::with_capacity(range.len() * 300);
            let mut loads: Vec<(usize, f64)> = Vec::with_capacity(range.len() * 24);
            let mut cache: HashMap<(u64, u64, u64, u8), ElementMatrices> = HashMap::new();
            for &(i, j, kk, mat_idx) in &cells[range] {
                let size = mesh.cell_size(i, j, kk);
                let key = (
                    size[0].to_bits(),
                    size[1].to_bits(),
                    size[2].to_bits(),
                    mat_idx,
                );
                let el = cache.entry(key).or_insert_with(|| {
                    // Element matrices depend only on the cell extents, not
                    // its position, for an axis-aligned hexahedron.
                    let coords = local_coords(size);
                    hex_element(&coords, &mesh.materials()[mat_idx as usize], delta_t)
                });
                let nodes = mesh.cell_nodes(i, j, kk);
                let mut eqs = [None; 24];
                for (a, &node) in nodes.iter().enumerate() {
                    for axis in 0..3 {
                        eqs[3 * a + axis] = dof_map.dof(node, axis);
                    }
                }
                for r in 0..24 {
                    let Some(er) = eqs[r] else { continue };
                    loads.push((er, el.thermal_load[r]));
                    for c in 0..24 {
                        if let Some(ec) = eqs[c] {
                            triplets.push((er, ec, el.stiffness[r][c]));
                        }
                    }
                }
            }
            (triplets, loads)
        });

    let mut k = TripletMatrix::with_capacity(n, n, mesh.occupied_count() * 300);
    let mut f = vec![0.0f64; n];
    for (triplets, loads) in chunks {
        for (r, c, v) in triplets {
            k.push(r, c, v);
        }
        for (eq, v) in loads {
            f[eq] += v;
        }
    }
    AssembledSystem {
        stiffness: k.to_csr(),
        load: f,
        dof_map,
    }
}

/// Node coordinates of an axis-aligned hex with extents `size`, placed at
/// the origin (positions don't affect the element matrices).
pub(crate) fn local_coords(size: [f64; 3]) -> [[f64; 3]; 8] {
    let [dx, dy, dz] = size;
    [
        [0.0, 0.0, 0.0],
        [dx, 0.0, 0.0],
        [dx, dy, 0.0],
        [0.0, dy, 0.0],
        [0.0, 0.0, dz],
        [dx, 0.0, dz],
        [dx, dy, dz],
        [0.0, dy, dz],
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::material::{table1, MaterialKind};
    use emgrid_sparse::{FactorOptions, LdlFactor};

    fn solid_block(n: usize) -> HexMesh {
        let planes: Vec<f64> = (0..=n).map(|i| i as f64 / n as f64).collect();
        let mut m = HexMesh::new(
            planes.clone(),
            planes.clone(),
            planes,
            vec![table1(MaterialKind::Copper)],
        );
        m.fill_where(0, |_, _, _| true);
        m
    }

    #[test]
    fn dof_count_reflects_constraints() {
        let m = solid_block(2); // 27 nodes
        let bc = BoundaryConditions {
            x_min: FaceBc::Free,
            x_max: FaceBc::Free,
            y_min: FaceBc::Free,
            y_max: FaceBc::Free,
            z_min: FaceBc::Fixed,
            z_max: FaceBc::Free,
        };
        let dm = DofMap::build(&m, &bc);
        // 9 bottom nodes fully fixed: 27*3 - 9*3 = 54.
        assert_eq!(dm.free_count(), 54);
    }

    #[test]
    fn inactive_nodes_get_no_dofs() {
        let planes: Vec<f64> = vec![0.0, 0.5, 1.0];
        let mut m = HexMesh::new(
            planes.clone(),
            planes.clone(),
            planes,
            vec![table1(MaterialKind::Copper)],
        );
        // Occupy a single corner cell: only its 8 nodes are active.
        m.set_cell(0, 0, 0, Some(0));
        let bc = BoundaryConditions {
            x_min: FaceBc::Free,
            x_max: FaceBc::Free,
            y_min: FaceBc::Free,
            y_max: FaceBc::Free,
            z_min: FaceBc::Fixed,
            z_max: FaceBc::Free,
        };
        let dm = DofMap::build(&m, &bc);
        // 8 active nodes, 4 of them on the fixed bottom: 4*3 free.
        assert_eq!(dm.free_count(), 12);
    }

    #[test]
    fn assembly_is_bit_identical_across_thread_counts() {
        // 6³ block = 216 cells: spans several CELL_CHUNK=128 chunks.
        let m = solid_block(6);
        let bc = BoundaryConditions::confined_stack();
        let serial = assemble(&m, &bc, -220.0);
        for threads in [2, 8] {
            let par = assemble_with(&m, &bc, -220.0, threads);
            assert_eq!(par.load, serial.load, "threads = {threads}");
            assert_eq!(par.stiffness.values(), serial.stiffness.values());
            assert_eq!(par.stiffness.col_idx(), serial.stiffness.col_idx());
            assert_eq!(par.stiffness.row_ptr(), serial.stiffness.row_ptr());
        }
    }

    #[test]
    fn assembled_stiffness_is_spd_and_symmetric() {
        let m = solid_block(2);
        let sys = assemble(&m, &BoundaryConditions::confined_stack(), -100.0);
        assert!(sys.stiffness.is_symmetric(1e-3));
        assert!(LdlFactor::factor_with(&sys.stiffness, &FactorOptions::default()).is_ok());
    }

    #[test]
    fn uniform_cooling_of_confined_block_gives_expected_stress() {
        // A fully laterally-confined block, fixed at the bottom and free on
        // top, cooling by ΔT: expected in-plane stress σxx = σyy =
        // -E α ΔT / (1 - ν), σzz = 0 (uniaxial-constraint solution).
        let m = solid_block(3);
        let cu = table1(MaterialKind::Copper);
        let dt = -220.0;
        let bc = BoundaryConditions {
            // Sliding bottom (not fixed) so vertical contraction is free and
            // the analytic plane-stress-in-z solution holds exactly.
            z_min: FaceBc::Sliding,
            ..BoundaryConditions::confined_stack()
        };
        let sys = assemble(&m, &bc, dt);
        let u = LdlFactor::factor_with(&sys.stiffness, &FactorOptions::default())
            .unwrap()
            .solve(&sys.load);
        let full = sys.dof_map.expand(&u);
        // Recover stress in the center cell.
        let nodes = m.cell_nodes(1, 1, 1);
        let mut ue = [0.0f64; 24];
        for (a, &nd) in nodes.iter().enumerate() {
            for axis in 0..3 {
                ue[3 * a + axis] = full[3 * nd + axis];
            }
        }
        let coords_list: Vec<[f64; 3]> = nodes.iter().map(|_| [0.0; 3]).collect();
        let _ = coords_list;
        let size = m.cell_size(1, 1, 1);
        let coords = local_coords(size);
        let sigma = crate::element::element_center_stress(&coords, &cu, dt, &ue);
        let expect = -cu.youngs_modulus * cu.cte * dt / (1.0 - cu.poisson_ratio);
        assert!(
            (sigma[0] - expect).abs() / expect < 1e-6,
            "σxx {} vs {}",
            sigma[0],
            expect
        );
        assert!((sigma[1] - expect).abs() / expect < 1e-6);
        assert!(sigma[2].abs() < expect * 1e-6, "σzz {}", sigma[2]);
        assert!(sigma[0] > 0.0, "cooling a confined block leaves tension");
    }

    #[test]
    fn expand_places_values_at_free_dofs() {
        let m = solid_block(1);
        let bc = BoundaryConditions {
            x_min: FaceBc::Free,
            x_max: FaceBc::Free,
            y_min: FaceBc::Free,
            y_max: FaceBc::Free,
            z_min: FaceBc::Fixed,
            z_max: FaceBc::Free,
        };
        let dm = DofMap::build(&m, &bc);
        let x = vec![1.5; dm.free_count()];
        let full = dm.expand(&x);
        assert_eq!(full.len(), 24);
        // Bottom 4 nodes fixed -> zeros; top 4 nodes free -> 1.5.
        let zero_count = full.iter().filter(|&&v| v == 0.0).count();
        assert_eq!(zero_count, 12);
    }
}
