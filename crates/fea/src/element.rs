//! The 8-node trilinear hexahedral element.
//!
//! Standard isoparametric formulation with 2×2×2 Gauss quadrature. The meshes
//! this engine builds are axis-aligned, so the Jacobian is diagonal, but the
//! implementation keeps the general form for clarity and testability.

use crate::material::Material;

/// Natural coordinates of the 8 element nodes.
const NODE_XI: [[f64; 3]; 8] = [
    [-1.0, -1.0, -1.0],
    [1.0, -1.0, -1.0],
    [1.0, 1.0, -1.0],
    [-1.0, 1.0, -1.0],
    [-1.0, -1.0, 1.0],
    [1.0, -1.0, 1.0],
    [1.0, 1.0, 1.0],
    [-1.0, 1.0, 1.0],
];

/// 2-point Gauss abscissa.
const GP: f64 = 0.577_350_269_189_625_8; // 1/sqrt(3)

/// Shape function values at natural coordinates `(xi, eta, zeta)`.
pub fn shape_functions(xi: f64, eta: f64, zeta: f64) -> [f64; 8] {
    let mut n = [0.0; 8];
    for (i, nat) in NODE_XI.iter().enumerate() {
        n[i] = 0.125 * (1.0 + xi * nat[0]) * (1.0 + eta * nat[1]) * (1.0 + zeta * nat[2]);
    }
    n
}

/// Shape function derivatives w.r.t. natural coordinates: `dn[i] = [dNi/dξ,
/// dNi/dη, dNi/dζ]`.
pub fn shape_derivatives(xi: f64, eta: f64, zeta: f64) -> [[f64; 3]; 8] {
    let mut dn = [[0.0; 3]; 8];
    for (i, nat) in NODE_XI.iter().enumerate() {
        dn[i][0] = 0.125 * nat[0] * (1.0 + eta * nat[1]) * (1.0 + zeta * nat[2]);
        dn[i][1] = 0.125 * nat[1] * (1.0 + xi * nat[0]) * (1.0 + zeta * nat[2]);
        dn[i][2] = 0.125 * nat[2] * (1.0 + xi * nat[0]) * (1.0 + eta * nat[1]);
    }
    dn
}

/// Element-level output: stiffness matrix and thermal load vector.
#[derive(Debug, Clone)]
pub struct ElementMatrices {
    /// 24×24 stiffness, row-major.
    pub stiffness: [[f64; 24]; 24],
    /// 24-entry equivalent thermal load.
    pub thermal_load: [f64; 24],
}

/// Computes the B matrix (6×24) at a quadrature point and the Jacobian
/// determinant, for an element with the given node coordinates.
fn b_matrix(coords: &[[f64; 3]; 8], xi: f64, eta: f64, zeta: f64) -> ([[f64; 24]; 6], f64) {
    let dn = shape_derivatives(xi, eta, zeta);
    // Jacobian J[a][b] = d x_b / d ξ_a.
    let mut jac = [[0.0f64; 3]; 3];
    for (i, d) in dn.iter().enumerate() {
        for a in 0..3 {
            for b in 0..3 {
                jac[a][b] += d[a] * coords[i][b];
            }
        }
    }
    let det = jac[0][0] * (jac[1][1] * jac[2][2] - jac[1][2] * jac[2][1])
        - jac[0][1] * (jac[1][0] * jac[2][2] - jac[1][2] * jac[2][0])
        + jac[0][2] * (jac[1][0] * jac[2][1] - jac[1][1] * jac[2][0]);
    let inv_det = 1.0 / det;
    // Inverse Jacobian (cofactor form).
    let inv = [
        [
            (jac[1][1] * jac[2][2] - jac[1][2] * jac[2][1]) * inv_det,
            (jac[0][2] * jac[2][1] - jac[0][1] * jac[2][2]) * inv_det,
            (jac[0][1] * jac[1][2] - jac[0][2] * jac[1][1]) * inv_det,
        ],
        [
            (jac[1][2] * jac[2][0] - jac[1][0] * jac[2][2]) * inv_det,
            (jac[0][0] * jac[2][2] - jac[0][2] * jac[2][0]) * inv_det,
            (jac[0][2] * jac[1][0] - jac[0][0] * jac[1][2]) * inv_det,
        ],
        [
            (jac[1][0] * jac[2][1] - jac[1][1] * jac[2][0]) * inv_det,
            (jac[0][1] * jac[2][0] - jac[0][0] * jac[2][1]) * inv_det,
            (jac[0][0] * jac[1][1] - jac[0][1] * jac[1][0]) * inv_det,
        ],
    ];
    // Cartesian derivatives: dN/dx_b = inv[b][a] dN/dξ_a.
    let mut b = [[0.0f64; 24]; 6];
    for (i, d) in dn.iter().enumerate() {
        let dx = inv[0][0] * d[0] + inv[0][1] * d[1] + inv[0][2] * d[2];
        let dy = inv[1][0] * d[0] + inv[1][1] * d[1] + inv[1][2] * d[2];
        let dz = inv[2][0] * d[0] + inv[2][1] * d[1] + inv[2][2] * d[2];
        let c = 3 * i;
        b[0][c] = dx;
        b[1][c + 1] = dy;
        b[2][c + 2] = dz;
        b[3][c] = dy;
        b[3][c + 1] = dx;
        b[4][c + 1] = dz;
        b[4][c + 2] = dy;
        b[5][c] = dz;
        b[5][c + 2] = dx;
    }
    (b, det)
}

/// Computes the element stiffness and the equivalent thermal load for a
/// hexahedron with node coordinates `coords`, material `mat` and temperature
/// change `delta_t`.
pub fn hex_element(coords: &[[f64; 3]; 8], mat: &Material, delta_t: f64) -> ElementMatrices {
    let d = mat.elasticity_matrix();
    let eth = mat.thermal_strain(delta_t);
    // D ε_th, reused at every quadrature point.
    let mut deth = [0.0f64; 6];
    for r in 0..6 {
        for c in 0..6 {
            deth[r] += d[r][c] * eth[c];
        }
    }
    let mut ke = [[0.0f64; 24]; 24];
    let mut fe = [0.0f64; 24];
    for &gx in &[-GP, GP] {
        for &gy in &[-GP, GP] {
            for &gz in &[-GP, GP] {
                let (b, det) = b_matrix(coords, gx, gy, gz);
                debug_assert!(det > 0.0, "inverted element");
                // db = D B (6×24).
                let mut db = [[0.0f64; 24]; 6];
                for r in 0..6 {
                    for c in 0..24 {
                        let mut acc = 0.0;
                        for m in 0..6 {
                            acc += d[r][m] * b[m][c];
                        }
                        db[r][c] = acc;
                    }
                }
                // Ke += Bᵀ (D B) det, fe += Bᵀ (D ε_th) det. Gauss weights are 1.
                for r in 0..24 {
                    for c in r..24 {
                        let mut acc = 0.0;
                        for m in 0..6 {
                            acc += b[m][r] * db[m][c];
                        }
                        ke[r][c] += acc * det;
                    }
                    let mut acc = 0.0;
                    for m in 0..6 {
                        acc += b[m][r] * deth[m];
                    }
                    fe[r] += acc * det;
                }
            }
        }
    }
    // Mirror the upper triangle.
    for r in 0..24 {
        for c in 0..r {
            ke[r][c] = ke[c][r];
        }
    }
    ElementMatrices {
        stiffness: ke,
        thermal_load: fe,
    }
}

/// Recovers the stress (Voigt, Pa) at the element center from nodal
/// displacements `u` (24 entries): `σ = D (B u − ε_th)`.
pub fn element_center_stress(
    coords: &[[f64; 3]; 8],
    mat: &Material,
    delta_t: f64,
    u: &[f64; 24],
) -> [f64; 6] {
    let (b, _) = b_matrix(coords, 0.0, 0.0, 0.0);
    let mut strain = [0.0f64; 6];
    for r in 0..6 {
        for c in 0..24 {
            strain[r] += b[r][c] * u[c];
        }
    }
    let eth = mat.thermal_strain(delta_t);
    for r in 0..6 {
        strain[r] -= eth[r];
    }
    let d = mat.elasticity_matrix();
    let mut sigma = [0.0f64; 6];
    for r in 0..6 {
        for c in 0..6 {
            sigma[r] += d[r][c] * strain[c];
        }
    }
    sigma
}

/// Hydrostatic (mean) stress from a Voigt stress vector.
pub fn hydrostatic(sigma: &[f64; 6]) -> f64 {
    (sigma[0] + sigma[1] + sigma[2]) / 3.0
}

/// Von Mises equivalent stress from a Voigt stress vector.
pub fn von_mises(s: &[f64; 6]) -> f64 {
    let dxx = s[0] - s[1];
    let dyy = s[1] - s[2];
    let dzz = s[2] - s[0];
    (0.5 * (dxx * dxx + dyy * dyy + dzz * dzz) + 3.0 * (s[3] * s[3] + s[4] * s[4] + s[5] * s[5]))
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::material::{table1, MaterialKind};

    fn unit_cube() -> [[f64; 3]; 8] {
        let mut c = [[0.0; 3]; 8];
        for (i, nat) in NODE_XI.iter().enumerate() {
            c[i] = [
                0.5 * (nat[0] + 1.0),
                0.5 * (nat[1] + 1.0),
                0.5 * (nat[2] + 1.0),
            ];
        }
        c
    }

    #[test]
    fn shape_functions_partition_unity() {
        for &(a, b, c) in &[(0.0, 0.0, 0.0), (0.3, -0.7, 0.5), (1.0, 1.0, 1.0)] {
            let n = shape_functions(a, b, c);
            let sum: f64 = n.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn shape_functions_interpolate_nodes() {
        for (i, nat) in NODE_XI.iter().enumerate() {
            let n = shape_functions(nat[0], nat[1], nat[2]);
            for (j, &v) in n.iter().enumerate() {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((v - want).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn derivative_sums_vanish() {
        // Σ dNi/dξ = 0 (constant field has zero gradient).
        let dn = shape_derivatives(0.2, -0.4, 0.9);
        for a in 0..3 {
            let s: f64 = dn.iter().map(|d| d[a]).sum();
            assert!(s.abs() < 1e-12);
        }
    }

    #[test]
    fn stiffness_is_symmetric_and_psd_on_rigid_modes() {
        let cu = table1(MaterialKind::Copper);
        let el = hex_element(&unit_cube(), &cu, 0.0);
        for r in 0..24 {
            for c in 0..24 {
                assert!((el.stiffness[r][c] - el.stiffness[c][r]).abs() < 1e-3);
            }
        }
        // Rigid translation produces zero force: K·(1,0,0,1,0,0,...) = 0.
        for axis in 0..3 {
            let mut u = [0.0f64; 24];
            for i in 0..8 {
                u[3 * i + axis] = 1.0;
            }
            for r in 0..24 {
                let f: f64 = (0..24).map(|c| el.stiffness[r][c] * u[c]).sum();
                assert!(f.abs() < 1e-3, "rigid mode force {f}");
            }
        }
    }

    #[test]
    fn free_thermal_expansion_gives_zero_stress() {
        // Displacements equal to free expansion α ΔT x recover zero stress.
        let cu = table1(MaterialKind::Copper);
        let dt = -220.0;
        let coords = unit_cube();
        let mut u = [0.0f64; 24];
        for (i, c) in coords.iter().enumerate() {
            for a in 0..3 {
                u[3 * i + a] = cu.cte * dt * c[a];
            }
        }
        let sigma = element_center_stress(&coords, &cu, dt, &u);
        for s in sigma {
            assert!(s.abs() < 1.0, "stress {s} Pa should vanish");
        }
    }

    #[test]
    fn fully_constrained_thermal_stress_is_triaxial() {
        // u = 0 everywhere: σ = -D ε_th = -3K α ΔT on the diagonal.
        let cu = table1(MaterialKind::Copper);
        let dt = -220.0;
        let sigma = element_center_stress(&unit_cube(), &cu, dt, &[0.0; 24]);
        let expect = -3.0 * cu.bulk_modulus() * cu.cte * dt;
        for s in &sigma[..3] {
            assert!((s - expect).abs() / expect.abs() < 1e-9);
        }
        assert!(hydrostatic(&sigma) > 0.0, "cooling leaves tension");
        // Fully triaxial state has zero von Mises stress.
        assert!(von_mises(&sigma) < 1.0);
    }

    #[test]
    fn thermal_load_is_consistent_with_stiffness() {
        // For a single unconstrained element, the free-expansion displacement
        // field must satisfy K u = f_th (equilibrium of the thermal problem).
        let cu = table1(MaterialKind::Copper);
        let dt = 100.0;
        let coords = unit_cube();
        let el = hex_element(&coords, &cu, dt);
        let mut u = [0.0f64; 24];
        for (i, c) in coords.iter().enumerate() {
            for a in 0..3 {
                u[3 * i + a] = cu.cte * dt * c[a];
            }
        }
        for r in 0..24 {
            let ku: f64 = (0..24).map(|c| el.stiffness[r][c] * u[c]).sum();
            assert!(
                (ku - el.thermal_load[r]).abs() < 1.0,
                "row {r}: {ku} vs {}",
                el.thermal_load[r]
            );
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn boxes() -> impl Strategy<Value = [[f64; 3]; 8]> {
            (0.01f64..5.0, 0.01f64..5.0, 0.01f64..5.0).prop_map(|(dx, dy, dz)| {
                let mut c = [[0.0; 3]; 8];
                for (i, nat) in NODE_XI.iter().enumerate() {
                    c[i] = [
                        0.5 * dx * (nat[0] + 1.0),
                        0.5 * dy * (nat[1] + 1.0),
                        0.5 * dz * (nat[2] + 1.0),
                    ];
                }
                c
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]
            #[test]
            fn stiffness_symmetric_for_any_box(coords in boxes()) {
                let cu = crate::material::table1(crate::material::MaterialKind::Copper);
                let el = hex_element(&coords, &cu, 0.0);
                let scale = el.stiffness.iter().flatten().fold(0.0f64, |m, v| m.max(v.abs()));
                for r in 0..24 {
                    for c in 0..24 {
                        prop_assert!((el.stiffness[r][c] - el.stiffness[c][r]).abs() < 1e-9 * scale);
                    }
                }
            }

            #[test]
            fn rigid_modes_produce_no_force(coords in boxes()) {
                let cu = crate::material::table1(crate::material::MaterialKind::Copper);
                let el = hex_element(&coords, &cu, 0.0);
                let scale = el.stiffness.iter().flatten().fold(0.0f64, |m, v| m.max(v.abs()));
                for axis in 0..3 {
                    let mut u = [0.0f64; 24];
                    for i in 0..8 {
                        u[3 * i + axis] = 1.0;
                    }
                    for r in 0..24 {
                        let f: f64 = (0..24).map(|c| el.stiffness[r][c] * u[c]).sum();
                        prop_assert!(f.abs() < 1e-8 * scale, "axis {axis} row {r}: {f}");
                    }
                }
            }

            #[test]
            fn free_expansion_is_stress_free_for_any_box(
                coords in boxes(),
                dt in -400.0f64..400.0,
            ) {
                let cu = crate::material::table1(crate::material::MaterialKind::Copper);
                let mut u = [0.0f64; 24];
                for (i, c) in coords.iter().enumerate() {
                    for a in 0..3 {
                        u[3 * i + a] = cu.cte * dt * c[a];
                    }
                }
                let sigma = element_center_stress(&coords, &cu, dt, &u);
                for s in sigma {
                    prop_assert!(s.abs() < 10.0, "residual stress {s} Pa");
                }
            }
        }
    }

    #[test]
    fn von_mises_of_pure_shear() {
        let s = [0.0, 0.0, 0.0, 1e6, 0.0, 0.0];
        assert!((von_mises(&s) - 3f64.sqrt() * 1e6).abs() < 1.0);
        assert_eq!(hydrostatic(&s), 0.0);
    }
}
